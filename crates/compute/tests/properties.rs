//! Property-based tests for the compute-domain models.

use proptest::prelude::*;

use sysscale_compute::{
    CpuModel, CpuPhaseDemand, CStateProfile, CState, GfxModel, GfxPhaseDemand, PStateTable,
};
use sysscale_types::{Bandwidth, Freq, SimTime};

fn arb_demand() -> impl Strategy<Value = CpuPhaseDemand> {
    (0.3f64..3.0, 0.0f64..40.0, 0.0f64..1.0, 1u32..4).prop_map(
        |(base_cpi, mpki, blocking_fraction, active_threads)| CpuPhaseDemand {
            base_cpi,
            mpki,
            blocking_fraction,
            active_threads,
        },
    )
}

proptest! {
    /// Higher CPU frequency never reduces throughput; lower memory latency
    /// never reduces throughput.
    #[test]
    fn cpu_monotonicity(
        demand in arb_demand(),
        f_lo in 0.4f64..2.0,
        f_delta in 0.0f64..0.9,
        lat_lo in 40.0f64..100.0,
        lat_delta in 0.0f64..100.0,
    ) {
        let cpu = CpuModel::skylake_2core();
        let lat = SimTime::from_nanos(lat_lo);
        let slow = cpu.evaluate(&demand, Freq::from_ghz(f_lo), lat, 1.0);
        let fast = cpu.evaluate(&demand, Freq::from_ghz(f_lo + f_delta), lat, 1.0);
        prop_assert!(fast.instructions_per_sec >= slow.instructions_per_sec - 1e-6);

        let worse_mem = cpu.evaluate(&demand, Freq::from_ghz(f_lo), SimTime::from_nanos(lat_lo + lat_delta), 1.0);
        prop_assert!(worse_mem.instructions_per_sec <= slow.instructions_per_sec + 1e-6);
    }

    /// Stall fraction and frequency scalability stay in [0, 1]-ish bounds and
    /// are complementary: highly stalled phases have low scalability.
    #[test]
    fn cpu_stall_and_scalability_bounds(demand in arb_demand(), f in 0.4f64..2.9) {
        let cpu = CpuModel::skylake_2core();
        let lat = SimTime::from_nanos(70.0);
        let freq = Freq::from_ghz(f);
        let r = cpu.evaluate(&demand, freq, lat, 1.0);
        prop_assert!((0.0..=1.0).contains(&r.memory_stall_fraction));
        let s = cpu.frequency_scalability(&demand, freq, lat);
        prop_assert!((-0.01..=1.01).contains(&s), "scalability {}", s);
        // Scalability ~ 1 - stall fraction (same decomposition).
        prop_assert!((s - (1.0 - r.memory_stall_fraction)).abs() < 0.1);
    }

    /// CPU bandwidth demand is proportional to MPKI at fixed achieved IPS,
    /// and zero for a zero-MPKI phase.
    #[test]
    fn cpu_bandwidth_consistency(demand in arb_demand(), f in 0.4f64..2.9) {
        let cpu = CpuModel::skylake_2core();
        let r = cpu.evaluate(&demand, Freq::from_ghz(f), SimTime::from_nanos(70.0), 1.0);
        let expected = r.instructions_per_sec * demand.mpki / 1000.0 * 64.0;
        prop_assert!((r.bandwidth_demand.as_bytes_per_sec() - expected).abs() < 1.0);
    }

    /// GFX: more granted bandwidth or higher engine frequency never lowers
    /// the achieved FPS, and the FPS cap is always respected.
    #[test]
    fn gfx_monotonicity_and_cap(
        cycles in 1.0e6f64..30.0e6,
        bytes in 1.0e6f64..300.0e6,
        cap in proptest::option::of(20.0f64..120.0),
        f_lo in 0.3f64..0.9,
        f_delta in 0.0f64..0.4,
        bw_lo in 0.5f64..10.0,
        bw_delta in 0.0f64..15.0,
    ) {
        let gfx = GfxModel::new();
        let demand = GfxPhaseDemand { cycles_per_frame: cycles, bytes_per_frame: bytes, target_fps: cap };
        let lo = gfx.evaluate(&demand, Freq::from_ghz(f_lo), Bandwidth::from_gib_s(bw_lo));
        let hi_f = gfx.evaluate(&demand, Freq::from_ghz(f_lo + f_delta), Bandwidth::from_gib_s(bw_lo));
        let hi_bw = gfx.evaluate(&demand, Freq::from_ghz(f_lo), Bandwidth::from_gib_s(bw_lo + bw_delta));
        prop_assert!(hi_f.fps >= lo.fps - 1e-9);
        prop_assert!(hi_bw.fps >= lo.fps - 1e-9);
        if let Some(cap) = cap {
            prop_assert!(lo.fps <= cap + 1e-9);
        }
        prop_assert!((0.0..=1.0).contains(&lo.utilization));
    }

    /// Any valid C-state residency mix keeps derived fractions inside [0, 1]
    /// and DRAM-active ⊇ cores-active.
    #[test]
    fn cstate_profile_fractions(c0 in 0.0f64..1.0, c2_frac in 0.0f64..1.0, c6_frac in 0.0f64..1.0) {
        let rest = 1.0 - c0;
        let c2 = rest * c2_frac;
        let c6 = (rest - c2) * c6_frac;
        let c8 = (rest - c2 - c6).max(0.0);
        let profile = CStateProfile::new(vec![
            (CState::C0, c0),
            (CState::C2, c2),
            (CState::C6, c6),
            (CState::C8, c8),
        ]).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&profile.active_fraction()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&profile.dram_active_fraction()));
        prop_assert!(profile.dram_active_fraction() >= profile.active_fraction() - 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&profile.uncore_activity()));
    }
}

#[test]
fn pstate_ladders_have_monotone_power_ordering() {
    // Not strictly a proptest, but an invariant over the whole static table:
    // V²·f is strictly increasing along the ladder, so a higher P-state never
    // costs less power at equal activity.
    for table in [PStateTable::skylake_cpu(), PStateTable::skylake_gfx()] {
        let mut last = 0.0;
        for s in table.states() {
            let v2f = s.voltage.squared() * s.freq.as_ghz();
            assert!(v2f > last);
            last = v2f;
        }
    }
}
