//! Randomized invariant tests for the compute-domain models.
//!
//! Each test draws a deterministic sample population from [`SplitMix64`]
//! (the workspace has no external property-testing dependency) and asserts
//! the model invariants over every sample.

use sysscale_compute::{
    CState, CStateProfile, CpuModel, CpuPhaseDemand, GfxModel, GfxPhaseDemand, PStateTable,
};
use sysscale_types::rng::SplitMix64;
use sysscale_types::{Bandwidth, Freq, SimTime};

const CASES: usize = 200;

fn sample_demand(rng: &mut SplitMix64) -> CpuPhaseDemand {
    CpuPhaseDemand {
        base_cpi: rng.gen_range(0.3, 3.0),
        mpki: rng.gen_range(0.0, 40.0),
        blocking_fraction: rng.gen_range(0.0, 1.0),
        active_threads: 1 + (rng.next_u64() % 3) as u32,
    }
}

/// Higher CPU frequency never reduces throughput; lower memory latency
/// never reduces throughput.
#[test]
fn cpu_monotonicity() {
    let cpu = CpuModel::skylake_2core();
    let mut rng = SplitMix64::new(0xC0_01);
    for _ in 0..CASES {
        let demand = sample_demand(&mut rng);
        let f_lo = rng.gen_range(0.4, 2.0);
        let f_delta = rng.gen_range(0.0, 0.9);
        let lat_lo = rng.gen_range(40.0, 100.0);
        let lat_delta = rng.gen_range(0.0, 100.0);

        let lat = SimTime::from_nanos(lat_lo);
        let slow = cpu.evaluate(&demand, Freq::from_ghz(f_lo), lat, 1.0);
        let fast = cpu.evaluate(&demand, Freq::from_ghz(f_lo + f_delta), lat, 1.0);
        assert!(
            fast.instructions_per_sec >= slow.instructions_per_sec - 1e-6,
            "{demand:?} f {f_lo}+{f_delta}"
        );

        let worse_mem = cpu.evaluate(
            &demand,
            Freq::from_ghz(f_lo),
            SimTime::from_nanos(lat_lo + lat_delta),
            1.0,
        );
        assert!(
            worse_mem.instructions_per_sec <= slow.instructions_per_sec + 1e-6,
            "{demand:?} lat {lat_lo}+{lat_delta}"
        );
    }
}

/// Stall fraction and frequency scalability stay in [0, 1]-ish bounds and
/// are complementary: highly stalled phases have low scalability.
#[test]
fn cpu_stall_and_scalability_bounds() {
    let cpu = CpuModel::skylake_2core();
    let mut rng = SplitMix64::new(0xC0_02);
    for _ in 0..CASES {
        let demand = sample_demand(&mut rng);
        let freq = Freq::from_ghz(rng.gen_range(0.4, 2.9));
        let lat = SimTime::from_nanos(70.0);
        let r = cpu.evaluate(&demand, freq, lat, 1.0);
        assert!((0.0..=1.0).contains(&r.memory_stall_fraction));
        let s = cpu.frequency_scalability(&demand, freq, lat);
        assert!((-0.01..=1.01).contains(&s), "scalability {s}");
        // Scalability ~ 1 - stall fraction (same decomposition).
        assert!((s - (1.0 - r.memory_stall_fraction)).abs() < 0.1);
    }
}

/// CPU bandwidth demand is proportional to MPKI at fixed achieved IPS,
/// and zero for a zero-MPKI phase.
#[test]
fn cpu_bandwidth_consistency() {
    let cpu = CpuModel::skylake_2core();
    let mut rng = SplitMix64::new(0xC0_03);
    for _ in 0..CASES {
        let demand = sample_demand(&mut rng);
        let f = rng.gen_range(0.4, 2.9);
        let r = cpu.evaluate(&demand, Freq::from_ghz(f), SimTime::from_nanos(70.0), 1.0);
        let expected = r.instructions_per_sec * demand.mpki / 1000.0 * 64.0;
        assert!((r.bandwidth_demand.as_bytes_per_sec() - expected).abs() < 1.0);
    }
}

/// GFX: more granted bandwidth or higher engine frequency never lowers
/// the achieved FPS, and the FPS cap is always respected.
#[test]
fn gfx_monotonicity_and_cap() {
    let gfx = GfxModel::new();
    let mut rng = SplitMix64::new(0xC0_04);
    for _ in 0..CASES {
        let cap = if rng.gen_bool(0.5) {
            Some(rng.gen_range(20.0, 120.0))
        } else {
            None
        };
        let demand = GfxPhaseDemand {
            cycles_per_frame: rng.gen_range(1.0e6, 30.0e6),
            bytes_per_frame: rng.gen_range(1.0e6, 300.0e6),
            target_fps: cap,
        };
        let f_lo = rng.gen_range(0.3, 0.9);
        let f_delta = rng.gen_range(0.0, 0.4);
        let bw_lo = rng.gen_range(0.5, 10.0);
        let bw_delta = rng.gen_range(0.0, 15.0);

        let lo = gfx.evaluate(&demand, Freq::from_ghz(f_lo), Bandwidth::from_gib_s(bw_lo));
        let hi_f = gfx.evaluate(
            &demand,
            Freq::from_ghz(f_lo + f_delta),
            Bandwidth::from_gib_s(bw_lo),
        );
        let hi_bw = gfx.evaluate(
            &demand,
            Freq::from_ghz(f_lo),
            Bandwidth::from_gib_s(bw_lo + bw_delta),
        );
        assert!(hi_f.fps >= lo.fps - 1e-9);
        assert!(hi_bw.fps >= lo.fps - 1e-9);
        if let Some(cap) = cap {
            assert!(lo.fps <= cap + 1e-9);
        }
        assert!((0.0..=1.0).contains(&lo.utilization));
    }
}

/// Any valid C-state residency mix keeps derived fractions inside [0, 1]
/// and DRAM-active ⊇ cores-active.
#[test]
fn cstate_profile_fractions() {
    let mut rng = SplitMix64::new(0xC0_05);
    for _ in 0..CASES {
        let c0 = rng.gen_range(0.0, 1.0);
        let rest = 1.0 - c0;
        let c2 = rest * rng.gen_range(0.0, 1.0);
        let c6 = (rest - c2) * rng.gen_range(0.0, 1.0);
        let c8 = (rest - c2 - c6).max(0.0);
        let profile = CStateProfile::new(vec![
            (CState::C0, c0),
            (CState::C2, c2),
            (CState::C6, c6),
            (CState::C8, c8),
        ])
        .unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&profile.active_fraction()));
        assert!((0.0..=1.0 + 1e-9).contains(&profile.dram_active_fraction()));
        assert!(profile.dram_active_fraction() >= profile.active_fraction() - 1e-9);
        assert!((0.0..=1.0 + 1e-9).contains(&profile.uncore_activity()));
    }
}

#[test]
fn pstate_ladders_have_monotone_power_ordering() {
    // An invariant over the whole static table: V²·f is strictly increasing
    // along the ladder, so a higher P-state never costs less power at equal
    // activity.
    for table in [PStateTable::skylake_cpu(), PStateTable::skylake_gfx()] {
        let mut last = 0.0;
        for s in table.states() {
            let v2f = s.voltage.squared() * s.freq.as_ghz();
            assert!(v2f > last);
            last = v2f;
        }
    }
}
