//! CPU-core interval performance model.
//!
//! The model is a first-order interval (bottleneck-additive) model: the time
//! per instruction is the sum of a core-bound term (`base CPI / f_cpu`) and a
//! memory-bound term (`MPKI/1000 × blocking fraction × memory latency`).
//! This is exactly the structure the paper's observations rely on:
//!
//! * workloads whose memory term is negligible scale with CPU frequency and
//!   do not care about DRAM frequency (416.gamess, 444.namd — Sec. 7.1);
//! * workloads dominated by the memory term lose performance when the memory
//!   domain is slowed and gain nothing from more CPU frequency (433.milc,
//!   410.bwaves, 470.lbm);
//! * the bandwidth a workload demands follows from its achieved instruction
//!   rate and its miss rate, which is what the Fig. 3(a) traces show.

use sysscale_types::{Bandwidth, Freq, SimError, SimResult, SimTime};

/// Bytes transferred from DRAM per LLC miss (one cache line).
pub const BYTES_PER_MISS: f64 = 64.0;

/// Static configuration of the CPU-core complex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Number of physical cores (2 on the evaluated M-6Y75, Table 2).
    pub cores: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Throughput contribution of a second SMT thread relative to the first.
    pub smt_yield: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            cores: 2,
            threads_per_core: 2,
            smt_yield: 0.30,
        }
    }
}

impl CpuConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on zero cores/threads or an SMT
    /// yield outside `[0, 1]`.
    pub fn validate(&self) -> SimResult<()> {
        if self.cores == 0 || self.threads_per_core == 0 {
            return Err(SimError::invalid_config(
                "cpu must have at least one core/thread",
            ));
        }
        if !(0.0..=1.0).contains(&self.smt_yield) {
            return Err(SimError::invalid_config("smt yield must be in [0, 1]"));
        }
        Ok(())
    }

    /// Effective core-equivalents for `active_threads` software threads:
    /// one per physical core, plus `smt_yield` per extra SMT thread.
    #[must_use]
    pub fn effective_parallelism(&self, active_threads: u32) -> f64 {
        let max_threads = self.cores * self.threads_per_core;
        let t = active_threads.min(max_threads);
        let physical = t.min(self.cores) as f64;
        let smt_extra = t.saturating_sub(self.cores) as f64;
        (physical + smt_extra * self.smt_yield).max(0.0)
    }
}

/// Per-phase workload characteristics of the CPU demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPhaseDemand {
    /// Cycles per instruction with an ideal (zero-latency) memory system.
    pub base_cpi: f64,
    /// LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of each miss's latency that actually stalls retirement
    /// (≈ 1 / memory-level parallelism).
    pub blocking_fraction: f64,
    /// Number of active software threads.
    pub active_threads: u32,
}

impl CpuPhaseDemand {
    /// A fully idle phase (no instructions to execute).
    #[must_use]
    pub fn idle() -> Self {
        Self {
            base_cpi: 1.0,
            mpki: 0.0,
            blocking_fraction: 0.0,
            active_threads: 0,
        }
    }

    /// Validates the demand parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive CPI, negative
    /// MPKI, or a blocking fraction outside `[0, 1]`.
    pub fn validate(&self) -> SimResult<()> {
        if self.base_cpi <= 0.0 {
            return Err(SimError::invalid_config("base cpi must be positive"));
        }
        if self.mpki < 0.0 {
            return Err(SimError::invalid_config("mpki must be non-negative"));
        }
        if !(0.0..=1.0).contains(&self.blocking_fraction) {
            return Err(SimError::invalid_config(
                "blocking fraction must be in [0, 1]",
            ));
        }
        Ok(())
    }
}

/// Result of evaluating the CPU model for one slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuSliceResult {
    /// Aggregate instructions retired per second.
    pub instructions_per_sec: f64,
    /// Main-memory bandwidth demanded by the cores at that instruction rate.
    pub bandwidth_demand: Bandwidth,
    /// Fraction of core cycles stalled on memory (the `LLC_STALLS` signal).
    pub memory_stall_fraction: f64,
    /// Average number of core requests outstanding at the memory controller
    /// (the `LLC_Occupancy_Tracer` signal, via Little's law).
    pub outstanding_requests: f64,
}

/// The CPU-core performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuModel {
    config: CpuConfig,
}

impl CpuModel {
    /// Creates a model from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: CpuConfig) -> SimResult<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The 2-core/4-thread configuration of the evaluated system (Table 2).
    #[must_use]
    pub fn skylake_2core() -> Self {
        Self::new(CpuConfig::default()).expect("default config is valid")
    }

    /// Read-only access to the configuration.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Evaluates one slice of execution.
    ///
    /// * `demand` — the workload phase characteristics.
    /// * `freq` — effective CPU frequency (already including any HDC duty
    ///   factor).
    /// * `mem_latency` — effective (queuing-inflated) main-memory latency.
    /// * `throughput_scale` — additional scaling of achieved instruction rate
    ///   in `[0, 1]`, used by the SoC loop when the memory controller could
    ///   not serve the full demanded bandwidth.
    #[must_use]
    pub fn evaluate(
        &self,
        demand: &CpuPhaseDemand,
        freq: Freq,
        mem_latency: SimTime,
        throughput_scale: f64,
    ) -> CpuSliceResult {
        if demand.active_threads == 0 || freq.is_zero() {
            return CpuSliceResult::default();
        }
        let parallelism = self.config.effective_parallelism(demand.active_threads);
        if parallelism == 0.0 {
            return CpuSliceResult::default();
        }

        // Seconds per instruction for one thread context.
        let core_time = demand.base_cpi / freq.as_hz();
        let memory_time = demand.mpki / 1000.0 * demand.blocking_fraction * mem_latency.as_secs();
        let seconds_per_instruction = core_time + memory_time;

        let per_thread_ips = 1.0 / seconds_per_instruction;
        let ips = per_thread_ips * parallelism * throughput_scale.clamp(0.0, 1.0);

        let bandwidth_demand =
            Bandwidth::from_bytes_per_sec(ips * demand.mpki / 1000.0 * BYTES_PER_MISS);

        let memory_stall_fraction = (memory_time / seconds_per_instruction).clamp(0.0, 1.0);

        // Little's law: outstanding requests = arrival rate x latency. The
        // arrival rate counts *all* misses (not only blocking ones).
        let miss_rate = ips * demand.mpki / 1000.0;
        let outstanding_requests = miss_rate * mem_latency.as_secs();

        CpuSliceResult {
            instructions_per_sec: ips,
            bandwidth_demand,
            memory_stall_fraction,
            outstanding_requests,
        }
    }

    /// Performance scalability with CPU frequency (Sec. 6 footnote 8): the
    /// relative performance gain for a unit relative frequency increase,
    /// evaluated at (`freq`, `mem_latency`). 1.0 means perfectly
    /// frequency-scalable; 0.0 means fully memory bound.
    #[must_use]
    pub fn frequency_scalability(
        &self,
        demand: &CpuPhaseDemand,
        freq: Freq,
        mem_latency: SimTime,
    ) -> f64 {
        let base = self
            .evaluate(demand, freq, mem_latency, 1.0)
            .instructions_per_sec;
        if base == 0.0 {
            return 0.0;
        }
        let bumped = self
            .evaluate(demand, freq * 1.05, mem_latency, 1.0)
            .instructions_per_sec;
        ((bumped / base) - 1.0) / 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_bound() -> CpuPhaseDemand {
        CpuPhaseDemand {
            base_cpi: 0.8,
            mpki: 0.3,
            blocking_fraction: 0.4,
            active_threads: 2,
        }
    }

    fn memory_bound() -> CpuPhaseDemand {
        CpuPhaseDemand {
            base_cpi: 1.0,
            mpki: 22.0,
            blocking_fraction: 0.7,
            active_threads: 2,
        }
    }

    const MEM_LAT_NS: f64 = 70.0;

    #[test]
    fn compute_bound_workload_scales_with_frequency() {
        let cpu = CpuModel::skylake_2core();
        let lat = SimTime::from_nanos(MEM_LAT_NS);
        let slow = cpu.evaluate(&compute_bound(), Freq::from_ghz(1.2), lat, 1.0);
        let fast = cpu.evaluate(&compute_bound(), Freq::from_ghz(1.8), lat, 1.0);
        let speedup = fast.instructions_per_sec / slow.instructions_per_sec;
        assert!(speedup > 1.40, "speedup {speedup}");
        let scal = cpu.frequency_scalability(&compute_bound(), Freq::from_ghz(1.2), lat);
        assert!(scal > 0.9, "scalability {scal}");
    }

    #[test]
    fn memory_bound_workload_barely_scales_with_frequency() {
        let cpu = CpuModel::skylake_2core();
        let lat = SimTime::from_nanos(MEM_LAT_NS);
        let slow = cpu.evaluate(&memory_bound(), Freq::from_ghz(1.2), lat, 1.0);
        let fast = cpu.evaluate(&memory_bound(), Freq::from_ghz(1.8), lat, 1.0);
        let speedup = fast.instructions_per_sec / slow.instructions_per_sec;
        assert!(speedup < 1.25, "speedup {speedup}");
        let scal = cpu.frequency_scalability(&memory_bound(), Freq::from_ghz(1.2), lat);
        assert!(scal < 0.6, "scalability {scal}");
    }

    #[test]
    fn memory_bound_workload_is_sensitive_to_memory_latency() {
        let cpu = CpuModel::skylake_2core();
        let f = Freq::from_ghz(1.2);
        let fast_mem = cpu.evaluate(&memory_bound(), f, SimTime::from_nanos(60.0), 1.0);
        let slow_mem = cpu.evaluate(&memory_bound(), f, SimTime::from_nanos(90.0), 1.0);
        let loss = 1.0 - slow_mem.instructions_per_sec / fast_mem.instructions_per_sec;
        assert!(loss > 0.10, "loss {loss}");
        // Compute-bound workloads barely notice.
        let cb_fast = cpu.evaluate(&compute_bound(), f, SimTime::from_nanos(60.0), 1.0);
        let cb_slow = cpu.evaluate(&compute_bound(), f, SimTime::from_nanos(90.0), 1.0);
        let cb_loss = 1.0 - cb_slow.instructions_per_sec / cb_fast.instructions_per_sec;
        assert!(cb_loss < 0.05, "loss {cb_loss}");
    }

    #[test]
    fn bandwidth_demand_follows_ips_and_mpki() {
        let cpu = CpuModel::skylake_2core();
        let r = cpu.evaluate(
            &memory_bound(),
            Freq::from_ghz(1.2),
            SimTime::from_nanos(MEM_LAT_NS),
            1.0,
        );
        let expected = r.instructions_per_sec * memory_bound().mpki / 1000.0 * BYTES_PER_MISS;
        assert!((r.bandwidth_demand.as_bytes_per_sec() - expected).abs() < 1.0);
        // A memory-intensive phase on two cores demands GB/s-scale bandwidth.
        assert!(r.bandwidth_demand.as_gib_s() > 1.0);
    }

    #[test]
    fn stall_fraction_and_outstanding_requests_separate_the_classes() {
        let cpu = CpuModel::skylake_2core();
        let lat = SimTime::from_nanos(MEM_LAT_NS);
        let f = Freq::from_ghz(1.2);
        let cb = cpu.evaluate(&compute_bound(), f, lat, 1.0);
        let mb = cpu.evaluate(&memory_bound(), f, lat, 1.0);
        assert!(mb.memory_stall_fraction > 0.5);
        assert!(cb.memory_stall_fraction < 0.2);
        assert!(mb.outstanding_requests > cb.outstanding_requests);
    }

    #[test]
    fn idle_and_degenerate_inputs_are_zero() {
        let cpu = CpuModel::skylake_2core();
        let r = cpu.evaluate(
            &CpuPhaseDemand::idle(),
            Freq::from_ghz(1.2),
            SimTime::from_nanos(MEM_LAT_NS),
            1.0,
        );
        assert_eq!(r, CpuSliceResult::default());
        let r2 = cpu.evaluate(
            &compute_bound(),
            Freq::ZERO,
            SimTime::from_nanos(MEM_LAT_NS),
            1.0,
        );
        assert_eq!(r2, CpuSliceResult::default());
    }

    #[test]
    fn throughput_scale_reduces_everything_proportionally() {
        let cpu = CpuModel::skylake_2core();
        let lat = SimTime::from_nanos(MEM_LAT_NS);
        let full = cpu.evaluate(&memory_bound(), Freq::from_ghz(1.2), lat, 1.0);
        let half = cpu.evaluate(&memory_bound(), Freq::from_ghz(1.2), lat, 0.5);
        assert!((half.instructions_per_sec / full.instructions_per_sec - 0.5).abs() < 1e-9);
        assert!(
            (half.bandwidth_demand.as_bytes_per_sec() / full.bandwidth_demand.as_bytes_per_sec()
                - 0.5)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn parallelism_accounts_for_smt_yield() {
        let cfg = CpuConfig::default();
        assert_eq!(cfg.effective_parallelism(0), 0.0);
        assert_eq!(cfg.effective_parallelism(1), 1.0);
        assert_eq!(cfg.effective_parallelism(2), 2.0);
        assert!((cfg.effective_parallelism(4) - 2.6).abs() < 1e-12);
        // Beyond the hardware thread count saturates.
        assert_eq!(cfg.effective_parallelism(16), cfg.effective_parallelism(4));
    }

    #[test]
    fn config_and_demand_validation() {
        let cfg = CpuConfig {
            cores: 0,
            ..CpuConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(CpuModel::new(cfg).is_err());
        let cfg2 = CpuConfig {
            smt_yield: 1.5,
            ..CpuConfig::default()
        };
        assert!(cfg2.validate().is_err());
        let mut d = compute_bound();
        d.base_cpi = 0.0;
        assert!(d.validate().is_err());
        let mut d2 = compute_bound();
        d2.blocking_fraction = 1.5;
        assert!(d2.validate().is_err());
        assert!(compute_bound().validate().is_ok());
    }
}
