//! Graphics-engine performance model.
//!
//! Graphics workloads are modelled per frame: each frame needs a fixed
//! amount of engine work (cycles) and a fixed amount of main-memory traffic
//! (bytes). The achieved frame rate is the minimum of the compute-limited
//! rate (engine frequency / cycles per frame) and the bandwidth-limited rate
//! (served bandwidth / bytes per frame). Graphics performance is "highly
//! scalable with the graphics engine frequency" (Sec. 7.2) as long as memory
//! bandwidth does not become the bottleneck — which is exactly the trade-off
//! SysScale exploits when it hands the uncore's saved budget to the GFX
//! engine.

use sysscale_types::{Bandwidth, Freq, SimError, SimResult};

/// Per-phase workload characteristics of the graphics demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GfxPhaseDemand {
    /// Engine cycles of work per frame.
    pub cycles_per_frame: f64,
    /// Main-memory bytes transferred per frame (textures, render targets).
    pub bytes_per_frame: f64,
    /// Frame-rate cap (v-sync / content frame rate). `None` for benchmark
    /// mode, where the engine renders as fast as it can.
    pub target_fps: Option<f64>,
}

impl GfxPhaseDemand {
    /// No graphics work.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            cycles_per_frame: 0.0,
            bytes_per_frame: 0.0,
            target_fps: None,
        }
    }

    /// Returns `true` if the phase renders nothing.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.cycles_per_frame <= 0.0
    }

    /// Validates the demand.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative work or a
    /// non-positive FPS cap.
    pub fn validate(&self) -> SimResult<()> {
        if self.cycles_per_frame < 0.0 || self.bytes_per_frame < 0.0 {
            return Err(SimError::invalid_config(
                "gfx per-frame work must be non-negative",
            ));
        }
        if let Some(fps) = self.target_fps {
            if fps <= 0.0 {
                return Err(SimError::invalid_config("target fps must be positive"));
            }
        }
        Ok(())
    }
}

/// Result of evaluating the graphics model for one slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GfxSliceResult {
    /// Achieved frame rate.
    pub fps: f64,
    /// Main-memory bandwidth demanded at the desired (un-throttled) rate.
    pub bandwidth_demand: Bandwidth,
    /// Engine utilization in `[0, 1]` (1.0 = compute bound).
    pub utilization: f64,
    /// `true` if the achieved rate was limited by memory bandwidth rather
    /// than engine throughput or the FPS cap.
    pub bandwidth_limited: bool,
}

/// The graphics-engine performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GfxModel;

impl GfxModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Frame rate achievable from engine throughput alone at `freq`.
    #[must_use]
    pub fn compute_limited_fps(&self, demand: &GfxPhaseDemand, freq: Freq) -> f64 {
        if demand.is_idle() {
            return 0.0;
        }
        freq.as_hz() / demand.cycles_per_frame
    }

    /// The bandwidth the engine would like to consume (at the FPS cap if one
    /// exists, otherwise at the compute-limited rate).
    #[must_use]
    pub fn desired_bandwidth(&self, demand: &GfxPhaseDemand, freq: Freq) -> Bandwidth {
        if demand.is_idle() {
            return Bandwidth::ZERO;
        }
        let desired_fps = match demand.target_fps {
            Some(cap) => cap.min(self.compute_limited_fps(demand, freq)),
            None => self.compute_limited_fps(demand, freq),
        };
        Bandwidth::from_bytes_per_sec(desired_fps * demand.bytes_per_frame)
    }

    /// Evaluates one slice given the engine frequency and the memory
    /// bandwidth actually granted to the engine.
    #[must_use]
    pub fn evaluate(
        &self,
        demand: &GfxPhaseDemand,
        freq: Freq,
        granted: Bandwidth,
    ) -> GfxSliceResult {
        if demand.is_idle() || freq.is_zero() {
            return GfxSliceResult::default();
        }
        let compute_fps = self.compute_limited_fps(demand, freq);
        let bandwidth_fps = if demand.bytes_per_frame > 0.0 {
            granted.as_bytes_per_sec() / demand.bytes_per_frame
        } else {
            f64::INFINITY
        };
        let uncapped = compute_fps.min(bandwidth_fps);
        let fps = match demand.target_fps {
            Some(cap) => uncapped.min(cap),
            None => uncapped,
        };
        let utilization = if compute_fps > 0.0 {
            (fps / compute_fps).clamp(0.0, 1.0)
        } else {
            0.0
        };
        GfxSliceResult {
            fps,
            bandwidth_demand: self.desired_bandwidth(demand, freq),
            utilization,
            bandwidth_limited: bandwidth_fps < compute_fps * 0.999
                && demand.target_fps.map_or(true, |cap| bandwidth_fps < cap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3DMark-class scene: heavy per-frame work and significant traffic.
    fn benchmark_scene() -> GfxPhaseDemand {
        GfxPhaseDemand {
            cycles_per_frame: 12.0e6,
            bytes_per_frame: 140.0e6,
            target_fps: None,
        }
    }

    /// A 60 FPS game/video scene with a v-sync cap.
    fn capped_scene() -> GfxPhaseDemand {
        GfxPhaseDemand {
            cycles_per_frame: 4.0e6,
            bytes_per_frame: 50.0e6,
            target_fps: Some(60.0),
        }
    }

    #[test]
    fn benchmark_fps_scales_with_engine_frequency_when_bandwidth_is_ample() {
        let gfx = GfxModel::new();
        let ample = Bandwidth::from_gib_s(20.0);
        let slow = gfx.evaluate(&benchmark_scene(), Freq::from_mhz(600.0), ample);
        let fast = gfx.evaluate(&benchmark_scene(), Freq::from_mhz(900.0), ample);
        let speedup = fast.fps / slow.fps;
        assert!((speedup - 1.5).abs() < 0.01, "speedup {speedup}");
        assert!(!fast.bandwidth_limited);
        assert!((fast.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_bandwidth_caps_fps_and_flags_it() {
        let gfx = GfxModel::new();
        let starved = Bandwidth::from_gib_s(3.0);
        let r = gfx.evaluate(&benchmark_scene(), Freq::from_mhz(900.0), starved);
        let compute_fps = gfx.compute_limited_fps(&benchmark_scene(), Freq::from_mhz(900.0));
        assert!(r.fps < compute_fps);
        assert!(r.bandwidth_limited);
        assert!(r.utilization < 1.0);
    }

    #[test]
    fn fps_cap_limits_output_and_demand() {
        let gfx = GfxModel::new();
        let ample = Bandwidth::from_gib_s(20.0);
        let r = gfx.evaluate(&capped_scene(), Freq::from_mhz(800.0), ample);
        assert!((r.fps - 60.0).abs() < 1e-9);
        assert!(!r.bandwidth_limited);
        // Desired bandwidth is at the cap, not at the compute-limited rate.
        let demand = gfx.desired_bandwidth(&capped_scene(), Freq::from_mhz(800.0));
        assert!((demand.as_bytes_per_sec() - 60.0 * 50.0e6).abs() < 1.0);
        // Engine is not fully utilized when capped.
        assert!(r.utilization < 0.5);
    }

    #[test]
    fn idle_demand_produces_nothing() {
        let gfx = GfxModel::new();
        let r = gfx.evaluate(
            &GfxPhaseDemand::idle(),
            Freq::from_mhz(800.0),
            Bandwidth::ZERO,
        );
        assert_eq!(r, GfxSliceResult::default());
        assert_eq!(
            gfx.desired_bandwidth(&GfxPhaseDemand::idle(), Freq::from_mhz(800.0)),
            Bandwidth::ZERO
        );
        assert!(GfxPhaseDemand::idle().is_idle());
    }

    #[test]
    fn zero_frequency_is_degenerate() {
        let gfx = GfxModel::new();
        let r = gfx.evaluate(&benchmark_scene(), Freq::ZERO, Bandwidth::from_gib_s(10.0));
        assert_eq!(r, GfxSliceResult::default());
    }

    #[test]
    fn validation() {
        assert!(benchmark_scene().validate().is_ok());
        let mut bad = benchmark_scene();
        bad.cycles_per_frame = -1.0;
        assert!(bad.validate().is_err());
        let mut bad_fps = capped_scene();
        bad_fps.target_fps = Some(0.0);
        assert!(bad_fps.validate().is_err());
    }
}
