//! # sysscale-compute
//!
//! Compute-domain models for the SysScale simulator: the CPU-core interval
//! performance model, the graphics-engine frame model, the shared LLC (and
//! the PMU counters measured at it), compute P-states, package C-states, and
//! hardware duty cycling.
//!
//! ## Example
//!
//! ```
//! use sysscale_compute::{CpuModel, CpuPhaseDemand};
//! use sysscale_types::{Freq, SimTime};
//!
//! let cpu = CpuModel::skylake_2core();
//! let lbm_like = CpuPhaseDemand {
//!     base_cpi: 1.0,
//!     mpki: 22.0,
//!     blocking_fraction: 0.7,
//!     active_threads: 2,
//! };
//! // A memory-bound phase barely benefits from a higher core clock.
//! let scalability =
//!     cpu.frequency_scalability(&lbm_like, Freq::from_ghz(1.2), SimTime::from_nanos(70.0));
//! assert!(scalability < 0.6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cpu;
mod cstate;
mod gfx;
mod llc;
mod pstate;

pub use cpu::{CpuConfig, CpuModel, CpuPhaseDemand, CpuSliceResult, BYTES_PER_MISS};
pub use cstate::{CState, CStateProfile, HardwareDutyCycle};
pub use gfx::{GfxModel, GfxPhaseDemand, GfxSliceResult};
pub use llc::{LlcConfig, LlcModel};
pub use pstate::{PState, PStateTable};
