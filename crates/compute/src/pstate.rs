//! P-states: the DVFS operating points of the CPU cores and graphics engines.
//!
//! Compute-domain DVFS states are known as P-states (Sec. 4.4); the OS and
//! the graphics driver request them, and the PMU's power-budget manager (PBM)
//! grants or demotes the requests to keep the compute domain within its
//! budget. `Pn` denotes the most energy-efficient state: the maximum
//! frequency at the minimum functional voltage (Sec. 7.2).

use std::fmt;

use sysscale_types::{Freq, SimError, SimResult, Voltage};

/// One compute-domain operating point (frequency/voltage pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    /// Clock frequency of the unit at this state.
    pub freq: Freq,
    /// Rail voltage required for this frequency.
    pub voltage: Voltage,
}

impl fmt::Display for PState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} GHz @ {:.0} mV",
            self.freq.as_ghz(),
            self.voltage.as_mv()
        )
    }
}

/// An ordered ladder of P-states, from lowest to highest frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// Creates a table from states sorted by strictly increasing frequency
    /// and non-decreasing voltage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the list is empty, unsorted, or
    /// has decreasing voltage.
    pub fn new(states: Vec<PState>) -> SimResult<Self> {
        if states.is_empty() {
            return Err(SimError::invalid_config("p-state table must not be empty"));
        }
        for i in 1..states.len() {
            if states[i].freq <= states[i - 1].freq {
                return Err(SimError::invalid_config(
                    "p-states must be sorted by strictly increasing frequency",
                ));
            }
            if states[i].voltage < states[i - 1].voltage {
                return Err(SimError::invalid_config(
                    "p-state voltage must be non-decreasing with frequency",
                ));
            }
        }
        Ok(Self { states })
    }

    /// Builds a ladder by sampling a piecewise-linear voltage/frequency curve
    /// between (`f_min`, `v_min`) and (`f_max`, `v_max`) in `steps` equal
    /// frequency increments. Frequencies at or below `f_pn` stay at `v_min`
    /// (the Vmin plateau that defines the `Pn` state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the ranges are inverted or
    /// `steps < 2`.
    pub fn from_vf_curve(
        f_min: Freq,
        f_pn: Freq,
        f_max: Freq,
        v_min: Voltage,
        v_max: Voltage,
        steps: usize,
    ) -> SimResult<Self> {
        if steps < 2 {
            return Err(SimError::invalid_config("need at least two p-states"));
        }
        if f_min >= f_max || f_pn < f_min || f_pn > f_max || v_min > v_max {
            return Err(SimError::invalid_config("invalid v/f curve endpoints"));
        }
        let mut states = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = i as f64 / (steps - 1) as f64;
            let freq = f_min.lerp(f_max, t);
            let voltage = if freq <= f_pn {
                v_min
            } else {
                let span = f_max.as_hz() - f_pn.as_hz();
                let tv = (freq.as_hz() - f_pn.as_hz()) / span;
                v_min.lerp(v_max, tv)
            };
            states.push(PState { freq, voltage });
        }
        Self::new(states)
    }

    /// The CPU-core ladder of a Skylake-class 4.5 W mobile part
    /// (M-6Y75-like: 0.4–2.9 GHz).
    #[must_use]
    pub fn skylake_cpu() -> Self {
        Self::from_vf_curve(
            Freq::from_ghz(0.4),
            Freq::from_ghz(0.8),
            Freq::from_ghz(2.9),
            Voltage::from_mv(550.0),
            Voltage::from_mv(1_050.0),
            26,
        )
        .expect("static curve is well formed")
    }

    /// The graphics-engine ladder of the same part (0.3–1.0 GHz, base
    /// 300 MHz per Table 2).
    #[must_use]
    pub fn skylake_gfx() -> Self {
        Self::from_vf_curve(
            Freq::from_ghz(0.3),
            Freq::from_ghz(0.4),
            Freq::from_ghz(1.0),
            Voltage::from_mv(550.0),
            Voltage::from_mv(1_000.0),
            15,
        )
        .expect("static curve is well formed")
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the table is empty (never true for a constructed
    /// table, present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All states, lowest frequency first.
    #[must_use]
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// The lowest-frequency state.
    #[must_use]
    pub fn lowest(&self) -> PState {
        self.states[0]
    }

    /// The highest-frequency state.
    #[must_use]
    pub fn highest(&self) -> PState {
        self.states[self.states.len() - 1]
    }

    /// The most energy-efficient state `Pn`: the highest frequency still at
    /// the minimum voltage (Sec. 7.2).
    #[must_use]
    pub fn pn(&self) -> PState {
        let v_min = self.states[0].voltage;
        self.states
            .iter()
            .rev()
            .find(|s| (s.voltage.as_mv() - v_min.as_mv()).abs() < 1e-6)
            .copied()
            .unwrap_or(self.states[0])
    }

    /// The highest state whose frequency does not exceed `freq` (the lowest
    /// state if `freq` is below all of them).
    #[must_use]
    pub fn floor_state(&self, freq: Freq) -> PState {
        self.states
            .iter()
            .rev()
            .find(|s| s.freq <= freq * 1.000_001)
            .copied()
            .unwrap_or(self.states[0])
    }

    /// The lowest state whose frequency is at least `freq` (the highest state
    /// if `freq` exceeds all of them).
    #[must_use]
    pub fn ceil_state(&self, freq: Freq) -> PState {
        self.states
            .iter()
            .find(|s| s.freq >= freq * 0.999_999)
            .copied()
            .unwrap_or_else(|| self.highest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_ladders_are_well_formed() {
        let cpu = PStateTable::skylake_cpu();
        let gfx = PStateTable::skylake_gfx();
        assert!(cpu.len() >= 20);
        assert!(gfx.len() >= 10);
        assert!(!cpu.is_empty());
        assert!((cpu.lowest().freq.as_ghz() - 0.4).abs() < 1e-9);
        assert!((cpu.highest().freq.as_ghz() - 2.9).abs() < 1e-9);
        assert!((gfx.lowest().freq.as_ghz() - 0.3).abs() < 1e-9);
        assert!(cpu.highest().voltage > cpu.lowest().voltage);
    }

    #[test]
    fn pn_is_max_frequency_at_min_voltage() {
        let cpu = PStateTable::skylake_cpu();
        let pn = cpu.pn();
        assert_eq!(pn.voltage, cpu.lowest().voltage);
        assert!(pn.freq > cpu.lowest().freq);
        // Every state above Pn needs more voltage.
        for s in cpu.states() {
            if s.freq > pn.freq {
                assert!(s.voltage > pn.voltage);
            }
        }
    }

    #[test]
    fn floor_and_ceil_state_selection() {
        let cpu = PStateTable::skylake_cpu();
        let target = Freq::from_ghz(1.25);
        let floor = cpu.floor_state(target);
        let ceil = cpu.ceil_state(target);
        assert!(floor.freq <= target);
        assert!(ceil.freq >= target * 0.999_999);
        assert!(ceil.freq >= floor.freq);
        // Saturation at the ends.
        assert_eq!(cpu.floor_state(Freq::from_ghz(0.1)), cpu.lowest());
        assert_eq!(cpu.ceil_state(Freq::from_ghz(9.0)), cpu.highest());
        // Exact hits return the exact state.
        let exact = cpu.states()[5];
        assert_eq!(cpu.floor_state(exact.freq), exact);
        assert_eq!(cpu.ceil_state(exact.freq), exact);
    }

    #[test]
    fn construction_rejects_bad_tables() {
        assert!(PStateTable::new(vec![]).is_err());
        let a = PState {
            freq: Freq::from_ghz(1.0),
            voltage: Voltage::from_mv(700.0),
        };
        let b = PState {
            freq: Freq::from_ghz(0.9),
            voltage: Voltage::from_mv(750.0),
        };
        assert!(PStateTable::new(vec![a, b]).is_err());
        let c = PState {
            freq: Freq::from_ghz(1.2),
            voltage: Voltage::from_mv(650.0),
        };
        assert!(PStateTable::new(vec![a, c]).is_err());
        assert!(PStateTable::from_vf_curve(
            Freq::from_ghz(1.0),
            Freq::from_ghz(1.0),
            Freq::from_ghz(0.5),
            Voltage::from_mv(500.0),
            Voltage::from_mv(900.0),
            5
        )
        .is_err());
        assert!(PStateTable::from_vf_curve(
            Freq::from_ghz(0.4),
            Freq::from_ghz(0.6),
            Freq::from_ghz(1.0),
            Voltage::from_mv(500.0),
            Voltage::from_mv(900.0),
            1
        )
        .is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = PStateTable::skylake_cpu().highest().to_string();
        assert!(s.contains("GHz"));
        assert!(s.contains("mV"));
    }
}
