//! Idle power states (C-states) and hardware duty cycling (HDC).
//!
//! Battery-life workloads spend 60–90 % of their time in package idle states
//! (Sec. 7.3): the active C0 residency is 10–40 %, and the rest is spent in
//! C2/C6/C7/C8. DRAM is only active (not in self-refresh) in C0 and C2, which
//! is why SysScale only applies its DVFS while in those states. At very low
//! TDP the effective CPU frequency is further reduced below `Pn` by hardware
//! duty cycling (Sec. 7.2).

use sysscale_types::{SimError, SimResult};

/// Package idle states used by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CState {
    /// Active: cores executing.
    C0,
    /// Shallow package idle: cores clock-gated, uncore and DRAM active.
    C2,
    /// Deep core idle: cores power-gated, uncore partially active.
    C6,
    /// Deeper package idle: most of the uncore gated.
    C7,
    /// Deepest connected state: DRAM in self-refresh, uncore off.
    C8,
}

impl CState {
    /// All states, shallowest first.
    pub const ALL: [CState; 5] = [CState::C0, CState::C2, CState::C6, CState::C7, CState::C8];

    /// `true` if the CPU cores execute instructions in this state.
    #[must_use]
    pub fn cores_active(self) -> bool {
        self == CState::C0
    }

    /// `true` if DRAM is active (not in self-refresh) in this state. SysScale
    /// applies uncore DVFS only in these states (Sec. 7.3).
    #[must_use]
    pub fn dram_active(self) -> bool {
        matches!(self, CState::C0 | CState::C2)
    }

    /// Fraction of the uncore (IO interconnect, memory controller) that
    /// remains powered in this state.
    #[must_use]
    pub fn uncore_activity(self) -> f64 {
        match self {
            CState::C0 => 1.0,
            CState::C2 => 0.85,
            CState::C6 => 0.35,
            CState::C7 => 0.20,
            CState::C8 => 0.0,
        }
    }

    /// Fraction of compute-domain leakage still burned in this state
    /// (power gating removes most of it in C6 and deeper).
    #[must_use]
    pub fn compute_leakage_fraction(self) -> f64 {
        match self {
            CState::C0 => 1.0,
            CState::C2 => 0.60,
            CState::C6 => 0.10,
            CState::C7 => 0.05,
            CState::C8 => 0.02,
        }
    }

    /// Name as printed in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CState::C0 => "C0",
            CState::C2 => "C2",
            CState::C6 => "C6",
            CState::C7 => "C7",
            CState::C8 => "C8",
        }
    }
}

/// A distribution of residencies over C-states for one workload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CStateProfile {
    residencies: Vec<(CState, f64)>,
}

impl CStateProfile {
    /// A profile that is always active (CPU/graphics benchmarks).
    #[must_use]
    pub fn always_active() -> Self {
        Self {
            residencies: vec![(CState::C0, 1.0)],
        }
    }

    /// The video-playback profile of Sec. 7.3: C0 10 %, C2 5 %, C8 85 %.
    #[must_use]
    pub fn video_playback() -> Self {
        Self::new(vec![
            (CState::C0, 0.10),
            (CState::C2, 0.05),
            (CState::C8, 0.85),
        ])
        .expect("static profile is well formed")
    }

    /// Creates a profile from `(state, fraction)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if fractions are negative or do
    /// not sum to 1 (within 0.1 %).
    pub fn new(residencies: Vec<(CState, f64)>) -> SimResult<Self> {
        if residencies.iter().any(|(_, f)| *f < 0.0) {
            return Err(SimError::invalid_config(
                "c-state residency must be non-negative",
            ));
        }
        let sum: f64 = residencies.iter().map(|(_, f)| f).sum();
        if (sum - 1.0).abs() > 1e-3 {
            return Err(SimError::invalid_config(format!(
                "c-state residencies must sum to 1.0 (got {sum:.4})"
            )));
        }
        Ok(Self { residencies })
    }

    /// Iterates over `(state, fraction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CState, f64)> + '_ {
        self.residencies.iter().copied()
    }

    /// Residency of one state (zero if absent).
    #[must_use]
    pub fn residency(&self, state: CState) -> f64 {
        self.residencies
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }

    /// Fraction of time the cores are executing (C0 residency).
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        self.residency(CState::C0)
    }

    /// Fraction of time DRAM is active (not in self-refresh): the window
    /// within which SysScale can apply its DVFS (Sec. 7.3).
    #[must_use]
    pub fn dram_active_fraction(&self) -> f64 {
        self.residencies
            .iter()
            .filter(|(s, _)| s.dram_active())
            .map(|(_, f)| f)
            .sum()
    }

    /// Average uncore activity factor across the profile.
    #[must_use]
    pub fn uncore_activity(&self) -> f64 {
        self.residencies
            .iter()
            .map(|(s, f)| s.uncore_activity() * f)
            .sum()
    }

    /// Average compute-leakage fraction across the profile.
    #[must_use]
    pub fn compute_leakage_fraction(&self) -> f64 {
        self.residencies
            .iter()
            .map(|(s, f)| s.compute_leakage_fraction() * f)
            .sum()
    }
}

impl Default for CStateProfile {
    fn default() -> Self {
        Self::always_active()
    }
}

/// Hardware duty cycling (HDC, Sec. 7.2 footnote 10): coarse-grained duty
/// cycling of the compute domain using power-gated idle states, applied at
/// very low TDP to reduce the *effective* frequency below `Pn`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareDutyCycle {
    duty: f64,
}

impl HardwareDutyCycle {
    /// No duty cycling (the unit runs 100 % of the time).
    #[must_use]
    pub fn disabled() -> Self {
        Self { duty: 1.0 }
    }

    /// Creates a duty cycle with the given on-fraction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `0 < duty <= 1`.
    pub fn new(duty: f64) -> SimResult<Self> {
        if !(duty > 0.0 && duty <= 1.0) {
            return Err(SimError::invalid_config("duty cycle must be in (0, 1]"));
        }
        Ok(Self { duty })
    }

    /// The on-fraction.
    #[must_use]
    pub fn duty(self) -> f64 {
        self.duty
    }

    /// Effective throughput multiplier (equal to the duty factor).
    #[must_use]
    pub fn throughput_factor(self) -> f64 {
        self.duty
    }
}

impl Default for HardwareDutyCycle {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cstate_attributes_are_monotonic_with_depth() {
        for pair in CState::ALL.windows(2) {
            assert!(pair[0].uncore_activity() >= pair[1].uncore_activity());
            assert!(pair[0].compute_leakage_fraction() >= pair[1].compute_leakage_fraction());
        }
        assert!(CState::C0.cores_active());
        assert!(!CState::C2.cores_active());
        assert!(CState::C0.dram_active());
        assert!(CState::C2.dram_active());
        assert!(!CState::C8.dram_active());
        assert!(CState::ALL.iter().all(|s| !s.name().is_empty()));
    }

    #[test]
    fn video_playback_profile_matches_paper() {
        let p = CStateProfile::video_playback();
        assert!((p.residency(CState::C0) - 0.10).abs() < 1e-12);
        assert!((p.residency(CState::C2) - 0.05).abs() < 1e-12);
        assert!((p.residency(CState::C8) - 0.85).abs() < 1e-12);
        assert_eq!(p.residency(CState::C6), 0.0);
        // DRAM is active only in C0 + C2 = 15 % of the time.
        assert!((p.dram_active_fraction() - 0.15).abs() < 1e-12);
        assert!((p.active_fraction() - 0.10).abs() < 1e-12);
        assert_eq!(p.iter().count(), 3);
    }

    #[test]
    fn always_active_profile() {
        let p = CStateProfile::always_active();
        assert_eq!(p.active_fraction(), 1.0);
        assert_eq!(p.dram_active_fraction(), 1.0);
        assert_eq!(p.uncore_activity(), 1.0);
        assert_eq!(CStateProfile::default(), p);
    }

    #[test]
    fn profile_validation() {
        assert!(CStateProfile::new(vec![(CState::C0, 0.5), (CState::C8, 0.4)]).is_err());
        assert!(CStateProfile::new(vec![(CState::C0, -0.1), (CState::C8, 1.1)]).is_err());
        assert!(CStateProfile::new(vec![(CState::C0, 0.3), (CState::C8, 0.7)]).is_ok());
    }

    #[test]
    fn profile_averages_weight_by_residency() {
        let p = CStateProfile::new(vec![(CState::C0, 0.5), (CState::C8, 0.5)]).unwrap();
        assert!((p.uncore_activity() - 0.5).abs() < 1e-12);
        assert!((p.compute_leakage_fraction() - 0.51).abs() < 1e-12);
    }

    #[test]
    fn hdc_validation_and_factor() {
        assert!(HardwareDutyCycle::new(0.0).is_err());
        assert!(HardwareDutyCycle::new(1.5).is_err());
        let h = HardwareDutyCycle::new(0.6).unwrap();
        assert!((h.duty() - 0.6).abs() < 1e-12);
        assert!((h.throughput_factor() - 0.6).abs() < 1e-12);
        assert_eq!(HardwareDutyCycle::default(), HardwareDutyCycle::disabled());
    }
}
