//! Last-level cache (LLC) model.
//!
//! The LLC is shared between CPU cores and graphics engines (Fig. 1). The
//! model captures the two behaviours the paper depends on: (1) graphics
//! traffic occupying the cache inflates the cores' effective miss rate, and
//! (2) the LLC is where the PMU's demand-prediction counters are measured
//! (`LLC_STALLS`, `LLC_Occupancy_Tracer`, `GFX_LLC_MISSES` — Sec. 4.2).

use sysscale_types::{Bandwidth, CounterKind, CounterSet, Freq, SimError, SimResult, SimTime};

use crate::cpu::{CpuSliceResult, BYTES_PER_MISS};

/// Static configuration of the LLC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcConfig {
    /// Capacity in MiB (4 MiB on the evaluated system, Table 2).
    pub size_mib: f64,
    /// Hit latency in nanoseconds.
    pub hit_latency_ns: f64,
    /// MPKI inflation per GiB/s of graphics traffic sharing the cache.
    pub contention_mpki_per_gib_s: f64,
}

impl Default for LlcConfig {
    fn default() -> Self {
        Self {
            size_mib: 4.0,
            hit_latency_ns: 8.0,
            contention_mpki_per_gib_s: 0.12,
        }
    }
}

impl LlcConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive size or latency,
    /// or negative contention.
    pub fn validate(&self) -> SimResult<()> {
        if self.size_mib <= 0.0 || self.hit_latency_ns <= 0.0 {
            return Err(SimError::invalid_config(
                "llc size and latency must be positive",
            ));
        }
        if self.contention_mpki_per_gib_s < 0.0 {
            return Err(SimError::invalid_config(
                "llc contention must be non-negative",
            ));
        }
        Ok(())
    }
}

/// The LLC model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LlcModel {
    config: LlcConfig,
}

impl LlcModel {
    /// Creates a model from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: LlcConfig) -> SimResult<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The 4 MiB LLC of the evaluated system.
    #[must_use]
    pub fn skylake_4mib() -> Self {
        Self::new(LlcConfig::default()).expect("default config is valid")
    }

    /// Read-only access to the configuration.
    #[must_use]
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Effective CPU MPKI after accounting for graphics traffic occupying
    /// part of the shared cache.
    #[must_use]
    pub fn contended_mpki(&self, base_mpki: f64, gfx_traffic: Bandwidth) -> f64 {
        base_mpki + self.config.contention_mpki_per_gib_s * gfx_traffic.as_gib_s()
    }

    /// Produces the PMU counter increments attributable to this slice.
    ///
    /// * `duration` — slice length.
    /// * `cpu` — evaluated CPU slice result.
    /// * `cpu_freq` — effective CPU frequency (to convert stall fractions to
    ///   stall cycles).
    /// * `gfx_served` — memory bandwidth actually consumed by the graphics
    ///   engines this slice.
    #[must_use]
    pub fn slice_counters(
        &self,
        duration: SimTime,
        cpu: &CpuSliceResult,
        cpu_freq: Freq,
        gfx_served: Bandwidth,
    ) -> CounterSet {
        let mut counters = CounterSet::new();
        let cycles = cpu_freq.cycles_in(duration);
        counters.set(CounterKind::LlcStalls, cycles * cpu.memory_stall_fraction);
        counters.set(CounterKind::LlcOccupancyTracer, cpu.outstanding_requests);
        let gfx_misses = gfx_served.as_bytes_per_sec() * duration.as_secs() / BYTES_PER_MISS;
        counters.set(CounterKind::GfxLlcMisses, gfx_misses);
        counters.set(
            CounterKind::InstructionsRetired,
            cpu.instructions_per_sec * duration.as_secs(),
        );
        counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_result(stall: f64, outstanding: f64, ips: f64) -> CpuSliceResult {
        CpuSliceResult {
            instructions_per_sec: ips,
            bandwidth_demand: Bandwidth::from_gib_s(2.0),
            memory_stall_fraction: stall,
            outstanding_requests: outstanding,
        }
    }

    #[test]
    fn contention_inflates_mpki_linearly() {
        let llc = LlcModel::skylake_4mib();
        let base = 5.0;
        assert_eq!(llc.contended_mpki(base, Bandwidth::ZERO), base);
        let with_gfx = llc.contended_mpki(base, Bandwidth::from_gib_s(10.0));
        assert!((with_gfx - (base + 1.2)).abs() < 1e-9);
        assert!(llc.contended_mpki(base, Bandwidth::from_gib_s(20.0)) > with_gfx);
    }

    #[test]
    fn slice_counters_track_stalls_occupancy_and_gfx_misses() {
        let llc = LlcModel::skylake_4mib();
        let duration = SimTime::from_millis(1.0);
        let freq = Freq::from_ghz(1.2);
        let c = llc.slice_counters(
            duration,
            &cpu_result(0.5, 8.0, 2.0e9),
            freq,
            Bandwidth::from_gib_s(1.0),
        );
        // 1.2e9 cycles/s x 1 ms x 0.5 stall fraction = 6e5 stall cycles.
        assert!((c.value(CounterKind::LlcStalls) - 6.0e5).abs() < 1.0);
        assert_eq!(c.value(CounterKind::LlcOccupancyTracer), 8.0);
        let expected_misses = Bandwidth::from_gib_s(1.0).as_bytes_per_sec() * 1e-3 / 64.0;
        assert!((c.value(CounterKind::GfxLlcMisses) - expected_misses).abs() < 1.0);
        assert!((c.value(CounterKind::InstructionsRetired) - 2.0e6).abs() < 1.0);
    }

    #[test]
    fn idle_slice_produces_zero_counters() {
        let llc = LlcModel::skylake_4mib();
        let c = llc.slice_counters(
            SimTime::from_millis(1.0),
            &CpuSliceResult::default(),
            Freq::from_ghz(1.2),
            Bandwidth::ZERO,
        );
        for kind in CounterKind::PREDICTOR_SET {
            assert_eq!(c.value(kind), 0.0);
        }
    }

    #[test]
    fn config_validation() {
        assert!(LlcConfig::default().validate().is_ok());
        let bad = LlcConfig {
            size_mib: 0.0,
            ..LlcConfig::default()
        };
        assert!(LlcModel::new(bad).is_err());
        let neg = LlcConfig {
            contention_mpki_per_gib_s: -0.5,
            ..LlcConfig::default()
        };
        assert!(neg.validate().is_err());
        assert_eq!(LlcModel::skylake_4mib().config().size_mib, 4.0);
    }
}
