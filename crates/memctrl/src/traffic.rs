//! Aggregated main-memory traffic demand for one simulation slice.
//!
//! The memory controller sits behind the LLC and the IO interconnect and
//! serves four request classes: CPU-core misses, graphics-engine misses,
//! isochronous IO traffic (display refresh, camera/ISP streaming — traffic
//! with hard QoS deadlines, Sec. 1), and best-effort IO traffic.

use sysscale_types::Bandwidth;

/// Per-class main-memory bandwidth demand for one slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficDemand {
    /// Demand from CPU-core LLC misses.
    pub cpu: Bandwidth,
    /// Demand from graphics-engine LLC misses.
    pub gfx: Bandwidth,
    /// Isochronous IO demand (display, ISP). Must be served in full or a QoS
    /// violation is reported.
    pub isochronous: Bandwidth,
    /// Best-effort IO demand (storage, USB, audio, ...).
    pub io: Bandwidth,
}

impl TrafficDemand {
    /// Demand with all classes zero.
    pub const IDLE: TrafficDemand = TrafficDemand {
        cpu: Bandwidth::ZERO,
        gfx: Bandwidth::ZERO,
        isochronous: Bandwidth::ZERO,
        io: Bandwidth::ZERO,
    };

    /// Total demand across all classes.
    #[must_use]
    pub fn total(&self) -> Bandwidth {
        self.cpu + self.gfx + self.isochronous + self.io
    }

    /// Returns `true` if no class demands any bandwidth.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.total().is_zero()
    }

    /// Scales every class by `factor` (used when a stall shortens the
    /// effective service window of a slice).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            cpu: self.cpu * factor,
            gfx: self.gfx * factor,
            isochronous: self.isochronous * factor,
            io: self.io * factor,
        }
    }
}

/// Per-class bandwidth actually served in a slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServedTraffic {
    /// Served CPU-core bandwidth.
    pub cpu: Bandwidth,
    /// Served graphics bandwidth.
    pub gfx: Bandwidth,
    /// Served isochronous bandwidth.
    pub isochronous: Bandwidth,
    /// Served best-effort IO bandwidth.
    pub io: Bandwidth,
}

impl ServedTraffic {
    /// Total served bandwidth.
    #[must_use]
    pub fn total(&self) -> Bandwidth {
        self.cpu + self.gfx + self.isochronous + self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_idle() {
        assert!(TrafficDemand::IDLE.is_idle());
        let d = TrafficDemand {
            cpu: Bandwidth::from_gib_s(4.0),
            gfx: Bandwidth::from_gib_s(2.0),
            isochronous: Bandwidth::from_gib_s(1.0),
            io: Bandwidth::from_gib_s(0.5),
        };
        assert!(!d.is_idle());
        assert!((d.total().as_gib_s() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn scaling_scales_every_class() {
        let d = TrafficDemand {
            cpu: Bandwidth::from_gib_s(4.0),
            gfx: Bandwidth::from_gib_s(2.0),
            isochronous: Bandwidth::from_gib_s(1.0),
            io: Bandwidth::from_gib_s(1.0),
        };
        let half = d.scaled(0.5);
        assert!((half.total().as_gib_s() - 4.0).abs() < 1e-9);
        assert!((half.cpu.as_gib_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn served_traffic_total() {
        let s = ServedTraffic {
            cpu: Bandwidth::from_gib_s(1.0),
            gfx: Bandwidth::from_gib_s(1.0),
            isochronous: Bandwidth::from_gib_s(1.0),
            io: Bandwidth::from_gib_s(1.0),
        };
        assert!((s.total().as_gib_s() - 4.0).abs() < 1e-9);
    }
}
