//! # sysscale-memctrl
//!
//! Memory-controller and DDRIO models for the SysScale simulator: per-slice
//! bandwidth allocation with isochronous priority, a queuing-latency model,
//! RPQ congestion counters, and the power models for the memory controller
//! (on `V_SA`) and the DRAM interface (on `V_IO` / `VDDQ`).
//!
//! ## Example
//!
//! ```
//! use sysscale_memctrl::{MemoryController, TrafficDemand};
//! use sysscale_types::{Bandwidth, SimTime};
//!
//! let mc = MemoryController::default();
//! let demand = TrafficDemand {
//!     cpu: Bandwidth::from_gib_s(4.0),
//!     isochronous: Bandwidth::from_gib_s(1.5),
//!     ..TrafficDemand::IDLE
//! };
//! let outcome = mc.serve(&demand, Bandwidth::from_gib_s(23.8), SimTime::from_nanos(40.0));
//! assert!(!outcome.qos_violated);
//! assert!(outcome.effective_latency >= SimTime::from_nanos(40.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod controller;
mod power;
mod traffic;

pub use controller::{MemoryController, MemoryControllerParams, ServiceOutcome};
pub use power::{
    DdrIoPower, DdrIoPowerModel, DdrIoPowerParams, MemCtrlPowerModel, MemCtrlPowerParams,
};
pub use traffic::{ServedTraffic, TrafficDemand};
