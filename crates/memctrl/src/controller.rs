//! Memory-controller service model: bandwidth allocation, queuing latency,
//! and the performance counters the PMU samples.
//!
//! The controller is modelled analytically per slice. Isochronous traffic is
//! served first (it carries QoS deadlines — Sec. 1 and the DASH-style
//! schedulers the paper cites); the remaining bus capacity is shared
//! proportionally among CPU, graphics, and best-effort IO demand. The
//! effective access latency seen by the cores follows an M/M/1-style queuing
//! inflation of the unloaded DRAM latency, which is how reducing DRAM
//! frequency "increases the queuing delays at the memory controller"
//! (Sec. 2.4).

use sysscale_types::{Bandwidth, SimError, SimResult, SimTime};

use crate::traffic::{ServedTraffic, TrafficDemand};

/// Tunable parameters of the service model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryControllerParams {
    /// Fraction of the theoretical peak bandwidth achievable by real request
    /// streams (bank conflicts, read/write turnarounds, refresh). Typical
    /// controllers sustain 70–90 %.
    pub bus_efficiency: f64,
    /// Strength of the queuing-latency inflation: `latency = idle × (1 +
    /// strength × ρ / (1 − ρ))` with ρ the bus utilization.
    pub queuing_strength: f64,
    /// Cap on the queuing inflation factor so saturated slices stay finite.
    pub max_latency_factor: f64,
    /// Depth of the read-pending queue used to report RPQ occupancy.
    pub read_pending_queue_depth: usize,
}

impl Default for MemoryControllerParams {
    fn default() -> Self {
        Self {
            bus_efficiency: 0.82,
            queuing_strength: 0.55,
            max_latency_factor: 6.0,
            read_pending_queue_depth: 32,
        }
    }
}

impl MemoryControllerParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if efficiencies or factors are out
    /// of range.
    pub fn validate(&self) -> SimResult<()> {
        if !(0.0..=1.0).contains(&self.bus_efficiency) || self.bus_efficiency == 0.0 {
            return Err(SimError::invalid_config("bus efficiency must be in (0, 1]"));
        }
        if self.queuing_strength < 0.0 {
            return Err(SimError::invalid_config(
                "queuing strength must be non-negative",
            ));
        }
        if self.max_latency_factor < 1.0 {
            return Err(SimError::invalid_config(
                "max latency factor must be at least 1",
            ));
        }
        if self.read_pending_queue_depth == 0 {
            return Err(SimError::invalid_config("rpq depth must be non-zero"));
        }
        Ok(())
    }
}

/// Outcome of serving one slice of traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOutcome {
    /// Bandwidth served per class.
    pub served: ServedTraffic,
    /// Sustainable bandwidth of the interface for this slice (peak ×
    /// efficiency).
    pub sustainable: Bandwidth,
    /// Bus utilization ρ in `[0, 1]`.
    pub utilization: f64,
    /// Effective (queuing-inflated) access latency seen by a blocking miss.
    pub effective_latency: SimTime,
    /// Average read-pending-queue occupancy (entries), the `IO_RPQ`-style
    /// congestion signal.
    pub rpq_occupancy: f64,
    /// `true` if isochronous demand could not be fully served (QoS
    /// violation).
    pub qos_violated: bool,
}

impl ServiceOutcome {
    /// Fraction of CPU demand that was actually served (1.0 when demand was
    /// zero).
    #[must_use]
    pub fn cpu_service_ratio(&self, demand: &TrafficDemand) -> f64 {
        if demand.cpu.is_zero() {
            1.0
        } else {
            (self.served.cpu / demand.cpu).min(1.0)
        }
    }
}

/// The memory-controller service model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryController {
    params: MemoryControllerParams,
}

impl Default for MemoryController {
    fn default() -> Self {
        Self::new(MemoryControllerParams::default()).expect("default params are valid")
    }
}

impl MemoryController {
    /// Creates a controller with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the parameters are invalid.
    pub fn new(params: MemoryControllerParams) -> SimResult<Self> {
        params.validate()?;
        Ok(Self { params })
    }

    /// Read-only access to the parameters.
    #[must_use]
    pub fn params(&self) -> &MemoryControllerParams {
        &self.params
    }

    /// Serves one slice of traffic.
    ///
    /// * `demand` — per-class bandwidth demand.
    /// * `peak` — theoretical peak bandwidth of the DRAM interface at its
    ///   current frequency (already derated for MRC mismatch if applicable).
    /// * `idle_latency` — unloaded access latency of the DRAM at its current
    ///   frequency (already inflated for MRC mismatch if applicable).
    #[must_use]
    pub fn serve(
        &self,
        demand: &TrafficDemand,
        peak: Bandwidth,
        idle_latency: SimTime,
    ) -> ServiceOutcome {
        let sustainable = peak * self.params.bus_efficiency;

        // Isochronous traffic is scheduled with priority; a QoS violation is
        // recorded if even the full bus cannot cover it.
        let iso_served = demand.isochronous.min(sustainable);
        let qos_violated = demand.isochronous > sustainable * 1.000_001;
        let remaining = (sustainable - iso_served).max(Bandwidth::ZERO);

        // Remaining capacity is shared proportionally among the best-effort
        // classes (a round-robin scheduler converges to this on average).
        let best_effort_demand = demand.cpu + demand.gfx + demand.io;
        let share = if best_effort_demand.is_zero() {
            1.0
        } else {
            (remaining / best_effort_demand).min(1.0)
        };
        let served = ServedTraffic {
            cpu: demand.cpu * share,
            gfx: demand.gfx * share,
            isochronous: iso_served,
            io: demand.io * share,
        };

        let utilization = if sustainable.is_zero() {
            1.0
        } else {
            (served.total() / sustainable).clamp(0.0, 1.0)
        };

        // Queuing inflation of the unloaded latency, capped for stability.
        let rho = utilization.min(0.995);
        let factor = (1.0 + self.params.queuing_strength * rho / (1.0 - rho))
            .min(self.params.max_latency_factor);
        let effective_latency = idle_latency * factor;

        // Little's law estimate of queue occupancy: outstanding = arrival
        // rate × latency, expressed in 64-byte requests.
        let arrival_rate = served.total().as_bytes_per_sec() / 64.0;
        let rpq_occupancy = (arrival_rate * effective_latency.as_secs())
            .min(self.params.read_pending_queue_depth as f64);

        ServiceOutcome {
            served,
            sustainable,
            utilization,
            effective_latency,
            rpq_occupancy,
            qos_violated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gib(v: f64) -> Bandwidth {
        Bandwidth::from_gib_s(v)
    }

    fn controller() -> MemoryController {
        MemoryController::default()
    }

    const PEAK: f64 = 23.8; // dual-channel LPDDR3-1600 in GiB/s
    const IDLE_NS: f64 = 40.0;

    fn serve(demand: TrafficDemand) -> ServiceOutcome {
        controller().serve(&demand, gib(PEAK), SimTime::from_nanos(IDLE_NS))
    }

    #[test]
    fn light_demand_is_fully_served_with_low_latency() {
        let d = TrafficDemand {
            cpu: gib(2.0),
            gfx: gib(1.0),
            isochronous: gib(1.0),
            io: gib(0.2),
        };
        let out = serve(d);
        assert!((out.served.total().as_gib_s() - d.total().as_gib_s()).abs() < 1e-9);
        assert!(!out.qos_violated);
        assert!(out.utilization < 0.3);
        assert!(out.effective_latency.as_nanos() < 1.5 * IDLE_NS);
        assert!((out.cpu_service_ratio(&d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_shares_proportionally_after_isochronous() {
        let d = TrafficDemand {
            cpu: gib(20.0),
            gfx: gib(10.0),
            isochronous: gib(5.0),
            io: gib(0.0),
        };
        let out = serve(d);
        // Isochronous fully served.
        assert!((out.served.isochronous.as_gib_s() - 5.0).abs() < 1e-9);
        assert!(!out.qos_violated);
        // CPU and GFX get the same service ratio.
        let cpu_ratio = out.served.cpu / d.cpu;
        let gfx_ratio = out.served.gfx / d.gfx;
        assert!((cpu_ratio - gfx_ratio).abs() < 1e-9);
        assert!(cpu_ratio < 1.0);
        // Bus is saturated.
        assert!(out.utilization > 0.99);
        assert!(out.effective_latency > SimTime::from_nanos(IDLE_NS));
    }

    #[test]
    fn isochronous_demand_beyond_capacity_is_a_qos_violation() {
        let d = TrafficDemand {
            isochronous: gib(30.0),
            ..TrafficDemand::IDLE
        };
        let out = serve(d);
        assert!(out.qos_violated);
        assert!(out.served.isochronous < d.isochronous);
    }

    #[test]
    fn latency_grows_with_utilization_and_is_capped() {
        let low = serve(TrafficDemand {
            cpu: gib(1.0),
            ..TrafficDemand::IDLE
        });
        let mid = serve(TrafficDemand {
            cpu: gib(12.0),
            ..TrafficDemand::IDLE
        });
        let high = serve(TrafficDemand {
            cpu: gib(40.0),
            ..TrafficDemand::IDLE
        });
        assert!(low.effective_latency < mid.effective_latency);
        assert!(mid.effective_latency < high.effective_latency);
        let cap = MemoryControllerParams::default().max_latency_factor;
        assert!(high.effective_latency.as_nanos() <= IDLE_NS * cap + 1e-9);
    }

    #[test]
    fn lower_peak_bandwidth_increases_latency_for_same_demand() {
        // The mechanism behind Observation 1: at lower DRAM frequency the same
        // demand utilizes the bus more and queues longer.
        let d = TrafficDemand {
            cpu: gib(8.0),
            ..TrafficDemand::IDLE
        };
        let c = controller();
        let high = c.serve(&d, gib(23.8), SimTime::from_nanos(40.0));
        let low = c.serve(&d, gib(15.9), SimTime::from_nanos(42.0));
        assert!(low.utilization > high.utilization);
        assert!(low.effective_latency > high.effective_latency);
    }

    #[test]
    fn rpq_occupancy_tracks_outstanding_requests_and_saturates() {
        let idle = serve(TrafficDemand::IDLE);
        assert_eq!(idle.rpq_occupancy, 0.0);
        let busy = serve(TrafficDemand {
            cpu: gib(40.0),
            ..TrafficDemand::IDLE
        });
        assert!(busy.rpq_occupancy > 1.0);
        assert!(
            busy.rpq_occupancy <= MemoryControllerParams::default().read_pending_queue_depth as f64
        );
    }

    #[test]
    fn zero_peak_bandwidth_is_degenerate_but_finite() {
        let c = controller();
        let out = c.serve(
            &TrafficDemand {
                cpu: gib(1.0),
                ..TrafficDemand::IDLE
            },
            Bandwidth::ZERO,
            SimTime::from_nanos(40.0),
        );
        assert_eq!(out.served.total(), Bandwidth::ZERO);
        assert!(out.effective_latency.as_nanos().is_finite());
        assert_eq!(out.utilization, 1.0);
    }

    #[test]
    fn params_validation() {
        let mut p = MemoryControllerParams::default();
        assert!(p.validate().is_ok());
        p.bus_efficiency = 0.0;
        assert!(MemoryController::new(p).is_err());
        p.bus_efficiency = 0.8;
        p.max_latency_factor = 0.5;
        assert!(MemoryController::new(p).is_err());
        p.max_latency_factor = 4.0;
        p.read_pending_queue_depth = 0;
        assert!(MemoryController::new(p).is_err());
        p.read_pending_queue_depth = 16;
        p.queuing_strength = -1.0;
        assert!(MemoryController::new(p).is_err());
    }
}
