//! Power models of the memory controller and the DRAM interface (DDRIO).
//!
//! * Memory-controller power follows Sec. 2.3: static power proportional to
//!   the `V_SA` voltage plus dynamic power proportional to `V_SA² × f_mc`.
//!   Because `V_SA` scales with the operating point, reducing the memory
//!   frequency cuts controller power "approximately by a cubic factor"
//!   (Sec. 2.4).
//! * DDRIO-digital draws from `V_IO` and scales as `V_IO² × f_ddr` with a
//!   utilization-dependent activity factor; DDRIO-analog draws from `VDDQ`
//!   (fixed voltage) and scales with frequency and utilization only.

use sysscale_types::{Freq, Power, Voltage};

/// Calibration constants for the memory-controller power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemCtrlPowerParams {
    /// Reference frequency for the dynamic-power coefficient.
    pub nominal_freq: Freq,
    /// Reference `V_SA` voltage.
    pub nominal_voltage: Voltage,
    /// Dynamic power at nominal voltage/frequency and 100 % activity, watts.
    pub dynamic_w_at_nominal: f64,
    /// Activity floor: fraction of the dynamic coefficient burned even when
    /// the bus is idle (clocking, scheduler, PHY training logic).
    pub idle_activity: f64,
    /// Leakage power at nominal voltage, watts. Scales ∝ V³ with voltage
    /// (short-channel leakage), which is a conservative fit for 14 nm.
    pub leakage_w_at_nominal: f64,
}

impl Default for MemCtrlPowerParams {
    fn default() -> Self {
        Self {
            nominal_freq: Freq::from_ghz(0.8),
            nominal_voltage: Voltage::from_mv(800.0),
            dynamic_w_at_nominal: 0.230,
            idle_activity: 0.30,
            leakage_w_at_nominal: 0.070,
        }
    }
}

/// Memory-controller power model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemCtrlPowerModel {
    params: MemCtrlPowerParams,
}

impl MemCtrlPowerModel {
    /// Creates a model from calibration parameters.
    #[must_use]
    pub fn new(params: MemCtrlPowerParams) -> Self {
        Self { params }
    }

    /// Read-only access to the calibration parameters.
    #[must_use]
    pub fn params(&self) -> &MemCtrlPowerParams {
        &self.params
    }

    /// Average power at controller frequency `freq`, rail voltage `v_sa`, and
    /// bus utilization `utilization` in `[0, 1]`.
    #[must_use]
    pub fn power(&self, freq: Freq, v_sa: Voltage, utilization: f64) -> Power {
        let p = &self.params;
        let activity = p.idle_activity + (1.0 - p.idle_activity) * utilization.clamp(0.0, 1.0);
        let v_ratio_sq = v_sa.squared() / p.nominal_voltage.squared();
        let f_ratio = freq.ratio(p.nominal_freq);
        let dynamic = p.dynamic_w_at_nominal * v_ratio_sq * f_ratio * activity;
        let v_ratio = v_sa.as_volts() / p.nominal_voltage.as_volts();
        let leakage = p.leakage_w_at_nominal * v_ratio.powi(3);
        Power::from_watts(dynamic + leakage)
    }
}

/// Calibration constants for the DDRIO power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrIoPowerParams {
    /// Reference DDR data frequency.
    pub nominal_freq: Freq,
    /// Reference `V_IO` voltage.
    pub nominal_vio: Voltage,
    /// Digital (V_IO) power at nominal voltage/frequency, full utilization.
    pub digital_w_at_nominal: f64,
    /// Digital idle-activity floor (DLL, clock distribution).
    pub digital_idle_activity: f64,
    /// Analog (VDDQ) power at nominal frequency, full utilization.
    pub analog_w_at_nominal: f64,
    /// Analog idle-activity floor.
    pub analog_idle_activity: f64,
}

impl Default for DdrIoPowerParams {
    fn default() -> Self {
        Self {
            nominal_freq: Freq::from_ghz(1.6),
            nominal_vio: Voltage::from_mv(950.0),
            digital_w_at_nominal: 0.160,
            digital_idle_activity: 0.35,
            analog_w_at_nominal: 0.110,
            analog_idle_activity: 0.30,
        }
    }
}

/// Breakdown of DDRIO power across its two rails.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DdrIoPower {
    /// Digital PHY power, drawn from `V_IO`.
    pub digital: Power,
    /// Analog front-end power, drawn from `VDDQ`.
    pub analog: Power,
}

impl DdrIoPower {
    /// Total DDRIO power.
    #[must_use]
    pub fn total(&self) -> Power {
        self.digital + self.analog
    }
}

/// DDRIO power model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DdrIoPowerModel {
    params: DdrIoPowerParams,
}

impl DdrIoPowerModel {
    /// Creates a model from calibration parameters.
    #[must_use]
    pub fn new(params: DdrIoPowerParams) -> Self {
        Self { params }
    }

    /// Read-only access to the calibration parameters.
    #[must_use]
    pub fn params(&self) -> &DdrIoPowerParams {
        &self.params
    }

    /// Average DDRIO power at DDR frequency `freq`, `V_IO` voltage `v_io`,
    /// and interface utilization in `[0, 1]`. The `mrc_io_penalty` factor
    /// (≥ 1.0) models the extra termination/driver power of mis-trained
    /// registers and is applied to both rails.
    #[must_use]
    pub fn power(
        &self,
        freq: Freq,
        v_io: Voltage,
        utilization: f64,
        mrc_io_penalty: f64,
    ) -> DdrIoPower {
        let p = &self.params;
        let u = utilization.clamp(0.0, 1.0);
        let f_ratio = freq.ratio(p.nominal_freq);

        let dig_activity = p.digital_idle_activity + (1.0 - p.digital_idle_activity) * u;
        let v_ratio_sq = v_io.squared() / p.nominal_vio.squared();
        let digital = p.digital_w_at_nominal * v_ratio_sq * f_ratio * dig_activity * mrc_io_penalty;

        let an_activity = p.analog_idle_activity + (1.0 - p.analog_idle_activity) * u;
        let analog = p.analog_w_at_nominal * f_ratio * an_activity * mrc_io_penalty;

        DdrIoPower {
            digital: Power::from_watts(digital),
            analog: Power::from_watts(analog),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_power_reduces_cubically_with_coordinated_vf_scaling() {
        // Sec. 2.4: memory-controller power reduces approximately by a cubic
        // factor because voltage scales with frequency.
        let model = MemCtrlPowerModel::default();
        let nominal = model.power(Freq::from_ghz(0.8), Voltage::from_mv(800.0), 0.5);
        let scaled = model.power(Freq::from_ghz(0.533), Voltage::from_mv(640.0), 0.5);
        let dynamic_ratio = {
            // Isolate the dynamic part by subtracting leakage at each point.
            let p = model.params();
            let leak_hi = p.leakage_w_at_nominal;
            let leak_lo = p.leakage_w_at_nominal * (0.64f64 / 0.8).powi(3);
            (scaled.as_watts() - leak_lo) / (nominal.as_watts() - leak_hi)
        };
        let expected = (0.533f64 / 0.8) * (0.64f64 / 0.8).powi(2);
        assert!(
            (dynamic_ratio - expected).abs() < 0.01,
            "ratio {dynamic_ratio} vs {expected}"
        );
        assert!(scaled < nominal);
    }

    #[test]
    fn mc_power_monotonic_in_utilization_and_voltage() {
        let model = MemCtrlPowerModel::default();
        let f = Freq::from_ghz(0.8);
        let v = Voltage::from_mv(800.0);
        assert!(model.power(f, v, 0.9) > model.power(f, v, 0.1));
        assert!(model.power(f, Voltage::from_mv(850.0), 0.5) > model.power(f, v, 0.5));
        // Idle still burns the activity floor plus leakage.
        assert!(model.power(f, v, 0.0).as_watts() > 0.05);
    }

    #[test]
    fn ddrio_power_splits_across_rails_and_scales() {
        let model = DdrIoPowerModel::default();
        let hi = model.power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), 0.6, 1.0);
        let lo = model.power(
            Freq::from_ghz(1.0666),
            Voltage::from_mv(950.0 * 0.85),
            0.6,
            1.0,
        );
        assert!(hi.digital > lo.digital);
        assert!(hi.analog > lo.analog);
        assert!(hi.total() > lo.total());
        // Digital scales with V², so it shrinks faster than analog.
        let dig_ratio = lo.digital / hi.digital;
        let an_ratio = lo.analog / hi.analog;
        assert!(dig_ratio < an_ratio);
    }

    #[test]
    fn ddrio_mrc_penalty_increases_power() {
        let model = DdrIoPowerModel::default();
        let clean = model.power(Freq::from_ghz(1.0666), Voltage::from_mv(950.0), 0.8, 1.0);
        let penalized = model.power(Freq::from_ghz(1.0666), Voltage::from_mv(950.0), 0.8, 1.55);
        assert!(penalized.total() > clean.total());
        assert!((penalized.total().as_watts() / clean.total().as_watts() - 1.55).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_clamped() {
        let model = DdrIoPowerModel::default();
        let over = model.power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), 2.0, 1.0);
        let full = model.power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), 1.0, 1.0);
        assert_eq!(over, full);
        let mc = MemCtrlPowerModel::default();
        assert_eq!(
            mc.power(Freq::from_ghz(0.8), Voltage::from_mv(800.0), -1.0),
            mc.power(Freq::from_ghz(0.8), Voltage::from_mv(800.0), 0.0)
        );
    }

    #[test]
    fn combined_uncore_memory_power_is_in_expected_range() {
        // Sanity check against the 4.5 W TDP budget: MC + DDRIO at the high
        // operating point and moderate load should be a few hundred mW.
        let mc =
            MemCtrlPowerModel::default().power(Freq::from_ghz(0.8), Voltage::from_mv(800.0), 0.4);
        let io = DdrIoPowerModel::default()
            .power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), 0.4, 1.0)
            .total();
        let total = (mc + io).as_watts();
        assert!(total > 0.2 && total < 0.8, "uncore memory power {total} W");
    }
}
