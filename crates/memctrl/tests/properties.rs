//! Randomized invariant tests for the memory-controller service and power
//! models, sampled deterministically with [`SplitMix64`] (no external
//! property-testing dependency).

use sysscale_memctrl::{DdrIoPowerModel, MemCtrlPowerModel, MemoryController, TrafficDemand};
use sysscale_types::rng::SplitMix64;
use sysscale_types::{Bandwidth, Freq, SimTime, Voltage};

const CASES: usize = 200;

fn sample_demand(rng: &mut SplitMix64) -> TrafficDemand {
    TrafficDemand {
        cpu: Bandwidth::from_gib_s(rng.gen_range(0.0, 20.0)),
        gfx: Bandwidth::from_gib_s(rng.gen_range(0.0, 15.0)),
        isochronous: Bandwidth::from_gib_s(rng.gen_range(0.0, 18.0)),
        io: Bandwidth::from_gib_s(rng.gen_range(0.0, 3.0)),
    }
}

/// Served bandwidth never exceeds demand (per class) nor the sustainable bus
/// capacity (in total), and latency never drops below the unloaded DRAM
/// latency.
#[test]
fn service_conservation() {
    let mc = MemoryController::default();
    let mut rng = SplitMix64::new(0xE0_01);
    for _ in 0..CASES {
        let demand = sample_demand(&mut rng);
        let peak = Bandwidth::from_gib_s(rng.gen_range(5.0, 30.0));
        let idle = SimTime::from_nanos(rng.gen_range(20.0, 80.0));
        let out = mc.serve(&demand, peak, idle);
        assert!(out.served.cpu.as_bytes_per_sec() <= demand.cpu.as_bytes_per_sec() + 1.0);
        assert!(out.served.gfx.as_bytes_per_sec() <= demand.gfx.as_bytes_per_sec() + 1.0);
        assert!(out.served.io.as_bytes_per_sec() <= demand.io.as_bytes_per_sec() + 1.0);
        assert!(
            out.served.isochronous.as_bytes_per_sec()
                <= demand.isochronous.as_bytes_per_sec() + 1.0
        );
        assert!(
            out.served.total().as_bytes_per_sec() <= out.sustainable.as_bytes_per_sec() * 1.000_001
        );
        assert!(out.effective_latency >= idle);
        assert!((0.0..=1.0).contains(&out.utilization));
    }
}

/// Isochronous traffic is never throttled before best-effort traffic: if a
/// QoS violation is reported, the whole sustainable bus was devoted to the
/// isochronous class.
#[test]
fn isochronous_has_priority() {
    let mc = MemoryController::default();
    let mut rng = SplitMix64::new(0xE0_02);
    for _ in 0..CASES {
        let demand = sample_demand(&mut rng);
        let peak = Bandwidth::from_gib_s(rng.gen_range(5.0, 30.0));
        let out = mc.serve(&demand, peak, SimTime::from_nanos(40.0));
        if out.qos_violated {
            assert!(
                (out.served.isochronous.as_bytes_per_sec() - out.sustainable.as_bytes_per_sec())
                    .abs()
                    < 1.0
            );
            assert!(out.served.cpu.as_bytes_per_sec() < 1.0);
        } else {
            assert!(
                (out.served.isochronous.as_bytes_per_sec() - demand.isochronous.as_bytes_per_sec())
                    .abs()
                    < 1.0
            );
        }
    }
}

/// A higher peak bandwidth never yields less served traffic or more latency
/// for the same demand.
#[test]
fn more_bandwidth_never_hurts() {
    let mc = MemoryController::default();
    let mut rng = SplitMix64::new(0xE0_03);
    for _ in 0..CASES {
        let demand = sample_demand(&mut rng);
        let lo = rng.gen_range(5.0, 20.0);
        let extra = rng.gen_range(0.0, 15.0);
        let idle = SimTime::from_nanos(40.0);
        let low = mc.serve(&demand, Bandwidth::from_gib_s(lo), idle);
        let high = mc.serve(&demand, Bandwidth::from_gib_s(lo + extra), idle);
        assert!(
            high.served.total().as_bytes_per_sec() >= low.served.total().as_bytes_per_sec() - 1.0
        );
        assert!(high.effective_latency <= low.effective_latency + SimTime::from_nanos(1e-3));
    }
}

/// Power models are monotonic in utilization and finite.
#[test]
fn power_models_monotonic() {
    let mut rng = SplitMix64::new(0xE0_04);
    for _ in 0..CASES {
        let u1 = rng.gen_range(0.0, 1.0);
        let u2 = rng.gen_range(0.0, 1.0);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let mc = MemCtrlPowerModel::default();
        let f = Freq::from_ghz(0.8);
        let v = Voltage::from_mv(800.0);
        assert!(mc.power(f, v, hi).as_watts() >= mc.power(f, v, lo).as_watts() - 1e-12);
        let io = DdrIoPowerModel::default();
        let a = io
            .power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), lo, 1.0)
            .total();
        let b = io
            .power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), hi, 1.0)
            .total();
        assert!(b.as_watts() >= a.as_watts() - 1e-12);
        assert!(b.as_watts().is_finite());
    }
}
