//! Property-based tests for the memory-controller service and power models.

use proptest::prelude::*;

use sysscale_memctrl::{
    DdrIoPowerModel, MemCtrlPowerModel, MemoryController, TrafficDemand,
};
use sysscale_types::{Bandwidth, Freq, SimTime, Voltage};

fn arb_demand() -> impl Strategy<Value = TrafficDemand> {
    (0.0f64..20.0, 0.0f64..15.0, 0.0f64..18.0, 0.0f64..3.0).prop_map(|(cpu, gfx, iso, io)| {
        TrafficDemand {
            cpu: Bandwidth::from_gib_s(cpu),
            gfx: Bandwidth::from_gib_s(gfx),
            isochronous: Bandwidth::from_gib_s(iso),
            io: Bandwidth::from_gib_s(io),
        }
    })
}

proptest! {
    /// Served bandwidth never exceeds demand (per class) nor the sustainable
    /// bus capacity (in total), and latency never drops below the unloaded
    /// DRAM latency.
    #[test]
    fn service_conservation(demand in arb_demand(), peak_gib in 5.0f64..30.0, idle_ns in 20.0f64..80.0) {
        let mc = MemoryController::default();
        let peak = Bandwidth::from_gib_s(peak_gib);
        let idle = SimTime::from_nanos(idle_ns);
        let out = mc.serve(&demand, peak, idle);
        prop_assert!(out.served.cpu.as_bytes_per_sec() <= demand.cpu.as_bytes_per_sec() + 1.0);
        prop_assert!(out.served.gfx.as_bytes_per_sec() <= demand.gfx.as_bytes_per_sec() + 1.0);
        prop_assert!(out.served.io.as_bytes_per_sec() <= demand.io.as_bytes_per_sec() + 1.0);
        prop_assert!(out.served.isochronous.as_bytes_per_sec() <= demand.isochronous.as_bytes_per_sec() + 1.0);
        prop_assert!(out.served.total().as_bytes_per_sec() <= out.sustainable.as_bytes_per_sec() * 1.000_001);
        prop_assert!(out.effective_latency >= idle);
        prop_assert!((0.0..=1.0).contains(&out.utilization));
    }

    /// Isochronous traffic is never throttled before best-effort traffic:
    /// if a QoS violation is reported, the whole sustainable bus was devoted
    /// to the isochronous class.
    #[test]
    fn isochronous_has_priority(demand in arb_demand(), peak_gib in 5.0f64..30.0) {
        let mc = MemoryController::default();
        let out = mc.serve(&demand, Bandwidth::from_gib_s(peak_gib), SimTime::from_nanos(40.0));
        if out.qos_violated {
            prop_assert!((out.served.isochronous.as_bytes_per_sec()
                - out.sustainable.as_bytes_per_sec()).abs() < 1.0);
            prop_assert!(out.served.cpu.as_bytes_per_sec() < 1.0);
        } else {
            prop_assert!((out.served.isochronous.as_bytes_per_sec()
                - demand.isochronous.as_bytes_per_sec()).abs() < 1.0);
        }
    }

    /// A higher peak bandwidth never yields less served traffic or more
    /// latency for the same demand.
    #[test]
    fn more_bandwidth_never_hurts(demand in arb_demand(), lo in 5.0f64..20.0, extra in 0.0f64..15.0) {
        let mc = MemoryController::default();
        let idle = SimTime::from_nanos(40.0);
        let low = mc.serve(&demand, Bandwidth::from_gib_s(lo), idle);
        let high = mc.serve(&demand, Bandwidth::from_gib_s(lo + extra), idle);
        prop_assert!(high.served.total().as_bytes_per_sec() >= low.served.total().as_bytes_per_sec() - 1.0);
        prop_assert!(high.effective_latency <= low.effective_latency + SimTime::from_nanos(1e-3));
    }

    /// Power models are monotonic in utilization and finite.
    #[test]
    fn power_models_monotonic(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let mc = MemCtrlPowerModel::default();
        let f = Freq::from_ghz(0.8);
        let v = Voltage::from_mv(800.0);
        prop_assert!(mc.power(f, v, hi).as_watts() >= mc.power(f, v, lo).as_watts() - 1e-12);
        let io = DdrIoPowerModel::default();
        let a = io.power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), lo, 1.0).total();
        let b = io.power(Freq::from_ghz(1.6), Voltage::from_mv(950.0), hi, 1.0).total();
        prop_assert!(b.as_watts() >= a.as_watts() - 1e-12);
        prop_assert!(b.as_watts().is_finite());
    }
}
