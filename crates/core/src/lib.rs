//! # sysscale
//!
//! A full reproduction of **SysScale** (Haj-Yahya et al., ISCA 2020):
//! multi-domain dynamic voltage and frequency scaling for energy-efficient
//! mobile processors, built on top of a Rust mobile-SoC simulator.
//!
//! The crate provides:
//!
//! * the [`predictor`] module — SysScale's static + dynamic demand predictor
//!   (Sec. 4.2) and the five-condition decision rule (Sec. 4.3);
//! * the [`calibration`] module — the offline µ+σ threshold calibration and
//!   the linear performance-impact model used by the Fig. 6 study;
//! * the [`governor`] module — the [`SysScaleGovernor`] plus MemScale- and
//!   CoScale-style baseline governors, all pluggable into the
//!   [`sysscale_soc::SocSimulator`];
//! * the [`baselines`] module — restricted platform configurations for the
//!   baselines and the Sec. 6 `-Redist` projection;
//! * the [`scenario`] module — the unified run API: a builder-based
//!   [`Scenario`], the [`SimSession`] executor, the [`SessionPool`]-backed
//!   deterministic parallel batch runner ([`ScenarioSet::run_parallel`]),
//!   the [`ScenarioSet`] matrix producing a [`RunSet`] keyed by
//!   `(workload, governor)`, and the fold-based streaming result pipeline
//!   ([`RunConsumer`], [`SweepSet::run_parallel_fold`]) that aggregates
//!   arbitrarily large sweeps in O(workers) result memory;
//! * the [`experiments`] module — one function per table/figure of the
//!   paper's evaluation, implemented on top of the scenario API.
//!
//! ## Quickstart
//!
//! Describe runs as [`Scenario`] values and execute them through a
//! [`SimSession`]; batches go through [`ScenarioSet`]:
//!
//! ```
//! use sysscale::{Scenario, ScenarioSet, SessionPool, SimSession};
//! use sysscale_soc::SocConfig;
//! use sysscale_types::SimTime;
//! use sysscale_workloads::spec_workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One run: the builder fills in platform (Skylake M-6Y75) and duration.
//! let mut pool = SessionPool::new();
//! let one = Scenario::builder(spec_workload("gamess").expect("in the suite"))
//!     .governor("sysscale")
//!     .duration(SimTime::from_millis(300.0))
//!     .build()?;
//! let record = pool.session().run(&one)?;
//! assert!(record.report.average_power().as_watts() < 4.6);
//!
//! // A batch: workloads x governors, with baseline-relative deltas,
//! // executed across the deterministic worker pool. The result is
//! // bit-identical at any worker count (2 here; pass
//! // `sysscale_types::exec::default_threads()` to use every core).
//! let suite = vec![
//!     spec_workload("gamess").unwrap(),
//!     spec_workload("lbm").unwrap(),
//! ];
//! let runs = ScenarioSet::matrix(
//!     &SocConfig::skylake_default(),
//!     &suite,
//!     &["baseline", "sysscale"],
//! )?
//! .with_baseline("baseline")
//! .run_parallel(&mut pool, 2)?;
//!
//! // A compute-bound workload gains performance from the redistributed budget.
//! assert!(runs.cell("416.gamess", "sysscale").unwrap().speedup_pct > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod calibration;
pub mod experiments;
pub mod governor;
pub mod predictor;
pub mod scenario;

pub use baselines::{
    coscale_config, memory_only_ladder, memscale_config, project_redistributed_speedup,
    RedistProjection,
};
pub use calibration::{
    calibrate, calibration_source, derive_thresholds, fit_impact_model, measure_population,
    measure_population_from, measure_sample, measure_sample_in, samples_from_runs,
    CalibrationConfig, CalibrationOutcome, CalibrationSample, CalibrationScenarioSource,
};
pub use governor::{CoScaleGovernor, MemScaleGovernor, SysScaleGovernor};
pub use predictor::{
    DemandCondition, DemandPredictor, ImpactModel, Prediction, PredictorThresholds,
    TriggeredConditions,
};
pub use scenario::{
    auto_duration, platform_fingerprint, scenario_cost, sysscale_factory, CellError, CellId,
    CollectRuns, FnGovernorFactory, GovernorFactory, GovernorRegistry, GroupAcc, GroupFold,
    ProgressTap, RunCell, RunConsumer, RunRecord, RunSet, Scenario, ScenarioBuilder, ScenarioSet,
    ScenarioSource, SessionPool, SimSession, SweepSet, SweepSharding, TraceSinkFactory,
};

// Re-export the simulator entry points so downstream users can depend on the
// `sysscale` crate alone.
pub use sysscale_soc::{
    ChannelTraceSink, FixedGovernor, FnTraceSink, Governor, PlatformArtifacts, SimReport,
    SliceLoopStats, SocConfig, SocSimulator, TraceSink, VecTraceSink,
};
pub use sysscale_types as types;
pub use sysscale_workloads as workloads;
