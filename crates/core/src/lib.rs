//! # sysscale
//!
//! A full reproduction of **SysScale** (Haj-Yahya et al., ISCA 2020):
//! multi-domain dynamic voltage and frequency scaling for energy-efficient
//! mobile processors, built on top of a Rust mobile-SoC simulator.
//!
//! The crate provides:
//!
//! * the [`predictor`] module — SysScale's static + dynamic demand predictor
//!   (Sec. 4.2) and the five-condition decision rule (Sec. 4.3);
//! * the [`calibration`] module — the offline µ+σ threshold calibration and
//!   the linear performance-impact model used by the Fig. 6 study;
//! * the [`governor`] module — the [`SysScaleGovernor`] plus MemScale- and
//!   CoScale-style baseline governors, all pluggable into the
//!   [`sysscale_soc::SocSimulator`];
//! * the [`baselines`] module — restricted platform configurations for the
//!   baselines and the Sec. 6 `-Redist` projection;
//! * the [`experiments`] module — one function per table/figure of the
//!   paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use sysscale::{SysScaleGovernor};
//! use sysscale_soc::{FixedGovernor, SocConfig, SocSimulator};
//! use sysscale_types::SimTime;
//! use sysscale_workloads::spec_workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SocConfig::skylake_default();
//! let workload = spec_workload("gamess").expect("in the suite");
//! let mut sim = SocSimulator::new(config)?;
//!
//! let baseline = sim.run(&workload, &mut FixedGovernor::baseline(), SimTime::from_millis(300.0))?;
//! let sysscale = sim.run(
//!     &workload,
//!     &mut SysScaleGovernor::with_default_thresholds(),
//!     SimTime::from_millis(300.0),
//! )?;
//!
//! // A compute-bound workload gains performance from the redistributed budget.
//! assert!(sysscale.speedup_pct_over(&baseline) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod calibration;
pub mod experiments;
pub mod governor;
pub mod predictor;

pub use baselines::{
    coscale_config, memory_only_ladder, memscale_config, project_redistributed_speedup,
    RedistProjection,
};
pub use calibration::{
    calibrate, derive_thresholds, fit_impact_model, measure_sample, CalibrationConfig,
    CalibrationOutcome, CalibrationSample,
};
pub use governor::{CoScaleGovernor, MemScaleGovernor, SysScaleGovernor};
pub use predictor::{
    DemandCondition, DemandPredictor, ImpactModel, Prediction, PredictorThresholds,
};

// Re-export the simulator entry points so downstream users can depend on the
// `sysscale` crate alone.
pub use sysscale_soc::{FixedGovernor, Governor, SimReport, SocConfig, SocSimulator};
pub use sysscale_types as types;
pub use sysscale_workloads as workloads;
