//! Baseline configurations and the `-Redist` projection methodology.
//!
//! MemScale and CoScale differ from SysScale in two platform-level ways
//! (Sec. 8): they scale only the memory subsystem's frequency (the shared
//! `V_SA`/`V_IO` rails and the IO interconnect stay at nominal because those
//! are shared with components they do not manage), and they do not reload
//! optimized MRC register values after a frequency change. The helpers here
//! build the matching [`SocConfig`]s.
//!
//! The paper compares against `MemScale-Redist` / `CoScale-Redist`: variants
//! that are *assumed* to be able to hand their measured power savings to the
//! compute domain. Their performance is *projected* (Sec. 6) from measured
//! power savings through the power/performance model and the workload's
//! frequency scalability; [`project_redistributed_speedup`] reproduces that
//! projection.

use sysscale_power::ComputeRequest;
use sysscale_soc::{SimReport, SocConfig};
use sysscale_types::{Freq, OperatingPointTable, Power, SimResult, UncoreOperatingPoint};

/// The uncore ladder available to a memory-only DVFS policy: the DRAM/MC
/// frequency drops, but the IO interconnect clock and the shared rail
/// voltages stay at nominal (they serve components outside the policy's
/// scope).
#[must_use]
pub fn memory_only_ladder() -> OperatingPointTable {
    OperatingPointTable::new(vec![
        UncoreOperatingPoint::new(Freq::from_ghz(1.0666), Freq::from_ghz(0.8), 1.0, 1.0),
        UncoreOperatingPoint::new(Freq::from_ghz(1.6), Freq::from_ghz(0.8), 1.0, 1.0),
    ])
    .expect("static ladder is well formed")
}

/// Platform configuration for the MemScale-like policy: memory-only ladder,
/// no MRC reload on transitions.
#[must_use]
pub fn memscale_config(base: &SocConfig) -> SocConfig {
    let mut config = base.clone().with_uncore_ladder(memory_only_ladder());
    config.reload_mrc_on_transition = false;
    config
}

/// Platform configuration for the CoScale-like policy (same platform
/// restrictions as MemScale; the additional CPU coordination lives in the
/// governor).
#[must_use]
pub fn coscale_config(base: &SocConfig) -> SocConfig {
    memscale_config(base)
}

/// The projection of a `-Redist` variant's performance improvement from its
/// measured average power saving (the three-step methodology of Sec. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedistProjection {
    /// Average power saved by the technique relative to the baseline.
    pub power_saving: Power,
    /// CPU (or graphics) frequency granted by the PBM under the baseline
    /// compute budget.
    pub baseline_freq: Freq,
    /// Frequency granted when the saved power is added to the compute budget.
    pub boosted_freq: Freq,
    /// Measured performance scalability of the workload with frequency
    /// (Sec. 6 footnote 8).
    pub scalability: f64,
    /// Projected performance improvement, percent.
    pub projected_speedup_pct: f64,
}

/// Projects the performance improvement a power-saving technique would get if
/// its measured savings were redistributed to the compute domain.
///
/// * `config` — the platform (its budget policy and P-state ladders define
///   the power→frequency mapping).
/// * `baseline` / `power_saver` — simulation reports of the same workload
///   under the baseline and under the power-saving-only technique.
/// * `scalability` — the workload's performance scalability with the boosted
///   unit's frequency (1.0 = perfectly scalable).
/// * `gfx_priority` — `true` to boost the graphics engine instead of the CPU
///   cores (graphics workloads, Sec. 7.2).
///
/// # Errors
///
/// Returns an error if the baseline compute budget cannot be derived from the
/// configuration.
pub fn project_redistributed_speedup(
    config: &SocConfig,
    baseline: &SimReport,
    power_saver: &SimReport,
    scalability: f64,
    gfx_priority: bool,
) -> SimResult<RedistProjection> {
    config.budget_policy.validate(config.tdp)?;
    let saving = (baseline.average_power() - power_saver.average_power()).max(Power::ZERO);

    let pbm = sysscale_power::PowerBudgetManager::new(
        sysscale_power::ComputeDomainPowerModel::default(),
        config.cpu_pstates().clone(),
        config.gfx_pstates().clone(),
    );
    let budgets = config.budget_policy.worst_case_budgets(config.tdp);
    let request = ComputeRequest {
        cpu_requested: config.cpu_pstates().highest().freq,
        gfx_requested: if gfx_priority {
            config.gfx_pstates().highest().freq
        } else {
            config.gfx_pstates().lowest().freq
        },
        cpu_activity: 1.0,
        gfx_activity: if gfx_priority { 1.0 } else { 0.0 },
        gfx_priority,
        c0_fraction: 1.0,
        leakage_fraction: 1.0,
    };
    let base_grant = pbm.grant(budgets.compute, &request);
    let boosted_grant = pbm.grant(budgets.compute + saving, &request);
    let (baseline_freq, boosted_freq) = if gfx_priority {
        (base_grant.gfx.freq, boosted_grant.gfx.freq)
    } else {
        (base_grant.cpu.freq, boosted_grant.cpu.freq)
    };
    let freq_gain = if baseline_freq.is_zero() {
        0.0
    } else {
        boosted_freq / baseline_freq - 1.0
    };
    Ok(RedistProjection {
        power_saving: saving,
        baseline_freq,
        boosted_freq,
        scalability: scalability.clamp(0.0, 1.0),
        projected_speedup_pct: freq_gain * scalability.clamp(0.0, 1.0) * 100.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_soc::{FixedGovernor, SocSimulator};
    use sysscale_types::SimTime;
    use sysscale_workloads::spec_workload;

    #[test]
    fn memory_only_ladder_keeps_io_clock_and_voltages() {
        let ladder = memory_only_ladder();
        let low = ladder.lowest();
        assert!((low.io_interconnect_freq.as_ghz() - 0.8).abs() < 1e-9);
        assert_eq!(low.vsa_scale, 1.0);
        assert_eq!(low.vio_scale, 1.0);
        assert!(low.dram_freq < ladder.highest().dram_freq);
    }

    #[test]
    fn memscale_config_disables_mrc_reload() {
        let base = SocConfig::skylake_default();
        let cfg = memscale_config(&base);
        assert!(!cfg.reload_mrc_on_transition);
        assert!(cfg.validate().is_ok());
        assert_eq!(coscale_config(&base).uncore_ladder(), cfg.uncore_ladder());
        // SysScale's own config keeps both capabilities.
        assert!(base.reload_mrc_on_transition);
    }

    #[test]
    fn memscale_low_point_saves_less_power_than_full_md_dvfs() {
        // The structural reason SysScale beats MemScale: without V_SA/V_IO
        // scaling, IO-interconnect scaling, and MRC reload, far less power is
        // freed (Sec. 7.1 reason 1 and 2).
        let workload = spec_workload("gamess").unwrap();
        let duration = SimTime::from_millis(150.0);

        let mut full = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        let base = full
            .run(&workload, &mut FixedGovernor::baseline(), duration)
            .unwrap();
        let full_low = full
            .run(&workload, &mut FixedGovernor::md_dvfs(false), duration)
            .unwrap();

        let mut mem_only =
            SocSimulator::new(memscale_config(&SocConfig::skylake_default())).unwrap();
        let mem_low = mem_only
            .run(&workload, &mut FixedGovernor::md_dvfs(false), duration)
            .unwrap();

        let full_saving = base.average_power() - full_low.average_power();
        let mem_saving = base.average_power() - mem_low.average_power();
        assert!(full_saving > Power::ZERO);
        assert!(mem_saving > Power::ZERO);
        assert!(
            full_saving.as_watts() > 1.8 * mem_saving.as_watts(),
            "full {full_saving}, memscale {mem_saving}"
        );
    }

    #[test]
    fn projection_scales_with_saving_and_scalability() {
        let config = SocConfig::skylake_default();
        let workload = spec_workload("gamess").unwrap();
        let duration = SimTime::from_millis(150.0);
        let mut sim = SocSimulator::new(config.clone()).unwrap();
        let base = sim
            .run(&workload, &mut FixedGovernor::baseline(), duration)
            .unwrap();
        let low = sim
            .run(&workload, &mut FixedGovernor::md_dvfs(false), duration)
            .unwrap();
        let strong = project_redistributed_speedup(&config, &base, &low, 1.0, false).unwrap();
        let weak = project_redistributed_speedup(&config, &base, &low, 0.2, false).unwrap();
        assert!(strong.power_saving > Power::ZERO);
        assert!(strong.boosted_freq >= strong.baseline_freq);
        assert!(strong.projected_speedup_pct > weak.projected_speedup_pct);
        assert!(weak.projected_speedup_pct >= 0.0);
        // No saving -> no projected gain.
        let none = project_redistributed_speedup(&config, &base, &base, 1.0, false).unwrap();
        assert_eq!(none.projected_speedup_pct, 0.0);
    }
}
