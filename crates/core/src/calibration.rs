//! Offline calibration of the demand predictor (Sec. 4.2).
//!
//! The calibration runs a representative workload population at the high and
//! low operating points, measures the actual performance degradation and the
//! counter values at the high point, and derives:
//!
//! * **thresholds** — for the runs whose degradation stays below the bound,
//!   the per-counter `µ + σ` rule of Sec. 4.2;
//! * **an impact model** — an ordinary-least-squares fit of degradation as a
//!   linear function of the four counters, used by the Fig. 6 study to
//!   predict the performance impact of the lower DRAM frequency.

use sysscale_soc::SocConfig;
use sysscale_types::{stats, CounterKind, CounterSet, SimResult, SimTime};
use sysscale_workloads::{Workload, WorkloadClass, WorkloadSource};

use crate::predictor::{DemandPredictor, ImpactModel, PredictorThresholds};
use crate::scenario::{
    platform_fingerprint, CellId, GovernorFactory, GovernorRegistry, GroupFold, RunRecord, RunSet,
    Scenario, ScenarioSource, SessionPool, SimSession, SweepSet,
};
use std::sync::Arc;
use sysscale_soc::SimReport;
use sysscale_types::exec;

/// Configuration of a calibration pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Performance-degradation bound (fraction) below which a run counts as
    /// "safe at the low operating point" (1 % in the paper).
    pub degradation_bound: f64,
    /// How long each workload is simulated per operating point.
    pub sim_duration: SimTime,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            degradation_bound: 0.01,
            sim_duration: SimTime::from_millis(120.0),
        }
    }
}

/// One calibrated data point: a workload's counters at the high operating
/// point and its measured degradation at the low one.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSample {
    /// Workload name.
    pub workload: String,
    /// Workload class (used to split the Fig. 6 panels).
    pub class: WorkloadClass,
    /// Per-sample (per-slice) average counter values at the high operating
    /// point.
    pub counters: CounterSet,
    /// Measured performance degradation when running at the low operating
    /// point (fraction; negative values are clamped to zero).
    pub actual_degradation: f64,
}

/// The outcome of a calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// Thresholds derived with the µ+σ rule.
    pub thresholds: PredictorThresholds,
    /// Linear impact model fitted over the full sample set.
    pub impact_model: ImpactModel,
    /// Every measured sample (inputs to the Fig. 6 analysis).
    pub samples: Vec<CalibrationSample>,
}

impl CalibrationOutcome {
    /// A predictor built from this calibration.
    #[must_use]
    pub fn predictor(&self) -> DemandPredictor {
        DemandPredictor::new(self.thresholds, self.impact_model)
    }
}

/// Runs one workload at both ends of the ladder and produces its calibration
/// sample.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_sample(
    config: &SocConfig,
    workload: &Workload,
    cal: &CalibrationConfig,
) -> SimResult<CalibrationSample> {
    measure_sample_in(&mut SimSession::new(), config, workload, cal)
}

/// Like [`measure_sample`], but reuses a caller-provided session so large
/// calibration populations share one simulator per platform configuration.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_sample_in(
    session: &mut SimSession,
    config: &SocConfig,
    workload: &Workload,
    cal: &CalibrationConfig,
) -> SimResult<CalibrationSample> {
    let run = |session: &mut SimSession, governor: &str| -> SimResult<_> {
        let scenario = Scenario::builder(workload.clone())
            .config(config.clone())
            .governor(governor)
            .duration(cal.sim_duration)
            .build()?;
        Ok(session.run(&scenario)?.report)
    };
    let high = run(session, "baseline")?;
    let low = run(session, "md-dvfs")?;
    Ok(sample_from_reports(workload, config, cal, &high, &low))
}

/// Builds one calibration sample from the measured high-point and low-point
/// reports of a workload.
fn sample_from_reports(
    workload: &Workload,
    config: &SocConfig,
    cal: &CalibrationConfig,
    high: &SimReport,
    low: &SimReport,
) -> CalibrationSample {
    sample_from_parts(&workload.name, workload.class, config, cal, high, low)
}

/// The single definition of the pair → sample reduction, shared by the
/// materialized ([`samples_from_runs`]) and fold-based
/// ([`measure_population_from`]) aggregation paths — which is what makes
/// their samples bit-identical.
fn sample_from_parts(
    name: &str,
    class: WorkloadClass,
    config: &SocConfig,
    cal: &CalibrationConfig,
    high: &SimReport,
    low: &SimReport,
) -> CalibrationSample {
    let high_perf = high.metrics.throughput();
    let degradation = if high_perf > 0.0 {
        (1.0 - low.metrics.throughput() / high_perf).max(0.0)
    } else {
        0.0
    };
    // Convert accumulated counters into per-slice averages.
    let slices = (cal.sim_duration.as_secs() / config.slice.as_secs())
        .round()
        .max(1.0);
    let mut averages = CounterSet::new();
    for (kind, total) in high.counters.iter() {
        averages.set(kind, total / slices);
    }
    CalibrationSample {
        workload: name.to_string(),
        class,
        counters: averages,
        actual_degradation: degradation,
    }
}

/// The high/low governor columns every calibration run pair uses.
const CALIBRATION_GOVERNORS: [&str; 2] = ["baseline", "md-dvfs"];

/// A [`ScenarioSource`] streaming the calibration measurement cells of a
/// workload population: for workload `i` of the population, cells `2i` and
/// `2i + 1` run it at the high (`baseline`) and low (`md-dvfs`) operating
/// points on `config`.
///
/// The population itself is a [`WorkloadSource`], so a generator-backed
/// population is produced on the fly per shard — each pool worker holds one
/// live workload while streaming, no matter how many cells the study has.
/// Built with [`calibration_source`]; consumed by [`measure_population_from`]
/// or pushed into a larger [`SweepSet`] (the Fig. 6 study batches nine of
/// these into one sweep).
pub struct CalibrationScenarioSource<'a> {
    config: &'a SocConfig,
    population: &'a dyn WorkloadSource,
    duration: SimTime,
    high: Arc<dyn GovernorFactory>,
    low: Arc<dyn GovernorFactory>,
}

impl std::fmt::Debug for CalibrationScenarioSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalibrationScenarioSource")
            .field("population", &self.population.len())
            .field("duration", &self.duration)
            .finish_non_exhaustive()
    }
}

impl ScenarioSource for CalibrationScenarioSource<'_> {
    fn len(&self) -> usize {
        2 * self.population.len()
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Scenario> + Send + '_> {
        let mut workloads = self.population.stream();
        let mut pending: Option<Scenario> = None;
        Box::new(std::iter::from_fn(move || {
            if let Some(low_cell) = pending.take() {
                return Some(low_cell);
            }
            // One shared workload handle per high/low pair; both cells are
            // adjacent in the stream, so only the low cell is ever buffered.
            let shared = Arc::new(workloads.next()?);
            let build = |factory: &Arc<dyn GovernorFactory>| {
                Scenario::builder(Arc::clone(&shared))
                    .config(self.config.clone())
                    .governor_factory(Arc::clone(factory))
                    .duration(self.duration)
                    .build()
                    .expect("validated by calibration_source")
            };
            pending = Some(build(&self.low));
            Some(build(&self.high))
        }))
    }

    fn shard_keys(&self) -> Vec<u64> {
        // Neither calibration governor restricts the platform, so every cell
        // shares `config` — one fingerprint, computed once (no streaming
        // pass over the population).
        vec![platform_fingerprint(self.config); ScenarioSource::len(self)]
    }
}

/// Builds the streaming calibration source for a population: the exact cell
/// sequence [`measure_population`] runs, as a [`ScenarioSource`].
///
/// # Errors
///
/// Returns [`sysscale_types::SimError::InvalidConfig`] if `config` is
/// invalid, and [`sysscale_types::SimError::EmptySimulation`] if the
/// configured duration is not positive — the checks that otherwise surface
/// per scenario surface once here, which is what makes the lazy iterator
/// infallible.
pub fn calibration_source<'a>(
    config: &'a SocConfig,
    population: &'a dyn WorkloadSource,
    cal: &CalibrationConfig,
) -> SimResult<CalibrationScenarioSource<'a>> {
    config.validate()?;
    if cal.sim_duration <= SimTime::ZERO {
        return Err(sysscale_types::SimError::EmptySimulation);
    }
    let registry = GovernorRegistry::builtin();
    Ok(CalibrationScenarioSource {
        config,
        population,
        duration: cal.sim_duration,
        high: registry.resolve(CALIBRATION_GOVERNORS[0])?,
        low: registry.resolve(CALIBRATION_GOVERNORS[1])?,
    })
}

/// Converts one member [`RunSet`] produced from a [`calibration_source`]
/// back into per-workload samples, re-streaming the population for the
/// workload metadata (name, class) so nothing was ever materialized.
///
/// # Panics
///
/// Panics if `runs` does not hold exactly the `2 × population` records of
/// the source (a contract violation, not a runtime condition).
#[must_use]
pub fn samples_from_runs(
    config: &SocConfig,
    population: &dyn WorkloadSource,
    cal: &CalibrationConfig,
    runs: &RunSet,
) -> Vec<CalibrationSample> {
    assert_eq!(
        runs.len(),
        2 * population.len(),
        "run set does not match the calibration population"
    );
    // Workload names may repeat in synthetic populations, so samples are
    // extracted positionally (records 2i / 2i+1), not by name.
    population
        .stream()
        .enumerate()
        .map(|(i, workload)| {
            let high = &runs.records()[2 * i].report;
            let low = &runs.records()[2 * i + 1].report;
            sample_from_reports(&workload, config, cal, high, low)
        })
        .collect()
}

/// The fold-based pair → sample aggregation shared by
/// [`measure_population_from`] and the Fig. 6 study: one [`GroupFold`] over
/// the high/low pairs of one or more [`calibration_source`] members.
///
/// `configs` holds one platform configuration per member, `member_pairs`
/// the member's workload (pair) count, and `classes` one
/// [`WorkloadClass`] per pair, flat across members in member order. Each
/// pair reduces to its [`CalibrationSample`] the moment both halves have
/// run — via the same reduction as [`samples_from_runs`], so the assembled
/// samples are bit-identical to the materialized path — and the half
/// reports are dropped on the spot instead of living in a `RunSet` until
/// the whole sweep drains.
#[allow(clippy::type_complexity)] // opaque closure pair; cannot be aliased
pub(crate) fn sample_fold_consumer(
    configs: Vec<SocConfig>,
    cal: CalibrationConfig,
    member_pairs: Vec<usize>,
    classes: Vec<WorkloadClass>,
) -> GroupFold<
    impl Fn(CellId) -> (usize, usize) + Sync,
    impl Fn(usize, Vec<RunRecord>) -> CalibrationSample + Sync,
> {
    assert_eq!(configs.len(), member_pairs.len(), "one config per member");
    let offsets: Vec<usize> = member_pairs
        .iter()
        .scan(0usize, |acc, len| {
            let start = *acc;
            *acc += len;
            Some(start)
        })
        .collect();
    let total: usize = member_pairs.iter().sum();
    assert_eq!(classes.len(), total, "one class per pair");
    let map_offsets = offsets.clone();
    GroupFold::new(
        total,
        2,
        // Cells 2i / 2i + 1 of a member are workload i's high/low pair.
        move |cell: CellId| (map_offsets[cell.member] + cell.local / 2, cell.local % 2),
        move |group, records: Vec<RunRecord>| {
            let member = offsets.partition_point(|&start| start <= group) - 1;
            sample_from_parts(
                &records[0].workload,
                classes[group],
                &configs[member],
                &cal,
                &records[0].report,
                &records[1].report,
            )
        },
    )
}

/// Measures every workload of a population at both ends of the ladder as
/// one parallel batch on the caller's [`SessionPool`] and returns one
/// [`CalibrationSample`] per workload, in population order.
///
/// This is the batch form of [`measure_sample_in`]: both spellings produce
/// identical samples (the parallel runner is deterministic), but the batch
/// shards the `2 × population` runs across `threads` workers.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_population(
    pool: &mut SessionPool,
    config: &SocConfig,
    population: &[Workload],
    cal: &CalibrationConfig,
    threads: usize,
) -> SimResult<Vec<CalibrationSample>> {
    measure_population_from(pool, config, &population, cal, threads)
}

/// Like [`measure_population`], but over any [`WorkloadSource`] — including
/// generator-backed streams, which are produced on the fly per shard so a
/// million-cell synthetic population runs in O(workers) workload memory.
///
/// Since the fold refactor this path never materializes a `RunSet` either:
/// the sweep folds each workload's high/low pair into its
/// [`CalibrationSample`] the moment both halves have run
/// ([`SweepSet::run_parallel_fold`]), so *result* memory is the sample
/// vector plus O(in-flight pairs) instead of `2 × population` full
/// records. The samples are bit-identical to the materialized reference —
/// [`calibration_source`] + [`SweepSet::run_parallel`] +
/// [`samples_from_runs`] — at any worker count (the fold differential test
/// pins this).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_population_from(
    pool: &mut SessionPool,
    config: &SocConfig,
    population: &dyn WorkloadSource,
    cal: &CalibrationConfig,
    threads: usize,
) -> SimResult<Vec<CalibrationSample>> {
    let source = calibration_source(config, population, cal)?;
    // One metadata pass over the population recipe (workloads are generated
    // and dropped one at a time): the per-pair classes the records alone
    // cannot supply.
    let classes: Vec<WorkloadClass> = population.stream().map(|w| w.class).collect();
    let consumer =
        sample_fold_consumer(vec![config.clone()], *cal, vec![population.len()], classes);
    let mut sweep = SweepSet::new();
    sweep.push_source(&source, None);
    let acc = sweep.run_parallel_fold(pool, threads, &consumer)?;
    Ok(consumer.into_outputs(acc))
}

/// Runs the full calibration over a workload population, sharding the
/// measurement runs across [`exec::default_threads`] workers.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn calibrate(
    config: &SocConfig,
    population: &[Workload],
    cal: &CalibrationConfig,
) -> SimResult<CalibrationOutcome> {
    let samples = measure_population(
        &mut SessionPool::new(),
        config,
        population,
        cal,
        exec::default_threads(),
    )?;
    let thresholds = derive_thresholds(&samples, cal.degradation_bound, config);
    let impact_model = fit_impact_model(&samples);
    Ok(CalibrationOutcome {
        thresholds,
        impact_model,
        samples,
    })
}

/// Derives the µ+σ thresholds from the samples whose degradation stays below
/// the bound (Sec. 4.2). Falls back to the hand-tuned defaults for a counter
/// that never appears in the safe set.
#[must_use]
pub fn derive_thresholds(
    samples: &[CalibrationSample],
    bound: f64,
    config: &SocConfig,
) -> PredictorThresholds {
    let defaults = PredictorThresholds::skylake_default();
    let safe: Vec<&CalibrationSample> = samples
        .iter()
        .filter(|s| s.actual_degradation <= bound)
        .collect();
    if safe.is_empty() {
        return defaults;
    }
    let collect =
        |kind: CounterKind| -> Vec<f64> { safe.iter().map(|s| s.counters.value(kind)).collect() };
    let threshold = |kind: CounterKind, fallback: f64| -> f64 {
        let values = collect(kind);
        let t = stats::mu_plus_sigma_threshold(&values);
        if t > 0.0 {
            t
        } else {
            fallback
        }
    };
    // The static threshold stays a configuration constant: it is a property
    // of the platform's peripherals, not of the dynamic counters.
    let _ = config;
    PredictorThresholds {
        static_bw_fraction: defaults.static_bw_fraction,
        gfx_llc_misses: threshold(CounterKind::GfxLlcMisses, defaults.gfx_llc_misses),
        llc_occupancy: threshold(CounterKind::LlcOccupancyTracer, defaults.llc_occupancy),
        llc_stalls: threshold(CounterKind::LlcStalls, defaults.llc_stalls),
        io_rpq: threshold(CounterKind::IoRpq, defaults.io_rpq),
    }
}

/// Ordinary-least-squares fit of `degradation ~ intercept + counters` over
/// the sample set, solved with Gaussian elimination on the normal equations.
#[must_use]
pub fn fit_impact_model(samples: &[CalibrationSample]) -> ImpactModel {
    if samples.len() < 6 {
        return ImpactModel::default();
    }
    const FEATURES: usize = 5; // intercept + 4 counters
    let row = |s: &CalibrationSample| -> [f64; FEATURES] {
        [
            1.0,
            s.counters.value(CounterKind::GfxLlcMisses),
            s.counters.value(CounterKind::LlcOccupancyTracer),
            s.counters.value(CounterKind::LlcStalls),
            s.counters.value(CounterKind::IoRpq),
        ]
    };
    // Normal equations: (XᵀX) β = Xᵀy.
    let mut xtx = [[0.0f64; FEATURES]; FEATURES];
    let mut xty = [0.0f64; FEATURES];
    for s in samples {
        let x = row(s);
        for i in 0..FEATURES {
            for j in 0..FEATURES {
                xtx[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * s.actual_degradation;
        }
    }
    // Tikhonov damping keeps the system well conditioned when a counter is
    // (nearly) constant across the population.
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-9 * (row[i].abs() + 1.0);
    }
    let Some(beta) = solve_linear_system(xtx, xty) else {
        return ImpactModel::default();
    };
    ImpactModel {
        intercept: beta[0],
        gfx_llc_misses: beta[1],
        llc_occupancy: beta[2],
        llc_stalls: beta[3],
        io_rpq: beta[4],
    }
}

/// Solves a small dense linear system with partial-pivot Gaussian
/// elimination. Returns `None` for a singular system.
fn solve_linear_system<const N: usize>(mut a: [[f64; N]; N], mut b: [f64; N]) -> Option<[f64; N]> {
    for col in 0..N {
        // Pivot.
        let pivot_row = (col..N).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite values")
        })?;
        if a[pivot_row][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate.
        let pivot = a[col];
        for r in (col + 1)..N {
            let factor = a[r][col] / pivot[col];
            for (entry, p) in a[r][col..].iter_mut().zip(&pivot[col..]) {
                *entry -= factor * p;
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; N];
    for col in (0..N).rev() {
        let mut sum = b[col];
        for c in (col + 1)..N {
            sum -= a[col][c] * x[c];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_workloads::{spec_workload, WorkloadGenerator};

    fn quick_cal() -> CalibrationConfig {
        CalibrationConfig {
            degradation_bound: 0.01,
            sim_duration: SimTime::from_millis(60.0),
        }
    }

    #[test]
    fn linear_solver_handles_known_system() {
        let a = [[2.0, 1.0], [1.0, 3.0]];
        let b = [5.0, 10.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!(solve_linear_system([[0.0, 0.0], [0.0, 0.0]], [1.0, 1.0]).is_none());
    }

    #[test]
    fn measured_samples_separate_memory_bound_from_core_bound() {
        let config = SocConfig::skylake_default();
        let cal = quick_cal();
        let lbm = measure_sample(&config, &spec_workload("lbm").unwrap(), &cal).unwrap();
        let gamess = measure_sample(&config, &spec_workload("gamess").unwrap(), &cal).unwrap();
        assert!(
            lbm.actual_degradation > 0.05,
            "lbm {}",
            lbm.actual_degradation
        );
        assert!(
            gamess.actual_degradation < 0.01,
            "gamess {}",
            gamess.actual_degradation
        );
        assert!(
            lbm.counters.value(CounterKind::LlcStalls)
                > gamess.counters.value(CounterKind::LlcStalls)
        );
    }

    #[test]
    fn calibration_produces_discriminative_thresholds_and_model() {
        let config = SocConfig::skylake_default();
        let cal = quick_cal();
        let mut population = WorkloadGenerator::with_seed(11).population(24);
        population.push(spec_workload("lbm").unwrap());
        population.push(spec_workload("gamess").unwrap());
        let outcome = calibrate(&config, &population, &cal).unwrap();
        assert_eq!(outcome.samples.len(), population.len());
        // Thresholds are positive and finite.
        let t = outcome.thresholds;
        for v in [t.gfx_llc_misses, t.llc_occupancy, t.llc_stalls, t.io_rpq] {
            assert!(v.is_finite() && v > 0.0);
        }
        // The fitted impact model ranks a memory-bound sample above a
        // core-bound one.
        let lbm = outcome
            .samples
            .iter()
            .find(|s| s.workload == "470.lbm")
            .unwrap();
        let gamess = outcome
            .samples
            .iter()
            .find(|s| s.workload == "416.gamess")
            .unwrap();
        let model = outcome.impact_model;
        assert!(model.predict(&lbm.counters) > model.predict(&gamess.counters));
        // The derived predictor keeps lbm at the high point and lets gamess
        // drop.
        let predictor = outcome.predictor();
        let peak = sysscale_types::Bandwidth::from_gib_s(23.8);
        let static_demand = sysscale_types::Bandwidth::from_gib_s(4.3);
        assert!(
            predictor
                .predict(&lbm.counters, static_demand, peak)
                .needs_high_performance
        );
        assert!(
            !predictor
                .predict(&gamess.counters, static_demand, peak)
                .needs_high_performance
        );
    }

    #[test]
    fn thresholds_fall_back_to_defaults_without_safe_samples() {
        let config = SocConfig::skylake_default();
        let t = derive_thresholds(&[], 0.01, &config);
        assert_eq!(t, PredictorThresholds::skylake_default());
        assert_eq!(fit_impact_model(&[]), ImpactModel::default());
    }
}
