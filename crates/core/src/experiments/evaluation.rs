//! The main evaluation: Fig. 7 (SPEC CPU2006), Fig. 8 (3DMark), and Fig. 9
//! (battery-life workloads), comparing SysScale against the projected
//! MemScale-Redist and CoScale-Redist baselines.
//!
//! Every figure is one [`ScenarioSet`] execution: the full
//! `workloads × {baseline, sysscale, memscale, coscale}` matrix runs through
//! a single [`ScenarioSet::run`] call and the rows are read off the
//! resulting [`RunSet`].

use sysscale_compute::CpuModel;
use sysscale_soc::SocConfig;
use sysscale_types::{exec, stats, Freq, SimResult, SimTime};
use sysscale_workloads::{battery_life_suite, graphics_suite, spec_cpu2006_suite, Workload};

use crate::baselines::project_redistributed_speedup;
use crate::predictor::DemandPredictor;
use crate::scenario::{
    sysscale_factory, CellId, GovernorRegistry, GroupFold, RunRecord, RunSet, ScenarioSet,
    SessionPool, SweepSet,
};

/// Per-workload comparison row (Figs. 7 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Workload name.
    pub workload: String,
    /// Projected MemScale-Redist improvement, percent.
    pub memscale_redist_pct: f64,
    /// Projected CoScale-Redist improvement, percent.
    pub coscale_redist_pct: f64,
    /// Measured SysScale improvement, percent.
    pub sysscale_pct: f64,
}

/// A full evaluation figure: per-workload rows plus suite averages.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupFigure {
    /// Per-workload rows.
    pub rows: Vec<SpeedupRow>,
    /// Average MemScale-Redist improvement, percent.
    pub memscale_avg_pct: f64,
    /// Average CoScale-Redist improvement, percent.
    pub coscale_avg_pct: f64,
    /// Average SysScale improvement, percent.
    pub sysscale_avg_pct: f64,
    /// Maximum SysScale improvement, percent.
    pub sysscale_max_pct: f64,
}

impl SpeedupFigure {
    fn from_rows(rows: Vec<SpeedupRow>) -> Self {
        let mem: Vec<f64> = rows.iter().map(|r| r.memscale_redist_pct).collect();
        let co: Vec<f64> = rows.iter().map(|r| r.coscale_redist_pct).collect();
        let sys: Vec<f64> = rows.iter().map(|r| r.sysscale_pct).collect();
        Self {
            memscale_avg_pct: stats::mean(&mem),
            coscale_avg_pct: stats::mean(&co),
            sysscale_avg_pct: stats::mean(&sys),
            sysscale_max_pct: sys.iter().copied().fold(0.0, f64::max),
            rows,
        }
    }
}

/// Measures the frequency scalability of a CPU workload (Sec. 6 footnote 8)
/// from its phase descriptors at typical loaded-memory conditions.
#[must_use]
pub fn cpu_scalability(config: &SocConfig, workload: &Workload) -> f64 {
    let cpu = CpuModel::new(config.cpu).expect("validated config");
    let total = workload.iteration_length().as_secs();
    if total == 0.0 {
        return 0.0;
    }
    workload
        .phases
        .iter()
        .map(|p| {
            cpu.frequency_scalability(&p.cpu, Freq::from_ghz(1.8), SimTime::from_nanos(75.0))
                * p.duration.as_secs()
        })
        .sum::<f64>()
        / total
}

/// The evaluation's governor columns: the measured baseline and SysScale
/// plus the restricted-platform MemScale/CoScale power savers whose
/// `-Redist` performance is projected afterwards.
pub const EVALUATION_GOVERNORS: [&str; 4] = ["baseline", "sysscale", "memscale", "coscale"];

/// Runs the full `workloads × {baseline, SysScale, MemScale, CoScale}`
/// matrix through one parallel [`ScenarioSet::run_parallel`] batch on a
/// fresh [`SessionPool`], with `predictor` wired into the SysScale column
/// and the baseline designated for relative deltas.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_matrix(
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<RunSet> {
    evaluation_matrix_in(&mut SessionPool::new(), config, predictor, workloads)
}

/// Like [`evaluation_matrix`], but reuses a caller-provided pool so
/// consecutive matrices on the same platforms share their cached
/// simulators. The worker count comes from
/// [`exec::default_threads`] (`SYSSCALE_THREADS` overrides it; `1` is the
/// sequential path and produces a bit-identical [`RunSet`]).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_matrix_in(
    pool: &mut SessionPool,
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<RunSet> {
    let mut runs = evaluation_sweep_in(
        pool,
        exec::default_threads(),
        config,
        predictor,
        &[workloads],
    )?;
    Ok(runs.pop().expect("single-suite sweep"))
}

/// Runs several suites' evaluation matrices as **one** sharded [`SweepSet`]
/// batch and returns one [`RunSet`] per suite, in suite order.
///
/// The evaluation's governor columns span two platforms (the full platform
/// for baseline/SysScale, the restricted one for MemScale/CoScale), so the
/// sweep's platform sharding keeps each platform's simulator on one worker
/// across every suite. Each returned `RunSet` is byte-identical to
/// [`evaluation_matrix`] run on that suite alone, at any thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_sweep_in(
    pool: &mut SessionPool,
    threads: usize,
    config: &SocConfig,
    predictor: &DemandPredictor,
    suites: &[&[Workload]],
) -> SimResult<Vec<RunSet>> {
    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale_factory(*predictor));
    let mut sweep = SweepSet::new();
    for suite in suites {
        sweep.push_set(
            ScenarioSet::matrix_with(&registry, config, suite, &EVALUATION_GOVERNORS)?
                .with_baseline("baseline"),
        );
    }
    sweep.run_parallel(pool, threads)
}

/// The record-level speedup-row reduction — the single definition shared by
/// the materialized ([`fig7`]/[`fig8`]) and fold-based
/// ([`evaluation_figures_fold_in`]) aggregation paths, which is what keeps
/// their rows bit-identical.
fn speedup_row_from_records(
    config: &SocConfig,
    baseline: &RunRecord,
    sys: &RunRecord,
    mem: &RunRecord,
    co: &RunRecord,
    gfx_priority: bool,
    scalability: f64,
) -> SimResult<SpeedupRow> {
    // MemScale / CoScale ran power-save-only on the restricted platform;
    // project their -Redist performance from the measured savings (Sec. 6).
    let mem_proj = project_redistributed_speedup(
        config,
        &baseline.report,
        &mem.report,
        scalability,
        gfx_priority,
    )?;
    let co_proj = project_redistributed_speedup(
        config,
        &baseline.report,
        &co.report,
        scalability,
        gfx_priority,
    )?;
    Ok(SpeedupRow {
        workload: baseline.workload.clone(),
        memscale_redist_pct: mem_proj.projected_speedup_pct.max(0.0),
        coscale_redist_pct: co_proj.projected_speedup_pct.max(0.0),
        sysscale_pct: sys.report.speedup_pct_over(&baseline.report),
    })
}

fn row_from_runs(
    config: &SocConfig,
    runs: &RunSet,
    workload: &Workload,
    gfx_priority: bool,
    scalability: f64,
) -> SimResult<SpeedupRow> {
    let name = workload.name.as_str();
    speedup_row_from_records(
        config,
        runs.require(name, "baseline")?,
        runs.require(name, "sysscale")?,
        runs.require(name, "memscale")?,
        runs.require(name, "coscale")?,
        gfx_priority,
        scalability,
    )
}

fn fig7_from_runs(
    config: &SocConfig,
    runs: &RunSet,
    suite: &[Workload],
) -> SimResult<SpeedupFigure> {
    let rows = suite
        .iter()
        .map(|w| {
            let scalability = cpu_scalability(config, w);
            row_from_runs(config, runs, w, false, scalability)
        })
        .collect::<SimResult<Vec<_>>>()?;
    Ok(SpeedupFigure::from_rows(rows))
}

fn fig8_from_runs(
    config: &SocConfig,
    runs: &RunSet,
    suite: &[Workload],
) -> SimResult<SpeedupFigure> {
    let rows = suite
        .iter()
        .map(|w| {
            // Graphics FPS is assumed fully scalable with engine frequency as
            // long as bandwidth suffices (Sec. 7.2); the simulator itself
            // enforces the bandwidth limit for the measured SysScale numbers.
            row_from_runs(config, runs, w, true, 1.0)
        })
        .collect::<SimResult<Vec<_>>>()?;
    Ok(SpeedupFigure::from_rows(rows))
}

/// Fig. 7: SPEC CPU2006 performance improvements.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig7(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<SpeedupFigure> {
    let suite = spec_cpu2006_suite();
    let runs = evaluation_matrix(config, predictor, &suite)?;
    fig7_from_runs(config, &runs, &suite)
}

/// Fig. 8: 3DMark performance improvements.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig8(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<SpeedupFigure> {
    let suite = graphics_suite();
    let runs = evaluation_matrix(config, predictor, &suite)?;
    fig8_from_runs(config, &runs, &suite)
}

/// Per-workload battery-life row (Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReductionRow {
    /// Scenario name.
    pub workload: String,
    /// MemScale-R average power reduction, percent.
    pub memscale_redist_pct: f64,
    /// CoScale-R average power reduction, percent.
    pub coscale_redist_pct: f64,
    /// Measured SysScale average power reduction, percent.
    pub sysscale_pct: f64,
    /// Baseline average power, watts (for context).
    pub baseline_power_w: f64,
}

/// Fig. 9 result: rows plus averages.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReductionFigure {
    /// Per-scenario rows.
    pub rows: Vec<PowerReductionRow>,
    /// Average SysScale power reduction, percent.
    pub sysscale_avg_pct: f64,
    /// Maximum SysScale power reduction, percent.
    pub sysscale_max_pct: f64,
}

/// Fig. 9: battery-life average power reduction.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig9(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<PowerReductionFigure> {
    let suite = battery_life_suite();
    let runs = evaluation_matrix(config, predictor, &suite)?;
    fig9_from_runs(&runs, &suite)
}

/// The record-level power-reduction-row reduction — like
/// [`speedup_row_from_records`], the single definition shared by the
/// materialized and fold-based paths.
fn power_row_from_records(
    baseline: &RunRecord,
    sys: &RunRecord,
    mem: &RunRecord,
    co: &RunRecord,
) -> PowerReductionRow {
    PowerReductionRow {
        workload: baseline.workload.clone(),
        memscale_redist_pct: mem.report.power_reduction_pct_vs(&baseline.report).max(0.0),
        coscale_redist_pct: co.report.power_reduction_pct_vs(&baseline.report).max(0.0),
        sysscale_pct: sys.report.power_reduction_pct_vs(&baseline.report),
        baseline_power_w: baseline.report.average_power().as_watts(),
    }
}

fn fig9_figure_from_rows(rows: Vec<PowerReductionRow>) -> PowerReductionFigure {
    let sys: Vec<f64> = rows.iter().map(|r| r.sysscale_pct).collect();
    PowerReductionFigure {
        sysscale_avg_pct: stats::mean(&sys),
        sysscale_max_pct: sys.iter().copied().fold(0.0, f64::max),
        rows,
    }
}

fn fig9_from_runs(runs: &RunSet, suite: &[Workload]) -> SimResult<PowerReductionFigure> {
    let rows = suite
        .iter()
        .map(|w| {
            let name = w.name.as_str();
            Ok(power_row_from_records(
                runs.require(name, "baseline")?,
                runs.require(name, "sysscale")?,
                runs.require(name, "memscale")?,
                runs.require(name, "coscale")?,
            ))
        })
        .collect::<SimResult<Vec<_>>>()?;
    Ok(fig9_figure_from_rows(rows))
}

/// Runs the whole main evaluation — Figs. 7, 8, and 9 — as **one** sharded
/// sweep: the three suites' matrices (SPEC CPU2006, 3DMark, battery life)
/// flatten into a single cell list on one pool, so no worker idles between
/// figures and the two evaluation platforms are each built once. Every
/// figure is byte-identical to its standalone [`fig7`]/[`fig8`]/[`fig9`]
/// counterpart at any thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_figures(
    config: &SocConfig,
    predictor: &DemandPredictor,
) -> SimResult<(SpeedupFigure, SpeedupFigure, PowerReductionFigure)> {
    let spec = spec_cpu2006_suite();
    let gfx = graphics_suite();
    let battery = battery_life_suite();
    let runs = evaluation_sweep_in(
        &mut SessionPool::new(),
        exec::default_threads(),
        config,
        predictor,
        &[&spec, &gfx, &battery],
    )?;
    Ok((
        fig7_from_runs(config, &runs[0], &spec)?,
        fig8_from_runs(config, &runs[1], &gfx)?,
        fig9_from_runs(&runs[2], &battery)?,
    ))
}

/// A fold-reduced evaluation row: Figs. 7/8 rows are speedups, Fig. 9 rows
/// power reductions.
enum EvalRow {
    Speedup(SpeedupRow),
    Power(PowerReductionRow),
}

/// [`evaluation_figures`] through the fold-based result pipeline
/// ([`SweepSet::run_parallel_fold`]): the same three-suite sharded sweep,
/// but each workload's four governor runs reduce to its figure row the
/// moment the last one finishes — via the same record-level row reductions
/// the materialized path applies after collecting — so no `RunSet` is ever
/// materialized and the figures are **byte-identical** to
/// [`evaluation_figures`] at any thread count (the fold differential test
/// pins this).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_figures_fold(
    config: &SocConfig,
    predictor: &DemandPredictor,
) -> SimResult<(SpeedupFigure, SpeedupFigure, PowerReductionFigure)> {
    evaluation_figures_fold_in(
        &mut SessionPool::new(),
        exec::default_threads(),
        config,
        predictor,
    )
}

/// [`evaluation_figures_fold`] on a caller-provided pool and worker count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_figures_fold_in(
    pool: &mut SessionPool,
    threads: usize,
    config: &SocConfig,
    predictor: &DemandPredictor,
) -> SimResult<(SpeedupFigure, SpeedupFigure, PowerReductionFigure)> {
    let spec = spec_cpu2006_suite();
    let gfx = graphics_suite();
    let battery = battery_life_suite();
    let suites: [&[Workload]; 3] = [&spec, &gfx, &battery];

    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale_factory(*predictor));
    let sets: Vec<ScenarioSet> = suites
        .iter()
        .map(|suite| {
            Ok(
                ScenarioSet::matrix_with(&registry, config, suite, &EVALUATION_GOVERNORS)?
                    .with_baseline("baseline"),
            )
        })
        .collect::<SimResult<_>>()?;
    let mut sweep = SweepSet::new();
    for set in &sets {
        sweep.push_set_ref(set);
    }

    // Group = flat workload index across the three suites; slot = governor
    // column in EVALUATION_GOVERNORS order (baseline, sysscale, memscale,
    // coscale). Member cell layout is governors outer, workloads inner.
    let widths = [spec.len(), gfx.len(), battery.len()];
    let offsets = [0, widths[0], widths[0] + widths[1]];
    let total: usize = widths.iter().sum();
    // Per-group row recipe: which figure the workload belongs to, and the
    // speedup rows' scalability input (a pure function of config and
    // workload, computed in the same order the materialized path does).
    enum RowSpec {
        Speedup {
            gfx_priority: bool,
            scalability: f64,
        },
        Power,
    }
    let specs: Vec<RowSpec> = spec
        .iter()
        .map(|w| RowSpec::Speedup {
            gfx_priority: false,
            scalability: cpu_scalability(config, w),
        })
        .chain(gfx.iter().map(|_| RowSpec::Speedup {
            // Graphics FPS is assumed fully scalable with engine frequency
            // as long as bandwidth suffices (Sec. 7.2).
            gfx_priority: true,
            scalability: 1.0,
        }))
        .chain(battery.iter().map(|_| RowSpec::Power))
        .collect();
    let row_config = config.clone();
    let consumer = GroupFold::new(
        total,
        EVALUATION_GOVERNORS.len(),
        move |cell: CellId| {
            (
                offsets[cell.member] + cell.local % widths[cell.member],
                cell.local / widths[cell.member],
            )
        },
        move |group, records: Vec<RunRecord>| -> SimResult<EvalRow> {
            let (baseline, sys, mem, co) = (&records[0], &records[1], &records[2], &records[3]);
            match specs[group] {
                RowSpec::Speedup {
                    gfx_priority,
                    scalability,
                } => Ok(EvalRow::Speedup(speedup_row_from_records(
                    &row_config,
                    baseline,
                    sys,
                    mem,
                    co,
                    gfx_priority,
                    scalability,
                )?)),
                RowSpec::Power => Ok(EvalRow::Power(power_row_from_records(
                    baseline, sys, mem, co,
                ))),
            }
        },
    );

    let acc = sweep.run_parallel_fold(pool, threads, &consumer)?;
    let mut rows = consumer
        .into_outputs(acc)
        .into_iter()
        .collect::<SimResult<Vec<EvalRow>>>()?
        .into_iter();
    let take_speedups = |rows: &mut dyn Iterator<Item = EvalRow>, n: usize| -> Vec<SpeedupRow> {
        rows.take(n)
            .map(|row| match row {
                EvalRow::Speedup(row) => row,
                EvalRow::Power(_) => unreachable!("speedup group produced a power row"),
            })
            .collect()
    };
    let fig7 = SpeedupFigure::from_rows(take_speedups(&mut rows, widths[0]));
    let fig8 = SpeedupFigure::from_rows(take_speedups(&mut rows, widths[1]));
    let fig9 = fig9_figure_from_rows(
        rows.map(|row| match row {
            EvalRow::Power(row) => row,
            EvalRow::Speedup(_) => unreachable!("power group produced a speedup row"),
        })
        .collect(),
    );
    Ok((fig7, fig8, fig9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_workloads::spec_workload;

    #[test]
    fn scalability_separates_compute_bound_from_memory_bound() {
        let config = SocConfig::skylake_default();
        let gamess = cpu_scalability(&config, &spec_workload("gamess").unwrap());
        let lbm = cpu_scalability(&config, &spec_workload("lbm").unwrap());
        assert!(gamess > 0.85, "gamess {gamess}");
        assert!(lbm < 0.6, "lbm {lbm}");
    }

    #[test]
    fn single_workload_evaluation_orders_the_techniques() {
        // The headline ordering of Fig. 7: SysScale > CoScale-R and
        // MemScale-R for a frequency-scalable workload.
        let config = SocConfig::skylake_default();
        let predictor = DemandPredictor::skylake_default();
        let w = spec_workload("gamess").unwrap();
        let scal = cpu_scalability(&config, &w);
        let runs = evaluation_matrix(&config, &predictor, std::slice::from_ref(&w)).unwrap();
        assert_eq!(runs.len(), EVALUATION_GOVERNORS.len());
        let row = row_from_runs(&config, &runs, &w, false, scal).unwrap();
        assert!(row.sysscale_pct > 3.0, "{row:?}");
        assert!(row.sysscale_pct > row.memscale_redist_pct, "{row:?}");
        assert!(row.sysscale_pct > row.coscale_redist_pct * 0.9, "{row:?}");
        assert!(row.memscale_redist_pct >= 0.0);
    }

    #[test]
    fn memory_bound_workload_sees_little_gain_but_no_large_loss() {
        let config = SocConfig::skylake_default();
        let predictor = DemandPredictor::skylake_default();
        let w = spec_workload("bwaves").unwrap();
        let scal = cpu_scalability(&config, &w);
        let runs = evaluation_matrix(&config, &predictor, std::slice::from_ref(&w)).unwrap();
        let row = row_from_runs(&config, &runs, &w, false, scal).unwrap();
        assert!(row.sysscale_pct > -2.0, "{row:?}");
        assert!(row.sysscale_pct < 6.0, "{row:?}");
    }

    #[test]
    fn battery_life_row_shape() {
        let config = SocConfig::skylake_default();
        let predictor = DemandPredictor::skylake_default();
        let fig = fig9(&config, &predictor).unwrap();
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert!(row.sysscale_pct > 1.0, "{row:?}");
            assert!(
                row.sysscale_pct > row.memscale_redist_pct,
                "SysScale should save more than MemScale-R: {row:?}"
            );
            assert!(row.baseline_power_w < 3.0);
        }
        assert!(fig.sysscale_avg_pct > 2.0);
        assert!(fig.sysscale_max_pct >= fig.sysscale_avg_pct);
    }
}
