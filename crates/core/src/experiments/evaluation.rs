//! The main evaluation: Fig. 7 (SPEC CPU2006), Fig. 8 (3DMark), and Fig. 9
//! (battery-life workloads), comparing SysScale against the projected
//! MemScale-Redist and CoScale-Redist baselines.
//!
//! Every figure is one [`ScenarioSet`] execution: the full
//! `workloads × {baseline, sysscale, memscale, coscale}` matrix runs through
//! a single [`ScenarioSet::run`] call and the rows are read off the
//! resulting [`RunSet`].

use sysscale_compute::CpuModel;
use sysscale_soc::SocConfig;
use sysscale_types::{exec, stats, Freq, SimResult, SimTime};
use sysscale_workloads::{battery_life_suite, graphics_suite, spec_cpu2006_suite, Workload};

use crate::baselines::project_redistributed_speedup;
use crate::predictor::DemandPredictor;
use crate::scenario::{
    sysscale_factory, GovernorRegistry, RunSet, ScenarioSet, SessionPool, SweepSet,
};

/// Per-workload comparison row (Figs. 7 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Workload name.
    pub workload: String,
    /// Projected MemScale-Redist improvement, percent.
    pub memscale_redist_pct: f64,
    /// Projected CoScale-Redist improvement, percent.
    pub coscale_redist_pct: f64,
    /// Measured SysScale improvement, percent.
    pub sysscale_pct: f64,
}

/// A full evaluation figure: per-workload rows plus suite averages.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupFigure {
    /// Per-workload rows.
    pub rows: Vec<SpeedupRow>,
    /// Average MemScale-Redist improvement, percent.
    pub memscale_avg_pct: f64,
    /// Average CoScale-Redist improvement, percent.
    pub coscale_avg_pct: f64,
    /// Average SysScale improvement, percent.
    pub sysscale_avg_pct: f64,
    /// Maximum SysScale improvement, percent.
    pub sysscale_max_pct: f64,
}

impl SpeedupFigure {
    fn from_rows(rows: Vec<SpeedupRow>) -> Self {
        let mem: Vec<f64> = rows.iter().map(|r| r.memscale_redist_pct).collect();
        let co: Vec<f64> = rows.iter().map(|r| r.coscale_redist_pct).collect();
        let sys: Vec<f64> = rows.iter().map(|r| r.sysscale_pct).collect();
        Self {
            memscale_avg_pct: stats::mean(&mem),
            coscale_avg_pct: stats::mean(&co),
            sysscale_avg_pct: stats::mean(&sys),
            sysscale_max_pct: sys.iter().copied().fold(0.0, f64::max),
            rows,
        }
    }
}

/// Measures the frequency scalability of a CPU workload (Sec. 6 footnote 8)
/// from its phase descriptors at typical loaded-memory conditions.
#[must_use]
pub fn cpu_scalability(config: &SocConfig, workload: &Workload) -> f64 {
    let cpu = CpuModel::new(config.cpu).expect("validated config");
    let total = workload.iteration_length().as_secs();
    if total == 0.0 {
        return 0.0;
    }
    workload
        .phases
        .iter()
        .map(|p| {
            cpu.frequency_scalability(&p.cpu, Freq::from_ghz(1.8), SimTime::from_nanos(75.0))
                * p.duration.as_secs()
        })
        .sum::<f64>()
        / total
}

/// The evaluation's governor columns: the measured baseline and SysScale
/// plus the restricted-platform MemScale/CoScale power savers whose
/// `-Redist` performance is projected afterwards.
pub const EVALUATION_GOVERNORS: [&str; 4] = ["baseline", "sysscale", "memscale", "coscale"];

/// Runs the full `workloads × {baseline, SysScale, MemScale, CoScale}`
/// matrix through one parallel [`ScenarioSet::run_parallel`] batch on a
/// fresh [`SessionPool`], with `predictor` wired into the SysScale column
/// and the baseline designated for relative deltas.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_matrix(
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<RunSet> {
    evaluation_matrix_in(&mut SessionPool::new(), config, predictor, workloads)
}

/// Like [`evaluation_matrix`], but reuses a caller-provided pool so
/// consecutive matrices on the same platforms share their cached
/// simulators. The worker count comes from
/// [`exec::default_threads`] (`SYSSCALE_THREADS` overrides it; `1` is the
/// sequential path and produces a bit-identical [`RunSet`]).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_matrix_in(
    pool: &mut SessionPool,
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<RunSet> {
    let mut runs = evaluation_sweep_in(
        pool,
        exec::default_threads(),
        config,
        predictor,
        &[workloads],
    )?;
    Ok(runs.pop().expect("single-suite sweep"))
}

/// Runs several suites' evaluation matrices as **one** sharded [`SweepSet`]
/// batch and returns one [`RunSet`] per suite, in suite order.
///
/// The evaluation's governor columns span two platforms (the full platform
/// for baseline/SysScale, the restricted one for MemScale/CoScale), so the
/// sweep's platform sharding keeps each platform's simulator on one worker
/// across every suite. Each returned `RunSet` is byte-identical to
/// [`evaluation_matrix`] run on that suite alone, at any thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_sweep_in(
    pool: &mut SessionPool,
    threads: usize,
    config: &SocConfig,
    predictor: &DemandPredictor,
    suites: &[&[Workload]],
) -> SimResult<Vec<RunSet>> {
    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale_factory(*predictor));
    let mut sweep = SweepSet::new();
    for suite in suites {
        sweep.push_set(
            ScenarioSet::matrix_with(&registry, config, suite, &EVALUATION_GOVERNORS)?
                .with_baseline("baseline"),
        );
    }
    sweep.run_parallel(pool, threads)
}

fn row_from_runs(
    config: &SocConfig,
    runs: &RunSet,
    workload: &Workload,
    gfx_priority: bool,
    scalability: f64,
) -> SimResult<SpeedupRow> {
    let name = workload.name.as_str();
    let baseline = runs.require(name, "baseline")?;

    // MemScale / CoScale ran power-save-only on the restricted platform;
    // project their -Redist performance from the measured savings (Sec. 6).
    let mem = runs.require(name, "memscale")?;
    let mem_proj = project_redistributed_speedup(
        config,
        &baseline.report,
        &mem.report,
        scalability,
        gfx_priority,
    )?;
    let co = runs.require(name, "coscale")?;
    let co_proj = project_redistributed_speedup(
        config,
        &baseline.report,
        &co.report,
        scalability,
        gfx_priority,
    )?;

    let sysscale = runs.require_cell(name, "sysscale")?;
    Ok(SpeedupRow {
        workload: workload.name.clone(),
        memscale_redist_pct: mem_proj.projected_speedup_pct.max(0.0),
        coscale_redist_pct: co_proj.projected_speedup_pct.max(0.0),
        sysscale_pct: sysscale.speedup_pct,
    })
}

fn fig7_from_runs(
    config: &SocConfig,
    runs: &RunSet,
    suite: &[Workload],
) -> SimResult<SpeedupFigure> {
    let rows = suite
        .iter()
        .map(|w| {
            let scalability = cpu_scalability(config, w);
            row_from_runs(config, runs, w, false, scalability)
        })
        .collect::<SimResult<Vec<_>>>()?;
    Ok(SpeedupFigure::from_rows(rows))
}

fn fig8_from_runs(
    config: &SocConfig,
    runs: &RunSet,
    suite: &[Workload],
) -> SimResult<SpeedupFigure> {
    let rows = suite
        .iter()
        .map(|w| {
            // Graphics FPS is assumed fully scalable with engine frequency as
            // long as bandwidth suffices (Sec. 7.2); the simulator itself
            // enforces the bandwidth limit for the measured SysScale numbers.
            row_from_runs(config, runs, w, true, 1.0)
        })
        .collect::<SimResult<Vec<_>>>()?;
    Ok(SpeedupFigure::from_rows(rows))
}

/// Fig. 7: SPEC CPU2006 performance improvements.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig7(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<SpeedupFigure> {
    let suite = spec_cpu2006_suite();
    let runs = evaluation_matrix(config, predictor, &suite)?;
    fig7_from_runs(config, &runs, &suite)
}

/// Fig. 8: 3DMark performance improvements.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig8(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<SpeedupFigure> {
    let suite = graphics_suite();
    let runs = evaluation_matrix(config, predictor, &suite)?;
    fig8_from_runs(config, &runs, &suite)
}

/// Per-workload battery-life row (Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReductionRow {
    /// Scenario name.
    pub workload: String,
    /// MemScale-R average power reduction, percent.
    pub memscale_redist_pct: f64,
    /// CoScale-R average power reduction, percent.
    pub coscale_redist_pct: f64,
    /// Measured SysScale average power reduction, percent.
    pub sysscale_pct: f64,
    /// Baseline average power, watts (for context).
    pub baseline_power_w: f64,
}

/// Fig. 9 result: rows plus averages.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReductionFigure {
    /// Per-scenario rows.
    pub rows: Vec<PowerReductionRow>,
    /// Average SysScale power reduction, percent.
    pub sysscale_avg_pct: f64,
    /// Maximum SysScale power reduction, percent.
    pub sysscale_max_pct: f64,
}

/// Fig. 9: battery-life average power reduction.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig9(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<PowerReductionFigure> {
    let suite = battery_life_suite();
    let runs = evaluation_matrix(config, predictor, &suite)?;
    fig9_from_runs(&runs, &suite)
}

fn fig9_from_runs(runs: &RunSet, suite: &[Workload]) -> SimResult<PowerReductionFigure> {
    let rows = suite
        .iter()
        .map(|w| {
            let name = w.name.as_str();
            let mem = runs.require_cell(name, "memscale")?;
            let co = runs.require_cell(name, "coscale")?;
            let sys = runs.require_cell(name, "sysscale")?;
            Ok(PowerReductionRow {
                workload: w.name.clone(),
                memscale_redist_pct: mem.power_reduction_pct.max(0.0),
                coscale_redist_pct: co.power_reduction_pct.max(0.0),
                sysscale_pct: sys.power_reduction_pct,
                baseline_power_w: sys.baseline_power_w,
            })
        })
        .collect::<SimResult<Vec<_>>>()?;
    let sys: Vec<f64> = rows.iter().map(|r| r.sysscale_pct).collect();
    Ok(PowerReductionFigure {
        sysscale_avg_pct: stats::mean(&sys),
        sysscale_max_pct: sys.iter().copied().fold(0.0, f64::max),
        rows,
    })
}

/// Runs the whole main evaluation — Figs. 7, 8, and 9 — as **one** sharded
/// sweep: the three suites' matrices (SPEC CPU2006, 3DMark, battery life)
/// flatten into a single cell list on one pool, so no worker idles between
/// figures and the two evaluation platforms are each built once. Every
/// figure is byte-identical to its standalone [`fig7`]/[`fig8`]/[`fig9`]
/// counterpart at any thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn evaluation_figures(
    config: &SocConfig,
    predictor: &DemandPredictor,
) -> SimResult<(SpeedupFigure, SpeedupFigure, PowerReductionFigure)> {
    let spec = spec_cpu2006_suite();
    let gfx = graphics_suite();
    let battery = battery_life_suite();
    let runs = evaluation_sweep_in(
        &mut SessionPool::new(),
        exec::default_threads(),
        config,
        predictor,
        &[&spec, &gfx, &battery],
    )?;
    Ok((
        fig7_from_runs(config, &runs[0], &spec)?,
        fig8_from_runs(config, &runs[1], &gfx)?,
        fig9_from_runs(&runs[2], &battery)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_workloads::spec_workload;

    #[test]
    fn scalability_separates_compute_bound_from_memory_bound() {
        let config = SocConfig::skylake_default();
        let gamess = cpu_scalability(&config, &spec_workload("gamess").unwrap());
        let lbm = cpu_scalability(&config, &spec_workload("lbm").unwrap());
        assert!(gamess > 0.85, "gamess {gamess}");
        assert!(lbm < 0.6, "lbm {lbm}");
    }

    #[test]
    fn single_workload_evaluation_orders_the_techniques() {
        // The headline ordering of Fig. 7: SysScale > CoScale-R and
        // MemScale-R for a frequency-scalable workload.
        let config = SocConfig::skylake_default();
        let predictor = DemandPredictor::skylake_default();
        let w = spec_workload("gamess").unwrap();
        let scal = cpu_scalability(&config, &w);
        let runs = evaluation_matrix(&config, &predictor, std::slice::from_ref(&w)).unwrap();
        assert_eq!(runs.len(), EVALUATION_GOVERNORS.len());
        let row = row_from_runs(&config, &runs, &w, false, scal).unwrap();
        assert!(row.sysscale_pct > 3.0, "{row:?}");
        assert!(row.sysscale_pct > row.memscale_redist_pct, "{row:?}");
        assert!(row.sysscale_pct > row.coscale_redist_pct * 0.9, "{row:?}");
        assert!(row.memscale_redist_pct >= 0.0);
    }

    #[test]
    fn memory_bound_workload_sees_little_gain_but_no_large_loss() {
        let config = SocConfig::skylake_default();
        let predictor = DemandPredictor::skylake_default();
        let w = spec_workload("bwaves").unwrap();
        let scal = cpu_scalability(&config, &w);
        let runs = evaluation_matrix(&config, &predictor, std::slice::from_ref(&w)).unwrap();
        let row = row_from_runs(&config, &runs, &w, false, scal).unwrap();
        assert!(row.sysscale_pct > -2.0, "{row:?}");
        assert!(row.sysscale_pct < 6.0, "{row:?}");
    }

    #[test]
    fn battery_life_row_shape() {
        let config = SocConfig::skylake_default();
        let predictor = DemandPredictor::skylake_default();
        let fig = fig9(&config, &predictor).unwrap();
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert!(row.sysscale_pct > 1.0, "{row:?}");
            assert!(
                row.sysscale_pct > row.memscale_redist_pct,
                "SysScale should save more than MemScale-R: {row:?}"
            );
            assert!(row.baseline_power_w < 3.0);
        }
        assert!(fig.sysscale_avg_pct > 2.0);
        assert!(fig.sysscale_max_pct >= fig.sysscale_avg_pct);
    }
}
