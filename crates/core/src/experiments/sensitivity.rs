//! Sensitivity studies and ablations: Fig. 10 (TDP), the Sec. 7.4 DRAM
//! frequency/type sensitivity, the Sec. 5 overhead accounting, and the
//! design-choice ablations called out in DESIGN.md.
//!
//! The multi-configuration studies (Fig. 10, DRAM sensitivity) are
//! [`SweepSet`]s: every configuration point's matrix is flattened into one
//! cell list and submitted to the pool as a single sharded batch, with cells
//! hash-sharded by platform fingerprint so each platform's simulator is
//! built once for the whole sweep. The `*_per_point` functions keep the old
//! one-matrix-per-point path alive as the reference the differential test
//! harness compares the sweeps against. The ablations express each design
//! variant as a platform-restricting [`FnGovernorFactory`], so that study is
//! a single `workloads × variants` batch already.

use std::sync::Arc;

use sysscale_dram::{DramKind, MrcSram};
use sysscale_soc::SocConfig;
use sysscale_types::{
    exec, stats::Summary, Power, SimError, SimResult, SimTime, TransitionLatency,
};
use sysscale_workloads::{battery_life_suite, spec_cpu2006_suite, spec_workload, Workload};

use crate::governor::SysScaleGovernor;
use crate::predictor::DemandPredictor;
use crate::scenario::{
    sysscale_factory, CellId, FnGovernorFactory, GovernorFactory, GovernorRegistry, GroupFold,
    RunCell, RunRecord, RunSet, Scenario, ScenarioSet, SessionPool, SimSession, SweepSet,
};

/// One TDP point of Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct TdpPoint {
    /// Package TDP, watts.
    pub tdp_w: f64,
    /// Distribution of per-workload SysScale speedups (violin data), percent.
    pub speedups_pct: Vec<f64>,
    /// Summary statistics of the distribution.
    pub summary: Summary,
}

/// The `suite × {baseline, sysscale}` matrix for one configuration point,
/// with `predictor` wired into the sysscale column — the building block of
/// both sensitivity sweeps.
fn baseline_vs_sysscale_matrix(
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<ScenarioSet> {
    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale_factory(*predictor));
    Ok(
        ScenarioSet::matrix_with(&registry, config, workloads, &["baseline", "sysscale"])?
            .with_baseline("baseline"),
    )
}

fn baseline_vs_sysscale(
    pool: &mut SessionPool,
    threads: usize,
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<RunSet> {
    baseline_vs_sysscale_matrix(config, predictor, workloads)?.run_parallel(pool, threads)
}

/// Reads the per-workload sysscale metric column off one configuration
/// point's [`RunSet`].
fn sysscale_cells(
    runs: &RunSet,
    workloads: &[Workload],
    metric: impl Fn(&RunCell) -> f64,
) -> SimResult<Vec<f64>> {
    workloads
        .iter()
        .map(|w| {
            runs.cell(&w.name, "sysscale")
                .map(|c| metric(&c))
                .ok_or_else(|| SimError::invalid_config(format!("({}, sysscale) missing", w.name)))
        })
        .collect()
}

fn tdp_point(tdp: f64, runs: &RunSet, suite: &[Workload]) -> SimResult<TdpPoint> {
    let speedups = sysscale_cells(runs, suite, |c| c.speedup_pct)?;
    Ok(TdpPoint {
        tdp_w: tdp,
        summary: Summary::of(&speedups),
        speedups_pct: speedups,
    })
}

/// Fig. 10: SysScale benefit versus TDP on the SPEC-like suite.
///
/// All TDP points run as **one** sharded [`SweepSet`] batch on a fresh pool
/// at [`exec::default_threads`]; see [`fig10_in`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10(predictor: &DemandPredictor, tdps_w: &[f64]) -> SimResult<Vec<TdpPoint>> {
    fig10_in(
        &mut SessionPool::new(),
        exec::default_threads(),
        predictor,
        tdps_w,
    )
}

/// [`fig10`] on a caller-provided pool and worker count: the whole
/// `TDPs × suite × {baseline, sysscale}` sweep is flattened into a single
/// platform-sharded batch, so each TDP point's simulator is built once for
/// the sweep and no worker idles at point boundaries. The result is
/// byte-identical to [`fig10_per_point_in`] at any `threads`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_in(
    pool: &mut SessionPool,
    threads: usize,
    predictor: &DemandPredictor,
    tdps_w: &[f64],
) -> SimResult<Vec<TdpPoint>> {
    let suite = spec_cpu2006_suite();
    let mut sweep = SweepSet::new();
    for &tdp in tdps_w {
        let config = SocConfig::skylake_m_6y75(Power::from_watts(tdp));
        sweep.push_set(baseline_vs_sysscale_matrix(&config, predictor, &suite)?);
    }
    let run_sets = sweep.run_parallel(pool, threads)?;
    tdps_w
        .iter()
        .zip(&run_sets)
        .map(|(&tdp, runs)| tdp_point(tdp, runs, &suite))
        .collect()
}

/// The fold-based Fig. 10 path: the same single platform-sharded sweep as
/// [`fig10_in`], but instead of materializing one [`RunSet`] per TDP point,
/// a [`GroupFold`] consumer reduces every workload's `(baseline, sysscale)`
/// pair to its speedup the moment both runs finish, and the TDP points are
/// assembled from the per-workload speedups alone. Result memory is the
/// speedup vector — `TDPs × suite` f64s — plus O(in-flight pairs), never
/// the sweep's full record matrix.
///
/// Byte-identical to [`fig10_in`] and [`fig10_per_point_in`] at any
/// `threads`: each speedup is computed by the same
/// [`sysscale_soc::SimReport::speedup_pct_over`] call on the same report
/// pair, and [`Summary::of`] sees the speedups in the same workload order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_fold_in(
    pool: &mut SessionPool,
    threads: usize,
    predictor: &DemandPredictor,
    tdps_w: &[f64],
) -> SimResult<Vec<TdpPoint>> {
    let suite = spec_cpu2006_suite();
    let width = suite.len();
    let mut sweep = SweepSet::new();
    for &tdp in tdps_w {
        let config = SocConfig::skylake_m_6y75(Power::from_watts(tdp));
        sweep.push_set(baseline_vs_sysscale_matrix(&config, predictor, &suite)?);
    }
    // Member cell layout (governors outer, workloads inner): local j is the
    // baseline run of workload j, local width + j its sysscale run.
    let consumer = GroupFold::new(
        tdps_w.len() * width,
        2,
        move |cell: CellId| (cell.member * width + cell.local % width, cell.local / width),
        |_, records: Vec<RunRecord>| records[1].report.speedup_pct_over(&records[0].report),
    );
    let acc = sweep.run_parallel_fold(pool, threads, &consumer)?;
    let mut speedups = consumer.into_outputs(acc).into_iter();
    Ok(tdps_w
        .iter()
        .map(|&tdp| {
            let point: Vec<f64> = speedups.by_ref().take(width).collect();
            TdpPoint {
                tdp_w: tdp,
                summary: Summary::of(&point),
                speedups_pct: point,
            }
        })
        .collect())
}

/// The pre-sweep Fig. 10 path — one matrix per TDP point, submitted to the
/// pool point by point — retained as the reference implementation the
/// differential test harness compares [`fig10_in`] against.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_per_point_in(
    pool: &mut SessionPool,
    threads: usize,
    predictor: &DemandPredictor,
    tdps_w: &[f64],
) -> SimResult<Vec<TdpPoint>> {
    let suite = spec_cpu2006_suite();
    tdps_w
        .iter()
        .map(|&tdp| {
            let config = SocConfig::skylake_m_6y75(Power::from_watts(tdp));
            let runs = baseline_vs_sysscale(pool, threads, &config, predictor, &suite)?;
            tdp_point(tdp, &runs, &suite)
        })
        .collect()
}

/// Result of the Sec. 7.4 DRAM sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct DramSensitivity {
    /// Average SysScale power reduction on battery-life workloads with
    /// LPDDR3 scaled 1.6 → 1.066 GHz, percent.
    pub lpddr3_avg_power_reduction_pct: f64,
    /// Same for DDR4 scaled 1.87 → 1.33 GHz, percent.
    pub ddr4_avg_power_reduction_pct: f64,
    /// Relative shortfall of DDR4 versus LPDDR3 savings, percent
    /// (the paper reports ≈7 %).
    pub ddr4_shortfall_pct: f64,
    /// Average SPEC speedup with the two-point ladder (1.6/1.066), percent.
    pub two_point_avg_speedup_pct: f64,
    /// Average SPEC speedup with the three-point ladder adding 0.8 GHz,
    /// percent (the paper finds the extra point is not worthwhile).
    pub three_point_avg_speedup_pct: f64,
}

/// The four `(configuration, suite)` measurement legs of the DRAM study, in
/// the order the sweep flattens them: LPDDR3 battery, DDR4 battery,
/// two-point SPEC, three-point SPEC.
fn dram_sensitivity_legs() -> Vec<(SocConfig, Vec<Workload>)> {
    let tdp = Power::from_watts(4.5);
    vec![
        (SocConfig::skylake_m_6y75(tdp), battery_life_suite()),
        (SocConfig::skylake_ddr4(tdp), battery_life_suite()),
        (SocConfig::skylake_m_6y75(tdp), spec_cpu2006_suite()),
        (SocConfig::skylake_three_point(tdp), spec_cpu2006_suite()),
    ]
}

fn dram_sensitivity_from_legs(leg_runs: &[RunSet]) -> SimResult<DramSensitivity> {
    let legs = dram_sensitivity_legs();
    let leg_mean = |idx: usize, metric: fn(&RunCell) -> f64| -> SimResult<f64> {
        let values = sysscale_cells(&leg_runs[idx], &legs[idx].1, metric)?;
        Ok(sysscale_types::stats::mean(&values))
    };
    let lpddr3 = leg_mean(0, |c| c.power_reduction_pct)?;
    let ddr4 = leg_mean(1, |c| c.power_reduction_pct)?;
    let two_point = leg_mean(2, |c| c.speedup_pct)?;
    let three_point = leg_mean(3, |c| c.speedup_pct)?;
    Ok(DramSensitivity {
        lpddr3_avg_power_reduction_pct: lpddr3,
        ddr4_avg_power_reduction_pct: ddr4,
        ddr4_shortfall_pct: if lpddr3 > 0.0 {
            (1.0 - ddr4 / lpddr3) * 100.0
        } else {
            0.0
        },
        two_point_avg_speedup_pct: two_point,
        three_point_avg_speedup_pct: three_point,
    })
}

/// Runs the DRAM type / operating-point-count sensitivity study as one
/// sharded [`SweepSet`] batch on a fresh pool at [`exec::default_threads`];
/// see [`dram_sensitivity_in`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn dram_sensitivity(predictor: &DemandPredictor) -> SimResult<DramSensitivity> {
    dram_sensitivity_in(&mut SessionPool::new(), exec::default_threads(), predictor)
}

/// [`dram_sensitivity`] on a caller-provided pool and worker count: the four
/// measurement legs (two DRAM types × battery suite, two ladder shapes ×
/// SPEC suite) flatten into one platform-sharded batch. Byte-identical to
/// [`dram_sensitivity_per_point_in`] at any `threads`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn dram_sensitivity_in(
    pool: &mut SessionPool,
    threads: usize,
    predictor: &DemandPredictor,
) -> SimResult<DramSensitivity> {
    let legs = dram_sensitivity_legs();
    let mut sweep = SweepSet::new();
    for (config, suite) in &legs {
        sweep.push_set(baseline_vs_sysscale_matrix(config, predictor, suite)?);
    }
    let leg_runs = sweep.run_parallel(pool, threads)?;
    dram_sensitivity_from_legs(&leg_runs)
}

/// The pre-sweep DRAM-sensitivity path — one matrix per leg — retained as
/// the reference implementation for the differential test harness.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn dram_sensitivity_per_point_in(
    pool: &mut SessionPool,
    threads: usize,
    predictor: &DemandPredictor,
) -> SimResult<DramSensitivity> {
    let leg_runs = dram_sensitivity_legs()
        .iter()
        .map(|(config, suite)| baseline_vs_sysscale(pool, threads, config, predictor, suite))
        .collect::<SimResult<Vec<_>>>()?;
    dram_sensitivity_from_legs(&leg_runs)
}

/// The Sec. 5 implementation-overhead accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Overheads {
    /// Worst-case transition stall, microseconds (budget: <10 µs).
    pub transition_stall_us: f64,
    /// MRC SRAM footprint, bytes (budget: ≈512 B).
    pub mrc_sram_bytes: usize,
    /// Additional PMU firmware size estimate, bytes (budget: ≈600 B).
    pub firmware_bytes: usize,
    /// Number of new performance counters required.
    pub new_counters: usize,
}

/// Computes the implementation overheads from the models.
#[must_use]
pub fn overheads() -> Overheads {
    let latency = TransitionLatency::skylake_default();
    // Firmware estimate: the decision algorithm (5 compares + table walk) and
    // the flow sequencing, expressed as RISC instruction slots of 4 bytes.
    let firmware_instruction_estimate = 150;
    Overheads {
        transition_stall_us: latency.total().as_micros(),
        mrc_sram_bytes: MrcSram::train_all(DramKind::Lpddr3).size_bytes(),
        firmware_bytes: firmware_instruction_estimate * 4,
        new_counters: sysscale_types::CounterKind::PREDICTOR_SET.len(),
    }
}

/// One row of the ablation study.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Name of the configuration.
    pub name: String,
    /// Average SPEC-subset speedup over the baseline, percent.
    pub avg_speedup_pct: f64,
    /// Average power reduction on the video-playback scenario, percent.
    pub video_playback_power_reduction_pct: f64,
}

/// The design variants of the ablation study, each expressed as a governor
/// factory whose platform restriction applies the variant's configuration.
fn ablation_variants(
    base: &SocConfig,
    predictor: &DemandPredictor,
) -> Vec<Arc<dyn GovernorFactory>> {
    let variant = |name: &str, config: SocConfig, redistribute: bool| {
        let predictor = *predictor;
        Arc::new(
            FnGovernorFactory::new(name, move || {
                let g = SysScaleGovernor::new(predictor);
                Box::new(if redistribute {
                    g
                } else {
                    g.without_redistribution()
                })
            })
            .with_platform(move |_| config.clone()),
        ) as Arc<dyn GovernorFactory>
    };
    vec![
        variant("sysscale", base.clone(), true),
        variant(
            "no-mrc-reload",
            SocConfig {
                reload_mrc_on_transition: false,
                ..base.clone()
            },
            true,
        ),
        variant("no-redistribution", base.clone(), false),
        variant(
            "interval-10ms",
            SocConfig {
                evaluation_interval: SimTime::from_millis(10.0),
                ..base.clone()
            },
            true,
        ),
        variant(
            "interval-100ms",
            SocConfig {
                evaluation_interval: SimTime::from_millis(100.0),
                ..base.clone()
            },
            true,
        ),
        variant(
            "slow-transition-100us",
            SocConfig {
                transition_latency: TransitionLatency {
                    voltage_ramp: SimTime::from_micros(20.0),
                    interconnect_drain: SimTime::from_micros(10.0),
                    self_refresh_exit: SimTime::from_micros(50.0),
                    mrc_load: SimTime::from_micros(10.0),
                    firmware: SimTime::from_micros(10.0),
                },
                ..base.clone()
            },
            true,
        ),
    ]
}

/// The ablation study over the design choices DESIGN.md calls out:
/// MRC reload on/off, redistribution on/off, evaluation-interval length, and
/// pessimistic transition cost. One scenario matrix:
/// `(SPEC subset + video playback) × (baseline + variants)`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ablations(predictor: &DemandPredictor) -> SimResult<Vec<AblationRow>> {
    let base = SocConfig::skylake_default();
    let spec_subset: Vec<Workload> = ["gamess", "namd", "perlbench", "astar", "lbm", "milc"]
        .iter()
        .map(|n| spec_workload(n).expect("subset exists"))
        .collect();
    let video = sysscale_workloads::battery_workload("video-playback").expect("exists");

    let mut registry = GovernorRegistry::builtin();
    let variants = ablation_variants(&base, predictor);
    for v in &variants {
        registry.register(Arc::clone(v));
    }
    let mut workloads = spec_subset.clone();
    workloads.push(video.clone());
    let mut columns: Vec<String> = vec!["baseline".into()];
    columns.extend(variants.iter().map(|v| v.name().to_string()));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let runs = ScenarioSet::matrix_with(&registry, &base, &workloads, &column_refs)?
        .with_baseline("baseline")
        .run_parallel(&mut SessionPool::new(), exec::default_threads())?;

    variants
        .iter()
        .map(|v| {
            let speedups = spec_subset
                .iter()
                .map(|w| runs.require_cell(&w.name, v.name()).map(|c| c.speedup_pct))
                .collect::<SimResult<Vec<f64>>>()?;
            let video_cell = runs.require_cell(&video.name, v.name())?;
            Ok(AblationRow {
                name: v.name().to_string(),
                avg_speedup_pct: sysscale_types::stats::mean(&speedups),
                video_playback_power_reduction_pct: video_cell.power_reduction_pct,
            })
        })
        .collect()
}

/// Measures the worst-case transition stall on the real flow (used by the
/// overhead bench).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measured_transition_stall(config: &SocConfig) -> SimResult<SimTime> {
    let scenario = Scenario::builder(spec_workload("astar").expect("exists"))
        .config(config.clone())
        .governor("sysscale")
        .build()?;
    let record = SimSession::new().run(&scenario)?;
    Ok(record.report.transitions.max_stall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_the_paper_budgets() {
        let o = overheads();
        assert!(o.transition_stall_us < 10.0);
        assert!(o.mrc_sram_bytes <= 512);
        assert!(o.firmware_bytes <= 1024);
        assert_eq!(o.new_counters, 4);
    }

    #[test]
    fn fig10_gains_shrink_as_tdp_grows() {
        let predictor = DemandPredictor::skylake_default();
        let points = fig10(&predictor, &[3.5, 15.0]).unwrap();
        assert_eq!(points.len(), 2);
        let constrained = &points[0];
        let ample = &points[1];
        assert!(
            constrained.summary.mean > ample.summary.mean,
            "3.5W mean {} vs 15W mean {}",
            constrained.summary.mean,
            ample.summary.mean
        );
        assert!(constrained.summary.max > constrained.summary.mean);
        assert!(constrained.speedups_pct.len() >= 25);
    }

    #[test]
    fn measured_transition_stall_is_within_budget() {
        let stall = measured_transition_stall(&SocConfig::skylake_default()).unwrap();
        assert!(stall.as_micros() < 10.0);
    }
}
