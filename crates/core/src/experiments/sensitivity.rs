//! Sensitivity studies and ablations: Fig. 10 (TDP), the Sec. 7.4 DRAM
//! frequency/type sensitivity, the Sec. 5 overhead accounting, and the
//! design-choice ablations called out in DESIGN.md.
//!
//! All sweeps are [`ScenarioSet`] matrices; the ablations express each
//! design variant as a platform-restricting [`FnGovernorFactory`], so the
//! whole study is a single `workloads × variants` batch.

use std::sync::Arc;

use sysscale_dram::{DramKind, MrcSram};
use sysscale_soc::SocConfig;
use sysscale_types::{
    exec, stats::Summary, Power, SimError, SimResult, SimTime, TransitionLatency,
};
use sysscale_workloads::{battery_life_suite, spec_cpu2006_suite, spec_workload, Workload};

use crate::governor::SysScaleGovernor;
use crate::predictor::DemandPredictor;
use crate::scenario::{
    sysscale_factory, FnGovernorFactory, GovernorFactory, GovernorRegistry, RunCell, RunSet,
    Scenario, ScenarioSet, SessionPool, SimSession,
};

/// One TDP point of Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct TdpPoint {
    /// Package TDP, watts.
    pub tdp_w: f64,
    /// Distribution of per-workload SysScale speedups (violin data), percent.
    pub speedups_pct: Vec<f64>,
    /// Summary statistics of the distribution.
    pub summary: Summary,
}

fn baseline_vs_sysscale(
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
) -> SimResult<RunSet> {
    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale_factory(*predictor));
    ScenarioSet::matrix_with(&registry, config, workloads, &["baseline", "sysscale"])?
        .with_baseline("baseline")
        .run_parallel(&mut SessionPool::new(), exec::default_threads())
}

fn sysscale_cells(
    config: &SocConfig,
    predictor: &DemandPredictor,
    workloads: &[Workload],
    metric: impl Fn(&RunCell) -> f64,
) -> SimResult<Vec<f64>> {
    let runs = baseline_vs_sysscale(config, predictor, workloads)?;
    workloads
        .iter()
        .map(|w| {
            runs.cell(&w.name, "sysscale")
                .map(|c| metric(&c))
                .ok_or_else(|| SimError::invalid_config(format!("({}, sysscale) missing", w.name)))
        })
        .collect()
}

/// Fig. 10: SysScale benefit versus TDP on the SPEC-like suite.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10(predictor: &DemandPredictor, tdps_w: &[f64]) -> SimResult<Vec<TdpPoint>> {
    let suite = spec_cpu2006_suite();
    tdps_w
        .iter()
        .map(|&tdp| {
            let config = SocConfig::skylake_m_6y75(Power::from_watts(tdp));
            let speedups = sysscale_cells(&config, predictor, &suite, |c| c.speedup_pct)?;
            Ok(TdpPoint {
                tdp_w: tdp,
                summary: Summary::of(&speedups),
                speedups_pct: speedups,
            })
        })
        .collect()
}

/// Result of the Sec. 7.4 DRAM sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct DramSensitivity {
    /// Average SysScale power reduction on battery-life workloads with
    /// LPDDR3 scaled 1.6 → 1.066 GHz, percent.
    pub lpddr3_avg_power_reduction_pct: f64,
    /// Same for DDR4 scaled 1.87 → 1.33 GHz, percent.
    pub ddr4_avg_power_reduction_pct: f64,
    /// Relative shortfall of DDR4 versus LPDDR3 savings, percent
    /// (the paper reports ≈7 %).
    pub ddr4_shortfall_pct: f64,
    /// Average SPEC speedup with the two-point ladder (1.6/1.066), percent.
    pub two_point_avg_speedup_pct: f64,
    /// Average SPEC speedup with the three-point ladder adding 0.8 GHz,
    /// percent (the paper finds the extra point is not worthwhile).
    pub three_point_avg_speedup_pct: f64,
}

fn battery_avg_power_reduction(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<f64> {
    let reductions = sysscale_cells(config, predictor, &battery_life_suite(), |c| {
        c.power_reduction_pct
    })?;
    Ok(sysscale_types::stats::mean(&reductions))
}

fn spec_avg_speedup(config: &SocConfig, predictor: &DemandPredictor) -> SimResult<f64> {
    let speedups = sysscale_cells(config, predictor, &spec_cpu2006_suite(), |c| c.speedup_pct)?;
    Ok(sysscale_types::stats::mean(&speedups))
}

/// Runs the DRAM type / operating-point-count sensitivity study.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn dram_sensitivity(predictor: &DemandPredictor) -> SimResult<DramSensitivity> {
    let tdp = Power::from_watts(4.5);
    let lpddr3 = battery_avg_power_reduction(&SocConfig::skylake_m_6y75(tdp), predictor)?;
    let ddr4 = battery_avg_power_reduction(&SocConfig::skylake_ddr4(tdp), predictor)?;
    let two_point = spec_avg_speedup(&SocConfig::skylake_m_6y75(tdp), predictor)?;
    let three_point = spec_avg_speedup(&SocConfig::skylake_three_point(tdp), predictor)?;
    Ok(DramSensitivity {
        lpddr3_avg_power_reduction_pct: lpddr3,
        ddr4_avg_power_reduction_pct: ddr4,
        ddr4_shortfall_pct: if lpddr3 > 0.0 {
            (1.0 - ddr4 / lpddr3) * 100.0
        } else {
            0.0
        },
        two_point_avg_speedup_pct: two_point,
        three_point_avg_speedup_pct: three_point,
    })
}

/// The Sec. 5 implementation-overhead accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Overheads {
    /// Worst-case transition stall, microseconds (budget: <10 µs).
    pub transition_stall_us: f64,
    /// MRC SRAM footprint, bytes (budget: ≈512 B).
    pub mrc_sram_bytes: usize,
    /// Additional PMU firmware size estimate, bytes (budget: ≈600 B).
    pub firmware_bytes: usize,
    /// Number of new performance counters required.
    pub new_counters: usize,
}

/// Computes the implementation overheads from the models.
#[must_use]
pub fn overheads() -> Overheads {
    let latency = TransitionLatency::skylake_default();
    // Firmware estimate: the decision algorithm (5 compares + table walk) and
    // the flow sequencing, expressed as RISC instruction slots of 4 bytes.
    let firmware_instruction_estimate = 150;
    Overheads {
        transition_stall_us: latency.total().as_micros(),
        mrc_sram_bytes: MrcSram::train_all(DramKind::Lpddr3).size_bytes(),
        firmware_bytes: firmware_instruction_estimate * 4,
        new_counters: sysscale_types::CounterKind::PREDICTOR_SET.len(),
    }
}

/// One row of the ablation study.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Name of the configuration.
    pub name: String,
    /// Average SPEC-subset speedup over the baseline, percent.
    pub avg_speedup_pct: f64,
    /// Average power reduction on the video-playback scenario, percent.
    pub video_playback_power_reduction_pct: f64,
}

/// The design variants of the ablation study, each expressed as a governor
/// factory whose platform restriction applies the variant's configuration.
fn ablation_variants(
    base: &SocConfig,
    predictor: &DemandPredictor,
) -> Vec<Arc<dyn GovernorFactory>> {
    let variant = |name: &str, config: SocConfig, redistribute: bool| {
        let predictor = *predictor;
        Arc::new(
            FnGovernorFactory::new(name, move || {
                let g = SysScaleGovernor::new(predictor);
                Box::new(if redistribute {
                    g
                } else {
                    g.without_redistribution()
                })
            })
            .with_platform(move |_| config.clone()),
        ) as Arc<dyn GovernorFactory>
    };
    vec![
        variant("sysscale", base.clone(), true),
        variant(
            "no-mrc-reload",
            SocConfig {
                reload_mrc_on_transition: false,
                ..base.clone()
            },
            true,
        ),
        variant("no-redistribution", base.clone(), false),
        variant(
            "interval-10ms",
            SocConfig {
                evaluation_interval: SimTime::from_millis(10.0),
                ..base.clone()
            },
            true,
        ),
        variant(
            "interval-100ms",
            SocConfig {
                evaluation_interval: SimTime::from_millis(100.0),
                ..base.clone()
            },
            true,
        ),
        variant(
            "slow-transition-100us",
            SocConfig {
                transition_latency: TransitionLatency {
                    voltage_ramp: SimTime::from_micros(20.0),
                    interconnect_drain: SimTime::from_micros(10.0),
                    self_refresh_exit: SimTime::from_micros(50.0),
                    mrc_load: SimTime::from_micros(10.0),
                    firmware: SimTime::from_micros(10.0),
                },
                ..base.clone()
            },
            true,
        ),
    ]
}

/// The ablation study over the design choices DESIGN.md calls out:
/// MRC reload on/off, redistribution on/off, evaluation-interval length, and
/// pessimistic transition cost. One scenario matrix:
/// `(SPEC subset + video playback) × (baseline + variants)`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ablations(predictor: &DemandPredictor) -> SimResult<Vec<AblationRow>> {
    let base = SocConfig::skylake_default();
    let spec_subset: Vec<Workload> = ["gamess", "namd", "perlbench", "astar", "lbm", "milc"]
        .iter()
        .map(|n| spec_workload(n).expect("subset exists"))
        .collect();
    let video = sysscale_workloads::battery_workload("video-playback").expect("exists");

    let mut registry = GovernorRegistry::builtin();
    let variants = ablation_variants(&base, predictor);
    for v in &variants {
        registry.register(Arc::clone(v));
    }
    let mut workloads = spec_subset.clone();
    workloads.push(video.clone());
    let mut columns: Vec<String> = vec!["baseline".into()];
    columns.extend(variants.iter().map(|v| v.name().to_string()));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let runs = ScenarioSet::matrix_with(&registry, &base, &workloads, &column_refs)?
        .with_baseline("baseline")
        .run_parallel(&mut SessionPool::new(), exec::default_threads())?;

    variants
        .iter()
        .map(|v| {
            let speedups = spec_subset
                .iter()
                .map(|w| runs.require_cell(&w.name, v.name()).map(|c| c.speedup_pct))
                .collect::<SimResult<Vec<f64>>>()?;
            let video_cell = runs.require_cell(&video.name, v.name())?;
            Ok(AblationRow {
                name: v.name().to_string(),
                avg_speedup_pct: sysscale_types::stats::mean(&speedups),
                video_playback_power_reduction_pct: video_cell.power_reduction_pct,
            })
        })
        .collect()
}

/// Measures the worst-case transition stall on the real flow (used by the
/// overhead bench).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measured_transition_stall(config: &SocConfig) -> SimResult<SimTime> {
    let scenario = Scenario::builder(spec_workload("astar").expect("exists"))
        .config(config.clone())
        .governor("sysscale")
        .build()?;
    let record = SimSession::new().run(&scenario)?;
    Ok(record.report.transitions.max_stall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_the_paper_budgets() {
        let o = overheads();
        assert!(o.transition_stall_us < 10.0);
        assert!(o.mrc_sram_bytes <= 512);
        assert!(o.firmware_bytes <= 1024);
        assert_eq!(o.new_counters, 4);
    }

    #[test]
    fn fig10_gains_shrink_as_tdp_grows() {
        let predictor = DemandPredictor::skylake_default();
        let points = fig10(&predictor, &[3.5, 15.0]).unwrap();
        assert_eq!(points.len(), 2);
        let constrained = &points[0];
        let ample = &points[1];
        assert!(
            constrained.summary.mean > ample.summary.mean,
            "3.5W mean {} vs 15W mean {}",
            constrained.summary.mean,
            ample.summary.mean
        );
        assert!(constrained.summary.max > constrained.summary.mean);
        assert!(constrained.speedups_pct.len() >= 25);
    }

    #[test]
    fn measured_transition_stall_is_within_budget() {
        let stall = measured_transition_stall(&SocConfig::skylake_default()).unwrap();
        assert!(stall.as_micros() < 10.0);
    }
}
