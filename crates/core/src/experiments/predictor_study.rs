//! The predictor-accuracy study of Fig. 6.
//!
//! The paper evaluates its demand predictor on >1600 workloads across three
//! DRAM-frequency pairs and three workload classes (single-threaded CPU,
//! multi-threaded CPU, graphics), reporting the correlation between the
//! actual and predicted performance impact, the prediction accuracy, and the
//! absence of false positives (a false positive would let the SoC drop to the
//! low point and hurt performance beyond the bound).
//!
//! Substitution note (documented in DESIGN.md): the proprietary suites are
//! replaced by the synthetic population generator, and the third frequency
//! pair uses DDR4 2.13→1.33 GHz (the nearest supported bins) instead of the
//! paper's 2.13→1.06 GHz.

use sysscale_soc::SocConfig;
use sysscale_types::{
    exec, stats, Freq, OperatingPointTable, Power, SimResult, UncoreOperatingPoint,
};
use sysscale_workloads::{ClassBucketSource, GeneratorConfig, WorkloadClass, WorkloadSource};

use crate::calibration::{
    calibration_source, fit_impact_model, sample_fold_consumer, samples_from_runs,
    CalibrationConfig, CalibrationSample,
};
use crate::scenario::{SessionPool, SweepSet};

/// One panel of Fig. 6: a (frequency pair, workload class) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorPanel {
    /// Workload class of the panel's population.
    pub class: WorkloadClass,
    /// High DRAM frequency of the pair, GHz.
    pub high_ghz: f64,
    /// Low DRAM frequency of the pair, GHz.
    pub low_ghz: f64,
    /// Number of evaluated (test-set) workloads.
    pub workloads: usize,
    /// Pearson correlation between actual and predicted performance impact.
    pub correlation: f64,
    /// Fraction of workloads whose low-point/high-point decision was correct,
    /// percent.
    pub accuracy_pct: f64,
    /// Fraction of workloads predicted safe whose actual degradation exceeded
    /// the bound, percent (the paper reports zero).
    pub false_positive_pct: f64,
    /// Mean actual degradation across the panel, percent.
    pub mean_actual_degradation_pct: f64,
}

/// Configuration of the Fig. 6 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorStudyConfig {
    /// Workloads generated *per panel* (9 panels; the paper's total is
    /// >1600, i.e. ~180 per panel).
    pub workloads_per_panel: usize,
    /// RNG seed.
    pub seed: u64,
    /// Degradation bound used for the accuracy/false-positive accounting.
    pub degradation_bound: f64,
    /// Conservative margin added to the predicted impact before declaring a
    /// workload safe (this is what eliminates false positives).
    pub safety_margin: f64,
    /// Per-run simulated duration.
    pub calibration: CalibrationConfig,
}

impl Default for PredictorStudyConfig {
    fn default() -> Self {
        Self {
            workloads_per_panel: 60,
            seed: 0xF166,
            degradation_bound: 0.02,
            safety_margin: 0.01,
            calibration: CalibrationConfig::default(),
        }
    }
}

/// The three DRAM frequency pairs of the study, as platform configurations.
#[must_use]
pub fn frequency_pair_configs(base: &SocConfig) -> Vec<(f64, f64, SocConfig)> {
    // Pair 1: LPDDR3 1.6 -> 0.8 GHz.
    let pair1 = base.clone().with_uncore_ladder(
        OperatingPointTable::new(vec![
            UncoreOperatingPoint::new(Freq::from_ghz(0.8), Freq::from_ghz(0.3), 0.80, 0.82),
            UncoreOperatingPoint::new(Freq::from_ghz(1.6), Freq::from_ghz(0.8), 1.0, 1.0),
        ])
        .expect("static ladder"),
    );
    // Pair 2: LPDDR3 1.6 -> 1.066 GHz (the shipped configuration).
    let pair2 = base.clone();
    // Pair 3: DDR4 2.13 -> 1.33 GHz.
    let pair3 = SocConfig::skylake_ddr4(base.tdp).with_uncore_ladder(
        OperatingPointTable::new(vec![
            UncoreOperatingPoint::new(Freq::from_ghz(1.3333), Freq::from_ghz(0.4), 0.82, 0.87),
            UncoreOperatingPoint::new(Freq::from_ghz(2.1333), Freq::from_ghz(0.8), 1.0, 1.0),
        ])
        .expect("static ladder"),
    );
    vec![
        (1.6, 0.8, pair1),
        (1.6, 1.0666, pair2),
        (2.1333, 1.3333, pair3),
    ]
}

/// The three class buckets of the study, in panel order.
const PANEL_CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::CpuSingleThread,
    WorkloadClass::CpuMultiThread,
    WorkloadClass::Graphics,
];

/// The streaming population recipe of one panel: the class's bucket of the
/// frequency pair's `(seed, quota)` population, generated on the fly (see
/// [`ClassBucketSource`]). One generator seed per pair, so every pair sees
/// the same population.
fn panel_population(
    study: &PredictorStudyConfig,
    pair_idx: usize,
    class: WorkloadClass,
) -> ClassBucketSource {
    ClassBucketSource::new(
        GeneratorConfig {
            seed: study.seed + pair_idx as u64,
            ..GeneratorConfig::default()
        },
        study.workloads_per_panel,
        class,
    )
}

fn panel_from_samples(
    class: WorkloadClass,
    high_ghz: f64,
    low_ghz: f64,
    samples: &[CalibrationSample],
    config: &PredictorStudyConfig,
) -> PredictorPanel {
    // Train/test split: even indices train the impact model, odd indices are
    // evaluated — the paper's offline-training/online-use separation.
    let train: Vec<CalibrationSample> = samples.iter().step_by(2).cloned().collect();
    let test: Vec<&CalibrationSample> = samples.iter().skip(1).step_by(2).collect();
    let model = fit_impact_model(&train);

    let actual: Vec<f64> = test.iter().map(|s| s.actual_degradation).collect();
    let predicted: Vec<f64> = test.iter().map(|s| model.predict(&s.counters)).collect();
    let correlation = stats::pearson_correlation(&actual, &predicted);

    let bound = config.degradation_bound;
    let mut correct = 0usize;
    let mut false_positives = 0usize;
    for (a, p) in actual.iter().zip(predicted.iter()) {
        let predicted_safe = p + config.safety_margin <= bound;
        let actually_safe = *a <= bound;
        if predicted_safe == actually_safe {
            correct += 1;
        }
        if predicted_safe && !actually_safe {
            false_positives += 1;
        }
    }
    let n = test.len().max(1) as f64;
    PredictorPanel {
        class,
        high_ghz,
        low_ghz,
        workloads: test.len(),
        correlation,
        accuracy_pct: correct as f64 / n * 100.0,
        false_positive_pct: false_positives as f64 / n * 100.0,
        mean_actual_degradation_pct: stats::mean(&actual) * 100.0,
    }
}

/// Runs the full Fig. 6 study: 3 frequency pairs × 3 workload classes, as
/// one sharded sweep on a fresh pool at [`exec::default_threads`]; see
/// [`fig6_in`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6(base: &SocConfig, study: &PredictorStudyConfig) -> SimResult<Vec<PredictorPanel>> {
    fig6_in(
        &mut SessionPool::new(),
        exec::default_threads(),
        base,
        study,
    )
}

/// The nine panel shapes of the study — `(pair index, class)` in member
/// order — together with their streaming populations and platform
/// configurations, shared by the fold-based and materialized paths.
struct StudyLayout {
    pairs: Vec<(f64, f64, SocConfig)>,
    shapes: Vec<(usize, WorkloadClass)>,
    populations: Vec<ClassBucketSource>,
}

fn study_layout(base: &SocConfig, study: &PredictorStudyConfig) -> StudyLayout {
    let pairs = frequency_pair_configs(base);
    // Panel shapes in sweep-member order: (pair, class) nested like the
    // original per-panel loop.
    let shapes: Vec<(usize, WorkloadClass)> = (0..pairs.len())
        .flat_map(|pair_idx| PANEL_CLASSES.iter().map(move |&class| (pair_idx, class)))
        .collect();
    let populations: Vec<ClassBucketSource> = shapes
        .iter()
        .map(|&(pair_idx, class)| panel_population(study, pair_idx, class))
        .collect();
    StudyLayout {
        pairs,
        shapes,
        populations,
    }
}

/// [`fig6`] on a caller-provided pool and worker count.
///
/// All nine panels — `3 frequency pairs × 3 workload classes`, each a
/// `2 × population` measurement — flatten into **one** [`SweepSet`] batch:
/// cells are hash-sharded by platform fingerprint (each pair's
/// configuration lands on one worker for the whole study), and every
/// panel's synthetic population streams from a [`ClassBucketSource`] recipe
/// per shard instead of being materialized up front, so the study's
/// workload memory is O(workers) no matter how large
/// [`PredictorStudyConfig::workloads_per_panel`] grows.
///
/// The panels aggregate through a fold consumer
/// ([`SweepSet::run_parallel_fold`]): each workload's high/low pair reduces
/// to its calibration sample as soon as both halves have run, so *result*
/// memory never holds the study's `18 × population` records either. The
/// panels are bit-identical to the materialized reference path
/// ([`fig6_collected_in`]) at any worker count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_in(
    pool: &mut SessionPool,
    threads: usize,
    base: &SocConfig,
    study: &PredictorStudyConfig,
) -> SimResult<Vec<PredictorPanel>> {
    let layout = study_layout(base, study);
    let sources = layout
        .shapes
        .iter()
        .zip(&layout.populations)
        .map(|(&(pair_idx, _), population)| {
            calibration_source(&layout.pairs[pair_idx].2, population, &study.calibration)
        })
        .collect::<SimResult<Vec<_>>>()?;

    // Every pair of a panel reduces to one sample; the consumer spans all
    // nine members with per-member platform configurations and classes.
    let member_pairs: Vec<usize> = layout.populations.iter().map(WorkloadSource::len).collect();
    let configs: Vec<SocConfig> = layout
        .shapes
        .iter()
        .map(|&(pair_idx, _)| layout.pairs[pair_idx].2.clone())
        .collect();
    let classes: Vec<WorkloadClass> = layout
        .shapes
        .iter()
        .zip(&member_pairs)
        .flat_map(|(&(_, class), &pairs)| std::iter::repeat(class).take(pairs))
        .collect();
    let consumer = sample_fold_consumer(configs, study.calibration, member_pairs.clone(), classes);

    let mut sweep = SweepSet::new();
    for source in &sources {
        sweep.push_source(source, None);
    }
    let acc = sweep.run_parallel_fold(pool, threads, &consumer)?;
    let mut samples = consumer.into_outputs(acc).into_iter();

    Ok(layout
        .shapes
        .iter()
        .zip(&member_pairs)
        .map(|(&(pair_idx, class), &pairs)| {
            let member_samples: Vec<CalibrationSample> = samples.by_ref().take(pairs).collect();
            let (high, low, _) = &layout.pairs[pair_idx];
            panel_from_samples(class, *high, *low, &member_samples, study)
        })
        .collect())
}

/// The materialized reference path of the Fig. 6 study — collect every
/// member's [`crate::RunSet`], then convert to samples via
/// [`samples_from_runs`] — retained for the fold differential test harness
/// to compare [`fig6_in`] against.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_collected_in(
    pool: &mut SessionPool,
    threads: usize,
    base: &SocConfig,
    study: &PredictorStudyConfig,
) -> SimResult<Vec<PredictorPanel>> {
    let layout = study_layout(base, study);
    let sources = layout
        .shapes
        .iter()
        .zip(&layout.populations)
        .map(|(&(pair_idx, _), population)| {
            calibration_source(&layout.pairs[pair_idx].2, population, &study.calibration)
        })
        .collect::<SimResult<Vec<_>>>()?;

    let mut sweep = SweepSet::new();
    for source in &sources {
        sweep.push_source(source, None);
    }
    let member_runs = sweep.run_parallel(pool, threads)?;

    Ok(layout
        .shapes
        .iter()
        .zip(&layout.populations)
        .zip(&member_runs)
        .map(|((&(pair_idx, class), population), runs)| {
            let (high, low, config) = &layout.pairs[pair_idx];
            let samples = samples_from_runs(config, population, &study.calibration, runs);
            panel_from_samples(class, *high, *low, &samples, study)
        })
        .collect())
}

/// Convenience: total average power of the study platform (used by the
/// figures binary to annotate the panels).
#[must_use]
pub fn study_tdp(base: &SocConfig) -> Power {
    base.tdp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_pairs_match_the_supported_bins() {
        let pairs = frequency_pair_configs(&SocConfig::skylake_default());
        assert_eq!(pairs.len(), 3);
        for (high, low, config) in &pairs {
            assert!(high > low);
            assert!(config.validate().is_ok());
        }
    }

    #[test]
    fn small_fig6_study_produces_nine_panels_with_usable_predictions() {
        let study = PredictorStudyConfig {
            workloads_per_panel: 16,
            calibration: CalibrationConfig {
                degradation_bound: 0.02,
                sim_duration: sysscale_types::SimTime::from_millis(40.0),
            },
            ..PredictorStudyConfig::default()
        };
        let panels = fig6(&SocConfig::skylake_default(), &study).unwrap();
        assert_eq!(panels.len(), 9);
        for p in &panels {
            assert!(p.workloads >= 6);
            // With tiny test populations the statistics are noisy; the full
            // study (figures binary / bench) uses the paper-scale population.
            assert!(p.accuracy_pct >= 40.0, "{p:?}");
            assert!((-1.0..=1.0).contains(&p.correlation));
        }
        // The larger frequency drop degrades performance more on average.
        let big_drop: f64 = panels
            .iter()
            .filter(|p| (p.low_ghz - 0.8).abs() < 1e-6)
            .map(|p| p.mean_actual_degradation_pct)
            .sum();
        let small_drop: f64 = panels
            .iter()
            .filter(|p| (p.low_ghz - 1.0666).abs() < 1e-6)
            .map(|p| p.mean_actual_degradation_pct)
            .sum();
        assert!(
            big_drop > small_drop - 0.5,
            "big {big_drop} small {small_drop}"
        );
    }
}
