//! Motivation experiments: Table 1, Fig. 2(a–c), Fig. 3(a–b), and Fig. 4.

use std::sync::{Arc, Mutex};

use sysscale_compute::{CpuModel, GfxModel};
use sysscale_iodev::{DisplayController, DisplayPanel, IspEngine, IspMode, Resolution};
use sysscale_soc::{FnTraceSink, SocConfig};
use sysscale_types::{exec, Freq, SimError, SimResult, SimTime, Voltage};
use sysscale_workloads::{graphics_workload, spec_workload, stream_peak_bandwidth, Workload};

use crate::scenario::{Scenario, ScenarioSet, SessionPool};

/// One row of Table 1: a component and its setting in the two experimental
/// setups.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Component name.
    pub component: String,
    /// Setting in the baseline setup.
    pub baseline: String,
    /// Setting in the MD-DVFS setup.
    pub md_dvfs: String,
}

/// Regenerates Table 1 from the configured operating-point ladder.
#[must_use]
pub fn table1(config: &SocConfig) -> Vec<Table1Row> {
    let high = config.uncore_ladder().highest();
    let low = config.uncore_ladder().lowest();
    vec![
        Table1Row {
            component: "DRAM frequency".into(),
            baseline: format!("{:.2}GHz", high.dram_freq.as_ghz()),
            md_dvfs: format!("{:.2}GHz", low.dram_freq.as_ghz()),
        },
        Table1Row {
            component: "IO Interconnect".into(),
            baseline: format!("{:.1}GHz", high.io_interconnect_freq.as_ghz()),
            md_dvfs: format!("{:.1}GHz", low.io_interconnect_freq.as_ghz()),
        },
        Table1Row {
            component: "Shared Voltage".into(),
            baseline: "V_SA".into(),
            md_dvfs: format!("{:.2}*V_SA", low.vsa_scale),
        },
        Table1Row {
            component: "DDRIO Digital".into(),
            baseline: "V_IO".into(),
            md_dvfs: format!("{:.2}*V_IO", low.vio_scale),
        },
        Table1Row {
            component: "2 Cores (4 threads)".into(),
            baseline: "1.2GHz".into(),
            md_dvfs: "1.2GHz".into(),
        },
    ]
}

/// Fig. 2(a): impact of the static MD-DVFS setup on one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2aRow {
    /// Benchmark name.
    pub workload: String,
    /// Average-power reduction of MD-DVFS vs the baseline, percent.
    pub power_reduction_pct: f64,
    /// Energy reduction, percent.
    pub energy_reduction_pct: f64,
    /// Performance change (negative = degradation), percent.
    pub perf_change_pct: f64,
    /// EDP improvement, percent.
    pub edp_improvement_pct: f64,
    /// Performance change when the saved budget is redistributed to the
    /// cores (the "MD-DVFS at 1.3 GHz" bar), percent.
    pub perf_change_with_redistribution_pct: f64,
}

/// Runs the Fig. 2(a) experiment for the three motivation benchmarks: one
/// `workloads x {baseline, md-dvfs, md-dvfs-redist}` scenario matrix.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig2a(config: &SocConfig) -> SimResult<Vec<Fig2aRow>> {
    let workloads: Vec<Workload> = ["perlbench", "cactusADM", "lbm"]
        .iter()
        .map(|name| spec_workload(name).expect("motivation benchmarks exist"))
        .collect();
    let runs = ScenarioSet::matrix(
        config,
        &workloads,
        &["baseline", "md-dvfs", "md-dvfs-redist"],
    )?
    .with_baseline("baseline")
    .run_parallel(&mut SessionPool::new(), exec::default_threads())?;
    workloads
        .iter()
        .map(|w| {
            let cell = |gov: &str| {
                runs.cell(&w.name, gov)
                    .ok_or_else(|| SimError::invalid_config(format!("({}, {gov}) missing", w.name)))
            };
            let scaled = cell("md-dvfs")?;
            let boosted = cell("md-dvfs-redist")?;
            Ok(Fig2aRow {
                workload: w.name.clone(),
                power_reduction_pct: scaled.power_reduction_pct,
                energy_reduction_pct: scaled.energy_reduction_pct,
                perf_change_pct: scaled.speedup_pct,
                edp_improvement_pct: scaled.edp_improvement_pct,
                perf_change_with_redistribution_pct: boosted.speedup_pct,
            })
        })
        .collect()
}

/// Fig. 2(b): bottleneck breakdown of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2bRow {
    /// Benchmark name.
    pub workload: String,
    /// Fraction of performance bound by main-memory latency.
    pub latency_bound: f64,
    /// Fraction bound by main-memory bandwidth.
    pub bandwidth_bound: f64,
    /// Fraction bound by non-memory events.
    pub non_memory: f64,
}

/// Runs the Fig. 2(b) bottleneck analysis.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig2b(config: &SocConfig) -> SimResult<Vec<Fig2bRow>> {
    let cpu = CpuModel::new(config.cpu)?;
    ["perlbench", "cactusADM", "lbm"]
        .iter()
        .map(|name| {
            let workload = spec_workload(name).expect("motivation benchmarks exist");
            // Weight each phase's stall decomposition by its duration.
            let total = workload.iteration_length().as_secs();
            let mut latency = 0.0;
            let mut bandwidth = 0.0;
            for phase in &workload.phases {
                let r = cpu.evaluate(
                    &phase.cpu,
                    Freq::from_ghz(1.2),
                    SimTime::from_nanos(70.0),
                    1.0,
                );
                let weight = phase.duration.as_secs() / total;
                // A high blocking fraction means the exposed stalls are
                // latency-bound; the remainder of the memory time is
                // bandwidth/occupancy-bound.
                latency += r.memory_stall_fraction * phase.cpu.blocking_fraction * weight;
                bandwidth += r.memory_stall_fraction * (1.0 - phase.cpu.blocking_fraction) * weight;
            }
            Ok(Fig2bRow {
                workload: workload.name.clone(),
                latency_bound: latency,
                bandwidth_bound: bandwidth,
                non_memory: (1.0 - latency - bandwidth).max(0.0),
            })
        })
        .collect()
}

/// Fig. 2(c) / Fig. 3(a): a memory-bandwidth-demand-over-time series.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthTrace {
    /// Workload name.
    pub workload: String,
    /// `(time in seconds, demanded bandwidth in GiB/s)` samples.
    pub samples: Vec<(f64, f64)>,
    /// Average demand over the run, GiB/s.
    pub average_gib_s: f64,
    /// Peak demand over the run, GiB/s.
    pub peak_gib_s: f64,
}

/// Reservoir capacity of the streaming bandwidth-trace reducer: large
/// enough that every motivation-figure trace (a few seconds of 1 ms slices)
/// is captured exactly, while any longer run's trace memory stays
/// O(capacity).
pub const TRACE_RESERVOIR_CAPACITY: usize = 16_384;

/// Streaming reducer over a bandwidth-demand trace: exact running
/// average/peak over **every** slice, plus a fixed-capacity reservoir of
/// `(time, demand)` samples.
///
/// The reservoir decimates deterministically: it keeps slices whose index is
/// a multiple of the current stride, and when it fills it drops every other
/// kept sample and doubles the stride. Runs no longer than the capacity are
/// therefore reproduced exactly (stride 1), and longer runs keep a uniformly
/// spaced downsample of at least `capacity / 2` points — with peak trace
/// memory O(capacity) regardless of run length, which is what lets Fig. 3(a)
/// stream its samples instead of buffering whole traces on every worker.
#[derive(Debug, Clone)]
pub struct BandwidthReducer {
    capacity: usize,
    stride: u64,
    seen: u64,
    sum: f64,
    peak: f64,
    samples: Vec<(f64, f64)>,
}

impl BandwidthReducer {
    /// An empty reducer holding at most `capacity` reservoir samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            stride: 1,
            seen: 0,
            sum: 0.0,
            peak: 0.0,
            samples: Vec::new(),
        }
    }

    /// Consumes one slice sample.
    pub fn record(&mut self, at_secs: f64, demand_gib_s: f64) {
        self.sum += demand_gib_s;
        self.peak = self.peak.max(demand_gib_s);
        if self.seen % self.stride == 0 {
            if self.samples.len() == self.capacity {
                // Compact: keep every other sample (original indices that
                // are multiples of the doubled stride) and re-test this one.
                let mut keep = 0usize;
                self.samples.retain(|_| {
                    let kept = keep % 2 == 0;
                    keep += 1;
                    kept
                });
                self.stride *= 2;
            }
            if self.seen % self.stride == 0 {
                self.samples.push((at_secs, demand_gib_s));
            }
        }
        self.seen += 1;
    }

    /// Number of slices consumed so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of reservoir samples currently held (≤ capacity).
    #[must_use]
    pub fn reservoir_len(&self) -> usize {
        self.samples.len()
    }

    /// Exact average demand over every consumed slice, GiB/s.
    #[must_use]
    pub fn average_gib_s(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sum / self.seen as f64
        }
    }

    /// Exact peak demand over every consumed slice, GiB/s.
    #[must_use]
    pub fn peak_gib_s(&self) -> f64 {
        self.peak
    }

    /// Finishes the reduction into a figure series.
    #[must_use]
    pub fn into_trace(self, workload: impl Into<String>) -> BandwidthTrace {
        BandwidthTrace {
            workload: workload.into(),
            average_gib_s: self.average_gib_s(),
            peak_gib_s: self.peak_gib_s(),
            samples: self.samples,
        }
    }
}

/// Runs each workload once (one parallel batch), streaming every slice
/// through a per-run [`BandwidthReducer`] behind an [`FnTraceSink`] — no
/// full trace is ever buffered; each worker holds O(reservoir) trace memory.
fn bandwidth_traces(
    config: &SocConfig,
    workloads: Vec<Workload>,
) -> SimResult<Vec<BandwidthTrace>> {
    let reducers: Vec<Arc<Mutex<BandwidthReducer>>> = workloads
        .iter()
        .map(|_| Arc::new(Mutex::new(BandwidthReducer::new(TRACE_RESERVOIR_CAPACITY))))
        .collect();
    let mut set = ScenarioSet::new();
    for (workload, reducer) in workloads.into_iter().zip(&reducers) {
        let reducer = Arc::clone(reducer);
        set.push(
            Scenario::builder(workload)
                .config(config.clone())
                .stream_trace(move || {
                    let reducer = Arc::clone(&reducer);
                    Box::new(FnTraceSink::new(move |slice| {
                        reducer
                            .lock()
                            .expect("reducer mutex poisoned")
                            .record(slice.at.as_secs(), slice.demanded_gib_s);
                    }))
                })
                .build()?,
        );
    }
    let runs = set.run_parallel(&mut SessionPool::new(), exec::default_threads())?;
    // The scenarios' sink factories hold the last Arc clones; dropping the
    // set makes each reducer uniquely owned again.
    drop(set);
    Ok(runs
        .records()
        .iter()
        .zip(reducers)
        .map(|(record, reducer)| {
            let reducer = Arc::into_inner(reducer)
                .expect("all sinks dropped after the batch")
                .into_inner()
                .expect("reducer mutex poisoned");
            reducer.into_trace(record.workload.clone())
        })
        .collect())
}

/// Runs the Fig. 2(c) experiment (bandwidth demand of the three motivation
/// benchmarks).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig2c(config: &SocConfig) -> SimResult<Vec<BandwidthTrace>> {
    let workloads = ["perlbench", "cactusADM", "lbm"]
        .iter()
        .map(|name| spec_workload(name).expect("exists"))
        .collect();
    bandwidth_traces(config, workloads)
}

/// Runs the Fig. 3(a) experiment (demand over time for three SPEC benchmarks
/// and a 3DMark scene).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig3a(config: &SocConfig) -> SimResult<Vec<BandwidthTrace>> {
    let workloads = vec![
        spec_workload("perlbench").expect("exists"),
        spec_workload("lbm").expect("exists"),
        spec_workload("astar").expect("exists"),
        graphics_workload("3DMark06").expect("exists"),
    ];
    bandwidth_traces(config, workloads)
}

/// Fig. 3(b): static bandwidth demand of one IO/graphics configuration, as a
/// fraction of the dual-channel LPDDR3-1600 peak.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3bRow {
    /// Configuration name.
    pub configuration: String,
    /// Demand in GiB/s.
    pub demand_gib_s: f64,
    /// Demand as a fraction of the 25.6 GB/s peak.
    pub fraction_of_peak: f64,
}

/// Regenerates Fig. 3(b) from the IO-device models.
#[must_use]
pub fn fig3b() -> Vec<Fig3bRow> {
    const PEAK: f64 = 25.6e9;
    let mut rows = Vec::new();
    let display_configs: [(&str, Vec<Resolution>); 4] = [
        ("display: 1x HD", vec![Resolution::FullHd]),
        (
            "display: 2x HD",
            vec![Resolution::FullHd, Resolution::FullHd],
        ),
        (
            "display: 3x HD",
            vec![Resolution::FullHd, Resolution::FullHd, Resolution::FullHd],
        ),
        ("display: 1x 4K", vec![Resolution::Uhd4k]),
    ];
    for (name, panels) in display_configs {
        let mut d = DisplayController::default();
        for r in panels {
            d.attach(DisplayPanel::at_60hz(r))
                .expect("within panel limit");
        }
        let bw = d.bandwidth_demand().as_bytes_per_sec();
        rows.push(Fig3bRow {
            configuration: name.to_string(),
            demand_gib_s: bw / (1u64 << 30) as f64,
            fraction_of_peak: bw / PEAK,
        });
    }
    for (name, mode) in [
        ("isp: 1080p30", IspMode::Capture1080p30),
        ("isp: 4K30", IspMode::Capture4k30),
    ] {
        let mut isp = IspEngine::default();
        isp.set_mode(mode);
        let bw = isp.bandwidth_demand().as_bytes_per_sec();
        rows.push(Fig3bRow {
            configuration: name.to_string(),
            demand_gib_s: bw / (1u64 << 30) as f64,
            fraction_of_peak: bw / PEAK,
        });
    }
    let gfx = GfxModel::new();
    for name in ["3DMark06", "3DMark11", "3DMarkVantage"] {
        let w = graphics_workload(name).expect("exists");
        let bw = gfx
            .desired_bandwidth(&w.phases[0].gfx, Freq::from_mhz(800.0))
            .as_bytes_per_sec();
        rows.push(Fig3bRow {
            configuration: format!("gfx: {name}"),
            demand_gib_s: bw / (1u64 << 30) as f64,
            fraction_of_peak: bw / PEAK,
        });
    }
    rows
}

/// Fig. 4: impact of unoptimized MRC values on the peak-bandwidth
/// microbenchmark at the low operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Result {
    /// Average-power increase of the unoptimized configuration, percent.
    pub power_increase_pct: f64,
    /// Performance degradation of the unoptimized configuration, percent.
    pub perf_degradation_pct: f64,
    /// Memory-domain power increase (isolating the memory subsystem), percent.
    pub memory_power_increase_pct: f64,
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig4(config: &SocConfig) -> SimResult<Fig4Result> {
    let stream = stream_peak_bandwidth();
    // Unoptimized variant: same transition without the MRC reload step.
    let mut naive_config = config.clone();
    naive_config.reload_mrc_on_transition = false;

    let mut set = ScenarioSet::new();
    // Optimized: the SysScale flow reloads MRC values on the transition to
    // the low point.
    set.push(
        Scenario::builder(stream.clone())
            .config(config.clone())
            .governor("md-dvfs")
            .build()?,
    );
    set.push(
        Scenario::builder(stream)
            .config(naive_config)
            .governor("md-dvfs")
            .build()?,
    );
    let runs = set.run_parallel(&mut SessionPool::new(), exec::default_threads())?;
    let optimized = runs.records()[0].report.clone();
    let unoptimized = runs.records()[1].report.clone();

    let power_increase =
        (unoptimized.average_power().as_watts() / optimized.average_power().as_watts() - 1.0)
            * 100.0;
    let mem_increase = (unoptimized
        .average_domain_power(sysscale_types::Domain::Memory)
        .as_watts()
        / optimized
            .average_domain_power(sysscale_types::Domain::Memory)
            .as_watts()
        - 1.0)
        * 100.0;
    let perf_degradation = -unoptimized.speedup_pct_over(&optimized);
    Ok(Fig4Result {
        power_increase_pct: power_increase,
        perf_degradation_pct: perf_degradation,
        memory_power_increase_pct: mem_increase,
    })
}

/// Voltage/frequency settings implied by Table 1, exposed for reporting.
#[must_use]
pub fn table1_voltages(config: &SocConfig) -> Vec<(String, Voltage)> {
    let low = config.uncore_ladder().lowest();
    let rails = sysscale_power::RailVoltages::for_operating_point(&config.nominal_voltages, low);
    vec![
        ("V_SA (low OP)".into(), rails.vsa),
        ("V_IO (low OP)".into(), rails.vio),
        ("VDDQ".into(), rails.vddq),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reflects_the_ladder() {
        let rows = table1(&SocConfig::skylake_default());
        assert_eq!(rows.len(), 5);
        assert!(rows[0].baseline.contains("1.60GHz"));
        assert!(rows[0].md_dvfs.contains("1.07GHz"));
        assert!(rows[2].md_dvfs.contains("0.80"));
        let volts = table1_voltages(&SocConfig::skylake_default());
        assert_eq!(volts.len(), 3);
    }

    #[test]
    fn fig2a_shape_power_drops_membound_perf_drops_redistribution_helps_perlbench() {
        let rows = fig2a(&SocConfig::skylake_default()).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.power_reduction_pct > 3.0, "{}: {row:?}", row.workload);
        }
        let perl = &rows[0];
        let lbm = &rows[2];
        // lbm loses significant performance under static MD-DVFS; perlbench
        // barely does and gains with redistribution (Fig. 2a).
        assert!(lbm.perf_change_pct < -5.0);
        assert!(perl.perf_change_pct > -3.0);
        assert!(perl.perf_change_with_redistribution_pct > 2.0);
        assert!(perl.energy_reduction_pct > lbm.energy_reduction_pct);
    }

    #[test]
    fn fig2b_identifies_cactusadm_as_latency_bound_and_lbm_as_bandwidth_bound() {
        let rows = fig2b(&SocConfig::skylake_default()).unwrap();
        let cactus = rows.iter().find(|r| r.workload.contains("cactus")).unwrap();
        let lbm = rows.iter().find(|r| r.workload.contains("lbm")).unwrap();
        let perl = rows.iter().find(|r| r.workload.contains("perl")).unwrap();
        assert!(cactus.latency_bound > cactus.bandwidth_bound);
        assert!(lbm.bandwidth_bound > lbm.latency_bound);
        assert!(perl.non_memory > 0.7);
        for r in &rows {
            let total = r.latency_bound + r.bandwidth_bound + r.non_memory;
            assert!((total - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fig3b_display_rows_match_paper_fractions() {
        let rows = fig3b();
        let hd = rows
            .iter()
            .find(|r| r.configuration == "display: 1x HD")
            .unwrap();
        let three_hd = rows
            .iter()
            .find(|r| r.configuration == "display: 3x HD")
            .unwrap();
        let uhd = rows
            .iter()
            .find(|r| r.configuration == "display: 1x 4K")
            .unwrap();
        assert!((0.12..=0.22).contains(&hd.fraction_of_peak));
        assert!((0.6..=0.8).contains(&uhd.fraction_of_peak));
        assert!((three_hd.fraction_of_peak / hd.fraction_of_peak - 3.0).abs() < 1e-9);
        assert!(rows.iter().any(|r| r.configuration.starts_with("isp")));
        assert!(rows.iter().any(|r| r.configuration.starts_with("gfx")));
    }

    #[test]
    fn reducer_reproduces_short_traces_exactly() {
        let mut reducer = BandwidthReducer::new(64);
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 1e-3, (i % 7) as f64 + 0.25))
            .collect();
        for (t, b) in &samples {
            reducer.record(*t, *b);
        }
        assert_eq!(reducer.seen(), 50);
        assert_eq!(reducer.reservoir_len(), 50);
        let expected_avg = samples.iter().map(|(_, b)| b).sum::<f64>() / 50.0;
        assert_eq!(reducer.average_gib_s(), expected_avg);
        assert_eq!(reducer.peak_gib_s(), 6.25);
        let trace = reducer.into_trace("t");
        assert_eq!(trace.samples, samples);
    }

    #[test]
    fn reducer_memory_is_bounded_while_stats_stay_exact() {
        // 1M slices through a 256-slot reservoir: the running stats must be
        // exact, the reservoir bounded and uniformly strided.
        let capacity = 256;
        let mut reducer = BandwidthReducer::new(capacity);
        let n: u64 = 1_000_000;
        let mut sum = 0.0;
        for i in 0..n {
            let b = ((i * 37) % 1000) as f64 / 100.0;
            sum += b;
            reducer.record(i as f64 * 1e-3, b);
        }
        assert_eq!(reducer.seen(), n);
        assert!(reducer.reservoir_len() <= capacity, "O(capacity) memory");
        assert!(
            reducer.reservoir_len() > capacity / 2,
            "decimation keeps at least half the reservoir"
        );
        assert_eq!(reducer.average_gib_s(), sum / n as f64);
        assert_eq!(reducer.peak_gib_s(), 9.99);
        // Kept samples are uniformly strided: timestamps step by a constant
        // power-of-two multiple of the slice length.
        let trace = reducer.into_trace("long");
        let stride = trace.samples[1].0 - trace.samples[0].0;
        for pair in trace.samples.windows(2) {
            assert!((pair[1].0 - pair[0].0 - stride).abs() < 1e-9);
        }
        assert_eq!(trace.samples[0].0, 0.0, "stride-anchored at slice 0");
    }

    #[test]
    fn fig2c_streams_and_keeps_the_papers_demand_ordering() {
        // Shape + paper property; the byte-level streamed-vs-collected diff
        // lives in the integration harness (tests/integration_sweeps.rs).
        let config = SocConfig::skylake_default();
        let rows = fig2c(&config).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(!row.samples.is_empty());
            assert!(row.samples.len() <= TRACE_RESERVOIR_CAPACITY);
            // Tolerance: on a constant-demand trace, summation rounding can
            // put the average an ulp above the peak.
            assert!(row.peak_gib_s >= row.average_gib_s - 1e-9);
        }
        let lbm = rows.iter().find(|r| r.workload.contains("lbm")).unwrap();
        let perl = rows.iter().find(|r| r.workload.contains("perl")).unwrap();
        assert!(
            lbm.average_gib_s > perl.average_gib_s,
            "{lbm:?} vs {perl:?}"
        );
        assert!(lbm.peak_gib_s > perl.peak_gib_s);
    }

    #[test]
    fn fig4_unoptimized_mrc_costs_power_and_performance() {
        let result = fig4(&SocConfig::skylake_default()).unwrap();
        assert!(
            result.perf_degradation_pct > 3.0,
            "perf degradation {result:?}"
        );
        assert!(
            result.memory_power_increase_pct > 8.0,
            "memory power increase {result:?}"
        );
        assert!(result.power_increase_pct > 0.0);
    }
}
