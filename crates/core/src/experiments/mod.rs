//! The experiment harness: one module per group of tables/figures of the
//! paper's evaluation, each producing a result that the `figures` binary and
//! the benches print.
//!
//! Every module is implemented on top of the [`crate::scenario`] API — the
//! figures are [`crate::ScenarioSet`] matrices (or individual
//! [`crate::Scenario`]s) executed through a [`crate::SimSession`].
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`motivation`] | Table 1, Fig. 2(a–c), Fig. 3(a–b), Fig. 4 |
//! | [`predictor_study`] | Fig. 6 |
//! | [`evaluation`] | Fig. 7, Fig. 8, Fig. 9 |
//! | [`sensitivity`] | Fig. 10, the Sec. 7.4 DRAM sensitivity, Sec. 5 overheads, and the ablations |

pub mod evaluation;
pub mod motivation;
pub mod predictor_study;
pub mod sensitivity;

use sysscale_soc::{Governor, SimReport, SocConfig};
use sysscale_types::{SimResult, SimTime};
use sysscale_workloads::Workload;

use crate::scenario::SimSession;

/// Default minimum simulated duration per run. Workloads with longer phase
/// sequences (e.g. 473.astar) are run for at least one full iteration.
pub const MIN_RUN: SimTime = crate::scenario::DEFAULT_MIN_RUN;

/// Simulated duration used for `workload` so that at least one full phase
/// iteration is covered.
#[must_use]
pub fn run_duration(workload: &Workload) -> SimTime {
    crate::scenario::auto_duration(workload)
}

/// Runs one workload on a fresh simulator under the given governor.
///
/// # Errors
///
/// Propagates simulator errors.
#[deprecated(
    since = "0.1.0",
    note = "build a `sysscale::Scenario` and execute it with `sysscale::SimSession` instead"
)]
pub fn run_workload(
    config: &SocConfig,
    workload: &Workload,
    governor: &mut dyn Governor,
) -> SimResult<SimReport> {
    SimSession::new()
        .run_with(config, workload, governor, run_duration(workload), false)
        .map(|(report, _)| report)
}

/// Formats a percentage with one decimal for report tables.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_soc::FixedGovernor;
    use sysscale_workloads::spec_workload;

    #[test]
    fn run_duration_covers_one_iteration() {
        let astar = spec_workload("astar").unwrap();
        assert!(run_duration(&astar) >= astar.iteration_length());
        let gamess = spec_workload("gamess").unwrap();
        assert_eq!(
            run_duration(&gamess),
            gamess.iteration_length().max(MIN_RUN)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_workload_shim_still_works() {
        let report = run_workload(
            &SocConfig::skylake_default(),
            &spec_workload("hmmer").unwrap(),
            &mut FixedGovernor::baseline(),
        )
        .unwrap();
        assert!(report.metrics.work_done > 0.0);
        assert_eq!(fmt_pct(9.2), "+9.2%");
    }
}
