//! The experiment harness: one module per group of tables/figures of the
//! paper's evaluation, each producing a serializable result that the
//! `figures` binary and the Criterion benches print.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`motivation`] | Table 1, Fig. 2(a–c), Fig. 3(a–b), Fig. 4 |
//! | [`predictor_study`] | Fig. 6 |
//! | [`evaluation`] | Fig. 7, Fig. 8, Fig. 9 |
//! | [`sensitivity`] | Fig. 10, the Sec. 7.4 DRAM sensitivity, Sec. 5 overheads, and the ablations |

pub mod evaluation;
pub mod motivation;
pub mod predictor_study;
pub mod sensitivity;

use sysscale_soc::{Governor, SimReport, SocConfig, SocSimulator};
use sysscale_types::{SimResult, SimTime};
use sysscale_workloads::Workload;

/// Default minimum simulated duration per run. Workloads with longer phase
/// sequences (e.g. 473.astar) are run for at least one full iteration.
pub const MIN_RUN: SimTime = SimTime::from_secs(0.3);

/// Simulated duration used for `workload` so that at least one full phase
/// iteration is covered.
#[must_use]
pub fn run_duration(workload: &Workload) -> SimTime {
    workload.iteration_length().max(MIN_RUN)
}

/// Runs one workload on a fresh simulator under the given governor.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_workload(
    config: &SocConfig,
    workload: &Workload,
    governor: &mut dyn Governor,
) -> SimResult<SimReport> {
    let mut sim = SocSimulator::new(config.clone())?;
    sim.run(workload, governor, run_duration(workload))
}

/// Formats a percentage with one decimal for report tables.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_soc::FixedGovernor;
    use sysscale_workloads::spec_workload;

    #[test]
    fn run_duration_covers_one_iteration() {
        let astar = spec_workload("astar").unwrap();
        assert!(run_duration(&astar) >= astar.iteration_length());
        let gamess = spec_workload("gamess").unwrap();
        assert_eq!(run_duration(&gamess), gamess.iteration_length().max(MIN_RUN));
    }

    #[test]
    fn run_workload_round_trips() {
        let report = run_workload(
            &SocConfig::skylake_default(),
            &spec_workload("hmmer").unwrap(),
            &mut FixedGovernor::baseline(),
        )
        .unwrap();
        assert!(report.metrics.work_done > 0.0);
        assert_eq!(fmt_pct(9.2), "+9.2%");
    }
}
