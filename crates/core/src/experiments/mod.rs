//! The experiment harness: one module per group of tables/figures of the
//! paper's evaluation, each producing a result that the `figures` binary and
//! the benches print.
//!
//! Every module is implemented on top of the [`crate::scenario`] API — the
//! figures are [`crate::ScenarioSet`] matrices (or individual
//! [`crate::Scenario`]s) executed through a [`crate::SessionPool`] by the
//! deterministic parallel runner ([`crate::ScenarioSet::run_parallel`]),
//! with the worker count taken from
//! [`sysscale_types::exec::default_threads`] (override with the
//! `SYSSCALE_THREADS` environment variable; `1` reproduces the sequential
//! path).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`motivation`] | Table 1, Fig. 2(a–c), Fig. 3(a–b), Fig. 4 |
//! | [`predictor_study`] | Fig. 6 |
//! | [`evaluation`] | Fig. 7, Fig. 8, Fig. 9 |
//! | [`sensitivity`] | Fig. 10, the Sec. 7.4 DRAM sensitivity, Sec. 5 overheads, and the ablations |

pub mod evaluation;
pub mod motivation;
pub mod predictor_study;
pub mod sensitivity;

use sysscale_types::SimTime;
use sysscale_workloads::Workload;

/// Default minimum simulated duration per run. Workloads with longer phase
/// sequences (e.g. 473.astar) are run for at least one full iteration.
pub const MIN_RUN: SimTime = crate::scenario::DEFAULT_MIN_RUN;

/// Simulated duration used for `workload` so that at least one full phase
/// iteration is covered.
#[must_use]
pub fn run_duration(workload: &Workload) -> SimTime {
    crate::scenario::auto_duration(workload)
}

/// Formats a percentage with one decimal for report tables.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, SimSession};
    use sysscale_workloads::spec_workload;

    #[test]
    fn run_duration_covers_one_iteration() {
        let astar = spec_workload("astar").unwrap();
        assert!(run_duration(&astar) >= astar.iteration_length());
        let gamess = spec_workload("gamess").unwrap();
        assert_eq!(
            run_duration(&gamess),
            gamess.iteration_length().max(MIN_RUN)
        );
    }

    #[test]
    fn single_runs_go_through_the_scenario_api() {
        // What the removed `run_workload` shim used to do, spelled with the
        // scenario API: default duration comes from `auto_duration`.
        let workload = spec_workload("hmmer").unwrap();
        let scenario = Scenario::builder(workload.clone()).build().unwrap();
        assert_eq!(scenario.duration(), run_duration(&workload));
        let record = SimSession::new().run(&scenario).unwrap();
        assert!(record.report.metrics.work_done > 0.0);
        assert_eq!(fmt_pct(9.2), "+9.2%");
    }
}
