//! The SysScale governor and the MemScale/CoScale-style baseline governors.
//!
//! All three implement the [`Governor`] hook of the SoC simulator. SysScale
//! is the paper's holistic policy (Sec. 4.3): it predicts the demand of all
//! three domains and redistributes the freed budget to the compute domain.
//! The MemScale-like policy scales only the memory subsystem based on its
//! bandwidth utilization; the CoScale-like policy additionally caps the CPU
//! frequency on memory-bound intervals. Neither baseline reloads MRC values
//! nor scales the shared `V_SA`/`V_IO` rails — use
//! [`crate::baselines::memscale_config`] to build the matching platform
//! configuration.

use sysscale_soc::{Governor, GovernorDecision, GovernorInput};
use sysscale_types::{CounterKind, Freq};

use crate::predictor::DemandPredictor;

/// The SysScale multi-domain DVFS governor.
#[derive(Debug, Clone, PartialEq)]
pub struct SysScaleGovernor {
    predictor: DemandPredictor,
    /// Whether the freed uncore budget is redistributed to the compute
    /// domain (true for SysScale; false gives a power-save-only ablation).
    pub redistribute: bool,
}

impl SysScaleGovernor {
    /// Creates the governor with a given predictor.
    #[must_use]
    pub fn new(predictor: DemandPredictor) -> Self {
        Self {
            predictor,
            redistribute: true,
        }
    }

    /// The governor with hand-tuned default thresholds.
    #[must_use]
    pub fn with_default_thresholds() -> Self {
        Self::new(DemandPredictor::skylake_default())
    }

    /// Disables budget redistribution (ablation: SysScale as a pure
    /// power-saving mechanism).
    #[must_use]
    pub fn without_redistribution(mut self) -> Self {
        self.redistribute = false;
        self
    }

    /// The predictor in use.
    #[must_use]
    pub fn predictor(&self) -> &DemandPredictor {
        &self.predictor
    }
}

impl Default for SysScaleGovernor {
    fn default() -> Self {
        Self::with_default_thresholds()
    }
}

impl Governor for SysScaleGovernor {
    fn name(&self) -> &str {
        if self.redistribute {
            "sysscale"
        } else {
            "sysscale-no-redist"
        }
    }

    fn decide(&mut self, input: &GovernorInput<'_>) -> GovernorDecision {
        let averages = input.counters.averages();
        let prediction =
            self.predictor
                .predict(&averages, input.static_demand, input.peak_bandwidth);
        // The algorithm of Sec. 4.3: any triggered condition moves the SoC to
        // the (next) higher operating point; otherwise it moves to the (next)
        // lower one. With the two-point ladder of the real implementation
        // this degenerates to high/low.
        let target = if prediction.needs_high_performance {
            input.ladder.step_up(input.current_op)
        } else {
            input.ladder.step_down(input.current_op)
        };
        GovernorDecision {
            target_op: target,
            redistribute_to_compute: self.redistribute,
            cpu_freq_cap: None,
        }
    }
}

/// A MemScale-style memory-only DVFS governor: it lowers the memory operating
/// point whenever the consumed bandwidth fits comfortably below the capacity
/// of the lower point, and raises it otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemScaleGovernor {
    /// Utilization of the *low* operating point's sustainable bandwidth above
    /// which the governor returns to the high point.
    pub upscale_utilization: f64,
    /// Whether saved budget is redistributed (the `-Redist` variant the paper
    /// compares against).
    pub redistribute: bool,
}

impl MemScaleGovernor {
    /// The plain (power-saving only) MemScale-like policy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            upscale_utilization: 0.55,
            redistribute: false,
        }
    }

    /// The `MemScale-Redist` variant used in the paper's comparison.
    #[must_use]
    pub fn redistributing() -> Self {
        Self {
            redistribute: true,
            ..Self::new()
        }
    }
}

impl Default for MemScaleGovernor {
    fn default() -> Self {
        Self::new()
    }
}

fn bandwidth_utilization_of_low_point(input: &GovernorInput<'_>) -> f64 {
    let averages = input.counters.averages();
    let bytes_per_sample = averages.value(CounterKind::MemoryBandwidthBytes);
    if input.sample_seconds <= 0.0 {
        return 0.0;
    }
    let consumed = bytes_per_sample / input.sample_seconds;
    let low = input.ladder.lowest();
    let high = input.ladder.highest();
    let low_peak =
        input.peak_bandwidth.as_bytes_per_sec() * (low.dram_freq.as_hz() / high.dram_freq.as_hz());
    if low_peak <= 0.0 {
        1.0
    } else {
        consumed / low_peak
    }
}

impl Governor for MemScaleGovernor {
    fn name(&self) -> &str {
        if self.redistribute {
            "memscale-redist"
        } else {
            "memscale"
        }
    }

    fn decide(&mut self, input: &GovernorInput<'_>) -> GovernorDecision {
        let utilization = bandwidth_utilization_of_low_point(input);
        let target = if utilization > self.upscale_utilization {
            input.ladder.step_up(input.current_op)
        } else {
            input.ladder.step_down(input.current_op)
        };
        GovernorDecision {
            target_op: target,
            redistribute_to_compute: self.redistribute,
            cpu_freq_cap: None,
        }
    }
}

/// A CoScale-style coordinated CPU + memory DVFS governor: memory decisions
/// follow the MemScale rule, and on memory-bound intervals the CPU frequency
/// request is additionally capped (slowing cores that are stalled anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoScaleGovernor {
    /// The embedded memory policy.
    pub memory: MemScaleGovernor,
    /// LLC stall cycles per sample above which the interval counts as memory
    /// bound and the CPU cap applies.
    pub stall_threshold: f64,
    /// The CPU frequency cap applied on memory-bound intervals.
    pub cpu_cap: Freq,
}

impl CoScaleGovernor {
    /// The plain CoScale-like policy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            memory: MemScaleGovernor::new(),
            stall_threshold: 400_000.0,
            cpu_cap: Freq::from_ghz(1.2),
        }
    }

    /// The `CoScale-Redist` variant used in the paper's comparison.
    #[must_use]
    pub fn redistributing() -> Self {
        Self {
            memory: MemScaleGovernor::redistributing(),
            ..Self::new()
        }
    }
}

impl Default for CoScaleGovernor {
    fn default() -> Self {
        Self::new()
    }
}

impl Governor for CoScaleGovernor {
    fn name(&self) -> &str {
        if self.memory.redistribute {
            "coscale-redist"
        } else {
            "coscale"
        }
    }

    fn decide(&mut self, input: &GovernorInput<'_>) -> GovernorDecision {
        let mut decision = self.memory.decide(input);
        let stalls = input.counters.averages().value(CounterKind::LlcStalls);
        if stalls > self.stall_threshold {
            decision.cpu_freq_cap = Some(self.cpu_cap);
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::{
        skylake_lpddr3_ladder, Bandwidth, CounterSet, CounterWindow, OperatingPointTable, Power,
    };

    fn window_with(kind: CounterKind, value: f64) -> CounterWindow {
        let mut w = CounterWindow::new();
        let mut s = CounterSet::new();
        s.set(kind, value);
        w.push(s);
        w
    }

    fn input<'a>(
        window: &'a CounterWindow,
        ladder: &'a OperatingPointTable,
        static_gib: f64,
    ) -> GovernorInput<'a> {
        GovernorInput {
            counters: window,
            static_demand: Bandwidth::from_gib_s(static_gib),
            current_op: ladder.highest_id(),
            ladder,
            tdp: Power::from_watts(4.5),
            peak_bandwidth: Bandwidth::from_gib_s(23.8),
            sample_seconds: 1e-3,
        }
    }

    #[test]
    fn sysscale_steps_down_on_quiet_intervals_and_up_on_demand() {
        let ladder = skylake_lpddr3_ladder();
        let mut gov = SysScaleGovernor::default();
        assert_eq!(gov.name(), "sysscale");

        let quiet = CounterWindow::new();
        let d = gov.decide(&input(&quiet, &ladder, 2.0));
        assert_eq!(d.target_op, ladder.lowest_id());
        assert!(d.redistribute_to_compute);

        let busy = window_with(CounterKind::LlcStalls, 9.0e5);
        let mut in2 = input(&busy, &ladder, 2.0);
        in2.current_op = ladder.lowest_id();
        let d2 = gov.decide(&in2);
        assert_eq!(d2.target_op, ladder.highest_id());
    }

    #[test]
    fn sysscale_honours_static_demand_even_with_quiet_counters() {
        // A 4K panel's CSR-derived demand keeps the SoC at the high point
        // regardless of what the dynamic counters say (Sec. 4.2).
        let ladder = skylake_lpddr3_ladder();
        let mut gov = SysScaleGovernor::default();
        let quiet = CounterWindow::new();
        let d = gov.decide(&input(&quiet, &ladder, 18.0));
        assert_eq!(d.target_op, ladder.highest_id());
    }

    #[test]
    fn no_redistribution_variant_keeps_budget_fixed() {
        let ladder = skylake_lpddr3_ladder();
        let mut gov = SysScaleGovernor::default().without_redistribution();
        assert_eq!(gov.name(), "sysscale-no-redist");
        let quiet = CounterWindow::new();
        assert!(
            !gov.decide(&input(&quiet, &ladder, 1.0))
                .redistribute_to_compute
        );
    }

    #[test]
    fn memscale_reacts_to_bandwidth_utilization_only() {
        let ladder = skylake_lpddr3_ladder();
        let mut gov = MemScaleGovernor::redistributing();
        assert_eq!(gov.name(), "memscale-redist");
        // Low bandwidth -> low point, even with huge stall counts (MemScale
        // has no latency condition).
        let mut s = CounterSet::new();
        s.set(CounterKind::MemoryBandwidthBytes, 1.0e6);
        s.set(CounterKind::LlcStalls, 9.0e5);
        let mut w = CounterWindow::new();
        w.push(s);
        let d = gov.decide(&input(&w, &ladder, 2.0));
        assert_eq!(d.target_op, ladder.lowest_id());
        // High consumed bandwidth -> high point.
        let busy = window_with(CounterKind::MemoryBandwidthBytes, 14.0e6);
        let d2 = gov.decide(&input(&busy, &ladder, 2.0));
        assert_eq!(d2.target_op, ladder.highest_id());
        assert_eq!(MemScaleGovernor::new().name(), "memscale");
    }

    #[test]
    fn coscale_adds_a_cpu_cap_on_memory_bound_intervals() {
        let ladder = skylake_lpddr3_ladder();
        let mut gov = CoScaleGovernor::redistributing();
        assert_eq!(gov.name(), "coscale-redist");
        let mut s = CounterSet::new();
        s.set(CounterKind::MemoryBandwidthBytes, 14.0e6);
        s.set(CounterKind::LlcStalls, 9.0e5);
        let mut w = CounterWindow::new();
        w.push(s);
        let d = gov.decide(&input(&w, &ladder, 2.0));
        assert_eq!(d.cpu_freq_cap, Some(Freq::from_ghz(1.2)));
        // Compute-bound interval: no cap.
        let calm = window_with(CounterKind::MemoryBandwidthBytes, 2.0e6);
        let d2 = gov.decide(&input(&calm, &ladder, 2.0));
        assert!(d2.cpu_freq_cap.is_none());
        assert_eq!(CoScaleGovernor::new().name(), "coscale");
    }
}
