//! SysScale's demand-prediction mechanism (Sec. 4.2).
//!
//! The predictor combines two sources:
//!
//! * **Static demand** — the deterministic bandwidth requirement implied by
//!   the peripheral CSR configuration (displays, cameras), compared against a
//!   threshold expressed as a fraction of peak bandwidth.
//! * **Dynamic demand** — four performance counters (`GFX_LLC_MISSES`,
//!   `LLC_Occupancy_Tracer`, `LLC_STALLS`, `IO_RPQ`) averaged over the
//!   evaluation interval and compared against thresholds calibrated offline
//!   with the µ+σ rule.
//!
//! If *any* of the five conditions of Sec. 4.3 indicates high demand, the SoC
//! must run (or stay) at the higher operating point; otherwise it may drop to
//! the lower one. In addition to the binary decision, the predictor exposes a
//! linear regression estimate of the performance impact of running at the
//! lower point, which is what the Fig. 6 study evaluates.

use sysscale_types::{Bandwidth, CounterKind, CounterSet};

/// The five demand conditions of the power-distribution algorithm (Sec. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DemandCondition {
    /// Aggregated static demand exceeds `STATIC_BW_THR`.
    StaticBandwidth,
    /// The graphics engines are bandwidth limited (`GFX_LLC_MISSES > GFX_THR`).
    GraphicsBandwidth,
    /// The CPU cores are bandwidth limited (`LLC_Occupancy_Tracer > Core_THR`).
    CoreBandwidth,
    /// Memory latency is a bottleneck (`LLC_STALLS > LAT_THR`).
    MemoryLatency,
    /// IO latency is a bottleneck (`IO_RPQ > IO_THR`).
    IoLatency,
}

impl DemandCondition {
    /// All conditions in the order the paper lists them.
    pub const ALL: [DemandCondition; 5] = [
        DemandCondition::StaticBandwidth,
        DemandCondition::GraphicsBandwidth,
        DemandCondition::CoreBandwidth,
        DemandCondition::MemoryLatency,
        DemandCondition::IoLatency,
    ];
}

/// The set of triggered [`DemandCondition`]s of one prediction — a fixed
/// inline array, so building a [`Prediction`] never heap-allocates (the
/// governor runs one prediction per evaluation interval on the simulator's
/// allocation-free hot path; `tests/integration_perf.rs` pins this).
///
/// Conditions are stored in [`DemandCondition::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriggeredConditions {
    conditions: [Option<DemandCondition>; DemandCondition::ALL.len()],
    len: usize,
}

impl TriggeredConditions {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, condition: DemandCondition) {
        assert!(
            self.len < self.conditions.len(),
            "a prediction triggers each of the {} demand conditions at most once",
            DemandCondition::ALL.len()
        );
        self.conditions[self.len] = Some(condition);
        self.len += 1;
    }

    /// Number of triggered conditions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no condition triggered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `condition` triggered.
    #[must_use]
    pub fn contains(&self, condition: DemandCondition) -> bool {
        self.iter().any(|c| c == condition)
    }

    /// The triggered conditions, in [`DemandCondition::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = DemandCondition> + '_ {
        self.conditions
            .iter()
            .take(self.len)
            .map(|c| c.expect("first `len` slots are filled"))
    }
}

impl PartialEq<Vec<DemandCondition>> for TriggeredConditions {
    fn eq(&self, other: &Vec<DemandCondition>) -> bool {
        self.len == other.len() && self.iter().zip(other).all(|(a, &b)| a == b)
    }
}

impl FromIterator<DemandCondition> for TriggeredConditions {
    fn from_iter<I: IntoIterator<Item = DemandCondition>>(iter: I) -> Self {
        let mut set = Self::new();
        for condition in iter {
            set.push(condition);
        }
        set
    }
}

/// Calibrated thresholds for one pair of adjacent operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorThresholds {
    /// Static-demand threshold as a fraction of the peak DRAM bandwidth at
    /// the high operating point (`STATIC_BW_THR`).
    pub static_bw_fraction: f64,
    /// `GFX_THR`: graphics LLC misses per sample.
    pub gfx_llc_misses: f64,
    /// `Core_THR`: average CPU requests outstanding at the memory controller.
    pub llc_occupancy: f64,
    /// `LAT_THR`: LLC stall cycles per sample.
    pub llc_stalls: f64,
    /// `IO_THR`: IO read-pending-queue occupancy.
    pub io_rpq: f64,
}

impl PredictorThresholds {
    /// Hand-tuned defaults for the Skylake-class platform with 1 ms counter
    /// samples. The calibration pass (Sec. 4.2) replaces these with µ+σ
    /// values derived from a representative workload population.
    #[must_use]
    pub fn skylake_default() -> Self {
        Self {
            static_bw_fraction: 0.30,
            gfx_llc_misses: 170_000.0,
            llc_occupancy: 3.0,
            llc_stalls: 260_000.0,
            io_rpq: 20.0,
        }
    }
}

/// Coefficients of the linear performance-impact estimator fitted during
/// calibration: predicted degradation (fraction) =
/// `intercept + Σ coefficient × counter`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImpactModel {
    /// Constant term.
    pub intercept: f64,
    /// Weight of `GFX_LLC_MISSES`.
    pub gfx_llc_misses: f64,
    /// Weight of `LLC_Occupancy_Tracer`.
    pub llc_occupancy: f64,
    /// Weight of `LLC_STALLS`.
    pub llc_stalls: f64,
    /// Weight of `IO_RPQ`.
    pub io_rpq: f64,
}

impl ImpactModel {
    /// Predicted performance degradation (0.0–1.0) from counter averages.
    #[must_use]
    pub fn predict(&self, counters: &CounterSet) -> f64 {
        let v = self.intercept
            + self.gfx_llc_misses * counters.value(CounterKind::GfxLlcMisses)
            + self.llc_occupancy * counters.value(CounterKind::LlcOccupancyTracer)
            + self.llc_stalls * counters.value(CounterKind::LlcStalls)
            + self.io_rpq * counters.value(CounterKind::IoRpq);
        v.clamp(0.0, 1.0)
    }
}

/// The outcome of one prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// `true` if the SoC must run at the higher operating point.
    pub needs_high_performance: bool,
    /// The conditions that triggered (empty when low demand).
    pub triggered: TriggeredConditions,
    /// Linear estimate of the performance impact of the lower operating
    /// point (fraction, 0.0–1.0).
    pub estimated_impact: f64,
}

/// The demand predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandPredictor {
    thresholds: PredictorThresholds,
    impact: ImpactModel,
}

impl DemandPredictor {
    /// Creates a predictor from thresholds and an impact model.
    #[must_use]
    pub fn new(thresholds: PredictorThresholds, impact: ImpactModel) -> Self {
        Self { thresholds, impact }
    }

    /// A predictor with the hand-tuned Skylake defaults and no impact model.
    #[must_use]
    pub fn skylake_default() -> Self {
        Self::new(
            PredictorThresholds::skylake_default(),
            ImpactModel::default(),
        )
    }

    /// The thresholds in use.
    #[must_use]
    pub fn thresholds(&self) -> &PredictorThresholds {
        &self.thresholds
    }

    /// The impact model in use.
    #[must_use]
    pub fn impact_model(&self) -> &ImpactModel {
        &self.impact
    }

    /// Evaluates the five conditions of Sec. 4.3 on the averaged counters of
    /// one evaluation interval.
    ///
    /// * `counters` — per-sample averages over the interval.
    /// * `static_demand` — CSR-derived peripheral demand.
    /// * `peak_bandwidth` — peak DRAM bandwidth at the high operating point.
    #[must_use]
    pub fn predict(
        &self,
        counters: &CounterSet,
        static_demand: Bandwidth,
        peak_bandwidth: Bandwidth,
    ) -> Prediction {
        let t = &self.thresholds;
        let mut triggered = TriggeredConditions::new();
        if static_demand.ratio(peak_bandwidth) > t.static_bw_fraction {
            triggered.push(DemandCondition::StaticBandwidth);
        }
        if counters.value(CounterKind::GfxLlcMisses) > t.gfx_llc_misses {
            triggered.push(DemandCondition::GraphicsBandwidth);
        }
        if counters.value(CounterKind::LlcOccupancyTracer) > t.llc_occupancy {
            triggered.push(DemandCondition::CoreBandwidth);
        }
        if counters.value(CounterKind::LlcStalls) > t.llc_stalls {
            triggered.push(DemandCondition::MemoryLatency);
        }
        if counters.value(CounterKind::IoRpq) > t.io_rpq {
            triggered.push(DemandCondition::IoLatency);
        }
        Prediction {
            needs_high_performance: !triggered.is_empty(),
            estimated_impact: self.impact.predict(counters),
            triggered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(gfx: f64, occ: f64, stalls: f64, rpq: f64) -> CounterSet {
        let mut c = CounterSet::new();
        c.set(CounterKind::GfxLlcMisses, gfx);
        c.set(CounterKind::LlcOccupancyTracer, occ);
        c.set(CounterKind::LlcStalls, stalls);
        c.set(CounterKind::IoRpq, rpq);
        c
    }

    const PEAK: f64 = 23.8;

    fn predict(c: &CounterSet, static_gib: f64) -> Prediction {
        DemandPredictor::skylake_default().predict(
            c,
            Bandwidth::from_gib_s(static_gib),
            Bandwidth::from_gib_s(PEAK),
        )
    }

    #[test]
    fn quiet_counters_allow_the_low_operating_point() {
        let p = predict(&counters(100.0, 0.5, 10_000.0, 1.0), 2.0);
        assert!(!p.needs_high_performance);
        assert!(p.triggered.is_empty());
    }

    #[test]
    fn each_condition_triggers_independently() {
        // Static demand (e.g. a 4K panel).
        let p = predict(&counters(0.0, 0.0, 0.0, 0.0), 18.0);
        assert_eq!(p.triggered, vec![DemandCondition::StaticBandwidth]);
        // Graphics bandwidth.
        let p = predict(&counters(1.0e6, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(p.triggered, vec![DemandCondition::GraphicsBandwidth]);
        // Core bandwidth.
        let p = predict(&counters(0.0, 12.0, 0.0, 0.0), 0.0);
        assert_eq!(p.triggered, vec![DemandCondition::CoreBandwidth]);
        // Memory latency.
        let p = predict(&counters(0.0, 0.0, 9.0e5, 0.0), 0.0);
        assert_eq!(p.triggered, vec![DemandCondition::MemoryLatency]);
        // IO latency.
        let p = predict(&counters(0.0, 0.0, 0.0, 50.0), 0.0);
        assert_eq!(p.triggered, vec![DemandCondition::IoLatency]);
        assert!(p.needs_high_performance);
    }

    #[test]
    fn multiple_conditions_accumulate() {
        let p = predict(&counters(1.0e6, 12.0, 9.0e5, 50.0), 18.0);
        assert_eq!(p.triggered.len(), DemandCondition::ALL.len());
    }

    #[test]
    fn impact_model_predicts_and_clamps() {
        let model = ImpactModel {
            intercept: 0.01,
            llc_stalls: 1.0e-7,
            ..ImpactModel::default()
        };
        let low = model.predict(&counters(0.0, 0.0, 50_000.0, 0.0));
        let high = model.predict(&counters(0.0, 0.0, 900_000.0, 0.0));
        assert!(low < high);
        assert!((low - 0.015).abs() < 1e-12);
        let huge = model.predict(&counters(0.0, 0.0, 1.0e12, 0.0));
        assert_eq!(huge, 1.0);
    }
}
