//! The unified simulation entry point: scenarios, sessions, and batch runs.
//!
//! SysScale's evaluation is a matrix of {platform configuration × workload ×
//! governor × duration} runs. This module turns that matrix into first-class
//! values:
//!
//! * [`Scenario`] — one run, assembled with a builder: platform config,
//!   workload, a *named* governor, duration, and trace options;
//! * [`GovernorFactory`] / [`GovernorRegistry`] — governors as named,
//!   buildable-per-run values (instead of `&mut` trait objects threaded by
//!   hand), including the platform restrictions the paper applies to the
//!   MemScale/CoScale baselines;
//! * [`SimSession`] — a reusable executor that caches one [`SocSimulator`]
//!   per distinct platform configuration and guarantees fresh per-run state;
//! * [`SessionPool`] — a pool of sessions, one per worker, reused across
//!   matrices by the parallel runner;
//! * [`ScenarioSet`] — a batch of scenarios (typically a workload × governor
//!   matrix) executed through one call, sequentially
//!   ([`ScenarioSet::run`]) or across a deterministic worker pool
//!   ([`ScenarioSet::run_parallel`]);
//! * [`ScenarioSource`] — a lazy, replayable scenario stream, so
//!   generator-backed populations are produced per shard instead of
//!   materialized up front;
//! * [`SweepSet`] — a whole sweep (many batches across configuration
//!   points) flattened into one cell list and submitted to the pool as a
//!   single sharded batch, hash-sharded by platform fingerprint so each
//!   platform's simulator is built once for the whole sweep;
//! * [`RunConsumer`] / [`GroupFold`] — streaming result aggregation: a
//!   consumer folds each finished cell into a per-worker accumulator
//!   ([`SweepSet::run_parallel_fold`]), merged deterministically in worker
//!   order, so arbitrarily large sweeps aggregate on the fly in O(workers)
//!   result memory instead of materializing one record per cell;
//! * [`RunSet`] / [`RunCell`] — the structured result, keyed by
//!   `(workload, governor)`, with speedup/power/energy deltas computed
//!   against a designated baseline governor. Collecting a `RunSet` is just
//!   the trivial consumer ([`CollectRuns`]); the materializing APIs are
//!   thin wrappers over the fold core.
//!
//! ## Determinism
//!
//! [`ScenarioSet::run_parallel`] shards cells across workers statically
//! (round-robin, no work stealing; see [`sysscale_types::exec`]) and merges
//! the records back in scenario order, and every run executes on a freshly
//! reset simulator with a freshly built governor. The resulting [`RunSet`]
//! is therefore bit-identical to the sequential path at *any* worker count.
//!
//! ## Example
//!
//! ```
//! use sysscale::{Scenario, ScenarioSet, SimSession};
//! use sysscale_soc::SocConfig;
//! use sysscale_workloads::spec_workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workloads = vec![
//!     spec_workload("gamess").unwrap(),
//!     spec_workload("lbm").unwrap(),
//! ];
//! let runs = ScenarioSet::matrix(
//!     &SocConfig::skylake_default(),
//!     &workloads,
//!     &["baseline", "sysscale"],
//! )?
//! .with_baseline("baseline")
//! .run(&mut SimSession::new())?;
//!
//! let cell = runs.cell("416.gamess", "sysscale").unwrap();
//! assert!(cell.speedup_pct > 0.0);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;

use sysscale_soc::{
    FixedGovernor, Governor, SimReport, SliceTrace, SocConfig, SocSimulator, TraceSink,
};
use sysscale_types::{exec, SimError, SimResult, SimTime};
use sysscale_workloads::{PhaseSchedule, Workload};

use crate::baselines::memscale_config;
use crate::governor::{CoScaleGovernor, MemScaleGovernor, SysScaleGovernor};
use crate::predictor::DemandPredictor;

/// Default minimum simulated duration when a scenario does not pin one.
pub const DEFAULT_MIN_RUN: SimTime = SimTime::from_secs(0.3);

/// The simulated duration used for `workload` when no explicit duration is
/// requested: at least one full phase iteration, and no shorter than
/// [`DEFAULT_MIN_RUN`].
#[must_use]
pub fn auto_duration(workload: &Workload) -> SimTime {
    workload.iteration_length().max(DEFAULT_MIN_RUN)
}

// ---------------------------------------------------------------------------
// Governor factories
// ---------------------------------------------------------------------------

/// A named, buildable-per-run power-management policy.
///
/// A factory produces a *fresh* governor for every run, so scenario batches
/// never share mutable governor state, and it can restrict the platform the
/// governor runs on (the paper's MemScale/CoScale baselines cannot scale the
/// shared `V_SA`/`V_IO` rails or reload MRC values — Sec. 8).
pub trait GovernorFactory: fmt::Debug + Send + Sync {
    /// Stable name used to key runs and look the factory up in a registry.
    fn name(&self) -> &str;

    /// Builds a fresh governor instance for one run.
    fn build(&self) -> Box<dyn Governor>;

    /// The platform configuration this policy runs on, derived from the
    /// experiment's base configuration. Defaults to the unrestricted base.
    fn platform(&self, base: &SocConfig) -> SocConfig {
        base.clone()
    }
}

type BuildFn = Arc<dyn Fn() -> Box<dyn Governor> + Send + Sync>;
type PlatformFn = Arc<dyn Fn(&SocConfig) -> SocConfig + Send + Sync>;

/// A [`GovernorFactory`] assembled from closures. The building block for both
/// the built-in registry entries and ad-hoc user-defined governors.
#[derive(Clone)]
pub struct FnGovernorFactory {
    name: String,
    build: BuildFn,
    platform: Option<PlatformFn>,
}

impl FnGovernorFactory {
    /// Creates a factory with the given name and builder.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn() -> Box<dyn Governor> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            build: Arc::new(build),
            platform: None,
        }
    }

    /// Adds a platform restriction applied to the base configuration before
    /// every run of this governor.
    #[must_use]
    pub fn with_platform(
        mut self,
        platform: impl Fn(&SocConfig) -> SocConfig + Send + Sync + 'static,
    ) -> Self {
        self.platform = Some(Arc::new(platform));
        self
    }
}

impl fmt::Debug for FnGovernorFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnGovernorFactory")
            .field("name", &self.name)
            .field("restricted_platform", &self.platform.is_some())
            .finish()
    }
}

impl GovernorFactory for FnGovernorFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self) -> Box<dyn Governor> {
        (self.build)()
    }

    fn platform(&self, base: &SocConfig) -> SocConfig {
        match &self.platform {
            Some(p) => p(base),
            None => base.clone(),
        }
    }
}

/// A factory for the SysScale governor with a specific calibrated predictor.
#[must_use]
pub fn sysscale_factory(predictor: DemandPredictor) -> Arc<dyn GovernorFactory> {
    Arc::new(FnGovernorFactory::new("sysscale", move || {
        Box::new(SysScaleGovernor::new(predictor))
    }))
}

/// Registry of named governor factories.
///
/// [`GovernorRegistry::builtin`] knows every policy of the paper's
/// evaluation; custom factories can be added (or built-ins replaced) with
/// [`GovernorRegistry::register`].
#[derive(Debug, Clone)]
pub struct GovernorRegistry {
    entries: Vec<Arc<dyn GovernorFactory>>,
}

impl GovernorRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The registry of built-in policies:
    ///
    /// | Name | Policy | Platform |
    /// |---|---|---|
    /// | `baseline` | uncore pinned at the highest operating point | full |
    /// | `md-dvfs` | uncore pinned at the lowest point (Table 1) | full |
    /// | `md-dvfs-redist` | `md-dvfs` plus budget redistribution | full |
    /// | `sysscale` | the Sec. 4 SysScale governor | full |
    /// | `sysscale-no-redist` | SysScale without redistribution | full |
    /// | `memscale` | MemScale-like memory-only DVFS | restricted |
    /// | `memscale-redist` | MemScale with redistribution | restricted |
    /// | `coscale` | CoScale-like coordinated CPU+memory DVFS | restricted |
    /// | `coscale-redist` | CoScale with redistribution | restricted |
    ///
    /// "Restricted" platforms keep the `V_SA`/`V_IO` rails and the IO
    /// interconnect at nominal and skip the MRC reload
    /// ([`crate::baselines::memscale_config`]).
    #[must_use]
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register(Arc::new(FnGovernorFactory::new("baseline", || {
            Box::new(FixedGovernor::baseline())
        })));
        r.register(Arc::new(FnGovernorFactory::new("md-dvfs", || {
            Box::new(FixedGovernor::md_dvfs(false))
        })));
        r.register(Arc::new(FnGovernorFactory::new("md-dvfs-redist", || {
            Box::new(FixedGovernor::md_dvfs(true))
        })));
        r.register(Arc::new(FnGovernorFactory::new("sysscale", || {
            Box::new(SysScaleGovernor::with_default_thresholds())
        })));
        r.register(Arc::new(FnGovernorFactory::new(
            "sysscale-no-redist",
            || Box::new(SysScaleGovernor::with_default_thresholds().without_redistribution()),
        )));
        r.register(Arc::new(
            FnGovernorFactory::new("memscale", || Box::new(MemScaleGovernor::new()))
                .with_platform(memscale_config),
        ));
        r.register(Arc::new(
            FnGovernorFactory::new("memscale-redist", || {
                Box::new(MemScaleGovernor::redistributing())
            })
            .with_platform(memscale_config),
        ));
        r.register(Arc::new(
            FnGovernorFactory::new("coscale", || Box::new(CoScaleGovernor::new()))
                .with_platform(memscale_config),
        ));
        r.register(Arc::new(
            FnGovernorFactory::new("coscale-redist", || {
                Box::new(CoScaleGovernor::redistributing())
            })
            .with_platform(memscale_config),
        ));
        r
    }

    /// Registers a factory, replacing any existing entry with the same name.
    pub fn register(&mut self, factory: Arc<dyn GovernorFactory>) {
        self.entries.retain(|e| e.name() != factory.name());
        self.entries.push(factory);
    }

    /// Looks a factory up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn GovernorFactory>> {
        self.entries.iter().find(|e| e.name() == name).cloned()
    }

    /// Looks a factory up by name, producing a descriptive error when the
    /// name is unknown.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown governor name.
    pub fn resolve(&self, name: &str) -> SimResult<Arc<dyn GovernorFactory>> {
        self.get(name).ok_or_else(|| {
            SimError::invalid_config(format!(
                "unknown governor '{name}' (available: {})",
                self.names().join(", ")
            ))
        })
    }

    /// The registered names, sorted lexicographically.
    ///
    /// The ordering is part of the API: error messages (e.g. from
    /// [`GovernorRegistry::resolve`]) embed this list, and a stable order
    /// keeps them reproducible regardless of the sequence in which factories
    /// were registered.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.iter().map(|e| e.name().to_string()).collect();
        names.sort_unstable();
        names
    }
}

impl Default for GovernorRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// Builds one fresh [`TraceSink`] per traced run.
///
/// Scenarios are cloned onto worker threads, so a streaming scenario carries
/// a *factory* rather than a sink instance: every run gets its own sink (for
/// a channel-backed sink, typically a clone of one shared bounded sender).
pub type TraceSinkFactory = Arc<dyn Fn() -> Box<dyn TraceSink> + Send + Sync>;

/// How a scenario handles its per-slice trace.
#[derive(Clone, Default)]
enum TraceSpec {
    /// No trace is produced.
    #[default]
    Off,
    /// Every slice is buffered and returned in [`RunRecord::trace`].
    Collect,
    /// Every slice is streamed into a sink built by the factory;
    /// [`RunRecord::trace`] stays `None` and memory stays flat.
    Stream(TraceSinkFactory),
}

impl fmt::Debug for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSpec::Off => f.write_str("Off"),
            TraceSpec::Collect => f.write_str("Collect"),
            TraceSpec::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

/// One fully-specified simulation run.
///
/// Built with [`Scenario::builder`]; executed by [`SimSession::run`] or as
/// part of a [`ScenarioSet`].
///
/// Scenarios are cheap to clone and to share across worker threads: the
/// workload lives behind an [`Arc`], the governor is a shared factory, and
/// the platform configuration shares its large tables through
/// [`sysscale_soc::PlatformArtifacts`].
#[derive(Debug, Clone)]
pub struct Scenario {
    config: SocConfig,
    workload: Arc<Workload>,
    governor: Arc<dyn GovernorFactory>,
    duration: Option<SimTime>,
    trace: TraceSpec,
}

impl Scenario {
    /// Starts building a scenario for the given workload (by value or as a
    /// pre-shared [`Arc`]). The platform defaults to
    /// [`SocConfig::skylake_default`], the governor to `baseline`, and the
    /// duration to [`auto_duration`].
    #[must_use]
    pub fn builder(workload: impl Into<Arc<Workload>>) -> ScenarioBuilder {
        ScenarioBuilder {
            config: SocConfig::skylake_default(),
            workload: workload.into(),
            governor: None,
            duration: None,
            trace: TraceSpec::Off,
        }
    }

    /// The base platform configuration (before any governor restriction).
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The workload this scenario runs.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The governor factory this scenario runs under.
    #[must_use]
    pub fn governor(&self) -> &Arc<dyn GovernorFactory> {
        &self.governor
    }

    /// Whether a per-slice trace is collected into [`RunRecord::trace`].
    /// `false` for streaming scenarios — their slices go to the sink, not
    /// into the record.
    #[must_use]
    pub fn traced(&self) -> bool {
        matches!(self.trace, TraceSpec::Collect)
    }

    /// Whether this scenario streams its trace through a [`TraceSinkFactory`].
    #[must_use]
    pub fn streams_trace(&self) -> bool {
        matches!(self.trace, TraceSpec::Stream(_))
    }

    /// The simulated duration of this scenario (explicit, or derived from
    /// the workload's phase iteration).
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.duration
            .unwrap_or_else(|| auto_duration(&self.workload))
    }

    /// The platform configuration the run actually uses: the base
    /// configuration with the governor's restriction applied.
    #[must_use]
    pub fn effective_config(&self) -> SocConfig {
        self.governor.platform(&self.config)
    }
}

/// Builder for [`Scenario`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    config: SocConfig,
    workload: Arc<Workload>,
    // None = the default `baseline` governor, resolved lazily in build() so
    // the common governor_factory() path never constructs a registry.
    governor: Option<SimResult<Arc<dyn GovernorFactory>>>,
    duration: Option<SimTime>,
    trace: TraceSpec,
}

impl ScenarioBuilder {
    /// Sets the base platform configuration.
    #[must_use]
    pub fn config(mut self, config: SocConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the governor by name from the built-in registry
    /// ([`GovernorRegistry::builtin`]). An unknown name surfaces as an error
    /// from [`ScenarioBuilder::build`].
    #[must_use]
    pub fn governor(mut self, name: &str) -> Self {
        self.governor = Some(GovernorRegistry::builtin().resolve(name));
        self
    }

    /// Uses a custom governor factory (e.g. [`sysscale_factory`] with a
    /// calibrated predictor, or any [`FnGovernorFactory`]).
    #[must_use]
    pub fn governor_factory(mut self, factory: Arc<dyn GovernorFactory>) -> Self {
        self.governor = Some(Ok(factory));
        self
    }

    /// Pins the simulated duration (defaults to [`auto_duration`]).
    #[must_use]
    pub fn duration(mut self, duration: SimTime) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Enables per-slice trace collection for this run: every slice is
    /// buffered and returned in [`RunRecord::trace`]. For long runs prefer
    /// [`ScenarioBuilder::stream_trace`], which holds memory flat.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = if trace {
            TraceSpec::Collect
        } else {
            TraceSpec::Off
        };
        self
    }

    /// Streams the per-slice trace through a sink built by `factory` at the
    /// start of each run, instead of buffering it. [`RunRecord::trace`]
    /// stays `None`; the run's trace memory is bounded by the sink (e.g. a
    /// [`sysscale_soc::ChannelTraceSink`] with a small capacity), no matter
    /// how long the run is or how many workers execute traced scenarios
    /// concurrently.
    #[must_use]
    pub fn stream_trace(
        mut self,
        factory: impl Fn() -> Box<dyn TraceSink> + Send + Sync + 'static,
    ) -> Self {
        self.trace = TraceSpec::Stream(Arc::new(factory));
        self
    }

    /// Finishes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the governor name did not
    /// resolve or the configuration is inconsistent, and
    /// [`SimError::EmptySimulation`] if an explicit duration is not
    /// positive.
    pub fn build(self) -> SimResult<Scenario> {
        let governor = match self.governor {
            Some(resolved) => resolved?,
            None => GovernorRegistry::builtin().resolve("baseline")?,
        };
        governor.platform(&self.config).validate()?;
        if let Some(d) = self.duration {
            if d <= SimTime::ZERO {
                return Err(SimError::EmptySimulation);
            }
        }
        Ok(Scenario {
            config: self.config,
            workload: self.workload,
            governor,
            duration: self.duration,
            trace: self.trace,
        })
    }
}

// ---------------------------------------------------------------------------
// SimSession
// ---------------------------------------------------------------------------

/// The result of executing one [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Workload name (the row key).
    pub workload: String,
    /// Governor factory name (the column key).
    pub governor: String,
    /// The full simulation report.
    pub report: SimReport,
    /// The per-slice trace, when the scenario requested one.
    pub trace: Option<Vec<SliceTrace>>,
}

/// A reusable scenario executor.
///
/// The session owns one [`SocSimulator`] per distinct platform configuration
/// it has seen and reuses it across runs; the simulator itself guarantees
/// fresh per-run state (see [`SocSimulator::reset`]), so repeated executions
/// of the same scenario are deterministic.
#[derive(Debug, Default)]
pub struct SimSession {
    simulators: Vec<(SocConfig, SocSimulator)>,
}

impl SimSession {
    /// Creates an empty session.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct platform configurations this session has built
    /// simulators for.
    #[must_use]
    pub fn cached_platforms(&self) -> usize {
        self.simulators.len()
    }

    fn simulator_for(&mut self, config: &SocConfig) -> SimResult<&mut SocSimulator> {
        if let Some(idx) = self.simulators.iter().position(|(c, _)| c == config) {
            return Ok(&mut self.simulators[idx].1);
        }
        let sim = SocSimulator::new(config.clone())?;
        self.simulators.push((config.clone(), sim));
        Ok(&mut self.simulators.last_mut().expect("just pushed").1)
    }

    /// Executes one scenario.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(&mut self, scenario: &Scenario) -> SimResult<RunRecord> {
        let config = scenario.effective_config();
        let mut governor = scenario.governor.build();
        let (report, trace) = match &scenario.trace {
            TraceSpec::Off | TraceSpec::Collect => self.run_with(
                &config,
                &scenario.workload,
                governor.as_mut(),
                scenario.duration(),
                scenario.traced(),
            )?,
            TraceSpec::Stream(factory) => {
                let mut sink = factory();
                let report = self.run_streaming(
                    &config,
                    &scenario.workload,
                    governor.as_mut(),
                    scenario.duration(),
                    sink.as_mut(),
                )?;
                (report, None)
            }
        };
        Ok(RunRecord {
            workload: scenario.workload.name.clone(),
            governor: scenario.governor.name().to_string(),
            report,
            trace,
        })
    }

    /// Low-level escape hatch: runs a workload under an existing governor
    /// instance on the session's cached simulator for `config`.
    ///
    /// Prefer [`SimSession::run`] with a [`Scenario`]; this exists for code
    /// that needs to thread a stateful governor through consecutive runs.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_with(
        &mut self,
        config: &SocConfig,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
        trace: bool,
    ) -> SimResult<(SimReport, Option<Vec<SliceTrace>>)> {
        let sim = self.simulator_for(config)?;
        if trace {
            let (report, slices) = sim.run_with_trace(workload, governor, duration)?;
            Ok((report, Some(slices)))
        } else {
            let report = sim.run(workload, governor, duration)?;
            Ok((report, None))
        }
    }

    /// Low-level streaming variant of [`SimSession::run_with`]: the
    /// per-slice trace goes straight into `sink` and is never buffered.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_streaming(
        &mut self,
        config: &SocConfig,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
        sink: &mut dyn TraceSink,
    ) -> SimResult<SimReport> {
        let sim = self.simulator_for(config)?;
        sim.run_streaming(workload, governor, duration, sink)
    }
}

// ---------------------------------------------------------------------------
// SessionPool
// ---------------------------------------------------------------------------

/// A pool of [`SimSession`]s, one per worker of the parallel scenario
/// runner.
///
/// The pool grows on demand to the requested worker count and keeps its
/// sessions — and therefore their cached per-platform simulators — alive
/// across matrices, so a sweep that executes many [`ScenarioSet`]s on the
/// same platforms pays the simulator construction cost once per
/// `(worker, platform)` instead of once per matrix.
#[derive(Debug, Default)]
pub struct SessionPool {
    sessions: Vec<SimSession>,
}

impl SessionPool {
    /// Creates an empty pool; sessions are created lazily as workers are
    /// requested.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker sessions currently held.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.sessions.len()
    }

    /// Total number of cached `(worker, platform)` simulators across the
    /// pool.
    #[must_use]
    pub fn cached_platforms(&self) -> usize {
        self.sessions.iter().map(SimSession::cached_platforms).sum()
    }

    /// The first worker's session, for interleaving single
    /// [`SimSession::run`]s with pooled batches without a second cache.
    pub fn session(&mut self) -> &mut SimSession {
        &mut self.workers_mut(1)[0]
    }

    /// Grows the pool to at least `n` sessions and returns the first `n`,
    /// one mutable slot per worker. This is the pool-keying surface a
    /// long-running executor uses to give each of its physical workers a
    /// stable session: because a [`SimSession`] caches simulators by full
    /// platform-configuration equality, submissions that pin the same
    /// platform fingerprint hit the same warm simulator on whichever
    /// worker slot runs their cells — across submissions, not just within
    /// one — while the pool stays bounded by the worker count.
    pub fn worker_sessions(&mut self, n: usize) -> &mut [SimSession] {
        self.workers_mut(n)
    }

    /// Grows the pool to at least `n` sessions and returns the first `n` as
    /// the worker contexts of one parallel batch.
    fn workers_mut(&mut self, n: usize) -> &mut [SimSession] {
        let n = n.max(1);
        while self.sessions.len() < n {
            self.sessions.push(SimSession::new());
        }
        &mut self.sessions[..n]
    }
}

// ---------------------------------------------------------------------------
// ScenarioSet
// ---------------------------------------------------------------------------

/// A batch of scenarios executed through one call, typically a full
/// workload × governor matrix.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
    baseline: Option<String>,
}

impl ScenarioSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the full `workloads × governors` matrix on one base platform,
    /// resolving governor names against the built-in registry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown governor name.
    pub fn matrix(
        config: &SocConfig,
        workloads: &[Workload],
        governors: &[&str],
    ) -> SimResult<Self> {
        Self::matrix_with(&GovernorRegistry::builtin(), config, workloads, governors)
    }

    /// Like [`ScenarioSet::matrix`], but resolves governor names against a
    /// caller-provided registry (e.g. one carrying a calibrated SysScale
    /// predictor).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown governor name.
    pub fn matrix_with(
        registry: &GovernorRegistry,
        config: &SocConfig,
        workloads: &[Workload],
        governors: &[&str],
    ) -> SimResult<Self> {
        let mut set = Self::new();
        // One shared workload handle per row: every governor column's
        // scenario points at the same `Arc<Workload>`.
        let shared: Vec<Arc<Workload>> = workloads.iter().cloned().map(Arc::new).collect();
        for name in governors {
            let factory = registry.resolve(name)?;
            for workload in &shared {
                set.push(
                    Scenario::builder(Arc::clone(workload))
                        .config(config.clone())
                        .governor_factory(Arc::clone(&factory))
                        .build()?,
                );
            }
        }
        Ok(set)
    }

    /// Adds one scenario to the set.
    pub fn push(&mut self, scenario: Scenario) {
        self.scenarios.push(scenario);
    }

    /// Designates the governor whose runs serve as the per-workload baseline
    /// for the [`RunSet`]'s relative deltas.
    #[must_use]
    pub fn with_baseline(mut self, governor: &str) -> Self {
        self.baseline = Some(governor.to_string());
        self
    }

    /// The designated baseline governor, if any (see
    /// [`ScenarioSet::with_baseline`]).
    #[must_use]
    pub fn baseline(&self) -> Option<&str> {
        self.baseline.as_deref()
    }

    /// The scenarios in the set.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Executes every scenario in the set on `session` and collects the
    /// structured result.
    ///
    /// This is the sequential path; it is exactly
    /// [`ScenarioSet::run_parallel`] with one worker (modulo which session
    /// caches the simulators).
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error.
    pub fn run(&self, session: &mut SimSession) -> SimResult<RunSet> {
        let records = self
            .scenarios
            .iter()
            .map(|s| session.run(s))
            .collect::<SimResult<Vec<_>>>()?;
        Ok(RunSet {
            records,
            baseline: self.baseline.clone(),
        })
    }

    /// Executes the set across up to `threads` pool workers and collects the
    /// structured result.
    ///
    /// Scenario `i` runs on worker `i % threads` (static round-robin — no
    /// work stealing), each worker executes its shard in index order on its
    /// own [`SimSession`], and the records are merged back in scenario
    /// order. Because every run starts from a freshly reset simulator with a
    /// freshly built governor, the returned [`RunSet`] is **bit-identical**
    /// to [`ScenarioSet::run`] at any `threads` value; see the module-level
    /// determinism notes.
    ///
    /// `threads` is clamped to `[1, len()]`; pass
    /// [`sysscale_types::exec::default_threads`] to honour the
    /// `SYSSCALE_THREADS` environment variable and the detected core count.
    /// With one effective worker the batch runs inline on the calling
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in scenario order (the same
    /// error the sequential path would report, though later scenarios may
    /// already have executed on other workers).
    pub fn run_parallel(&self, pool: &mut SessionPool, threads: usize) -> SimResult<RunSet> {
        let mut sweep = SweepSet::new();
        sweep.push_set_ref(self);
        Ok(sweep
            .run_parallel_sharded(pool, threads, SweepSharding::RoundRobin)?
            .pop()
            .expect("single-member sweep"))
    }

    /// Executes the set across up to `threads` pool workers, folding every
    /// finished run into `consumer` instead of materializing a [`RunSet`] —
    /// the batch spelling of [`SweepSet::run_parallel_fold`] for a single
    /// matrix, with the same static round-robin shard as
    /// [`ScenarioSet::run_parallel`]. Result memory is O(workers)
    /// accumulators no matter how many scenarios the set holds.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in scenario order.
    pub fn run_parallel_fold<Q: RunConsumer>(
        &self,
        pool: &mut SessionPool,
        threads: usize,
        consumer: &Q,
    ) -> SimResult<Q::Acc> {
        let mut sweep = SweepSet::new();
        sweep.push_set_ref(self);
        sweep.run_parallel_fold_sharded(pool, threads, SweepSharding::RoundRobin, consumer)
    }
}

// ---------------------------------------------------------------------------
// ScenarioSource / SweepSet
// ---------------------------------------------------------------------------

/// Fingerprint of a platform configuration, used as the shard key of keyed
/// sweep execution: scenarios whose effective configurations are equal
/// always produce equal fingerprints, so [`SweepSharding::ByPlatform`] lands
/// them on the same pool worker and that worker's cached simulator is reused
/// across every cell of the sweep that shares the platform.
///
/// The fingerprint is FNV-1a over the configuration's `Debug` rendering —
/// deterministic across runs and toolchains. It only steers *scheduling*:
/// a collision (or a `Debug` rendering that under-reports a difference)
/// merely places two platforms on one worker, never changes results,
/// because the per-worker [`SimSession`] still keys its simulator cache on
/// full configuration equality.
#[must_use]
pub fn platform_fingerprint(config: &SocConfig) -> u64 {
    let rendered = format!("{config:?}");
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in rendered.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Estimated execution cost of one scenario, used as the shard weight of
/// cost-keyed sweep execution ([`SweepSharding::ByCost`] /
/// [`SweepSharding::SplitHotCost`]).
///
/// The estimate is [`PhaseSchedule::estimated_cost`] over the scenario's
/// effective duration — derived purely from the workload's resolved phase
/// structure, never from timing, so it is deterministic across runs,
/// processes, and machines. Like the platform fingerprint it only steers
/// *scheduling*: a poor estimate merely unbalances worker wall-clock, never
/// changes results.
#[must_use]
pub fn scenario_cost(scenario: &Scenario) -> u64 {
    PhaseSchedule::compile(scenario.workload()).estimated_cost(scenario.duration())
}

/// A lazily-produced, replayable stream of scenarios with a known length.
///
/// Where a [`ScenarioSet`] materializes its cells, a source is a *recipe*:
/// every [`ScenarioSource::stream`] call starts a fresh pass yielding the
/// identical sequence, so each worker of a [`SweepSet`] batch pulls its own
/// iterator and generates only the cells it is assigned — a million-cell
/// synthetic population (e.g. a
/// [`sysscale_workloads::WorkloadSource`]-backed calibration stream) runs in
/// O(workers) workload memory instead of materializing up front.
pub trait ScenarioSource: Sync {
    /// Number of scenarios the stream yields.
    fn len(&self) -> usize;

    /// `true` when the stream yields nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh iterator over the full stream, starting at scenario 0.
    /// Repeated calls must yield bit-identical scenario sequences.
    ///
    /// Named `stream` (not `scenarios`) so the trait never collides with
    /// inherent accessors like [`ScenarioSet::scenarios`].
    fn stream(&self) -> Box<dyn Iterator<Item = Scenario> + Send + '_>;

    /// One shard key per scenario (see [`platform_fingerprint`]); cells
    /// sharing a key are executed by the same pool worker under
    /// [`SweepSharding::ByPlatform`]. The default derives the keys from one
    /// streaming pass; sources whose cells all share a platform should
    /// override it to skip that pass.
    fn shard_keys(&self) -> Vec<u64> {
        self.stream()
            .map(|s| platform_fingerprint(&s.effective_config()))
            .collect()
    }

    /// One estimated execution cost per scenario (see [`scenario_cost`]);
    /// cost-keyed sweep strategies balance worker load by these weights
    /// instead of cell counts. The default derives the costs from one
    /// streaming pass; sources that know their cells' costs up front (or
    /// share workloads across many cells) should override it.
    fn cell_costs(&self) -> Vec<u64> {
        self.stream().map(|s| scenario_cost(&s)).collect()
    }
}

impl ScenarioSource for ScenarioSet {
    fn len(&self) -> usize {
        self.scenarios.len()
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Scenario> + Send + '_> {
        Box::new(self.scenarios.iter().cloned())
    }

    fn shard_keys(&self) -> Vec<u64> {
        // A matrix typically spans a handful of distinct platforms across
        // many cells; fingerprint each distinct configuration once instead
        // of rendering it per cell.
        let mut seen: Vec<(SocConfig, u64)> = Vec::new();
        self.scenarios
            .iter()
            .map(|scenario| {
                let config = scenario.effective_config();
                match seen.iter().find(|(c, _)| *c == config) {
                    Some((_, key)) => *key,
                    None => {
                        let key = platform_fingerprint(&config);
                        seen.push((config, key));
                        key
                    }
                }
            })
            .collect()
    }

    fn cell_costs(&self) -> Vec<u64> {
        // A matrix shares each workload across its governor column; compile
        // the phase schedule once per shared workload instance (the `Arc`
        // makes sharing observable) instead of once per cell. Distinct
        // durations over one workload still cost separate estimates.
        let mut seen: Vec<(*const Workload, SimTime, u64)> = Vec::new();
        self.scenarios
            .iter()
            .map(|scenario| {
                let workload: *const Workload = scenario.workload();
                let duration = scenario.duration();
                match seen
                    .iter()
                    .find(|(w, d, _)| *w == workload && *d == duration)
                {
                    Some((_, _, cost)) => *cost,
                    None => {
                        let cost = scenario_cost(scenario);
                        seen.push((workload, duration, cost));
                        cost
                    }
                }
            })
            .collect()
    }
}

/// How a [`SweepSet`]'s flattened cells are assigned to pool workers.
///
/// Both strategies produce byte-identical [`RunSet`]s (every run executes on
/// a freshly reset simulator with a freshly built governor); they differ
/// only in simulator-cache locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSharding {
    /// Flat cell `i` runs on worker `i % threads` — maximally even load,
    /// but a platform used by many members is rebuilt on every worker.
    RoundRobin,
    /// Cells are grouped by [`platform_fingerprint`] of their effective
    /// configuration and the groups are spread over the workers by dense
    /// rank of the fingerprint value (see [`exec::Shard::ByKey`] — the
    /// worker that owns a platform is a pure function of the sweep's
    /// fingerprint set and the worker count, never of member insertion
    /// order): with at least as many platforms as workers, each platform's
    /// simulator is built by exactly one worker for the whole sweep; with
    /// fewer platforms than workers, the workers are partitioned among the
    /// platforms (every worker stays busy, and each platform still touches
    /// the fewest workers possible). The default.
    ByPlatform,
    /// [`SweepSharding::ByPlatform`] with hot-platform splitting
    /// ([`exec::Shard::SplitHotKeys`]): a platform owning more than
    /// `⌈cells / threads⌉` cells — whose single worker would otherwise be
    /// the sweep's critical path — has its cells split across its
    /// proportional share of the workers (deterministically, into balanced
    /// *contiguous* occurrence blocks, so adjacent cells such as a
    /// calibration high/low pair still land on one worker except at block
    /// boundaries), while platforms at or below the threshold keep full
    /// `ByPlatform` locality. Costs one extra simulator build per extra
    /// worker the hot platform touches; use it for skewed sweeps where one
    /// configuration dominates the cell count.
    SplitHotKeys,
    /// [`SweepSharding::ByPlatform`] weighted by the per-cell cost model
    /// ([`exec::Shard::ByCostKeyed`] over [`scenario_cost`] estimates):
    /// whole platforms are placed on workers greedily by **summed estimated
    /// cost** instead of cell count, so a platform whose cells are
    /// individually expensive (long traces, memory-bound phases) no longer
    /// counts the same as one full of sub-second cells. Keeps full platform
    /// locality — use it when per-cell runtimes are skewed but no single
    /// platform dominates the total.
    ByCost,
    /// [`SweepSharding::ByCost`] with hot-platform splitting
    /// ([`exec::Shard::SplitHotCost`]): a platform whose *summed estimated
    /// cost* exceeds its fair share `⌈total cost / threads⌉` is split
    /// across its cost-proportional share of the workers, with the split
    /// balanced by per-cell cost rather than occurrence count — one
    /// ~100×-cost cell among hundreds of short ones runs alone on a worker
    /// instead of serializing a count-balanced block. Cold platforms keep
    /// full locality. The strongest strategy for pathologically skewed
    /// sweeps; results remain byte-identical to every other strategy.
    SplitHotCost,
}

enum MemberSource<'a> {
    Set(ScenarioSet),
    SetRef(&'a ScenarioSet),
    Source(&'a dyn ScenarioSource),
}

impl MemberSource<'_> {
    fn as_source(&self) -> &dyn ScenarioSource {
        match self {
            MemberSource::Set(set) => set,
            MemberSource::SetRef(set) => *set,
            MemberSource::Source(source) => *source,
        }
    }
}

impl fmt::Debug for MemberSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberSource::Set(set) => f.debug_tuple("Set").field(&set.len()).finish(),
            MemberSource::SetRef(set) => f.debug_tuple("SetRef").field(&set.len()).finish(),
            MemberSource::Source(source) => f.debug_tuple("Source").field(&source.len()).finish(),
        }
    }
}

/// One worker's forward pass over a lazy member's stream: the executor
/// visits each worker's cells in ascending flat order, so the cursor only
/// ever advances and at most one generated scenario per worker is live at a
/// time.
struct MemberCursor<'s> {
    iter: Box<dyn Iterator<Item = Scenario> + Send + 's>,
    next: usize,
}

/// One pool worker's execution context for a sweep batch: its session plus
/// one lazy cursor slot per member (materialized members are indexed
/// directly — no clones, no cursor). `'p` borrows the session from the
/// pool; `'s` borrows the member streams from the sweep.
struct SweepWorker<'p, 's> {
    session: &'p mut SimSession,
    cursors: Vec<Option<MemberCursor<'s>>>,
}

/// An error produced by one specific sweep cell: the failing flat index
/// alongside the simulator error. [`SweepSet::run_flat_indices`] reports
/// errors in this form so callers that execute disjoint index subsets (e.g.
/// the distributed dispatcher's leases) can still order failures in flat
/// cell order across subsets.
#[derive(Debug)]
pub struct CellError {
    /// Flat index of the failing cell.
    pub flat: usize,
    /// The simulator error the cell produced.
    pub error: SimError,
}

/// A whole sweep — several scenario batches (one per configuration point of
/// a study such as Fig. 10's TDP sweep) — flattened into **one** cell list
/// and submitted to the [`SessionPool`] as a single sharded batch.
///
/// Compared to running one [`ScenarioSet::run_parallel`] per configuration
/// point, a sweep keeps every worker busy across point boundaries (no
/// per-matrix barrier) and, under the default
/// [`SweepSharding::ByPlatform`], builds each distinct platform's simulator
/// on the fewest workers possible (exactly one when platforms ≥ workers)
/// instead of once per `(worker, platform)`.
///
/// Members are either materialized [`ScenarioSet`]s ([`SweepSet::push_set`])
/// or lazy [`ScenarioSource`]s ([`SweepSet::push_source`]); the result is
/// one [`RunSet`] per member, in member order, each **byte-identical** to
/// running that member alone through the sequential path at any thread
/// count.
#[derive(Debug, Default)]
pub struct SweepSet<'a> {
    members: Vec<(MemberSource<'a>, Option<String>)>,
}

impl<'a> SweepSet<'a> {
    /// An empty sweep.
    #[must_use]
    pub fn new() -> Self {
        Self {
            members: Vec::new(),
        }
    }

    /// Adds a materialized scenario batch as the next member; its designated
    /// baseline (see [`ScenarioSet::with_baseline`]) carries over to the
    /// member's [`RunSet`].
    pub fn push_set(&mut self, set: ScenarioSet) -> &mut Self {
        let baseline = set.baseline.clone();
        self.members.push((MemberSource::Set(set), baseline));
        self
    }

    /// Like [`SweepSet::push_set`], but borrowing the batch instead of
    /// taking it — cells are indexed in place, no scenarios are cloned.
    pub fn push_set_ref(&mut self, set: &'a ScenarioSet) -> &mut Self {
        let baseline = set.baseline.clone();
        self.members.push((MemberSource::SetRef(set), baseline));
        self
    }

    /// Adds a lazy scenario stream as the next member, with an optional
    /// baseline governor for the member's [`RunSet`] deltas.
    pub fn push_source(
        &mut self,
        source: &'a dyn ScenarioSource,
        baseline: Option<&str>,
    ) -> &mut Self {
        self.members.push((
            MemberSource::Source(source),
            baseline.map(ToString::to_string),
        ));
        self
    }

    /// Number of member batches.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Total number of cells across all members.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.members.iter().map(|(m, _)| m.as_source().len()).sum()
    }

    /// Estimated execution cost of every cell, in flat order (see
    /// [`scenario_cost`] and [`ScenarioSource::cell_costs`]). This is the
    /// weight vector the cost-keyed sharding strategies balance by, and what
    /// the distributed dispatcher sizes lease index-ranges with.
    #[must_use]
    pub fn cell_costs(&self) -> Vec<u64> {
        self.members
            .iter()
            .flat_map(|(m, _)| m.as_source().cell_costs())
            .collect()
    }

    /// Executes the whole sweep as one batch across up to `threads` pool
    /// workers with the default [`SweepSharding::ByPlatform`] strategy, and
    /// returns one [`RunSet`] per member, in member order.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in flat cell order.
    pub fn run_parallel(&self, pool: &mut SessionPool, threads: usize) -> SimResult<Vec<RunSet>> {
        self.run_parallel_sharded(pool, threads, SweepSharding::ByPlatform)
    }

    /// Like [`SweepSet::run_parallel`], but with an explicit sharding
    /// strategy. Useful to measure what platform-keyed sharding buys: all
    /// strategies return byte-identical `RunSet`s, but
    /// [`SweepSharding::RoundRobin`] rebuilds shared platforms on every
    /// worker.
    ///
    /// This is the trivial-consumer spelling of the fold core: every record
    /// is collected via [`CollectRuns`] and regrouped into one [`RunSet`]
    /// per member. Sweeps whose result is an aggregate should use
    /// [`SweepSet::run_parallel_fold`] instead and never materialize the
    /// records.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in flat cell order.
    pub fn run_parallel_sharded(
        &self,
        pool: &mut SessionPool,
        threads: usize,
        sharding: SweepSharding,
    ) -> SimResult<Vec<RunSet>> {
        let lens: Vec<usize> = self
            .members
            .iter()
            .map(|(m, _)| m.as_source().len())
            .collect();
        let collected = self.run_parallel_fold_sharded(pool, threads, sharding, &CollectRuns)?;
        let mut records = CollectRuns::into_records(collected).into_iter();
        Ok(self
            .members
            .iter()
            .zip(&lens)
            .map(|((_, baseline), &len)| RunSet {
                records: records.by_ref().take(len).collect(),
                baseline: baseline.clone(),
            })
            .collect())
    }

    /// Executes the whole sweep as one batch across up to `threads` pool
    /// workers, folding every finished cell into `consumer` instead of
    /// materializing records — the default [`SweepSharding::ByPlatform`]
    /// strategy. See [`RunConsumer`] for the aggregation contract and
    /// [`SweepSet::run_parallel_fold_sharded`] for an explicit strategy.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in flat cell order.
    pub fn run_parallel_fold<Q: RunConsumer>(
        &self,
        pool: &mut SessionPool,
        threads: usize,
        consumer: &Q,
    ) -> SimResult<Q::Acc> {
        self.run_parallel_fold_sharded(pool, threads, SweepSharding::ByPlatform, consumer)
    }

    /// The fold core every sweep execution runs through: each worker folds
    /// the cells it is assigned — in ascending flat order, each executed on
    /// a freshly reset simulator with a freshly built governor — into its
    /// own `consumer` accumulator, and the per-worker accumulators are
    /// merged deterministically in worker order. Result memory is
    /// O(workers) accumulators no matter how many cells the sweep has; no
    /// [`RunRecord`] outlives its [`RunConsumer::fold`] call unless the
    /// consumer keeps it.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in flat cell order (the same
    /// error the sequential path would report, though later cells may
    /// already have executed — and been folded — on other workers).
    pub fn run_parallel_fold_sharded<Q: RunConsumer>(
        &self,
        pool: &mut SessionPool,
        threads: usize,
        sharding: SweepSharding,
        consumer: &Q,
    ) -> SimResult<Q::Acc> {
        let (offsets, total) = self.member_offsets();
        let (keys, costs) = self.shard_inputs(sharding);
        let shard = shard_of(sharding, &keys, &costs);

        // A worker's fold state: the consumer accumulator plus the
        // earliest error the worker hit (after which its remaining cells
        // are skipped — the batch fails anyway).
        struct FoldState<A> {
            acc: A,
            error: Option<(usize, SimError)>,
        }

        let workers = exec::effective_workers(threads, total);
        let mut contexts = self.sweep_workers(pool, workers);

        let merged = exec::fold_indices_with_workers(
            &mut contexts,
            total,
            shard,
            || FoldState {
                acc: consumer.accumulator(),
                error: None,
            },
            |ctx, state: &mut FoldState<Q::Acc>, flat| {
                if state.error.is_some() {
                    return;
                }
                let (cell, result) = self.run_cell(ctx, &offsets, flat);
                match result {
                    Ok(record) => consumer.fold(&mut state.acc, cell, record),
                    Err(error) => state.error = Some((flat, error)),
                }
            },
            |into, from| {
                // Each worker's error is its smallest-index one (ascending
                // visit order), so the minimum across workers is the first
                // error in flat cell order — what the sequential path
                // reports.
                into.error = match (into.error.take(), from.error) {
                    (Some(a), Some(b)) => Some(if b.0 < a.0 { b } else { a }),
                    (a, b) => a.or(b),
                };
                consumer.merge(&mut into.acc, from.acc);
            },
        );
        match merged.error {
            Some((_, error)) => Err(error),
            None => Ok(merged.acc),
        }
    }

    /// Executes an explicit subset of the sweep's flat cells — `flats`, in
    /// strictly ascending order — and returns the `(flat, record)` pairs
    /// sorted by flat index. Cells are spread over up to `threads` pool
    /// workers (static round-robin over the subset positions, so each
    /// worker still visits its cells in ascending flat order and lazy
    /// member streams stay single forward passes).
    ///
    /// This is the worker half of the distributed executor: a lease names a
    /// flat-index subset, the worker runs exactly those cells, and —
    /// because every cell executes on a freshly reset simulator with a
    /// freshly built governor — each returned record is **bit-identical**
    /// to the record the full in-process batch produces for that flat
    /// index, no matter how the sweep is partitioned into subsets.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell in flat order as a [`CellError`]
    /// (later cells of the subset may already have executed).
    ///
    /// # Panics
    ///
    /// Panics if `flats` is not strictly ascending or indexes past the
    /// sweep's cell count.
    pub fn run_flat_indices(
        &self,
        pool: &mut SessionPool,
        threads: usize,
        flats: &[usize],
    ) -> Result<Vec<(usize, RunRecord)>, CellError> {
        let (offsets, total) = self.member_offsets();
        assert!(
            flats.windows(2).all(|w| w[0] < w[1]),
            "flat indices must be strictly ascending"
        );
        if let Some(&last) = flats.last() {
            assert!(last < total, "flat index {last} out of range ({total})");
        }
        struct SubsetState {
            pairs: Vec<(usize, RunRecord)>,
            error: Option<CellError>,
        }
        let workers = exec::effective_workers(threads, flats.len());
        let mut contexts = self.sweep_workers(pool, workers);
        let merged = exec::fold_indices_with_workers(
            &mut contexts,
            flats.len(),
            exec::Shard::RoundRobin,
            || SubsetState {
                pairs: Vec::new(),
                error: None,
            },
            |ctx, state: &mut SubsetState, position| {
                if state.error.is_some() {
                    return;
                }
                let flat = flats[position];
                let (_, result) = self.run_cell(ctx, &offsets, flat);
                match result {
                    Ok(record) => state.pairs.push((flat, record)),
                    Err(error) => state.error = Some(CellError { flat, error }),
                }
            },
            |into, from| {
                into.error = match (into.error.take(), from.error) {
                    (Some(a), Some(b)) => Some(if b.flat < a.flat { b } else { a }),
                    (a, b) => a.or(b),
                };
                into.pairs.extend(from.pairs);
            },
        );
        match merged.error {
            Some(error) => Err(error),
            None => {
                let mut pairs = merged.pairs;
                pairs.sort_unstable_by_key(|(flat, _)| *flat);
                Ok(pairs)
            }
        }
    }

    /// The per-worker flat-index lists the parallel fold partitions this
    /// sweep into, for `threads` requested workers under `sharding` — the
    /// worker count is clamped exactly like
    /// [`SweepSet::run_parallel_fold_sharded`] clamps it
    /// ([`exec::effective_workers`]), and the shard inputs (keys, costs)
    /// are computed by the same code path, so element `w` is precisely the
    /// ascending cell list worker `w` of the in-process fold would visit.
    ///
    /// This is the planning half of an externally driven fold: a scheduler
    /// that executes each slot's list in order (in any interleaving with
    /// other work, e.g. via [`SweepSet::fold_flat_slice`] at lease
    /// boundaries) and merges the slot accumulators in slot order
    /// reproduces the in-process fold byte for byte.
    #[must_use]
    pub fn slot_indices(&self, threads: usize, sharding: SweepSharding) -> Vec<Vec<usize>> {
        let total = self.cells();
        let workers = exec::effective_workers(threads, total);
        if total == 0 {
            return vec![Vec::new(); workers];
        }
        let (keys, costs) = self.shard_inputs(sharding);
        shard_of(sharding, &keys, &costs).worker_lists(total, workers)
    }

    /// Executes an ascending slice of flat cells on **one** session,
    /// folding each finished record into the caller's accumulator. This is
    /// the execution half of an externally driven fold (see
    /// [`SweepSet::slot_indices`]): because every cell runs on a freshly
    /// reset simulator with a freshly built governor, folding a slot's
    /// list in order — across any number of `fold_flat_slice` calls, on
    /// any session — produces an accumulator byte-identical to the one the
    /// in-process worker builds.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell (in slice order, which is flat
    /// order) as a [`CellError`]; cells before it have already been
    /// folded, cells after it have not run.
    ///
    /// # Panics
    ///
    /// Panics if `flats` is not strictly ascending or indexes past the
    /// sweep's cell count.
    pub fn fold_flat_slice<Q: RunConsumer + ?Sized>(
        &self,
        session: &mut SimSession,
        flats: &[usize],
        consumer: &Q,
        acc: &mut Q::Acc,
    ) -> Result<(), CellError> {
        let (offsets, total) = self.member_offsets();
        assert!(
            flats.windows(2).all(|w| w[0] < w[1]),
            "flat indices must be strictly ascending"
        );
        if let Some(&last) = flats.last() {
            assert!(last < total, "flat index {last} out of range ({total})");
        }
        let mut ctx = SweepWorker {
            session,
            cursors: self.members.iter().map(|_| None).collect(),
        };
        for &flat in flats {
            let (cell, result) = self.run_cell(&mut ctx, &offsets, flat);
            match result {
                Ok(record) => consumer.fold(acc, cell, record),
                Err(error) => return Err(CellError { flat, error }),
            }
        }
        Ok(())
    }

    /// The `(keys, costs)` inputs the sharding strategy partitions by —
    /// shared by [`SweepSet::run_parallel_fold_sharded`] and
    /// [`SweepSet::slot_indices`] so both compute the identical partition.
    fn shard_inputs(&self, sharding: SweepSharding) -> (Vec<u64>, Vec<u64>) {
        let keys: Vec<u64> = match sharding {
            SweepSharding::RoundRobin => Vec::new(),
            SweepSharding::ByPlatform
            | SweepSharding::SplitHotKeys
            | SweepSharding::ByCost
            | SweepSharding::SplitHotCost => self
                .members
                .iter()
                .flat_map(|(m, _)| m.as_source().shard_keys())
                .collect(),
        };
        let costs: Vec<u64> = match sharding {
            SweepSharding::ByCost | SweepSharding::SplitHotCost => self.cell_costs(),
            _ => Vec::new(),
        };
        (keys, costs)
    }

    /// Member start offsets (by flat index) and the total cell count.
    fn member_offsets(&self) -> (Vec<usize>, usize) {
        let mut offsets = Vec::with_capacity(self.members.len());
        let mut total = 0usize;
        for (member, _) in &self.members {
            offsets.push(total);
            total += member.as_source().len();
        }
        (offsets, total)
    }

    /// Builds one [`SweepWorker`] per pool session for a batch of `workers`.
    fn sweep_workers<'p, 's>(
        &'s self,
        pool: &'p mut SessionPool,
        workers: usize,
    ) -> Vec<SweepWorker<'p, 's>> {
        pool.workers_mut(workers)
            .iter_mut()
            .map(|session| SweepWorker {
                session,
                cursors: self.members.iter().map(|_| None).collect(),
            })
            .collect()
    }

    /// Executes one flat cell on a worker context: resolves the owning
    /// member, produces the scenario (indexing materialized members in
    /// place, advancing the worker's forward-pass cursor for lazy members)
    /// and runs it on the worker's session.
    fn run_cell<'s>(
        &'s self,
        ctx: &mut SweepWorker<'_, 's>,
        offsets: &[usize],
        flat: usize,
    ) -> (CellId, SimResult<RunRecord>) {
        let member = offsets.partition_point(|&start| start <= flat) - 1;
        let local = flat - offsets[member];
        let result = match &self.members[member].0 {
            MemberSource::Set(set) => ctx.session.run(&set.scenarios()[local]),
            MemberSource::SetRef(set) => ctx.session.run(&set.scenarios()[local]),
            MemberSource::Source(source) => {
                let cursor = ctx.cursors[member].get_or_insert_with(|| MemberCursor {
                    iter: source.stream(),
                    next: 0,
                });
                debug_assert!(cursor.next <= local, "cursor moved backwards");
                // Generate-and-drop the cells assigned to other workers.
                while cursor.next < local {
                    cursor.iter.next();
                    cursor.next += 1;
                }
                let scenario = cursor
                    .iter
                    .next()
                    .unwrap_or_else(|| panic!("scenario source shorter than its len() at {local}"));
                cursor.next += 1;
                ctx.session.run(&scenario)
            }
        };
        (
            CellId {
                member,
                local,
                flat,
            },
            result,
        )
    }
}

/// Maps a [`SweepSharding`] strategy onto the borrowed-input
/// [`exec::Shard`] it runs as. Kept as one function so every caller
/// (the in-process fold, [`SweepSet::slot_indices`]) agrees on the
/// mapping.
fn shard_of<'a>(sharding: SweepSharding, keys: &'a [u64], costs: &'a [u64]) -> exec::Shard<'a> {
    match sharding {
        SweepSharding::RoundRobin => exec::Shard::RoundRobin,
        SweepSharding::ByPlatform => exec::Shard::ByKey(keys),
        SweepSharding::SplitHotKeys => exec::Shard::SplitHotKeys(keys),
        SweepSharding::ByCost => exec::Shard::ByCostKeyed { keys, costs },
        SweepSharding::SplitHotCost => exec::Shard::SplitHotCost { keys, costs },
    }
}

// ---------------------------------------------------------------------------
// RunConsumer / GroupFold
// ---------------------------------------------------------------------------

/// Identifies one cell of a sweep while it is being folded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId {
    /// Index of the member batch the cell belongs to.
    pub member: usize,
    /// Cell index within the member.
    pub local: usize,
    /// Flat index across the whole sweep (`member` offsets + `local`).
    pub flat: usize,
}

/// Streaming aggregation of sweep results: a consumer folds each finished
/// cell's [`RunRecord`] into a per-worker accumulator, and the accumulators
/// are merged deterministically in worker order
/// ([`SweepSet::run_parallel_fold`]).
///
/// ## Contract
///
/// * **fold** is called exactly once per cell, with each worker receiving
///   its cells in ascending flat order. The record is passed by value — a
///   consumer that drops it (after extracting its aggregate) is what makes
///   sweep result memory O(workers).
/// * **merge** combines two accumulators. For the final accumulator to be
///   bit-identical at every worker count and under every
///   [`SweepSharding`], the fold/merge pair must be insensitive to how the
///   cell stream is partitioned across workers: either each accumulator
///   entry is owned by a fixed cell subset (per-cell or per-group slots, as
///   [`GroupFold`] provides), or the folded operation is associative *and*
///   commutative in exact arithmetic. Plain floating-point accumulation is
///   neither — fold per-cell values into slots and reduce them in a fixed
///   order instead.
/// * **accumulator** builds one fresh (empty) accumulator per worker;
///   merging an untouched accumulator must be a no-op.
/// * **partial sweeps**: an executor running in explicit partial-result
///   mode (the distributed executor's quarantine path) simply never calls
///   `fold` for a quarantined cell — the "exactly once per cell" guarantee
///   becomes "at most once, exactly once for every non-quarantined cell",
///   the ascending-order and merge contracts are unchanged, and the
///   skipped cells are reported out of band. Consumers that require a
///   value for every slot (e.g. fixed-size group reductions) should not be
///   used with partial sweeps unless they tolerate unfilled slots.
pub trait RunConsumer: Sync {
    /// The per-worker accumulator type.
    type Acc: Send;

    /// One fresh, empty accumulator.
    fn accumulator(&self) -> Self::Acc;

    /// Folds one finished cell into the accumulator.
    fn fold(&self, acc: &mut Self::Acc, cell: CellId, record: RunRecord);

    /// Merges a later worker's accumulator into an earlier worker's.
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);
}

/// The trivial consumer: collects every record, tagged with its flat index.
/// [`SweepSet::run_parallel_sharded`] (and therefore every materializing
/// API) is this consumer plus a regroup into member [`RunSet`]s — which is
/// exactly why those paths hold O(cells) result memory and fold-based
/// aggregation does not.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectRuns;

impl CollectRuns {
    /// Restores a collected accumulator to flat cell order.
    #[must_use]
    pub fn into_records(mut acc: Vec<(usize, RunRecord)>) -> Vec<RunRecord> {
        acc.sort_unstable_by_key(|(flat, _)| *flat);
        acc.into_iter().map(|(_, record)| record).collect()
    }

    /// Restores a collected accumulator to flat cell order, keeping each
    /// record's flat index — the partial-sweep spelling, where absent
    /// (quarantined) cells leave gaps the caller regroups around.
    #[must_use]
    pub fn into_flat_records(mut acc: Vec<(usize, RunRecord)>) -> Vec<(usize, RunRecord)> {
        acc.sort_unstable_by_key(|(flat, _)| *flat);
        acc
    }
}

impl RunConsumer for CollectRuns {
    type Acc = Vec<(usize, RunRecord)>;

    fn accumulator(&self) -> Self::Acc {
        Vec::new()
    }

    fn fold(&self, acc: &mut Self::Acc, cell: CellId, record: RunRecord) {
        acc.push((cell.flat, record));
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        into.extend(from);
    }
}

/// A [`RunConsumer`] that reduces fixed-size cell groups into one output
/// each, as early as possible: `map` assigns every cell a `(group, slot)`
/// position, and the moment a group's last record arrives — on whichever
/// worker holds its other records after a merge — `reduce` turns the
/// group's records (in slot order) into one output value and the records
/// are dropped.
///
/// This is the workhorse consumer of the fold-based experiment paths: a
/// calibration pair (2 slots) reduces to one [`crate::CalibrationSample`],
/// an evaluation workload's governor column (4 slots) to one figure row.
/// Because every output is a pure function of its own group's records, the
/// assembled output vector (see [`GroupFold::into_outputs`]) is
/// bit-identical at every worker count — the merge just moves records and
/// outputs around, it never re-associates arithmetic.
///
/// Memory: completed outputs (the result itself, O(groups)) plus records
/// of groups split across in-flight workers. Under sharding strategies
/// that keep a group's cells on one worker the pending window stays small;
/// in the worst case (every group spread over all workers) it degrades
/// toward the materializing path — but never beyond it.
pub struct GroupFold<M, R> {
    groups: usize,
    slots: usize,
    map: M,
    reduce: R,
}

/// Accumulator of a [`GroupFold`]: completed `(group, output)` pairs plus
/// the records of groups still missing slots.
pub struct GroupAcc<T> {
    done: Vec<(usize, T)>,
    pending: std::collections::BTreeMap<usize, Vec<Option<RunRecord>>>,
}

impl<T> fmt::Debug for GroupAcc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupAcc")
            .field("done", &self.done.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<M, R, T> GroupFold<M, R>
where
    M: Fn(CellId) -> (usize, usize) + Sync,
    R: Fn(usize, Vec<RunRecord>) -> T + Sync,
    T: Send,
{
    /// A consumer over `groups` groups of `slots` cells each. `map` must
    /// place every cell of the sweep into a distinct `(group, slot)` with
    /// `group < groups` and `slot < slots`; `reduce` receives a completed
    /// group's records in slot order.
    pub fn new(groups: usize, slots: usize, map: M, reduce: R) -> Self {
        assert!(slots > 0, "groups need at least one slot");
        Self {
            groups,
            slots,
            map,
            reduce,
        }
    }

    /// Completes a group whose last slot just filled.
    fn complete(&self, done: &mut Vec<(usize, T)>, group: usize, records: Vec<Option<RunRecord>>) {
        let records: Vec<RunRecord> = records
            .into_iter()
            .map(|r| r.expect("complete group"))
            .collect();
        done.push((group, (self.reduce)(group, records)));
    }

    /// Places one record into a group's slot, reducing the group if that
    /// filled it.
    fn place(&self, acc: &mut GroupAcc<T>, group: usize, slot: usize, record: RunRecord) {
        assert!(
            group < self.groups && slot < self.slots,
            "cell mapped outside the {}x{} group space: ({group}, {slot})",
            self.groups,
            self.slots
        );
        let records = acc
            .pending
            .entry(group)
            .or_insert_with(|| (0..self.slots).map(|_| None).collect());
        assert!(
            records[slot].is_none(),
            "slot ({group}, {slot}) filled twice"
        );
        records[slot] = Some(record);
        if records.iter().all(Option::is_some) {
            let records = acc.pending.remove(&group).expect("just inserted");
            self.complete(&mut acc.done, group, records);
        }
    }

    /// Dissolves a final accumulator into the per-group outputs, in group
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any group is incomplete or missing — a contract violation
    /// of the `map` closure (the sweep's cells did not tile the group
    /// space), not a runtime condition.
    #[must_use]
    pub fn into_outputs(&self, mut acc: GroupAcc<T>) -> Vec<T> {
        assert!(
            acc.pending.is_empty(),
            "{} groups never completed",
            acc.pending.len()
        );
        assert_eq!(acc.done.len(), self.groups, "group space not tiled");
        acc.done.sort_unstable_by_key(|(group, _)| *group);
        acc.done.into_iter().map(|(_, output)| output).collect()
    }
}

impl<M, R, T> RunConsumer for GroupFold<M, R>
where
    M: Fn(CellId) -> (usize, usize) + Sync,
    R: Fn(usize, Vec<RunRecord>) -> T + Sync,
    T: Send,
{
    type Acc = GroupAcc<T>;

    fn accumulator(&self) -> Self::Acc {
        GroupAcc {
            done: Vec::new(),
            pending: std::collections::BTreeMap::new(),
        }
    }

    fn fold(&self, acc: &mut Self::Acc, cell: CellId, record: RunRecord) {
        let (group, slot) = (self.map)(cell);
        self.place(acc, group, slot, record);
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        into.done.extend(from.done);
        for (group, records) in from.pending {
            match into.pending.entry(group) {
                std::collections::btree_map::Entry::Vacant(entry) => {
                    entry.insert(records);
                }
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    for (slot, record) in records.into_iter().enumerate() {
                        if let Some(record) = record {
                            assert!(
                                entry.get()[slot].is_none(),
                                "slot ({group}, {slot}) filled twice across workers"
                            );
                            entry.get_mut()[slot] = Some(record);
                        }
                    }
                    if entry.get().iter().all(Option::is_some) {
                        let records = entry.remove();
                        self.complete(&mut into.done, group, records);
                    }
                }
            }
        }
    }
}

impl<M, R> fmt::Debug for GroupFold<M, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupFold")
            .field("groups", &self.groups)
            .field("slots", &self.slots)
            .finish_non_exhaustive()
    }
}

/// A [`RunConsumer`] decorator that publishes **monotone progress
/// snapshots** while an inner consumer aggregates, without touching the
/// final accumulator: `fold`/`merge`/`accumulator` delegate verbatim to the
/// inner consumer (so the merged result is bit-identical to running the
/// inner consumer alone), and on the side a shared counter tracks how many
/// cells have folded across *all* workers. Every `every` cells — and always
/// on the final cell — `publish` is called with `(done, total)`.
///
/// This is what gives a long-running sweep a live readout (the sweep
/// service's `Progress` frames) for free: the snapshot channel is pure
/// observability layered on the same [`RunConsumer`] contract the
/// deterministic aggregation rides on.
///
/// ## Snapshot semantics
///
/// * the counter is exact: each fold increments it once, so published
///   `done` values are drawn from the true completion count in `1..=total`;
/// * successive *values* are strictly increasing, but the `publish` calls
///   themselves may race across worker threads — two workers can invoke
///   `publish` out of value order. A consumer that needs monotone
///   *delivery* (not just monotone values) serializes in `publish`: check
///   the value against the last delivered one under the same lock used to
///   deliver (see the sweep service's progress gate);
/// * `publish` runs on worker threads inside the fold hot path — keep it
///   cheap and never block on the sweep's own completion.
pub struct ProgressTap<'a, Q, P> {
    inner: &'a Q,
    every: u64,
    total: u64,
    done: std::sync::atomic::AtomicU64,
    publish: P,
}

impl<'a, Q, P> ProgressTap<'a, Q, P>
where
    Q: RunConsumer,
    P: Fn(u64, u64) + Sync,
{
    /// Decorates `inner`, publishing every `every` folded cells of `total`
    /// (and always on the last). `every == 0` publishes only the final
    /// snapshot.
    pub fn new(inner: &'a Q, every: u64, total: u64, publish: P) -> Self {
        Self {
            inner,
            every,
            total,
            done: std::sync::atomic::AtomicU64::new(0),
            publish,
        }
    }
}

impl<Q, P> RunConsumer for ProgressTap<'_, Q, P>
where
    Q: RunConsumer,
    P: Fn(u64, u64) + Sync,
{
    type Acc = Q::Acc;

    fn accumulator(&self) -> Self::Acc {
        self.inner.accumulator()
    }

    fn fold(&self, acc: &mut Self::Acc, cell: CellId, record: RunRecord) {
        self.inner.fold(acc, cell, record);
        let done = self.done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if done == self.total || (self.every > 0 && done % self.every == 0) {
            (self.publish)(done, self.total);
        }
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        self.inner.merge(into, from);
    }
}

impl<Q, P> fmt::Debug for ProgressTap<'_, Q, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressTap")
            .field("every", &self.every)
            .field("total", &self.total)
            .field(
                "done",
                &self.done.load(std::sync::atomic::Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RunSet
// ---------------------------------------------------------------------------

/// One `(workload, governor)` cell of a [`RunSet`], with deltas relative to
/// the designated baseline run of the same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCell {
    /// Workload name.
    pub workload: String,
    /// Governor name.
    pub governor: String,
    /// Throughput improvement over the baseline, percent.
    pub speedup_pct: f64,
    /// Average-power reduction versus the baseline, percent.
    pub power_reduction_pct: f64,
    /// Energy reduction versus the baseline, percent.
    pub energy_reduction_pct: f64,
    /// Energy-delay-product improvement versus the baseline, percent.
    pub edp_improvement_pct: f64,
    /// Average power of this run, watts.
    pub average_power_w: f64,
    /// Average power of the baseline run, watts.
    pub baseline_power_w: f64,
}

/// The structured result of a [`ScenarioSet`] execution, keyed by
/// `(workload, governor)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSet {
    records: Vec<RunRecord>,
    baseline: Option<String>,
}

impl RunSet {
    /// Assembles a run set from records already in execution (scenario)
    /// order, with an optional designated baseline governor.
    ///
    /// This is the reconstruction hook for results that crossed a process
    /// boundary: a set rebuilt from another set's `records()` and
    /// `baseline_governor()` is `PartialEq`-identical to the original. The
    /// caller owns the ordering contract — records must be in the same
    /// scenario order the executing batch used.
    #[must_use]
    pub fn from_records(records: Vec<RunRecord>, baseline: Option<String>) -> Self {
        Self { records, baseline }
    }

    /// Every run in execution order.
    #[must_use]
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set holds no runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The designated baseline governor, if any.
    #[must_use]
    pub fn baseline_governor(&self) -> Option<&str> {
        self.baseline.as_deref()
    }

    /// The distinct workload names, in first-seen order.
    #[must_use]
    pub fn workloads(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.workload.as_str()) {
                seen.push(r.workload.as_str());
            }
        }
        seen
    }

    /// The distinct governor names, in first-seen order.
    #[must_use]
    pub fn governors(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.governor.as_str()) {
                seen.push(r.governor.as_str());
            }
        }
        seen
    }

    /// Looks one run up by its `(workload, governor)` key.
    #[must_use]
    pub fn get(&self, workload: &str, governor: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.governor == governor)
    }

    /// Like [`RunSet::get`], but a missing cell is an error instead of
    /// `None` — for callers that know the matrix shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the missing key.
    pub fn require(&self, workload: &str, governor: &str) -> SimResult<&RunRecord> {
        self.get(workload, governor).ok_or_else(|| {
            SimError::invalid_config(format!(
                "run ({workload}, {governor}) missing from the matrix"
            ))
        })
    }

    /// Like [`RunSet::cell`], but a missing run or baseline is an error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the missing key.
    pub fn require_cell(&self, workload: &str, governor: &str) -> SimResult<RunCell> {
        self.cell(workload, governor).ok_or_else(|| {
            SimError::invalid_config(format!(
                "cell ({workload}, {governor}) or its baseline missing from the matrix"
            ))
        })
    }

    /// The baseline run for `workload`.
    #[must_use]
    pub fn baseline_for(&self, workload: &str) -> Option<&RunRecord> {
        self.get(workload, self.baseline.as_deref()?)
    }

    /// The baseline-relative deltas of one `(workload, governor)` cell.
    /// `None` when either the run or the workload's baseline run is missing.
    #[must_use]
    pub fn cell(&self, workload: &str, governor: &str) -> Option<RunCell> {
        let run = self.get(workload, governor)?;
        let baseline = self.baseline_for(workload)?;
        Some(RunCell {
            workload: run.workload.clone(),
            governor: run.governor.clone(),
            speedup_pct: run.report.speedup_pct_over(&baseline.report),
            power_reduction_pct: run.report.power_reduction_pct_vs(&baseline.report),
            energy_reduction_pct: run
                .report
                .metrics
                .energy_reduction_pct_vs(&baseline.report.metrics),
            edp_improvement_pct: run.report.edp_improvement_pct_vs(&baseline.report),
            average_power_w: run.report.average_power().as_watts(),
            baseline_power_w: baseline.report.average_power().as_watts(),
        })
    }

    /// All non-baseline cells, in record order.
    #[must_use]
    pub fn cells(&self) -> Vec<RunCell> {
        self.records
            .iter()
            .filter(|r| Some(r.governor.as_str()) != self.baseline.as_deref())
            .filter_map(|r| self.cell(&r.workload, &r.governor))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_workloads::spec_workload;

    #[test]
    fn builtin_registry_knows_the_papers_policies() {
        let registry = GovernorRegistry::builtin();
        for name in [
            "baseline",
            "md-dvfs",
            "md-dvfs-redist",
            "sysscale",
            "sysscale-no-redist",
            "memscale",
            "memscale-redist",
            "coscale",
            "coscale-redist",
        ] {
            let factory = registry.resolve(name).unwrap();
            assert_eq!(factory.name(), name);
            let _ = factory.build();
        }
        assert!(registry.resolve("does-not-exist").is_err());
        let err = registry.resolve("nope").unwrap_err().to_string();
        assert!(err.contains("sysscale"), "error lists names: {err}");
    }

    #[test]
    fn restricted_governors_run_on_the_memscale_platform() {
        let registry = GovernorRegistry::builtin();
        let base = SocConfig::skylake_default();
        for name in ["memscale", "coscale", "memscale-redist", "coscale-redist"] {
            let cfg = registry.resolve(name).unwrap().platform(&base);
            assert!(!cfg.reload_mrc_on_transition, "{name}");
            assert_eq!(cfg.uncore_ladder().lowest().vsa_scale, 1.0, "{name}");
        }
        // Unrestricted policies keep the full platform.
        let full = registry.resolve("sysscale").unwrap().platform(&base);
        assert_eq!(full, base);
    }

    #[test]
    fn registry_register_replaces_by_name() {
        let mut registry = GovernorRegistry::builtin();
        let before = registry.names().len();
        registry.register(sysscale_factory(DemandPredictor::skylake_default()));
        assert_eq!(registry.names().len(), before);
    }

    #[test]
    fn scenario_builder_defaults_and_overrides() {
        let w = spec_workload("gamess").unwrap();
        let s = Scenario::builder(w.clone()).build().unwrap();
        assert_eq!(s.governor().name(), "baseline");
        assert_eq!(s.duration(), auto_duration(&w));
        assert!(!s.traced());

        let s2 = Scenario::builder(w.clone())
            .governor("sysscale")
            .duration(SimTime::from_millis(50.0))
            .trace(true)
            .build()
            .unwrap();
        assert_eq!(s2.governor().name(), "sysscale");
        assert!((s2.duration().as_millis() - 50.0).abs() < 1e-9);
        assert!(s2.traced());

        assert!(Scenario::builder(w.clone())
            .governor("bogus")
            .build()
            .is_err());
        assert!(Scenario::builder(w)
            .duration(SimTime::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn session_reuses_simulators_per_platform() {
        let w = spec_workload("hmmer").unwrap();
        let mut session = SimSession::new();
        let duration = SimTime::from_millis(60.0);
        for gov in ["baseline", "sysscale"] {
            let s = Scenario::builder(w.clone())
                .governor(gov)
                .duration(duration)
                .build()
                .unwrap();
            session.run(&s).unwrap();
        }
        // baseline + sysscale share the full platform -> one simulator.
        assert_eq!(session.cached_platforms(), 1);
        let restricted = Scenario::builder(w)
            .governor("memscale")
            .duration(duration)
            .build()
            .unwrap();
        session.run(&restricted).unwrap();
        assert_eq!(session.cached_platforms(), 2);
    }

    #[test]
    fn traced_scenario_returns_slices() {
        let w = spec_workload("astar").unwrap();
        let s = Scenario::builder(w)
            .duration(SimTime::from_millis(80.0))
            .trace(true)
            .build()
            .unwrap();
        let record = SimSession::new().run(&s).unwrap();
        let trace = record.trace.expect("trace requested");
        assert_eq!(trace.len(), 80);
        let untraced = Scenario::builder(spec_workload("astar").unwrap())
            .duration(SimTime::from_millis(10.0))
            .build()
            .unwrap();
        assert!(SimSession::new().run(&untraced).unwrap().trace.is_none());
    }

    #[test]
    fn streaming_scenario_feeds_the_sink_and_keeps_the_record_lean() {
        use sysscale_soc::ChannelTraceSink;

        let w = spec_workload("astar").unwrap();
        // Capacity far below the slice count: completing the run proves the
        // executor streams instead of buffering.
        let (sender, receiver) = std::sync::mpsc::sync_channel(8);
        let scenario = Scenario::builder(w)
            .duration(SimTime::from_millis(400.0))
            .stream_trace(move || Box::new(ChannelTraceSink::from_sender(sender.clone())))
            .build()
            .unwrap();
        assert!(scenario.streams_trace());
        assert!(!scenario.traced());

        let consumer = std::thread::spawn(move || receiver.iter().count());
        let record = SimSession::new().run(&scenario).unwrap();
        // The scenario (and its factory, holding the last sender clone) must
        // be dropped for the consumer's iterator to terminate.
        drop(scenario);
        assert!(record.trace.is_none(), "streamed slices are not buffered");
        assert_eq!(consumer.join().unwrap(), 400);
    }

    #[test]
    fn parallel_streaming_matrix_shares_one_bounded_channel() {
        use sysscale_soc::ChannelTraceSink;

        // Four traced runs across two workers feed a single bounded channel;
        // the reports must stay bit-identical to the untraced runs and the
        // consumer must see every slice from every run.
        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let duration = SimTime::from_millis(90.0);
        let untraced: Vec<Scenario> = workloads
            .iter()
            .map(|w| {
                Scenario::builder(w.clone())
                    .duration(duration)
                    .build()
                    .unwrap()
            })
            .collect();
        let (sender, receiver) = std::sync::mpsc::sync_channel(4);
        let mut set = ScenarioSet::new();
        for w in &workloads {
            let sender = sender.clone();
            set.push(
                Scenario::builder(w.clone())
                    .duration(duration)
                    .stream_trace(move || Box::new(ChannelTraceSink::from_sender(sender.clone())))
                    .build()
                    .unwrap(),
            );
        }
        drop(sender);
        let consumer = std::thread::spawn(move || receiver.iter().count());

        let mut pool = SessionPool::new();
        let runs = set.run_parallel(&mut pool, 2).unwrap();
        drop(set);
        assert_eq!(consumer.join().unwrap(), 2 * 90);

        let mut plain = SimSession::new();
        for (i, s) in untraced.iter().enumerate() {
            let expected = plain.run(s).unwrap();
            assert_eq!(expected.report, runs.records()[i].report);
            assert!(runs.records()[i].trace.is_none());
        }
    }

    #[test]
    fn platform_fingerprints_follow_configuration_equality() {
        let a = SocConfig::skylake_default();
        let b = SocConfig::skylake_default();
        assert_eq!(platform_fingerprint(&a), platform_fingerprint(&b));
        let restricted = memscale_config(&a);
        assert_ne!(platform_fingerprint(&a), platform_fingerprint(&restricted));
        let other_tdp = SocConfig::skylake_m_6y75(sysscale_types::Power::from_watts(9.0));
        assert_ne!(platform_fingerprint(&a), platform_fingerprint(&other_tdp));
    }

    #[test]
    fn scenario_set_is_a_replayable_source() {
        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let set = ScenarioSet::matrix(
            &SocConfig::skylake_default(),
            &workloads,
            &["baseline", "memscale"],
        )
        .unwrap();
        assert_eq!(ScenarioSource::len(&set), 4);
        let first: Vec<String> = set.stream().map(|s| s.workload().name.clone()).collect();
        let second: Vec<String> = set.stream().map(|s| s.workload().name.clone()).collect();
        assert_eq!(first, second);
        // Shard keys distinguish the full platform from the restricted one.
        let keys = set.shard_keys();
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[0], keys[1], "baseline cells share the full platform");
        assert_eq!(keys[2], keys[3], "memscale cells share the restricted one");
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn sweep_matches_per_member_execution_under_both_shardings() {
        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let config_a = SocConfig::skylake_default();
        let config_b = SocConfig::skylake_m_6y75(sysscale_types::Power::from_watts(9.0));
        let make = |config: &SocConfig| {
            ScenarioSet::matrix(config, &workloads, &["baseline", "md-dvfs"])
                .unwrap()
                .with_baseline("baseline")
        };

        // Reference: one matrix at a time, sequentially.
        let expected: Vec<RunSet> = [&config_a, &config_b]
            .iter()
            .map(|c| make(c).run(&mut SimSession::new()).unwrap())
            .collect();

        let mut sweep = SweepSet::new();
        sweep.push_set(make(&config_a)).push_set(make(&config_b));
        assert_eq!(sweep.members(), 2);
        assert_eq!(sweep.cells(), 8);
        for threads in [1, 2, 8] {
            for sharding in [SweepSharding::ByPlatform, SweepSharding::RoundRobin] {
                let got = sweep
                    .run_parallel_sharded(&mut SessionPool::new(), threads, sharding)
                    .unwrap();
                assert_eq!(got, expected, "threads={threads} sharding={sharding:?}");
            }
        }
    }

    #[test]
    fn slot_indices_with_fold_flat_slice_match_the_one_shot_fold() {
        // The externally driven fold (slot_indices + fold_flat_slice +
        // IncrementalFold, with slots chopped into cost-quantile leases)
        // must reproduce run_parallel_fold_sharded byte for byte — this is
        // the determinism contract the shared sweep-service scheduler
        // rests on.
        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let config_a = SocConfig::skylake_default();
        let config_b = SocConfig::skylake_m_6y75(sysscale_types::Power::from_watts(9.0));
        let mut sweep = SweepSet::new();
        for config in [&config_a, &config_b] {
            sweep.push_set(
                ScenarioSet::matrix(config, &workloads, &["baseline", "md-dvfs"]).unwrap(),
            );
        }
        let costs = sweep.cell_costs();

        for sharding in [
            SweepSharding::ByPlatform,
            SweepSharding::ByCost,
            SweepSharding::SplitHotCost,
        ] {
            for threads in [1, 2, 3] {
                let expected = sweep
                    .run_parallel_fold_sharded(
                        &mut SessionPool::new(),
                        threads,
                        sharding,
                        &CollectRuns,
                    )
                    .unwrap();

                let slots = sweep.slot_indices(threads, sharding);
                let mut fold =
                    exec::IncrementalFold::new(slots.len(), || CollectRuns.accumulator());
                let mut pool = SessionPool::new();
                // Execute each slot as a sequence of cost-quantile leases,
                // deliberately interleaved round-robin across slots (the
                // scheduler interleaves submissions the same way).
                let mut leases: Vec<std::collections::VecDeque<Vec<usize>>> = slots
                    .iter()
                    .map(|list| {
                        exec::cost_quantile_chunks(list, |flat| costs[flat], 3)
                            .into_iter()
                            .collect()
                    })
                    .collect();
                while leases.iter().any(|q| !q.is_empty()) {
                    for (slot, queue) in leases.iter_mut().enumerate() {
                        let Some(lease) = queue.pop_front() else {
                            continue;
                        };
                        let first = lease.first().copied().unwrap_or(0);
                        let mut acc = fold.checkout(slot, first);
                        let next = lease.last().copied().unwrap_or(0) + 1;
                        sweep
                            .fold_flat_slice(
                                &mut pool.worker_sessions(1)[0],
                                &lease,
                                &CollectRuns,
                                &mut acc,
                            )
                            .unwrap();
                        fold.restore(slot, acc, next);
                    }
                }
                assert!(fold.is_idle());
                let got = fold.finish(|into, from| CollectRuns.merge(into, from));
                assert_eq!(got, expected, "threads={threads} sharding={sharding:?}");
            }
        }
    }

    #[test]
    fn platform_sharding_builds_each_platform_once() {
        // Two members on two distinct platforms, flattened contiguously:
        // round-robin spreads both platforms across both workers (4 cached
        // simulators), platform sharding builds each platform on exactly one
        // worker (2 cached).
        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
            spec_workload("astar").unwrap(),
        ];
        let config_a = SocConfig::skylake_default();
        let config_b = SocConfig::skylake_m_6y75(sysscale_types::Power::from_watts(9.0));
        let mut sweep = SweepSet::new();
        for config in [&config_a, &config_b] {
            sweep.push_set(ScenarioSet::matrix(config, &workloads, &["baseline"]).unwrap());
        }

        let mut round_robin_pool = SessionPool::new();
        let rr = sweep
            .run_parallel_sharded(&mut round_robin_pool, 2, SweepSharding::RoundRobin)
            .unwrap();
        let mut keyed_pool = SessionPool::new();
        let keyed = sweep.run_parallel(&mut keyed_pool, 2).unwrap();
        assert_eq!(rr, keyed);
        assert_eq!(round_robin_pool.cached_platforms(), 4);
        assert_eq!(keyed_pool.cached_platforms(), 2);
    }

    #[test]
    fn source_backed_sweep_members_stream_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // A source that counts how many scenarios were generated in total:
        // each worker replays the stream, so the count is bounded by
        // workers x len, and results still match the materialized member.
        #[derive(Debug)]
        struct CountingSource {
            set: ScenarioSet,
            generated: AtomicUsize,
        }
        impl ScenarioSource for CountingSource {
            fn len(&self) -> usize {
                ScenarioSource::len(&self.set)
            }
            fn stream(&self) -> Box<dyn Iterator<Item = Scenario> + Send + '_> {
                Box::new(self.set.stream().inspect(|_| {
                    self.generated.fetch_add(1, Ordering::Relaxed);
                }))
            }
        }

        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let set = ScenarioSet::matrix(
            &SocConfig::skylake_default(),
            &workloads,
            &["baseline", "md-dvfs"],
        )
        .unwrap();
        let expected = set
            .clone()
            .with_baseline("baseline")
            .run(&mut SimSession::new())
            .unwrap();

        let source = CountingSource {
            set,
            generated: AtomicUsize::new(0),
        };
        let mut sweep = SweepSet::new();
        sweep.push_source(&source, Some("baseline"));
        let got = sweep.run_parallel(&mut SessionPool::new(), 2).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], expected);
        // shard_keys() pass + at most one full replay per participating
        // worker.
        let generated = source.generated.load(Ordering::Relaxed);
        assert!(generated <= 3 * 4, "{generated} scenarios generated");
    }

    #[test]
    fn matrix_runs_every_cell_and_computes_baseline_deltas() {
        let workloads = vec![
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let config = SocConfig::skylake_default();
        let set = ScenarioSet::matrix(&config, &workloads, &["baseline", "md-dvfs"])
            .unwrap()
            .with_baseline("baseline");
        assert_eq!(set.len(), 4);
        let mut session = SimSession::new();
        let runs = set.run(&mut session).unwrap();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs.workloads().len(), 2);
        assert_eq!(runs.governors(), vec!["baseline", "md-dvfs"]);
        // Baseline cell of itself: zero speedup by construction.
        let self_cell = runs.cell("470.lbm", "baseline").unwrap();
        assert!(self_cell.speedup_pct.abs() < 1e-9);
        // md-dvfs hurts the memory-bound workload and saves power.
        let lbm = runs.cell("470.lbm", "md-dvfs").unwrap();
        assert!(lbm.speedup_pct < -5.0, "{lbm:?}");
        assert!(lbm.power_reduction_pct > 3.0, "{lbm:?}");
        // cells() excludes the baseline column.
        assert_eq!(runs.cells().len(), 2);
    }

    /// A small 4-cell batch with short scenarios, for the progress-tap
    /// tests.
    fn tiny_progress_set() -> ScenarioSet {
        let workloads = [
            spec_workload("gamess").unwrap(),
            spec_workload("lbm").unwrap(),
        ];
        let registry = GovernorRegistry::builtin();
        let mut set = ScenarioSet::new();
        for governor in ["baseline", "md-dvfs"] {
            for w in &workloads {
                set.push(
                    Scenario::builder(w.clone())
                        .governor_factory(registry.resolve(governor).unwrap())
                        .duration(SimTime::from_millis(60.0))
                        .build()
                        .unwrap(),
                );
            }
        }
        set
    }

    #[test]
    fn progress_tap_preserves_the_inner_accumulator_and_counts_every_cell() {
        use std::sync::Mutex;

        let set = tiny_progress_set();
        let mut sweep = SweepSet::new();
        sweep.push_set_ref(&set);
        let total = sweep.cells() as u64;
        let mut pool = SessionPool::new();
        let plain =
            CollectRuns::into_records(sweep.run_parallel_fold(&mut pool, 3, &CollectRuns).unwrap());

        for threads in [1usize, 2, 4] {
            let published: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
            let tap = ProgressTap::new(&CollectRuns, 1, total, |done, of| {
                published.lock().unwrap().push((done, of));
            });
            let tapped = sweep.run_parallel_fold(&mut pool, threads, &tap).unwrap();
            // Observability only: the tapped accumulator is bit-identical
            // to the undecorated consumer's.
            assert_eq!(CollectRuns::into_records(tapped), plain);

            let mut snaps = published.into_inner().unwrap();
            snaps.sort_unstable();
            let expected: Vec<(u64, u64)> = (1..=total).map(|done| (done, total)).collect();
            assert_eq!(
                snaps, expected,
                "every=1 publishes each completion exactly once ({threads} threads)"
            );
        }
    }

    #[test]
    fn progress_tap_every_zero_publishes_only_the_final_snapshot() {
        use std::sync::Mutex;

        let set = tiny_progress_set();
        let mut sweep = SweepSet::new();
        sweep.push_set_ref(&set);
        let total = sweep.cells() as u64;
        let published: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        let tap = ProgressTap::new(&CollectRuns, 0, total, |done, of| {
            published.lock().unwrap().push((done, of));
        });
        let _ = sweep
            .run_parallel_fold(&mut SessionPool::new(), 2, &tap)
            .unwrap();
        assert_eq!(published.into_inner().unwrap(), vec![(total, total)]);
    }

    #[test]
    fn progress_tap_cadence_hits_multiples_and_the_final_cell() {
        use std::sync::Mutex;

        let set = tiny_progress_set();
        let mut sweep = SweepSet::new();
        sweep.push_set_ref(&set);
        let total = sweep.cells() as u64;
        assert_eq!(total, 4);
        let published: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        let tap = ProgressTap::new(&CollectRuns, 3, total, |done, of| {
            published.lock().unwrap().push((done, of));
        });
        let _ = sweep
            .run_parallel_fold(&mut SessionPool::new(), 1, &tap)
            .unwrap();
        let mut snaps = published.into_inner().unwrap();
        snaps.sort_unstable();
        // Multiples of 3 within 1..=4, plus the final cell.
        assert_eq!(snaps, vec![(3, total), (4, total)]);
    }
}
