//! The primary scalable IO interconnect (the "SA fabric").
//!
//! IO controllers (display, ISP, storage, USB, ...) share the IO interconnect
//! on their way to the memory controller (Fig. 1). The interconnect has its
//! own clock, shares the `V_SA` rail with the memory controller — which is
//! why the DVFS flow must scale both together — and supports *block and
//! drain* so that a frequency change can happen with no requests in flight
//! (Fig. 5 step 3, Sec. 5 requirement (1)).

use sysscale_types::{Bandwidth, Freq, SimError, SimResult, SimTime};

/// Operational state of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricState {
    /// Normal operation: requests flow.
    Running,
    /// Blocked for a DVFS transition: new requests are rejected and
    /// outstanding ones have been drained.
    Blocked,
}

/// Configuration of the IO interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricParams {
    /// Data-path width in bytes transferred per fabric clock cycle.
    pub bytes_per_cycle: f64,
    /// Fraction of theoretical fabric throughput achievable by real traffic.
    pub efficiency: f64,
    /// Unloaded request traversal latency in fabric clock cycles.
    pub base_latency_cycles: f64,
    /// Strength of the queuing inflation, same form as the memory
    /// controller's.
    pub queuing_strength: f64,
    /// Cap on the queuing inflation factor.
    pub max_latency_factor: f64,
    /// Outstanding-request buffer size (entries drained during block&drain).
    pub request_buffer_entries: usize,
}

impl Default for FabricParams {
    fn default() -> Self {
        Self {
            bytes_per_cycle: 32.0,
            efficiency: 0.85,
            base_latency_cycles: 40.0,
            queuing_strength: 0.5,
            max_latency_factor: 5.0,
            request_buffer_entries: 64,
        }
    }
}

impl FabricParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a field is non-positive or an
    /// efficiency/factor is out of range.
    pub fn validate(&self) -> SimResult<()> {
        if self.bytes_per_cycle <= 0.0 {
            return Err(SimError::invalid_config("fabric width must be positive"));
        }
        if !(0.0..=1.0).contains(&self.efficiency) || self.efficiency == 0.0 {
            return Err(SimError::invalid_config(
                "fabric efficiency must be in (0, 1]",
            ));
        }
        if self.base_latency_cycles <= 0.0 || self.max_latency_factor < 1.0 {
            return Err(SimError::invalid_config(
                "fabric latency parameters out of range",
            ));
        }
        if self.request_buffer_entries == 0 {
            return Err(SimError::invalid_config(
                "request buffer must hold at least one entry",
            ));
        }
        Ok(())
    }
}

/// Result of pushing one slice of IO traffic through the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricOutcome {
    /// Bandwidth actually carried towards the memory controller.
    pub carried: Bandwidth,
    /// Fabric utilization in `[0, 1]`.
    pub utilization: f64,
    /// Effective request traversal latency.
    pub latency: SimTime,
    /// Average IO read-pending-queue occupancy contributed by the fabric
    /// (feeds the `IO_RPQ` counter).
    pub rpq_occupancy: f64,
}

/// The IO interconnect model.
#[derive(Debug, Clone, PartialEq)]
pub struct IoInterconnect {
    params: FabricParams,
    freq: Freq,
    state: FabricState,
    block_drain_count: u64,
}

impl IoInterconnect {
    /// Creates an interconnect running at `freq`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the parameters are invalid or
    /// the frequency is zero.
    pub fn new(params: FabricParams, freq: Freq) -> SimResult<Self> {
        params.validate()?;
        if freq.is_zero() {
            return Err(SimError::invalid_config(
                "fabric frequency must be non-zero",
            ));
        }
        Ok(Self {
            params,
            freq,
            state: FabricState::Running,
            block_drain_count: 0,
        })
    }

    /// The Skylake-like fabric at its nominal 0.8 GHz clock.
    #[must_use]
    pub fn skylake_default() -> Self {
        Self::new(FabricParams::default(), Freq::from_ghz(0.8)).expect("default params are valid")
    }

    /// Current clock frequency.
    #[must_use]
    pub fn frequency(&self) -> Freq {
        self.freq
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> FabricState {
        self.state
    }

    /// Number of block-and-drain operations performed.
    #[must_use]
    pub fn block_drain_count(&self) -> u64 {
        self.block_drain_count
    }

    /// Read-only access to the parameters.
    #[must_use]
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Peak sustainable bandwidth at the current frequency.
    #[must_use]
    pub fn sustainable_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.params.bytes_per_cycle * self.freq.as_hz() * self.params.efficiency,
        )
    }

    /// Blocks the interconnect and drains all outstanding requests
    /// (Fig. 5 step 3). Returns the drain latency: the time for the request
    /// buffer to empty at the current service rate. Idempotent — draining an
    /// already blocked fabric costs nothing.
    pub fn block_and_drain(&mut self) -> SimTime {
        if self.state == FabricState::Blocked {
            return SimTime::ZERO;
        }
        self.state = FabricState::Blocked;
        self.block_drain_count += 1;
        // Each buffered request is a cache-line-sized transfer.
        let bytes = self.params.request_buffer_entries as f64 * 64.0;
        let rate = self.sustainable_bandwidth().as_bytes_per_sec();
        SimTime::from_secs(bytes / rate)
    }

    /// Releases the interconnect after a DVFS transition (Fig. 5 step 9).
    pub fn release(&mut self) {
        self.state = FabricState::Running;
    }

    /// Changes the fabric clock. Only legal while blocked.
    ///
    /// # Errors
    ///
    /// Returns an error if the fabric is running or the frequency is zero.
    pub fn set_frequency(&mut self, freq: Freq) -> SimResult<()> {
        if self.state != FabricState::Blocked {
            return Err(SimError::invalid_config(
                "io interconnect frequency can only change while blocked",
            ));
        }
        if freq.is_zero() {
            return Err(SimError::invalid_config(
                "fabric frequency must be non-zero",
            ));
        }
        self.freq = freq;
        Ok(())
    }

    /// Carries one slice of IO traffic (demand towards memory) through the
    /// fabric. A blocked fabric carries nothing.
    #[must_use]
    pub fn carry(&self, demand: Bandwidth) -> FabricOutcome {
        if self.state == FabricState::Blocked {
            return FabricOutcome {
                carried: Bandwidth::ZERO,
                utilization: 0.0,
                latency: SimTime::ZERO,
                rpq_occupancy: self.params.request_buffer_entries as f64,
            };
        }
        let sustainable = self.sustainable_bandwidth();
        let carried = demand.min(sustainable);
        let utilization = if sustainable.is_zero() {
            1.0
        } else {
            (carried / sustainable).clamp(0.0, 1.0)
        };
        let rho = utilization.min(0.995);
        let factor = (1.0 + self.params.queuing_strength * rho / (1.0 - rho))
            .min(self.params.max_latency_factor);
        let base = SimTime::from_secs(self.params.base_latency_cycles / self.freq.as_hz());
        let latency = base * factor;
        let rpq = (carried.as_bytes_per_sec() / 64.0 * latency.as_secs())
            .min(self.params.request_buffer_entries as f64);
        FabricOutcome {
            carried,
            utilization,
            latency,
            rpq_occupancy: rpq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustainable_bandwidth_scales_with_frequency() {
        let hi = IoInterconnect::skylake_default();
        let mut lo = IoInterconnect::skylake_default();
        lo.block_and_drain();
        lo.set_frequency(Freq::from_ghz(0.4)).unwrap();
        lo.release();
        assert!(
            (hi.sustainable_bandwidth().as_bytes_per_sec()
                / lo.sustainable_bandwidth().as_bytes_per_sec()
                - 2.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn fabric_at_0_8ghz_covers_lpddr3_peak() {
        // The fabric must not be the bottleneck for the 25.6 GB/s DRAM peak at
        // the high operating point.
        let fabric = IoInterconnect::skylake_default();
        assert!(fabric.sustainable_bandwidth() > Bandwidth::from_gib_s(20.0));
    }

    #[test]
    fn frequency_change_requires_block_and_drain() {
        let mut fabric = IoInterconnect::skylake_default();
        assert!(fabric.set_frequency(Freq::from_ghz(0.4)).is_err());
        let drain = fabric.block_and_drain();
        assert!(drain > SimTime::ZERO);
        assert!(
            drain < SimTime::from_micros(1.0),
            "drain within Sec. 5 budget"
        );
        assert_eq!(fabric.state(), FabricState::Blocked);
        // Second drain is free.
        assert_eq!(fabric.block_and_drain(), SimTime::ZERO);
        assert_eq!(fabric.block_drain_count(), 1);
        fabric.set_frequency(Freq::from_ghz(0.4)).unwrap();
        fabric.release();
        assert_eq!(fabric.state(), FabricState::Running);
        assert!((fabric.frequency().as_ghz() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn blocked_fabric_carries_nothing() {
        let mut fabric = IoInterconnect::skylake_default();
        fabric.block_and_drain();
        let out = fabric.carry(Bandwidth::from_gib_s(4.0));
        assert_eq!(out.carried, Bandwidth::ZERO);
    }

    #[test]
    fn carry_saturates_and_inflates_latency() {
        let fabric = IoInterconnect::skylake_default();
        let light = fabric.carry(Bandwidth::from_gib_s(1.0));
        let heavy = fabric.carry(Bandwidth::from_gib_s(100.0));
        assert!((light.carried.as_gib_s() - 1.0).abs() < 1e-9);
        assert!(heavy.carried < Bandwidth::from_gib_s(100.0));
        assert!(heavy.utilization > 0.99);
        assert!(heavy.latency > light.latency);
        assert!(heavy.rpq_occupancy > light.rpq_occupancy);
    }

    #[test]
    fn lower_frequency_raises_latency_for_same_demand() {
        let hi = IoInterconnect::skylake_default();
        let mut lo = IoInterconnect::skylake_default();
        lo.block_and_drain();
        lo.set_frequency(Freq::from_ghz(0.4)).unwrap();
        lo.release();
        let demand = Bandwidth::from_gib_s(6.0);
        assert!(lo.carry(demand).latency > hi.carry(demand).latency);
        assert!(lo.carry(demand).utilization > hi.carry(demand).utilization);
    }

    #[test]
    fn params_validation() {
        let mut p = FabricParams::default();
        assert!(p.validate().is_ok());
        p.efficiency = 0.0;
        assert!(IoInterconnect::new(p, Freq::from_ghz(0.8)).is_err());
        let q = FabricParams {
            bytes_per_cycle: -1.0,
            ..FabricParams::default()
        };
        assert!(q.validate().is_err());
        let r = FabricParams {
            request_buffer_entries: 0,
            ..FabricParams::default()
        };
        assert!(r.validate().is_err());
        assert!(IoInterconnect::new(FabricParams::default(), Freq::ZERO).is_err());
    }
}
