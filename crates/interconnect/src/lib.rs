//! # sysscale-interconnect
//!
//! The IO interconnect (SA fabric) model for the SysScale simulator:
//! bandwidth/latency behaviour as a function of the fabric clock, the
//! block-and-drain state machine required by the DVFS transition flow, and
//! the `V_SA`-rail power model of the fabric and its attached IO engines.
//!
//! ## Example
//!
//! ```
//! use sysscale_interconnect::IoInterconnect;
//! use sysscale_types::{Bandwidth, Freq};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut fabric = IoInterconnect::skylake_default();
//! let drain = fabric.block_and_drain();
//! fabric.set_frequency(Freq::from_ghz(0.4))?;
//! fabric.release();
//! assert!(drain.as_micros() < 1.0);
//! assert!(fabric.carry(Bandwidth::from_gib_s(2.0)).carried > Bandwidth::ZERO);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod fabric;
mod power;

pub use fabric::{FabricOutcome, FabricParams, FabricState, IoInterconnect};
pub use power::{InterconnectPowerModel, InterconnectPowerParams};
