//! Power model of the IO interconnect and the miscellaneous IO
//! engines/controllers that share the `V_SA` rail.

use sysscale_types::{Freq, Power, Voltage};

/// Calibration constants for the interconnect power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectPowerParams {
    /// Reference fabric frequency.
    pub nominal_freq: Freq,
    /// Reference `V_SA` voltage.
    pub nominal_voltage: Voltage,
    /// Dynamic power at nominal voltage/frequency and full utilization, watts.
    pub dynamic_w_at_nominal: f64,
    /// Activity floor (clock tree, idle arbitration).
    pub idle_activity: f64,
    /// Leakage power at nominal voltage, watts.
    pub leakage_w_at_nominal: f64,
    /// Fixed power of the always-on IO engines/controllers attached to the
    /// fabric (per active engine the IO-device models add their own demand;
    /// this is the shared glue), watts at nominal voltage.
    pub io_engines_w_at_nominal: f64,
}

impl Default for InterconnectPowerParams {
    fn default() -> Self {
        Self {
            nominal_freq: Freq::from_ghz(0.8),
            nominal_voltage: Voltage::from_mv(800.0),
            dynamic_w_at_nominal: 0.200,
            idle_activity: 0.25,
            leakage_w_at_nominal: 0.060,
            io_engines_w_at_nominal: 0.080,
        }
    }
}

/// Power model of the IO interconnect (on `V_SA`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InterconnectPowerModel {
    params: InterconnectPowerParams,
}

impl InterconnectPowerModel {
    /// Creates a model from calibration parameters.
    #[must_use]
    pub fn new(params: InterconnectPowerParams) -> Self {
        Self { params }
    }

    /// Read-only access to the calibration parameters.
    #[must_use]
    pub fn params(&self) -> &InterconnectPowerParams {
        &self.params
    }

    /// Average power at fabric frequency `freq`, rail voltage `v_sa`, and
    /// fabric utilization in `[0, 1]`.
    #[must_use]
    pub fn power(&self, freq: Freq, v_sa: Voltage, utilization: f64) -> Power {
        let p = &self.params;
        let u = utilization.clamp(0.0, 1.0);
        let activity = p.idle_activity + (1.0 - p.idle_activity) * u;
        let v_ratio = v_sa.as_volts() / p.nominal_voltage.as_volts();
        let v_sq = v_ratio * v_ratio;
        let f_ratio = freq.ratio(p.nominal_freq);
        let dynamic = p.dynamic_w_at_nominal * v_sq * f_ratio * activity;
        let engines = p.io_engines_w_at_nominal * v_sq;
        let leakage = p.leakage_w_at_nominal * v_ratio.powi(3);
        Power::from_watts(dynamic + engines + leakage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinated_vf_scaling_gives_large_savings() {
        // Scaling the fabric 0.8 -> 0.4 GHz with V_SA at 0.8x nominal should
        // save well over a third of the interconnect power (part of the ~10%
        // SoC-level saving in Fig. 2a).
        let m = InterconnectPowerModel::default();
        let hi = m.power(Freq::from_ghz(0.8), Voltage::from_mv(800.0), 0.4);
        let lo = m.power(Freq::from_ghz(0.4), Voltage::from_mv(640.0), 0.4);
        assert!(lo.as_watts() < 0.65 * hi.as_watts(), "hi {hi}, lo {lo}");
    }

    #[test]
    fn power_monotonic_in_each_knob() {
        let m = InterconnectPowerModel::default();
        let f = Freq::from_ghz(0.8);
        let v = Voltage::from_mv(800.0);
        assert!(m.power(f, v, 0.9) > m.power(f, v, 0.1));
        assert!(m.power(f, Voltage::from_mv(850.0), 0.5) > m.power(f, v, 0.5));
        assert!(m.power(Freq::from_ghz(0.9), v, 0.5) > m.power(Freq::from_ghz(0.7), v, 0.5));
    }

    #[test]
    fn idle_fabric_still_draws_floor_power() {
        let m = InterconnectPowerModel::default();
        let idle = m.power(Freq::from_ghz(0.8), Voltage::from_mv(800.0), 0.0);
        assert!(idle.as_watts() > 0.1);
    }

    #[test]
    fn utilization_clamped() {
        let m = InterconnectPowerModel::default();
        let f = Freq::from_ghz(0.8);
        let v = Voltage::from_mv(800.0);
        assert_eq!(m.power(f, v, 1.7), m.power(f, v, 1.0));
        assert_eq!(m.power(f, v, -0.3), m.power(f, v, 0.0));
    }
}
