//! Self-describing, round-trippable sweep recipes — the lease payload.
//!
//! A worker process cannot receive a [`SweepSet`] by reference: it rebuilds
//! the sweep from a *recipe* — seed, shape, and platform fingerprint — and
//! the determinism of the scenario layer guarantees the rebuilt sweep's
//! cells are **bit-identical** to the dispatcher's. The recipe types here
//! make that implicit property explicit and testable:
//!
//! * [`PlatformSpec`] names a platform constructor (plus its TDP parameter);
//! * [`GovernorSpec`] names a governor — a built-in registry entry or the
//!   default-calibrated SysScale policy;
//! * [`WorkloadsSpec`] names a workload list — the SPEC CPU2006 suite, a
//!   named subset, or a seeded synthetic population
//!   ([`PopulationSource`]-shaped: generator config + count);
//! * [`MatrixRecipe`] is one `workloads × governors` matrix on one platform
//!   (a [`ScenarioSet`]); [`SweepRecipe`] is an ordered list of matrices
//!   plus the sharding strategy (a [`SweepSet`]).
//!
//! [`SweepRecipe::encode`] embeds each member's [`platform_fingerprint`];
//! [`MatrixRecipe::build`] re-derives the fingerprint and fails on mismatch,
//! so a dispatcher and worker built from drifted platform tables refuse to
//! cooperate instead of silently merging incompatible results.

use std::sync::Arc;

use sysscale::types::{SimError, SimResult, SimTime};
use sysscale::{
    platform_fingerprint, sysscale_factory, DemandPredictor, GovernorFactory, GovernorRegistry,
    Scenario, ScenarioSet, SocConfig, SweepSet, SweepSharding,
};
use sysscale_workloads::{
    spec_cpu2006_suite, spec_workload, GeneratorConfig, PopulationSource, Workload, WorkloadSource,
};

use crate::wire::{Dec, Enc, WireError};

/// Magic prefix of an encoded [`SweepRecipe`] (`"SSWR"`).
pub const RECIPE_MAGIC: u32 = 0x5353_5752;

/// Version of the recipe encoding. Bump on any layout change; decode
/// rejects mismatches.
pub const RECIPE_VERSION: u16 = 1;

/// A platform configuration, by constructor name plus parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformSpec {
    /// [`SocConfig::skylake_default`].
    SkylakeDefault,
    /// [`SocConfig::skylake_m_6y75`] at the given TDP (watts).
    SkylakeM6y75 {
        /// Thermal design power, watts.
        tdp_w: f64,
    },
    /// [`SocConfig::skylake_ddr4`] at the given TDP (watts).
    SkylakeDdr4 {
        /// Thermal design power, watts.
        tdp_w: f64,
    },
    /// [`SocConfig::skylake_three_point`] at the given TDP (watts).
    SkylakeThreePoint {
        /// Thermal design power, watts.
        tdp_w: f64,
    },
}

impl PlatformSpec {
    /// Materializes the platform configuration.
    #[must_use]
    pub fn build(&self) -> SocConfig {
        use sysscale::types::Power;
        match self {
            PlatformSpec::SkylakeDefault => SocConfig::skylake_default(),
            PlatformSpec::SkylakeM6y75 { tdp_w } => {
                SocConfig::skylake_m_6y75(Power::from_watts(*tdp_w))
            }
            PlatformSpec::SkylakeDdr4 { tdp_w } => {
                SocConfig::skylake_ddr4(Power::from_watts(*tdp_w))
            }
            PlatformSpec::SkylakeThreePoint { tdp_w } => {
                SocConfig::skylake_three_point(Power::from_watts(*tdp_w))
            }
        }
    }

    fn encode(&self, enc: &mut Enc) {
        match self {
            PlatformSpec::SkylakeDefault => enc.put_u8(0),
            PlatformSpec::SkylakeM6y75 { tdp_w } => {
                enc.put_u8(2);
                enc.put_f64(*tdp_w);
            }
            PlatformSpec::SkylakeDdr4 { tdp_w } => {
                enc.put_u8(3);
                enc.put_f64(*tdp_w);
            }
            PlatformSpec::SkylakeThreePoint { tdp_w } => {
                enc.put_u8(4);
                enc.put_f64(*tdp_w);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(match dec.u8()? {
            0 => PlatformSpec::SkylakeDefault,
            2 => PlatformSpec::SkylakeM6y75 { tdp_w: dec.f64()? },
            3 => PlatformSpec::SkylakeDdr4 { tdp_w: dec.f64()? },
            4 => PlatformSpec::SkylakeThreePoint { tdp_w: dec.f64()? },
            tag => return Err(WireError::malformed(format!("platform tag {tag}"))),
        })
    }
}

/// A governor, by name.
#[derive(Debug, Clone, PartialEq)]
pub enum GovernorSpec {
    /// A named entry of [`GovernorRegistry::builtin`] (`"baseline"`,
    /// `"md-dvfs"`, …).
    Registry(String),
    /// The SysScale governor with the default-calibrated Skylake predictor
    /// ([`DemandPredictor::skylake_default`]) — the common evaluation
    /// column, which is not a registry entry because it carries a predictor.
    SysScaleDefault,
}

impl GovernorSpec {
    /// The governor name this spec resolves to (the run-record column key).
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            GovernorSpec::Registry(name) => name,
            GovernorSpec::SysScaleDefault => "sysscale",
        }
    }

    /// Resolves the spec to a governor factory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown registry name.
    pub fn resolve(&self) -> SimResult<Arc<dyn GovernorFactory>> {
        match self {
            GovernorSpec::Registry(name) => GovernorRegistry::builtin().resolve(name),
            GovernorSpec::SysScaleDefault => {
                Ok(sysscale_factory(DemandPredictor::skylake_default()))
            }
        }
    }

    fn encode(&self, enc: &mut Enc) {
        match self {
            GovernorSpec::Registry(name) => {
                enc.put_u8(0);
                enc.put_str(name);
            }
            GovernorSpec::SysScaleDefault => enc.put_u8(1),
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(match dec.u8()? {
            0 => GovernorSpec::Registry(dec.str()?),
            1 => GovernorSpec::SysScaleDefault,
            tag => return Err(WireError::malformed(format!("governor tag {tag}"))),
        })
    }
}

/// A workload list, by recipe rather than by value.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadsSpec {
    /// The full single-threaded SPEC CPU2006 suite
    /// ([`spec_cpu2006_suite`]).
    SpecSuite,
    /// Named SPEC workloads ([`spec_workload`]), in order.
    SpecNamed(Vec<String>),
    /// A seeded synthetic population — the [`PopulationSource`] recipe:
    /// `count` workloads generated from `config` (whose seed makes the
    /// stream replayable).
    Population {
        /// Generator configuration (seed, phase duration, sampling ranges).
        config: GeneratorConfig,
        /// Number of workloads the population yields.
        count: usize,
    },
}

impl WorkloadsSpec {
    /// Materializes the workload list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown SPEC name.
    pub fn build(&self) -> SimResult<Vec<Workload>> {
        match self {
            WorkloadsSpec::SpecSuite => Ok(spec_cpu2006_suite()),
            WorkloadsSpec::SpecNamed(names) => names
                .iter()
                .map(|name| {
                    spec_workload(name).ok_or_else(|| {
                        SimError::invalid_config(format!("unknown SPEC workload '{name}'"))
                    })
                })
                .collect(),
            WorkloadsSpec::Population { config, count } => {
                Ok(PopulationSource::new(*config, *count).materialize())
            }
        }
    }

    /// Number of workloads without materializing them.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            WorkloadsSpec::SpecSuite => spec_cpu2006_suite().len(),
            WorkloadsSpec::SpecNamed(names) => names.len(),
            WorkloadsSpec::Population { count, .. } => *count,
        }
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode(&self, enc: &mut Enc) {
        match self {
            WorkloadsSpec::SpecSuite => enc.put_u8(0),
            WorkloadsSpec::SpecNamed(names) => {
                enc.put_u8(1);
                enc.put_u32(names.len() as u32);
                for name in names {
                    enc.put_str(name);
                }
            }
            WorkloadsSpec::Population { config, count } => {
                enc.put_u8(2);
                enc.put_u64(config.seed);
                enc.put_f64(config.phase_duration.as_secs());
                enc.put_f64(config.cpi_range.0);
                enc.put_f64(config.cpi_range.1);
                enc.put_f64(config.mpki_range.0);
                enc.put_f64(config.mpki_range.1);
                enc.put_f64(config.blocking_range.0);
                enc.put_f64(config.blocking_range.1);
                enc.put_f64(config.multithread_probability);
                enc.put_usize(*count);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(match dec.u8()? {
            0 => WorkloadsSpec::SpecSuite,
            1 => {
                let count = dec.u32()?;
                let mut names = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    names.push(dec.str()?);
                }
                WorkloadsSpec::SpecNamed(names)
            }
            2 => {
                let config = GeneratorConfig {
                    seed: dec.u64()?,
                    phase_duration: SimTime::from_secs(dec.f64()?),
                    cpi_range: (dec.f64()?, dec.f64()?),
                    mpki_range: (dec.f64()?, dec.f64()?),
                    blocking_range: (dec.f64()?, dec.f64()?),
                    multithread_probability: dec.f64()?,
                };
                let count = dec.usize()?;
                WorkloadsSpec::Population { config, count }
            }
            tag => return Err(WireError::malformed(format!("workloads tag {tag}"))),
        })
    }
}

/// One `workloads × governors` matrix on one platform — the recipe of a
/// [`ScenarioSet`] built the way [`ScenarioSet::matrix_with`] builds it
/// (governors outer, workloads inner, one shared workload handle per row).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRecipe {
    /// The platform every cell runs on.
    pub platform: PlatformSpec,
    /// The workload rows.
    pub workloads: WorkloadsSpec,
    /// The governor columns.
    pub governors: Vec<GovernorSpec>,
    /// The designated baseline governor for relative deltas, if any.
    pub baseline: Option<String>,
    /// Explicit simulated duration in seconds (`None` = per-workload
    /// [`sysscale::auto_duration`]).
    pub duration_secs: Option<f64>,
    /// Expected [`platform_fingerprint`] of the built platform. `None` until
    /// the recipe crosses a process boundary; [`SweepRecipe::encode`] pins
    /// the current fingerprint so [`MatrixRecipe::build`] on the far side
    /// can detect dispatcher/worker platform-table drift.
    pub pinned_fingerprint: Option<u64>,
}

impl MatrixRecipe {
    /// The matrix's cell count (`workloads × governors`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len() * self.governors.len()
    }

    /// Whether the matrix has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The [`platform_fingerprint`] of the (freshly built) platform.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        platform_fingerprint(&self.platform.build())
    }

    /// Materializes the scenario matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for unknown governor or workload
    /// names, or when a pinned fingerprint does not match the platform this
    /// process builds (dispatcher/worker drift).
    pub fn build(&self) -> SimResult<ScenarioSet> {
        let config = self.platform.build();
        if let Some(expected) = self.pinned_fingerprint {
            let got = platform_fingerprint(&config);
            if got != expected {
                return Err(SimError::invalid_config(format!(
                    "platform fingerprint mismatch: recipe pinned {expected:#018x}, \
                     this process builds {got:#018x} — dispatcher and worker binaries \
                     disagree on {:?}",
                    self.platform
                )));
            }
        }
        let shared: Vec<Arc<Workload>> =
            self.workloads.build()?.into_iter().map(Arc::new).collect();
        let mut set = ScenarioSet::new();
        for governor in &self.governors {
            let factory = governor.resolve()?;
            for workload in &shared {
                let mut builder = Scenario::builder(Arc::clone(workload))
                    .config(config.clone())
                    .governor_factory(Arc::clone(&factory));
                if let Some(secs) = self.duration_secs {
                    builder = builder.duration(SimTime::from_secs(secs));
                }
                set.push(builder.build()?);
            }
        }
        Ok(match &self.baseline {
            Some(governor) => set.with_baseline(governor),
            None => set,
        })
    }

    fn encode(&self, enc: &mut Enc) {
        self.platform.encode(enc);
        self.workloads.encode(enc);
        enc.put_u32(self.governors.len() as u32);
        for governor in &self.governors {
            governor.encode(enc);
        }
        match &self.baseline {
            Some(name) => {
                enc.put_bool(true);
                enc.put_str(name);
            }
            None => enc.put_bool(false),
        }
        match self.duration_secs {
            Some(secs) => {
                enc.put_bool(true);
                enc.put_f64(secs);
            }
            None => enc.put_bool(false),
        }
        // Always pin: the decoding side must be able to detect drift.
        enc.put_u64(
            self.pinned_fingerprint
                .unwrap_or_else(|| self.fingerprint()),
        );
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        let platform = PlatformSpec::decode(dec)?;
        let workloads = WorkloadsSpec::decode(dec)?;
        let governor_count = dec.u32()?;
        let mut governors = Vec::with_capacity(governor_count as usize);
        for _ in 0..governor_count {
            governors.push(GovernorSpec::decode(dec)?);
        }
        let baseline = if dec.bool()? { Some(dec.str()?) } else { None };
        let duration_secs = if dec.bool()? { Some(dec.f64()?) } else { None };
        let pinned_fingerprint = Some(dec.u64()?);
        Ok(Self {
            platform,
            workloads,
            governors,
            baseline,
            duration_secs,
            pinned_fingerprint,
        })
    }
}

/// The recipe of a whole [`SweepSet`]: ordered member matrices plus the
/// sharding strategy. This is what crosses the wire in a
/// [`crate::proto::Message::Job`]; both dispatcher and worker call
/// [`SweepRecipe::build`] and rely on scenario-layer determinism for the
/// rebuilt sweeps to agree cell-for-cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecipe {
    /// The member matrices, in sweep order.
    pub members: Vec<MatrixRecipe>,
    /// How flat cells map to workers (the dispatcher uses this for lease
    /// assignment; workers use their own thread-level round-robin).
    pub sharding: SweepSharding,
}

impl SweepRecipe {
    /// A single-member sweep.
    #[must_use]
    pub fn single(member: MatrixRecipe) -> Self {
        Self {
            members: vec![member],
            sharding: SweepSharding::ByPlatform,
        }
    }

    /// The Fig. 10 sweep shape: for each TDP, a
    /// `SPEC suite × {baseline, sysscale}` matrix on the Skylake m3-6Y75
    /// platform with `baseline` as the designated baseline.
    #[must_use]
    pub fn fig10(tdps_w: &[f64]) -> Self {
        let members = tdps_w
            .iter()
            .map(|&tdp_w| MatrixRecipe {
                platform: PlatformSpec::SkylakeM6y75 { tdp_w },
                workloads: WorkloadsSpec::SpecSuite,
                governors: vec![
                    GovernorSpec::Registry("baseline".to_string()),
                    GovernorSpec::SysScaleDefault,
                ],
                baseline: Some("baseline".to_string()),
                duration_secs: None,
                pinned_fingerprint: None,
            })
            .collect();
        Self {
            members,
            sharding: SweepSharding::ByPlatform,
        }
    }

    /// Total cell count across all members.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.members.iter().map(MatrixRecipe::len).sum()
    }

    /// A 64-bit content fingerprint of the encoded recipe (FNV-1a over
    /// [`SweepRecipe::encode`]), including the pinned platform fingerprints.
    /// [`crate::journal::SweepJournal`] keys checkpoint files by it, so a
    /// journal left by a *different* sweep — or by the same sweep on a
    /// drifted binary — is ignored instead of replayed.
    #[must_use]
    pub fn fingerprint64(&self) -> u64 {
        crate::net::fnv1a64(&self.encode())
    }

    /// Serializes the recipe, pinning every member's platform fingerprint.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u32(RECIPE_MAGIC);
        enc.put_u16(RECIPE_VERSION);
        enc.put_u8(match self.sharding {
            SweepSharding::RoundRobin => 0,
            SweepSharding::ByPlatform => 1,
            SweepSharding::SplitHotKeys => 2,
            SweepSharding::ByCost => 3,
            SweepSharding::SplitHotCost => 4,
        });
        enc.put_u32(self.members.len() as u32);
        for member in &self.members {
            member.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Deserializes a recipe.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] on bad magic, an unknown version,
    /// or any malformed member.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut dec = Dec::new(bytes);
        let magic = dec.u32()?;
        if magic != RECIPE_MAGIC {
            return Err(WireError::malformed(format!(
                "bad recipe magic {magic:#010x}"
            )));
        }
        let version = dec.u16()?;
        if version != RECIPE_VERSION {
            return Err(WireError::malformed(format!(
                "recipe version {version} (this build speaks {RECIPE_VERSION})"
            )));
        }
        let sharding = match dec.u8()? {
            0 => SweepSharding::RoundRobin,
            1 => SweepSharding::ByPlatform,
            2 => SweepSharding::SplitHotKeys,
            3 => SweepSharding::ByCost,
            4 => SweepSharding::SplitHotCost,
            tag => return Err(WireError::malformed(format!("sharding tag {tag}"))),
        };
        let member_count = dec.u32()?;
        let mut members = Vec::with_capacity(member_count as usize);
        for _ in 0..member_count {
            members.push(MatrixRecipe::decode(&mut dec)?);
        }
        dec.finish()?;
        Ok(Self { members, sharding })
    }

    /// Materializes every member matrix, in order. Assemble them into a
    /// [`SweepSet`] with [`sweep_from_sets`].
    ///
    /// # Errors
    ///
    /// Propagates the first member's build error.
    pub fn build(&self) -> SimResult<Vec<ScenarioSet>> {
        self.members.iter().map(MatrixRecipe::build).collect()
    }
}

/// Assembles built member sets into a [`SweepSet`] (borrowing the sets).
#[must_use]
pub fn sweep_from_sets(sets: &[ScenarioSet]) -> SweepSet<'_> {
    let mut sweep = SweepSet::new();
    for set in sets {
        sweep.push_set_ref(set);
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::rng::SplitMix64;

    fn scenarios_identical(a: &Scenario, b: &Scenario) -> bool {
        a.config() == b.config()
            && a.workload() == b.workload()
            && a.governor().name() == b.governor().name()
            && a.duration() == b.duration()
            && a.traced() == b.traced()
    }

    fn assert_sets_identical(a: &ScenarioSet, b: &ScenarioSet) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.baseline(), b.baseline());
        for (x, y) in a.scenarios().iter().zip(b.scenarios()) {
            assert!(scenarios_identical(x, y), "scenario mismatch");
        }
    }

    #[test]
    fn fig10_recipe_round_trips_and_rebuilds_identical_scenarios() {
        let recipe = SweepRecipe::fig10(&[4.5, 7.5]);
        let decoded = SweepRecipe::decode(&recipe.encode()).expect("decode");
        assert_eq!(decoded.sharding, recipe.sharding);
        assert_eq!(decoded.members.len(), recipe.members.len());
        let original = recipe.build().expect("build original");
        let rebuilt = decoded.build().expect("build decoded");
        for (a, b) in original.iter().zip(&rebuilt) {
            assert_sets_identical(a, b);
        }
        assert_eq!(decoded.total_cells(), recipe.total_cells());
    }

    /// Satellite: a decoded population recipe regenerates **byte-identical**
    /// scenarios — workloads, platform, governor, and duration all equal —
    /// across sampled seeds and shapes.
    #[test]
    fn population_recipes_regenerate_identical_scenarios_property() {
        let mut rng = SplitMix64::new(0xD157_121B);
        for _ in 0..8 {
            let seed = rng.next_u64();
            let count = 1 + (rng.next_u64() % 7) as usize;
            let tdp_w = 3.0 + rng.gen_range(0.0, 9.0);
            let config = GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            };
            let member = MatrixRecipe {
                platform: PlatformSpec::SkylakeM6y75 { tdp_w },
                workloads: WorkloadsSpec::Population { config, count },
                governors: vec![
                    GovernorSpec::Registry("baseline".to_string()),
                    GovernorSpec::SysScaleDefault,
                ],
                baseline: Some("baseline".to_string()),
                duration_secs: Some(0.25),
                pinned_fingerprint: None,
            };
            let recipe = SweepRecipe::single(member);
            let decoded = SweepRecipe::decode(&recipe.encode()).expect("decode");
            assert_eq!(decoded.members[0].workloads, recipe.members[0].workloads);
            let original = recipe.build().expect("build original");
            let rebuilt = decoded.build().expect("build decoded");
            assert_sets_identical(&original[0], &rebuilt[0]);
            // The population really is the PopulationSource stream.
            let direct = PopulationSource::new(config, count).materialize();
            let from_recipe = WorkloadsSpec::Population { config, count }
                .build()
                .expect("population build");
            assert_eq!(direct, from_recipe, "seed {seed:#x}");
        }
    }

    #[test]
    fn pinned_fingerprint_mismatch_is_rejected() {
        let mut member = SweepRecipe::fig10(&[6.0]).members.remove(0);
        member.pinned_fingerprint = Some(member.fingerprint() ^ 1);
        let err = member.build().expect_err("drifted fingerprint must fail");
        assert!(
            format!("{err}").contains("fingerprint mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn malformed_recipes_are_rejected() {
        assert!(SweepRecipe::decode(&[]).is_err());
        // Bad magic.
        let mut bytes = SweepRecipe::fig10(&[5.0]).encode();
        bytes[0] ^= 0xFF;
        assert!(SweepRecipe::decode(&bytes).is_err());
        // Bad version.
        let mut bytes = SweepRecipe::fig10(&[5.0]).encode();
        bytes[4] ^= 0xFF;
        assert!(SweepRecipe::decode(&bytes).is_err());
        // Truncated member list.
        let bytes = SweepRecipe::fig10(&[5.0]).encode();
        assert!(SweepRecipe::decode(&bytes[..bytes.len() - 3]).is_err());
        // Unknown SPEC name fails at build, not decode.
        let recipe = SweepRecipe::single(MatrixRecipe {
            platform: PlatformSpec::SkylakeDefault,
            workloads: WorkloadsSpec::SpecNamed(vec!["not-a-benchmark".to_string()]),
            governors: vec![GovernorSpec::Registry("baseline".to_string())],
            baseline: None,
            duration_secs: None,
            pinned_fingerprint: None,
        });
        let decoded = SweepRecipe::decode(&recipe.encode()).expect("decode");
        assert!(decoded.build().is_err());
    }
}
