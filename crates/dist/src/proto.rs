//! The dispatcher↔worker message protocol and its transports.
//!
//! Every message is one frame ([`crate::wire::write_frame`]): a type byte, a
//! `u32` payload length, and a payload encoded with [`crate::wire`]. The
//! message set is deliberately small:
//!
//! | type | message       | direction          | payload |
//! |------|---------------|--------------------|---------|
//! | 1    | `Job`         | dispatcher → worker | magic, version, worker slot, threads, batch cells, quarantine flag, recipe blob |
//! | 2    | `Lease`       | dispatcher → worker | lease id, flat-index plan (stepped or explicit) |
//! | 3    | `Result`      | worker → dispatcher | lease id, flat index, encoded [`RunRecord`] |
//! | 4    | `LeaseDone`   | worker → dispatcher | lease id, cell count |
//! | 5    | `Heartbeat`   | worker → dispatcher | lease id, cells completed so far |
//! | 6    | `WorkerError` | worker → dispatcher | lease id, failing flat index, structured [`SimError`] (discriminant + payload fields) |
//! | 7    | `Shutdown`    | dispatcher → worker | empty |
//!
//! The `Job` frame opens with a protocol magic and version so a worker
//! binary from a different revision refuses the job instead of
//! misinterpreting the stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{ChildStdin, ChildStdout};

use sysscale::RunRecord;
use sysscale_types::SimError;

use crate::codec;
use crate::wire::{read_frame, write_frame, Dec, Enc, WireError};

/// Magic prefix of a [`Message::Job`] payload (`"SSDP"`).
pub const PROTO_MAGIC: u32 = 0x5353_4450;

/// Protocol version; bump on any frame-layout change.
/// v2: `WorkerError` carries a structured [`SimError`] instead of a
/// rendered message.
/// v3: every frame header carries a CRC-32 over type+length+payload
/// ([`crate::wire`]), and `Job` carries the quarantine flag (a worker in
/// quarantine mode isolates a failing cell per-cell and keeps going instead
/// of exiting on the first `WorkerError`).
pub const PROTO_VERSION: u16 = 3;

pub(crate) const FT_JOB: u8 = 1;
pub(crate) const FT_LEASE: u8 = 2;
pub(crate) const FT_RESULT: u8 = 3;
pub(crate) const FT_LEASE_DONE: u8 = 4;
pub(crate) const FT_HEARTBEAT: u8 = 5;
pub(crate) const FT_WORKER_ERROR: u8 = 6;
pub(crate) const FT_SHUTDOWN: u8 = 7;

/// The flat-index plan of one lease.
///
/// Round-robin shards produce stepped ranges (`start, start + step, …`),
/// which travel as three integers no matter how many cells the lease holds;
/// keyed shards produce irregular ascending lists, which travel explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseIndices {
    /// `count` indices: `start, start + step, start + 2·step, …`.
    Stepped {
        /// First flat index.
        start: u64,
        /// Stride between consecutive indices (≥ 1).
        step: u64,
        /// Number of indices.
        count: u64,
    },
    /// An explicit strictly-ascending index list.
    Explicit(Vec<u64>),
}

impl LeaseIndices {
    /// Compresses a strictly-ascending flat-index list, preferring the
    /// stepped form when the list is an arithmetic progression.
    ///
    /// # Panics
    ///
    /// Panics if `flats` is empty or not strictly ascending.
    #[must_use]
    pub fn from_flats(flats: &[usize]) -> Self {
        assert!(!flats.is_empty(), "a lease needs at least one cell");
        assert!(
            flats.windows(2).all(|w| w[0] < w[1]),
            "lease indices must be strictly ascending"
        );
        if flats.len() == 1 {
            return LeaseIndices::Stepped {
                start: flats[0] as u64,
                step: 1,
                count: 1,
            };
        }
        let step = flats[1] - flats[0];
        if flats.windows(2).all(|w| w[1] - w[0] == step) {
            LeaseIndices::Stepped {
                start: flats[0] as u64,
                step: step as u64,
                count: flats.len() as u64,
            }
        } else {
            LeaseIndices::Explicit(flats.iter().map(|&f| f as u64).collect())
        }
    }

    /// Number of cells in the lease.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            LeaseIndices::Stepped { count, .. } => *count as usize,
            LeaseIndices::Explicit(flats) => flats.len(),
        }
    }

    /// Whether the lease is empty (never true for a well-formed lease).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the ascending flat-index list.
    #[must_use]
    pub fn expand(&self) -> Vec<usize> {
        match self {
            LeaseIndices::Stepped { start, step, count } => {
                (0..*count).map(|i| (*start + i * *step) as usize).collect()
            }
            LeaseIndices::Explicit(flats) => flats.iter().map(|&f| f as usize).collect(),
        }
    }

    fn encode(&self, enc: &mut Enc) {
        match self {
            LeaseIndices::Stepped { start, step, count } => {
                enc.put_u8(0);
                enc.put_u64(*start);
                enc.put_u64(*step);
                enc.put_u64(*count);
            }
            LeaseIndices::Explicit(flats) => {
                enc.put_u8(1);
                enc.put_u64(flats.len() as u64);
                for &flat in flats {
                    enc.put_u64(flat);
                }
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(match dec.u8()? {
            0 => {
                let (start, step, count) = (dec.u64()?, dec.u64()?, dec.u64()?);
                if step == 0 && count > 1 {
                    return Err(WireError::malformed("stepped lease with zero step"));
                }
                LeaseIndices::Stepped { start, step, count }
            }
            1 => {
                let count = dec.u64()?;
                let mut flats = Vec::with_capacity(count.min(1 << 24) as usize);
                for _ in 0..count {
                    flats.push(dec.u64()?);
                }
                if !flats.windows(2).all(|w| w[0] < w[1]) {
                    return Err(WireError::malformed("explicit lease not ascending"));
                }
                LeaseIndices::Explicit(flats)
            }
            tag => return Err(WireError::malformed(format!("lease indices tag {tag}"))),
        })
    }
}

/// One protocol message.
#[derive(Debug)]
pub enum Message {
    /// Opens a worker's session: which virtual worker slot it serves, how
    /// many threads to fold each lease with, the sub-batch size between
    /// heartbeats, and the encoded [`crate::recipe::SweepRecipe`].
    Job {
        /// The virtual worker slot this process serves.
        worker_slot: u32,
        /// In-process threads the worker folds each lease with.
        threads: u32,
        /// Cells per execution sub-batch (heartbeat cadence).
        batch_cells: u32,
        /// Quarantine mode: on a failing cell, re-run the batch cell by
        /// cell, report each failure as a `WorkerError`, and continue —
        /// instead of exiting after the first failure.
        quarantine: bool,
        /// Encoded sweep recipe.
        recipe: Vec<u8>,
    },
    /// Grants the worker one lease.
    Lease {
        /// Lease identifier (dispatcher-global).
        lease_id: u64,
        /// The cells the lease covers.
        indices: LeaseIndices,
    },
    /// One finished cell, streamed in ascending flat order within a lease.
    Result {
        /// The lease the cell belongs to.
        lease_id: u64,
        /// Flat cell index.
        flat: u64,
        /// The cell's result.
        record: Box<RunRecord>,
    },
    /// A lease finished; every `Result` of it has been sent.
    LeaseDone {
        /// The finished lease.
        lease_id: u64,
        /// Total cells executed (sanity check against the lease plan).
        cells: u64,
    },
    /// Liveness signal after each execution sub-batch.
    Heartbeat {
        /// The lease in progress.
        lease_id: u64,
        /// Cells completed so far in this lease.
        done_cells: u64,
    },
    /// A cell failed; the worker stops after reporting it.
    WorkerError {
        /// The lease the failure occurred in.
        lease_id: u64,
        /// Flat index of the failing cell.
        flat: u64,
        /// The structured simulator error ([`crate::codec::put_sim_error`]):
        /// the dispatcher surfaces the *same* [`SimError`] value the
        /// in-process executor would return, payload fields intact.
        error: SimError,
    },
    /// Orderly end of session; the worker exits cleanly.
    Shutdown,
}

impl Message {
    /// Writes the message as one frame and flushes.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let mut enc = Enc::new();
        let frame_type = match self {
            Message::Job {
                worker_slot,
                threads,
                batch_cells,
                quarantine,
                recipe,
            } => {
                enc.put_u32(PROTO_MAGIC);
                enc.put_u16(PROTO_VERSION);
                enc.put_u32(*worker_slot);
                enc.put_u32(*threads);
                enc.put_u32(*batch_cells);
                enc.put_bool(*quarantine);
                enc.put_bytes(recipe);
                FT_JOB
            }
            Message::Lease { lease_id, indices } => {
                enc.put_u64(*lease_id);
                indices.encode(&mut enc);
                FT_LEASE
            }
            Message::Result {
                lease_id,
                flat,
                record,
            } => {
                enc.put_u64(*lease_id);
                enc.put_u64(*flat);
                codec::put_record(&mut enc, record);
                FT_RESULT
            }
            Message::LeaseDone { lease_id, cells } => {
                enc.put_u64(*lease_id);
                enc.put_u64(*cells);
                FT_LEASE_DONE
            }
            Message::Heartbeat {
                lease_id,
                done_cells,
            } => {
                enc.put_u64(*lease_id);
                enc.put_u64(*done_cells);
                FT_HEARTBEAT
            }
            Message::WorkerError {
                lease_id,
                flat,
                error,
            } => {
                enc.put_u64(*lease_id);
                enc.put_u64(*flat);
                codec::put_sim_error(&mut enc, error);
                FT_WORKER_ERROR
            }
            Message::Shutdown => FT_SHUTDOWN,
        };
        write_frame(w, frame_type, &enc.into_bytes())
    }

    /// Reads the next message; `Ok(None)` on clean end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and malformed frames.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Self>, WireError> {
        let Some((frame_type, payload)) = read_frame(r)? else {
            return Ok(None);
        };
        let mut dec = Dec::new(&payload);
        let message = match frame_type {
            FT_JOB => {
                let magic = dec.u32()?;
                if magic != PROTO_MAGIC {
                    return Err(WireError::malformed(format!("job magic {magic:#010x}")));
                }
                let version = dec.u16()?;
                if version != PROTO_VERSION {
                    return Err(WireError::malformed(format!(
                        "protocol version {version} (this build speaks {PROTO_VERSION})"
                    )));
                }
                Message::Job {
                    worker_slot: dec.u32()?,
                    threads: dec.u32()?,
                    batch_cells: dec.u32()?,
                    quarantine: dec.bool()?,
                    recipe: dec.bytes()?.to_vec(),
                }
            }
            FT_LEASE => Message::Lease {
                lease_id: dec.u64()?,
                indices: LeaseIndices::decode(&mut dec)?,
            },
            FT_RESULT => Message::Result {
                lease_id: dec.u64()?,
                flat: dec.u64()?,
                record: Box::new(codec::get_record(&mut dec)?),
            },
            FT_LEASE_DONE => Message::LeaseDone {
                lease_id: dec.u64()?,
                cells: dec.u64()?,
            },
            FT_HEARTBEAT => Message::Heartbeat {
                lease_id: dec.u64()?,
                done_cells: dec.u64()?,
            },
            FT_WORKER_ERROR => Message::WorkerError {
                lease_id: dec.u64()?,
                flat: dec.u64()?,
                error: codec::get_sim_error(&mut dec)?,
            },
            FT_SHUTDOWN => Message::Shutdown,
            tag => return Err(WireError::malformed(format!("frame type {tag}"))),
        };
        dec.finish()?;
        Ok(Some(message))
    }
}

/// A connected byte channel to one worker process, splittable into
/// independently-owned read and write halves (the dispatcher reads each
/// worker on a dedicated thread while writing leases from the main thread).
pub trait WorkerTransport: Send {
    /// Splits into `(read half, write half)`.
    fn split(self: Box<Self>) -> (Box<dyn Read + Send>, Box<dyn Write + Send>);
}

/// The default transport: the worker child process's stdin/stdout pipes.
#[derive(Debug)]
pub struct PipeTransport {
    /// Dispatcher-held write end (the worker's stdin).
    pub stdin: ChildStdin,
    /// Dispatcher-held read end (the worker's stdout).
    pub stdout: ChildStdout,
}

impl WorkerTransport for PipeTransport {
    fn split(self: Box<Self>) -> (Box<dyn Read + Send>, Box<dyn Write + Send>) {
        (Box::new(self.stdout), Box::new(self.stdin))
    }
}

/// A loopback TCP transport: the same framed protocol over a socket
/// (workers launched with `--connect <addr>`).
#[derive(Debug)]
pub struct TcpTransport {
    /// The accepted worker connection.
    pub stream: TcpStream,
}

impl WorkerTransport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn Read + Send>, Box<dyn Write + Send>) {
        let read = self.stream.try_clone().expect("clone tcp stream");
        (Box::new(read), Box::new(self.stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::rng::SplitMix64;

    #[test]
    fn lease_indices_round_trip_property() {
        let mut rng = SplitMix64::new(0xA5A5);
        for case in 0..64 {
            // Alternate stepped and irregular ascending lists.
            let flats: Vec<usize> = if case % 2 == 0 {
                let start = (rng.next_u64() % 1000) as usize;
                let step = 1 + (rng.next_u64() % 7) as usize;
                let count = 1 + (rng.next_u64() % 20) as usize;
                (0..count).map(|i| start + i * step).collect()
            } else {
                let mut acc = (rng.next_u64() % 100) as usize;
                (0..1 + (rng.next_u64() % 20) as usize)
                    .map(|_| {
                        acc += 1 + (rng.next_u64() % 5) as usize;
                        acc
                    })
                    .collect()
            };
            let indices = LeaseIndices::from_flats(&flats);
            assert_eq!(indices.expand(), flats, "expand() must invert from_flats");
            assert_eq!(indices.len(), flats.len());
            let mut enc = Enc::new();
            indices.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            let decoded = LeaseIndices::decode(&mut dec).expect("decode");
            dec.finish().expect("consumed");
            assert_eq!(decoded, indices);
        }
    }

    #[test]
    fn stepped_compression_kicks_in_for_round_robin_shards() {
        // A round-robin worker shard (w, w+p, w+2p, ...) must travel as
        // three integers, not one per cell.
        let flats: Vec<usize> = (3..1000).step_by(4).collect();
        match LeaseIndices::from_flats(&flats) {
            LeaseIndices::Stepped { start, step, count } => {
                assert_eq!((start, step, count as usize), (3, 4, flats.len()));
            }
            other => panic!("expected stepped, got {other:?}"),
        }
    }

    #[test]
    fn control_messages_round_trip_over_a_stream() {
        let mut stream = Vec::new();
        Message::Job {
            worker_slot: 3,
            threads: 2,
            batch_cells: 16,
            quarantine: true,
            recipe: vec![1, 2, 3],
        }
        .write_to(&mut stream)
        .unwrap();
        Message::Lease {
            lease_id: 7,
            indices: LeaseIndices::from_flats(&[0, 2, 4]),
        }
        .write_to(&mut stream)
        .unwrap();
        Message::LeaseDone {
            lease_id: 7,
            cells: 3,
        }
        .write_to(&mut stream)
        .unwrap();
        Message::Heartbeat {
            lease_id: 7,
            done_cells: 2,
        }
        .write_to(&mut stream)
        .unwrap();
        Message::WorkerError {
            lease_id: 7,
            flat: 4,
            error: SimError::UnknownWorkload {
                name: "boom".to_string(),
            },
        }
        .write_to(&mut stream)
        .unwrap();
        Message::Shutdown.write_to(&mut stream).unwrap();

        let mut cursor = std::io::Cursor::new(stream);
        match Message::read_from(&mut cursor).unwrap().unwrap() {
            Message::Job {
                worker_slot,
                threads,
                batch_cells,
                quarantine,
                recipe,
            } => {
                assert_eq!(
                    (worker_slot, threads, batch_cells, quarantine, recipe),
                    (3, 2, 16, true, vec![1, 2, 3])
                );
            }
            other => panic!("expected Job, got {other:?}"),
        }
        match Message::read_from(&mut cursor).unwrap().unwrap() {
            Message::Lease { lease_id, indices } => {
                assert_eq!(lease_id, 7);
                assert_eq!(indices.expand(), vec![0, 2, 4]);
            }
            other => panic!("expected Lease, got {other:?}"),
        }
        assert!(matches!(
            Message::read_from(&mut cursor).unwrap().unwrap(),
            Message::LeaseDone {
                lease_id: 7,
                cells: 3
            }
        ));
        assert!(matches!(
            Message::read_from(&mut cursor).unwrap().unwrap(),
            Message::Heartbeat {
                lease_id: 7,
                done_cells: 2
            }
        ));
        match Message::read_from(&mut cursor).unwrap().unwrap() {
            Message::WorkerError {
                lease_id,
                flat,
                error,
            } => {
                assert_eq!((lease_id, flat), (7, 4));
                assert_eq!(
                    error,
                    SimError::UnknownWorkload {
                        name: "boom".to_string()
                    }
                );
            }
            other => panic!("expected WorkerError, got {other:?}"),
        }
        assert!(matches!(
            Message::read_from(&mut cursor).unwrap().unwrap(),
            Message::Shutdown
        ));
        assert!(Message::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn job_frames_from_a_drifted_protocol_are_rejected() {
        // A frame whose CRC is *valid* but whose Job payload speaks an older
        // protocol version: the version check itself must reject it (a
        // drifted-but-honest peer, not wire corruption).
        let mut enc = Enc::new();
        enc.put_u32(PROTO_MAGIC);
        enc.put_u16(PROTO_VERSION - 1);
        enc.put_u32(0); // worker_slot
        enc.put_u32(1); // threads
        enc.put_u32(1); // batch_cells
        enc.put_bytes(&[]); // recipe
        let mut stream = Vec::new();
        write_frame(&mut stream, FT_JOB, &enc.into_bytes()).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let err = Message::read_from(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("protocol version"), "got: {err}");
    }

    #[test]
    fn corrupted_job_frames_fail_the_crc_before_parsing() {
        let mut stream = Vec::new();
        Message::Job {
            worker_slot: 0,
            threads: 1,
            batch_cells: 1,
            quarantine: false,
            recipe: Vec::new(),
        }
        .write_to(&mut stream)
        .unwrap();
        // Flip a bit in the version field (after the 9-byte frame header
        // and the 4-byte magic): the CRC catches it.
        stream[crate::wire::FRAME_HEADER_LEN + 4] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(stream);
        let err = Message::read_from(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "got: {err}");
    }
}
