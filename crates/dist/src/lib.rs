//! Multi-process distributed sweep executor.
//!
//! Scales SysScale sweeps past one OS process while keeping the repo's
//! core determinism contract: [`run_distributed`] at **any** process count
//! is bit-identical to the in-process
//! [`sysscale::SweepSet::run_parallel_fold`] on the same sweep — including
//! when a worker process is killed mid-run and its leases are replayed.
//!
//! The subsystem has four layers, bottom up:
//!
//! - [`wire`]: hand-rolled length-prefixed binary framing and scalar
//!   codecs (`f64`s travel as bit patterns — the offline container has no
//!   serde, and bit-exactness is a feature, not a workaround).
//! - [`codec`]: [`sysscale::RunRecord`] ↔ bytes, `PartialEq`-identical
//!   across the boundary.
//! - [`recipe`]: *replayable sweep recipes* — a [`recipe::SweepRecipe`]
//!   names platforms, workloads (including seeded generator populations),
//!   and governors instead of carrying built objects, so a few hundred
//!   bytes regenerate byte-identical scenarios in every worker process.
//!   Platform fingerprints are pinned at encode time to catch
//!   dispatcher/worker binary drift.
//! - [`proto`] / [`dispatcher`] / [`worker`]: the lease protocol. The
//!   dispatcher cuts each virtual worker slot's shard (the same
//!   [`sysscale::SweepSharding`] assignment the in-process fold core uses)
//!   into ascending **leases**, streams them to one worker process per
//!   slot (stdin/stdout pipes, or TCP behind the same
//!   [`proto::WorkerTransport`] trait), folds the streamed-back results
//!   per lease, and merges lease accumulators in plan order — the exact
//!   partition the in-process merge uses. A lease only retires on its
//!   `LeaseDone` frame; when a worker dies mid-lease the partial
//!   accumulators are discarded and exactly the unfinished leases are
//!   re-issued to a fresh process on the same slot.
//!
//! On top of the lease protocol sit three robustness layers (all of them
//! deterministic, all serde-free):
//!
//! - [`journal`]: a checkpoint journal of completed leases
//!   ([`DistOptions::journal`]) — a killed dispatcher restarted with the
//!   same recipe replays finished leases from disk and re-executes only the
//!   remainder, byte-identical to an uninterrupted run.
//! - **quarantine** ([`run_distributed_partial`] /
//!   [`run_distributed_fold_partial`]): explicit partial-result mode, where
//!   a poisoned cell (clean failure, or a cell that kills its worker
//!   [`dispatcher::MAX_LEASE_EXECUTIONS`] times and is isolated by lease
//!   bisection) lands in a [`FailedCells`] manifest and the sweep completes
//!   around it.
//! - [`fault`]: a seeded wire-fault injector
//!   ([`fault::FAULT_PLAN_ENV`]) that corrupts, truncates, duplicates, or
//!   delays chosen frames so CI can prove every corruption mode ends in a
//!   clean CRC rejection + replay or idempotent absorption — never a hang,
//!   panic, or silently wrong result. [`net`] adds bounded deterministic
//!   connect backoff and transient-I/O retries under it all.
//!
//! ```no_run
//! use sysscale_dist::{run_distributed, DistOptions, SweepRecipe};
//!
//! let recipe = SweepRecipe::fig10(&[3.5, 4.5, 6.0]);
//! let (run_sets, stats) = run_distributed(&recipe, &DistOptions::default())?;
//! assert_eq!(run_sets.len(), recipe.members.len());
//! assert_eq!(stats.reissued_leases, 0);
//! # Ok::<(), sysscale::types::SimError>(())
//! ```

pub mod codec;
pub mod dispatcher;
pub mod duplex;
pub mod fault;
pub mod journal;
pub mod net;
pub mod proto;
pub mod recipe;
pub mod serve;
pub mod wire;
pub mod worker;

pub use dispatcher::{
    run_distributed, run_distributed_fold, run_distributed_fold_partial, run_distributed_partial,
    DistOptions, DistStats, FailedCell, FailedCells, PoisonFault, TransportKind, WorkerFault,
    HEARTBEAT_TIMEOUT_ENV, MAX_LEASE_EXECUTIONS, WORKER_ENV,
};
pub use duplex::{byte_pipe, duplex, DuplexEnd, PipeReader, PipeWriter};
pub use fault::{FaultKind, FaultPlan, FaultReader, WireFault, FAULT_PLAN_ENV};
pub use journal::{JournalHeader, JournalReplay, ReplayedLease, ReplayedQuarantine, SweepJournal};
pub use net::{connect_with_backoff, transient_retries, RetryScope, RetryScopeGuard};
pub use proto::{LeaseIndices, Message, PipeTransport, TcpTransport, WorkerTransport};
pub use recipe::{
    sweep_from_sets, GovernorSpec, MatrixRecipe, PlatformSpec, SweepRecipe, WorkloadsSpec,
};
pub use serve::{
    assess_stages, degradation_point, BusyShed, ExecutorMode, LoadAssessment, RequestSample,
    ServeClient, ServeError, ServeEvent, ServeOptions, ServeStats, StressMetrics, SweepOutcome,
    SweepService,
};
pub use wire::{Dec, Enc, WireError};
pub use worker::{worker_main, FAULT_ENV, HANG_ENV, POISON_CRASH_ENV, POISON_FLAT_ENV};
