//! Multi-process distributed sweep executor.
//!
//! Scales SysScale sweeps past one OS process while keeping the repo's
//! core determinism contract: [`run_distributed`] at **any** process count
//! is bit-identical to the in-process
//! [`sysscale::SweepSet::run_parallel_fold`] on the same sweep — including
//! when a worker process is killed mid-run and its leases are replayed.
//!
//! The subsystem has four layers, bottom up:
//!
//! - [`wire`]: hand-rolled length-prefixed binary framing and scalar
//!   codecs (`f64`s travel as bit patterns — the offline container has no
//!   serde, and bit-exactness is a feature, not a workaround).
//! - [`codec`]: [`sysscale::RunRecord`] ↔ bytes, `PartialEq`-identical
//!   across the boundary.
//! - [`recipe`]: *replayable sweep recipes* — a [`recipe::SweepRecipe`]
//!   names platforms, workloads (including seeded generator populations),
//!   and governors instead of carrying built objects, so a few hundred
//!   bytes regenerate byte-identical scenarios in every worker process.
//!   Platform fingerprints are pinned at encode time to catch
//!   dispatcher/worker binary drift.
//! - [`proto`] / [`dispatcher`] / [`worker`]: the lease protocol. The
//!   dispatcher cuts each virtual worker slot's shard (the same
//!   [`sysscale::SweepSharding`] assignment the in-process fold core uses)
//!   into ascending **leases**, streams them to one worker process per
//!   slot (stdin/stdout pipes, or TCP behind the same
//!   [`proto::WorkerTransport`] trait), folds the streamed-back results
//!   per lease, and merges lease accumulators in plan order — the exact
//!   partition the in-process merge uses. A lease only retires on its
//!   `LeaseDone` frame; when a worker dies mid-lease the partial
//!   accumulators are discarded and exactly the unfinished leases are
//!   re-issued to a fresh process on the same slot.
//!
//! ```no_run
//! use sysscale_dist::{run_distributed, DistOptions, SweepRecipe};
//!
//! let recipe = SweepRecipe::fig10(&[3.5, 4.5, 6.0]);
//! let (run_sets, stats) = run_distributed(&recipe, &DistOptions::default())?;
//! assert_eq!(run_sets.len(), recipe.members.len());
//! assert_eq!(stats.reissued_leases, 0);
//! # Ok::<(), sysscale::types::SimError>(())
//! ```

pub mod codec;
pub mod dispatcher;
pub mod proto;
pub mod recipe;
pub mod wire;
pub mod worker;

pub use dispatcher::{
    run_distributed, run_distributed_fold, DistOptions, DistStats, TransportKind, WorkerFault,
    HEARTBEAT_TIMEOUT_ENV, WORKER_ENV,
};
pub use proto::{LeaseIndices, Message, PipeTransport, TcpTransport, WorkerTransport};
pub use recipe::{
    sweep_from_sets, GovernorSpec, MatrixRecipe, PlatformSpec, SweepRecipe, WorkloadsSpec,
};
pub use wire::{Dec, Enc, WireError};
pub use worker::{worker_main, FAULT_ENV, HANG_ENV};
