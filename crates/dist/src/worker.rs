//! The worker half of the distributed executor.
//!
//! A worker process speaks the [`crate::proto`] protocol over an arbitrary
//! byte channel (stdin/stdout pipes by default, a TCP socket with
//! `--connect`): it receives one `Job` frame naming its worker slot and
//! carrying the encoded sweep recipe, rebuilds the sweep locally, then
//! executes each granted `Lease` against a warm [`SessionPool`] — streaming
//! every finished cell back as a `Result` frame in ascending flat order,
//! a `Heartbeat` after each sub-batch, and a `LeaseDone` once the lease is
//! exhausted. `Shutdown` (or clean EOF) ends the session.

use std::io::{BufReader, BufWriter, Read, Write};

use sysscale::SessionPool;

use crate::proto::Message;
use crate::recipe::{sweep_from_sets, SweepRecipe};

/// Fault-injection hook for the dispatcher's re-issue tests: when set to
/// `n`, the worker kills itself — hard, no cleanup — right after streaming
/// its `n`-th `Result` frame. The dispatcher sets this only on deliberately
/// sacrificed processes and never on respawns.
pub const FAULT_ENV: &str = "SYSSCALE_DIST_FAULT_AFTER";

/// Companion to [`FAULT_ENV`] for the heartbeat-watchdog tests: when set
/// (any non-empty value) alongside [`FAULT_ENV`]`=n`, the worker *hangs*
/// after its `n`-th `Result` frame — process alive, stream open, no further
/// frames — instead of dying. Only the dispatcher's heartbeat timeout can
/// recover from this shape of failure.
pub const HANG_ENV: &str = "SYSSCALE_DIST_FAULT_HANG";

/// Poison-injection hook for the quarantine tests: when set to a flat cell
/// index, that cell deterministically *fails* (a structured
/// `InvalidConfig`) in every worker that would execute it — the
/// "always-failing cell" the quarantine machinery must isolate. The
/// dispatcher forwards this to every spawn, respawns included, mirroring a
/// cell that fails for cause rather than by chance.
pub const POISON_FLAT_ENV: &str = "SYSSCALE_DIST_POISON_FLAT";

/// Companion to [`POISON_FLAT_ENV`]: when set (any non-empty value), the
/// poisoned cell *kills the worker outright* (no `WorkerError` frame,
/// `kill -9` semantics) instead of failing cleanly — the failure shape
/// that forces the dispatcher to bisect the lease down to the offending
/// cell.
pub const POISON_CRASH_ENV: &str = "SYSSCALE_DIST_POISON_CRASH";

/// The structured error a poisoned cell fails with (also what the
/// dispatcher's manifest ends up holding for it).
pub(crate) fn poison_error(flat: usize) -> sysscale_types::SimError {
    sysscale_types::SimError::invalid_config(format!("poisoned cell {flat} (injected failure)"))
}

/// Dies as abruptly as `kill -9`: try SIGKILL via the system `kill`
/// utility, and if that is unavailable fall back to an abort. Neither path
/// flushes buffers or unwinds, which is the point — the dispatcher must
/// cope with a worker vanishing mid-lease.
fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    std::process::abort();
}

/// Hangs forever without closing the transport — the "stuck but alive"
/// failure mode ([`HANG_ENV`]): the dispatcher's reader thread sees no EOF,
/// so only the heartbeat watchdog notices.
fn hang_forever() -> ! {
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Runs the worker protocol loop over the given byte channel until
/// `Shutdown` or clean EOF.
///
/// # Errors
///
/// Returns a rendered error on protocol violations, transport failures, or
/// an unbuildable recipe. A failing *cell* is reported to the dispatcher as
/// a `WorkerError` frame first and then surfaces here, so the process exits
/// nonzero either way.
pub fn worker_main(rx: impl Read, tx: impl Write) -> Result<(), String> {
    let mut rx = BufReader::new(rx);
    let mut tx = BufWriter::new(tx);

    let fault_after: Option<u64> = std::env::var(FAULT_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok());
    let fault_hangs = std::env::var(HANG_ENV).is_ok_and(|v| !v.trim().is_empty());
    let poison_flat: Option<usize> = std::env::var(POISON_FLAT_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok());
    let poison_crash = std::env::var(POISON_CRASH_ENV).is_ok_and(|v| !v.trim().is_empty());
    let mut results_sent = 0u64;

    // The session opens with exactly one Job frame.
    let (threads, batch_cells, quarantine, recipe_bytes) = match Message::read_from(&mut rx) {
        Ok(Some(Message::Job {
            threads,
            batch_cells,
            quarantine,
            recipe,
            ..
        })) => (
            threads.max(1) as usize,
            batch_cells.max(1) as usize,
            quarantine,
            recipe,
        ),
        Ok(Some(other)) => return Err(format!("expected Job frame, got {other:?}")),
        Ok(None) => return Err("stream closed before Job frame".to_string()),
        Err(error) => return Err(format!("reading Job frame: {error}")),
    };

    let recipe = SweepRecipe::decode(&recipe_bytes).map_err(|e| format!("decoding recipe: {e}"))?;
    let sets = recipe
        .build()
        .map_err(|e| format!("building recipe: {e}"))?;
    let sweep = sweep_from_sets(&sets);
    let total = sweep.cells();
    let mut pool = SessionPool::new();

    loop {
        match Message::read_from(&mut rx) {
            Ok(Some(Message::Lease { lease_id, indices })) => {
                let flats = indices.expand();
                if flats.last().is_some_and(|&last| last >= total) {
                    return Err(format!(
                        "lease {lease_id} indexes past the sweep ({total} cells)"
                    ));
                }
                // Signal liveness before the first (possibly long) batch so
                // the dispatcher's heartbeat watchdog never mistakes lease
                // startup for a hang.
                Message::Heartbeat {
                    lease_id,
                    done_cells: 0,
                }
                .write_to(&mut tx)
                .map_err(|e| format!("streaming heartbeat: {e}"))?;
                let mut done_cells = 0u64;
                for batch in flats.chunks(batch_cells) {
                    // A crash-mode poisoned cell takes the whole process
                    // down, `kill -9` style — the failure shape the
                    // dispatcher can only isolate by bisecting the lease.
                    if poison_crash && poison_flat.is_some_and(|p| batch.contains(&p)) {
                        die_hard();
                    }
                    let outcome = match poison_flat.filter(|p| batch.contains(p)) {
                        Some(p) => Err(sysscale::CellError {
                            flat: p,
                            error: poison_error(p),
                        }),
                        None => sweep.run_flat_indices(&mut pool, threads, batch),
                    };
                    match outcome {
                        Ok(pairs) => {
                            for (flat, record) in pairs {
                                Message::Result {
                                    lease_id,
                                    flat: flat as u64,
                                    record: Box::new(record),
                                }
                                .write_to(&mut tx)
                                .map_err(|e| format!("streaming result: {e}"))?;
                                results_sent += 1;
                                if fault_after.is_some_and(|n| results_sent >= n) {
                                    if fault_hangs {
                                        hang_forever();
                                    }
                                    die_hard();
                                }
                            }
                            done_cells += batch.len() as u64;
                            Message::Heartbeat {
                                lease_id,
                                done_cells,
                            }
                            .write_to(&mut tx)
                            .map_err(|e| format!("streaming heartbeat: {e}"))?;
                        }
                        Err(_) if quarantine => {
                            // Quarantine mode: isolate the failure by
                            // re-running the batch cell by cell, ascending.
                            // Failing cells become WorkerError frames (in
                            // the same stream position their Result would
                            // occupy); healthy cells still stream, and the
                            // worker keeps going.
                            for &flat in batch {
                                let single = match poison_flat.filter(|&p| p == flat) {
                                    Some(p) => Err(sysscale::CellError {
                                        flat: p,
                                        error: poison_error(p),
                                    }),
                                    None => sweep.run_flat_indices(&mut pool, threads, &[flat]),
                                };
                                match single {
                                    Ok(pairs) => {
                                        for (flat, record) in pairs {
                                            Message::Result {
                                                lease_id,
                                                flat: flat as u64,
                                                record: Box::new(record),
                                            }
                                            .write_to(&mut tx)
                                            .map_err(|e| format!("streaming result: {e}"))?;
                                            results_sent += 1;
                                            if fault_after.is_some_and(|n| results_sent >= n) {
                                                if fault_hangs {
                                                    hang_forever();
                                                }
                                                die_hard();
                                            }
                                        }
                                    }
                                    Err(cell_error) => {
                                        Message::WorkerError {
                                            lease_id,
                                            flat: cell_error.flat as u64,
                                            error: cell_error.error.clone(),
                                        }
                                        .write_to(&mut tx)
                                        .map_err(|e| format!("streaming error: {e}"))?;
                                    }
                                }
                            }
                            done_cells += batch.len() as u64;
                            Message::Heartbeat {
                                lease_id,
                                done_cells,
                            }
                            .write_to(&mut tx)
                            .map_err(|e| format!("streaming heartbeat: {e}"))?;
                        }
                        Err(cell_error) => {
                            Message::WorkerError {
                                lease_id,
                                flat: cell_error.flat as u64,
                                error: cell_error.error.clone(),
                            }
                            .write_to(&mut tx)
                            .map_err(|e| format!("streaming error: {e}"))?;
                            return Err(format!(
                                "cell {} failed: {}",
                                cell_error.flat, cell_error.error
                            ));
                        }
                    }
                }
                Message::LeaseDone {
                    lease_id,
                    cells: flats.len() as u64,
                }
                .write_to(&mut tx)
                .map_err(|e| format!("completing lease: {e}"))?;
            }
            Ok(Some(Message::Shutdown)) | Ok(None) => return Ok(()),
            Ok(Some(other)) => return Err(format!("unexpected frame: {other:?}")),
            Err(error) => return Err(format!("reading frame: {error}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::LeaseIndices;
    use crate::recipe::{GovernorSpec, MatrixRecipe, PlatformSpec, SweepRecipe, WorkloadsSpec};

    /// A 2×2 sweep small enough to execute for real in a unit test.
    fn tiny_recipe() -> SweepRecipe {
        SweepRecipe::single(MatrixRecipe {
            platform: PlatformSpec::SkylakeDefault,
            workloads: WorkloadsSpec::SpecNamed(vec!["mcf".to_string(), "lbm".to_string()]),
            governors: vec![
                GovernorSpec::Registry("baseline".to_string()),
                GovernorSpec::SysScaleDefault,
            ],
            baseline: Some("baseline".to_string()),
            duration_secs: Some(0.5),
            pinned_fingerprint: None,
        })
    }

    /// Drives a worker end-to-end in-process over byte buffers: Job, one
    /// lease covering the whole (tiny) sweep, Shutdown — and checks the
    /// result stream is ascending and complete.
    #[test]
    fn worker_executes_a_lease_and_streams_ascending_results() {
        let recipe = tiny_recipe();
        let total = recipe.total_cells();
        assert!(total >= 2, "single-platform recipe should have cells");
        let flats: Vec<usize> = (0..total).collect();

        let mut input = Vec::new();
        Message::Job {
            worker_slot: 0,
            threads: 1,
            batch_cells: 2,
            quarantine: false,
            recipe: recipe.encode(),
        }
        .write_to(&mut input)
        .unwrap();
        Message::Lease {
            lease_id: 0,
            indices: LeaseIndices::from_flats(&flats),
        }
        .write_to(&mut input)
        .unwrap();
        Message::Shutdown.write_to(&mut input).unwrap();

        let mut output = Vec::new();
        worker_main(&input[..], &mut output).expect("worker session");

        let mut cursor = std::io::Cursor::new(output);
        let mut seen = Vec::new();
        let mut lease_done = false;
        while let Some(message) = Message::read_from(&mut cursor).unwrap() {
            match message {
                Message::Result { lease_id, flat, .. } => {
                    assert_eq!(lease_id, 0);
                    seen.push(flat as usize);
                }
                Message::Heartbeat { .. } => {}
                Message::LeaseDone { lease_id, cells } => {
                    assert_eq!((lease_id, cells as usize), (0, total));
                    lease_done = true;
                }
                other => panic!("unexpected worker frame: {other:?}"),
            }
        }
        assert!(lease_done, "lease must complete");
        assert_eq!(seen, flats, "results must stream in ascending flat order");
    }

    #[test]
    fn worker_rejects_a_lease_past_the_sweep() {
        let recipe = tiny_recipe();
        let total = recipe.total_cells();
        let mut input = Vec::new();
        Message::Job {
            worker_slot: 0,
            threads: 1,
            batch_cells: 4,
            quarantine: false,
            recipe: recipe.encode(),
        }
        .write_to(&mut input)
        .unwrap();
        Message::Lease {
            lease_id: 9,
            indices: LeaseIndices::from_flats(&[total]),
        }
        .write_to(&mut input)
        .unwrap();

        let mut output = Vec::new();
        let err = worker_main(&input[..], &mut output).unwrap_err();
        assert!(err.contains("lease 9"), "got: {err}");
    }
}
