//! Hand-rolled length-prefixed binary framing.
//!
//! The repository is offline (no serde), so the dispatcher↔worker protocol
//! is encoded with a small explicit byte layer instead of a derive:
//!
//! * all integers are **little-endian** fixed width;
//! * `f64` values travel as their IEEE-754 bit pattern
//!   ([`f64::to_bits`]/[`f64::from_bits`]), so floating-point payloads
//!   round-trip **bit-exactly** — the foundation of the executor's
//!   bit-identical merge contract;
//! * strings and byte blobs are `u32` length + raw bytes (strings UTF-8);
//! * a frame on the transport is `type: u8`, `len: u32`, `crc: u32`,
//!   `payload` — see [`write_frame`]/[`read_frame`]. The CRC-32 covers the
//!   type byte, the length prefix, and the payload, so a bit flip anywhere
//!   in a frame is detected before the payload is parsed.
//!
//! Decoding is total: every malformed input surfaces as a [`WireError`],
//! never a panic, so a corrupt or truncated stream from a dying worker is an
//! ordinary error path. Transient I/O conditions (`Interrupted`, and
//! `WouldBlock` up to a bounded budget) are retried inside the frame
//! helpers and counted via [`crate::net::transient_retries`], so a
//! momentarily-stalled socket never surfaces as a frame error.

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use crate::net::note_transient_retry;

/// Upper bound on one frame's payload, guarding the dispatcher against a
/// corrupt length prefix allocating unbounded memory. Generous: the largest
/// real frame (a serialized [`RunRecord`](sysscale::RunRecord) with a
/// collected trace) is a few megabytes.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// Bytes of a frame header on the wire: type (`u8`), payload length
/// (`u32`), CRC-32 (`u32`).
pub const FRAME_HEADER_LEN: usize = 9;

/// How many consecutive `WouldBlock` results a single read or write call
/// tolerates before giving up and surfacing the error. `Interrupted` is
/// always retried (it carries no backpressure meaning).
const TRANSIENT_RETRY_LIMIT: u32 = 4096;

/// Pause between `WouldBlock` retries, long enough to let the peer drain a
/// buffer, short enough (≪ a heartbeat interval) to never look like a hang.
const TRANSIENT_RETRY_PAUSE: Duration = Duration::from_micros(500);

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) lookup table,
/// built at compile time — the offline container has no crc crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 (IEEE) over one or more byte segments.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds a segment.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            let index = (self.state ^ u32::from(byte)) & 0xFF;
            self.state = (self.state >> 8) ^ CRC32_TABLE[index as usize];
        }
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// The checksum a frame carries: CRC-32 over type byte, length prefix, and
/// payload — so corruption of the *header* is caught too, not just payload
/// bit flips.
fn frame_crc(frame_type: u8, len: u32, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[frame_type]);
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// An error produced by the wire layer: transport I/O failures plus every
/// way a peer's bytes can fail to parse.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The bytes do not parse as the expected shape.
    Malformed(String),
}

impl WireError {
    /// Shorthand for a malformed-payload error.
    pub fn malformed(reason: impl Into<String>) -> Self {
        WireError::Malformed(reason.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(reason) => write!(f, "malformed wire data: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A byte-buffer encoder. All `put_*` methods append fixed little-endian
/// layouts; the buffer is the payload of exactly one frame.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a `usize` as `u64` (the wire is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Encodes the IEEE-754 bit pattern — bit-exact round-trip.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// `u32` length + UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// `u32` length + raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        let len = u32::try_from(v.len()).expect("blob longer than u32::MAX");
        self.put_u32(len);
        self.buf.extend_from_slice(v);
    }
}

/// A cursor decoder over one frame's payload. Every method checks bounds
/// and returns [`WireError::Malformed`] instead of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly — catches layout drift
    /// between encoder and decoder versions.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::malformed(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decodes a `u64` that must fit the host `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::malformed("u64 value exceeds host usize"))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::malformed(format!("bool byte {other}"))),
        }
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::malformed("string is not UTF-8"))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// One `read` call with transient conditions retried: `Interrupted` always,
/// `WouldBlock` up to [`TRANSIENT_RETRY_LIMIT`] times with a short pause.
/// Every retry bumps the process-global counter behind
/// [`crate::net::transient_retries`].
pub(crate) fn read_retrying(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut budget = TRANSIENT_RETRY_LIMIT;
    loop {
        match r.read(buf) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                note_transient_retry();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && budget > 0 => {
                budget -= 1;
                note_transient_retry();
                std::thread::sleep(TRANSIENT_RETRY_PAUSE);
            }
            other => return other,
        }
    }
}

/// Fills `buf` completely via [`read_retrying`]; EOF before the buffer
/// fills is `UnexpectedEof`.
fn read_exact_retrying(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match read_retrying(r, &mut buf[filled..])? {
            0 => return Err(std::io::ErrorKind::UnexpectedEof.into()),
            n => filled += n,
        }
    }
    Ok(())
}

/// Writes `buf` completely with the same transient-retry policy as
/// [`read_retrying`].
pub(crate) fn write_all_retrying(w: &mut impl Write, mut buf: &[u8]) -> std::io::Result<()> {
    let mut budget = TRANSIENT_RETRY_LIMIT;
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                note_transient_retry();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && budget > 0 => {
                budget -= 1;
                note_transient_retry();
                std::thread::sleep(TRANSIENT_RETRY_PAUSE);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Flushes with the transient-retry policy of [`read_retrying`].
fn flush_retrying(w: &mut impl Write) -> std::io::Result<()> {
    let mut budget = TRANSIENT_RETRY_LIMIT;
    loop {
        match w.flush() {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                note_transient_retry();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && budget > 0 => {
                budget -= 1;
                note_transient_retry();
                std::thread::sleep(TRANSIENT_RETRY_PAUSE);
            }
            other => return other,
        }
    }
}

/// Writes one frame — `type` byte, `u32` payload length, `u32` CRC-32 over
/// type+length+payload, payload — and flushes, so a frame is visible to the
/// peer the moment the call returns.
///
/// # Errors
///
/// Propagates transport errors; rejects payloads over [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            WireError::malformed(format!("frame payload {} too large", payload.len()))
        })?;
    let crc = frame_crc(frame_type, len, payload);
    write_all_retrying(w, &[frame_type])?;
    write_all_retrying(w, &len.to_le_bytes())?;
    write_all_retrying(w, &crc.to_le_bytes())?;
    write_all_retrying(w, payload)?;
    flush_retrying(w)?;
    Ok(())
}

/// Reads one frame and verifies its CRC. Returns `Ok(None)` on a clean
/// end-of-stream (EOF at a frame boundary — how a closed pipe or socket
/// looks); EOF *inside* a frame is malformed (the peer died mid-write).
///
/// # Errors
///
/// Propagates transport errors; rejects length prefixes over
/// [`MAX_FRAME_LEN`], truncated frames, and checksum mismatches.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut type_byte = [0u8; 1];
    match read_retrying(r, &mut type_byte) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    let mut len_bytes = [0u8; 4];
    read_exact_retrying(r, &mut len_bytes)
        .map_err(|_| WireError::malformed("stream ended inside a frame header"))?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::malformed(format!(
            "frame length {len} exceeds cap"
        )));
    }
    let mut crc_bytes = [0u8; 4];
    read_exact_retrying(r, &mut crc_bytes)
        .map_err(|_| WireError::malformed("stream ended inside a frame header"))?;
    let expected = u32::from_le_bytes(crc_bytes);
    let mut payload = vec![0u8; len as usize];
    read_exact_retrying(r, &mut payload)
        .map_err(|_| WireError::malformed("stream ended inside a frame payload"))?;
    let actual = frame_crc(type_byte[0], len, &payload);
    if actual != expected {
        return Err(WireError::malformed(format!(
            "frame crc mismatch (type {}, len {len}): computed {actual:#010x}, header carries \
             {expected:#010x}",
            type_byte[0]
        )));
    }
    Ok(Some((type_byte[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    use sysscale_types::rng::SplitMix64;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..200 {
            let a = rng.next_u64();
            let b = rng.next_u64() as u32;
            let c = rng.next_u64() as u16;
            let d = rng.next_u64() as u8;
            // Arbitrary bit patterns, including NaNs and infinities.
            let f = f64::from_bits(rng.next_u64());
            let flag = rng.next_u64() % 2 == 0;

            let mut enc = Enc::new();
            enc.put_u64(a);
            enc.put_u32(b);
            enc.put_u16(c);
            enc.put_u8(d);
            enc.put_f64(f);
            enc.put_bool(flag);
            let bytes = enc.into_bytes();

            let mut dec = Dec::new(&bytes);
            assert_eq!(dec.u64().unwrap(), a);
            assert_eq!(dec.u32().unwrap(), b);
            assert_eq!(dec.u16().unwrap(), c);
            assert_eq!(dec.u8().unwrap(), d);
            assert_eq!(dec.f64().unwrap().to_bits(), f.to_bits());
            assert_eq!(dec.bool().unwrap(), flag);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn strings_and_blobs_round_trip() {
        let mut enc = Enc::new();
        enc.put_str("");
        enc.put_str("437.leslie3d");
        enc.put_str("unicode: μJ → ∞");
        enc.put_bytes(&[0, 255, 1, 254]);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.str().unwrap(), "");
        assert_eq!(dec.str().unwrap(), "437.leslie3d");
        assert_eq!(dec.str().unwrap(), "unicode: μJ → ∞");
        assert_eq!(dec.bytes().unwrap(), &[0, 255, 1, 254]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let mut enc = Enc::new();
        enc.put_u64(42);
        let bytes = enc.into_bytes();
        // Truncated: ask for more than is there.
        let mut dec = Dec::new(&bytes[..4]);
        assert!(dec.u64().is_err());
        // Trailing: finish() must notice unconsumed bytes.
        let dec = Dec::new(&bytes);
        assert!(dec.finish().is_err());
        // Bad bool byte.
        let mut dec = Dec::new(&[7]);
        assert!(dec.bool().is_err());
        // Non-UTF-8 string.
        let mut enc = Enc::new();
        enc.put_bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        assert!(Dec::new(&bytes).str().is_err());
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 3, b"hello").unwrap();
        write_frame(&mut stream, 9, b"").unwrap();
        write_frame(&mut stream, 255, &[1, 2, 3]).unwrap();

        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((3, b"hello".to_vec()))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((9, Vec::new())));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((255, vec![1, 2, 3])));
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn eof_inside_a_frame_is_malformed_not_clean() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 1, b"payload").unwrap();
        // Chop the stream inside the payload.
        stream.truncate(stream.len() - 3);
        let mut cursor = std::io::Cursor::new(stream);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut stream = vec![1u8];
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(stream);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 (IEEE 802.3) check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_bit_flip_in_a_frame_is_detected() {
        let mut clean = Vec::new();
        write_frame(&mut clean, 3, &[0xAB, 0x00, 0xFF, 0x42]).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                let mut cursor = std::io::Cursor::new(corrupt);
                let outcome = read_frame(&mut cursor);
                assert!(
                    outcome.is_err(),
                    "flip at byte {byte} bit {bit} slipped through: {outcome:?}"
                );
            }
        }
    }
}
