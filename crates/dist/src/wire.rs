//! Hand-rolled length-prefixed binary framing.
//!
//! The repository is offline (no serde), so the dispatcher↔worker protocol
//! is encoded with a small explicit byte layer instead of a derive:
//!
//! * all integers are **little-endian** fixed width;
//! * `f64` values travel as their IEEE-754 bit pattern
//!   ([`f64::to_bits`]/[`f64::from_bits`]), so floating-point payloads
//!   round-trip **bit-exactly** — the foundation of the executor's
//!   bit-identical merge contract;
//! * strings and byte blobs are `u32` length + raw bytes (strings UTF-8);
//! * a frame on the transport is `type: u8`, `len: u32`, `payload` —
//!   see [`write_frame`]/[`read_frame`].
//!
//! Decoding is total: every malformed input surfaces as a [`WireError`],
//! never a panic, so a corrupt or truncated stream from a dying worker is an
//! ordinary error path.

use std::fmt;
use std::io::{Read, Write};

/// Upper bound on one frame's payload, guarding the dispatcher against a
/// corrupt length prefix allocating unbounded memory. Generous: the largest
/// real frame (a serialized [`RunRecord`](sysscale::RunRecord) with a
/// collected trace) is a few megabytes.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// An error produced by the wire layer: transport I/O failures plus every
/// way a peer's bytes can fail to parse.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The bytes do not parse as the expected shape.
    Malformed(String),
}

impl WireError {
    /// Shorthand for a malformed-payload error.
    pub fn malformed(reason: impl Into<String>) -> Self {
        WireError::Malformed(reason.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(reason) => write!(f, "malformed wire data: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A byte-buffer encoder. All `put_*` methods append fixed little-endian
/// layouts; the buffer is the payload of exactly one frame.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a `usize` as `u64` (the wire is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Encodes the IEEE-754 bit pattern — bit-exact round-trip.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// `u32` length + UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// `u32` length + raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        let len = u32::try_from(v.len()).expect("blob longer than u32::MAX");
        self.put_u32(len);
        self.buf.extend_from_slice(v);
    }
}

/// A cursor decoder over one frame's payload. Every method checks bounds
/// and returns [`WireError::Malformed`] instead of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly — catches layout drift
    /// between encoder and decoder versions.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::malformed(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decodes a `u64` that must fit the host `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::malformed("u64 value exceeds host usize"))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::malformed(format!("bool byte {other}"))),
        }
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::malformed("string is not UTF-8"))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Writes one frame — `type` byte, `u32` payload length, payload — and
/// flushes, so a frame is visible to the peer the moment the call returns.
///
/// # Errors
///
/// Propagates transport errors; rejects payloads over [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            WireError::malformed(format!("frame payload {} too large", payload.len()))
        })?;
    w.write_all(&[frame_type])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (EOF at a
/// frame boundary — how a closed pipe or socket looks); EOF *inside* a frame
/// is malformed (the peer died mid-write).
///
/// # Errors
///
/// Propagates transport errors; rejects length prefixes over
/// [`MAX_FRAME_LEN`] and truncated frames.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut type_byte = [0u8; 1];
    loop {
        match r.read(&mut type_byte) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|_| WireError::malformed("stream ended inside a frame header"))?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::malformed(format!(
            "frame length {len} exceeds cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| WireError::malformed("stream ended inside a frame payload"))?;
    Ok(Some((type_byte[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    use sysscale_types::rng::SplitMix64;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..200 {
            let a = rng.next_u64();
            let b = rng.next_u64() as u32;
            let c = rng.next_u64() as u16;
            let d = rng.next_u64() as u8;
            // Arbitrary bit patterns, including NaNs and infinities.
            let f = f64::from_bits(rng.next_u64());
            let flag = rng.next_u64() % 2 == 0;

            let mut enc = Enc::new();
            enc.put_u64(a);
            enc.put_u32(b);
            enc.put_u16(c);
            enc.put_u8(d);
            enc.put_f64(f);
            enc.put_bool(flag);
            let bytes = enc.into_bytes();

            let mut dec = Dec::new(&bytes);
            assert_eq!(dec.u64().unwrap(), a);
            assert_eq!(dec.u32().unwrap(), b);
            assert_eq!(dec.u16().unwrap(), c);
            assert_eq!(dec.u8().unwrap(), d);
            assert_eq!(dec.f64().unwrap().to_bits(), f.to_bits());
            assert_eq!(dec.bool().unwrap(), flag);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn strings_and_blobs_round_trip() {
        let mut enc = Enc::new();
        enc.put_str("");
        enc.put_str("437.leslie3d");
        enc.put_str("unicode: μJ → ∞");
        enc.put_bytes(&[0, 255, 1, 254]);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.str().unwrap(), "");
        assert_eq!(dec.str().unwrap(), "437.leslie3d");
        assert_eq!(dec.str().unwrap(), "unicode: μJ → ∞");
        assert_eq!(dec.bytes().unwrap(), &[0, 255, 1, 254]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let mut enc = Enc::new();
        enc.put_u64(42);
        let bytes = enc.into_bytes();
        // Truncated: ask for more than is there.
        let mut dec = Dec::new(&bytes[..4]);
        assert!(dec.u64().is_err());
        // Trailing: finish() must notice unconsumed bytes.
        let dec = Dec::new(&bytes);
        assert!(dec.finish().is_err());
        // Bad bool byte.
        let mut dec = Dec::new(&[7]);
        assert!(dec.bool().is_err());
        // Non-UTF-8 string.
        let mut enc = Enc::new();
        enc.put_bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        assert!(Dec::new(&bytes).str().is_err());
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 3, b"hello").unwrap();
        write_frame(&mut stream, 9, b"").unwrap();
        write_frame(&mut stream, 255, &[1, 2, 3]).unwrap();

        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((3, b"hello".to_vec()))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((9, Vec::new())));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((255, vec![1, 2, 3])));
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn eof_inside_a_frame_is_malformed_not_clean() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 1, b"payload").unwrap();
        // Chop the stream inside the payload.
        stream.truncate(stream.len() - 3);
        let mut cursor = std::io::Cursor::new(stream);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut stream = vec![1u8];
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(stream);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }
}
