//! The sweep engine as a long-running service.
//!
//! [`SweepService`] is a server loop that accepts many concurrent sweep
//! submissions over the crate's framed wire protocol — in-memory duplex
//! pipes ([`mod@crate::duplex`]) for tests, TCP for real use — and executes
//! them against **one shared warm [`SessionPool`]** through the same
//! [`RunConsumer`] fold core every other execution path uses. The
//! determinism contract carries over unchanged: the record stream a client
//! gets back for a submission is **byte-identical** to an in-process
//! [`SweepSet::run_parallel_fold`] of the same recipe, for every
//! interleaving of concurrent submissions.
//!
//! ## Topology (the default [`ExecutorMode::Shared`])
//!
//! ```text
//!  client A ──Submit──▶ reader thread A ──┐               ┌─ worker 1 ─┐
//!  client B ──Submit──▶ reader thread B ──┼─▶ scheduler ──┼─ worker 2 ─┼─▶ frames
//!  client C ──Submit──▶ reader thread C ──┘  (leases)     └─ worker N ─┘
//! ```
//!
//! Each connection gets a reader thread that decodes [`FT_SUBMIT`] frames,
//! acknowledges them immediately (an `Accepted` frame carrying the queue
//! depth at admission — or a `Busy` frame when `max_pending` submissions
//! are already in flight), builds the recipe, and hands the sweep to the
//! **shared cost-aware scheduler**. The scheduler plans every submission
//! exactly like the in-process fold would: the per-worker cell lists come
//! from [`SweepSet::slot_indices`] (the same sharding strategy, the same
//! worker clamp), each slot's list is cut into cost-prefix-quantile leases
//! ([`exec::cost_quantile_chunks`] — the same sizing the distributed
//! dispatcher uses), and one pool of worker threads executes leases from
//! **all** active submissions, interleaved.
//!
//! The interleave policy is cost-fair: a free worker always serves the
//! active submission with the least cost served so far (ties broken by
//! admission order), so a small sweep rides along inside a big sweep's
//! pool instead of queueing behind it — small-sweep latency under mixed
//! load drops by the big sweep's residual runtime. Determinism survives
//! the interleaving because a submission's slot accumulators live in an
//! [`IncrementalFold`]: a worker checks a slot out at a lease boundary,
//! folds the lease's cells in ascending flat order on a freshly reset
//! simulator per cell, and restores the accumulator; the merge at the end
//! is in slot order, so the result is byte-identical to
//! [`SweepSet::run_parallel_fold`] of the same recipe at the configured
//! worker count, regardless of what else is in flight.
//! [`ExecutorMode::Serial`] keeps the previous one-submission-at-a-time
//! executor for A/B comparison (the stress bench measures both).
//!
//! Queueing delay and execution time are measured per request into
//! [`RequestSample`]s, which [`StressMetrics::from_samples`] reduces to
//! the llamaburn-style load summary (requests/sec, p50/p95/p99/p999
//! latency, error rate) that the stress bench emits as
//! `{"kind":"stress_perf"}` records; [`assess_stages`] layers
//! degradation/recovery detection on a staged schedule.
//!
//! ## Progress snapshots
//!
//! A submission may ask for progress every N cells: the executor wraps the
//! collecting consumer in a [`ProgressTap`], whose publish callback is
//! gated by a per-submission monotone counter — `Progress` frames carry
//! strictly increasing `done` counts in order on the wire, even though the
//! underlying fold workers race. The tap is observability only: the final
//! accumulator is bit-identical to the undecorated consumer's.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use sysscale::types::exec::{self, IncrementalFold};
use sysscale::{
    CellError, CollectRuns, ProgressTap, RunConsumer, RunRecord, ScenarioSet, SessionPool,
    SimSession, SweepSet,
};
use sysscale_types::SimError;

use crate::codec::{get_record, get_sim_error, put_record, put_sim_error};
use crate::duplex::duplex;
use crate::recipe::{sweep_from_sets, SweepRecipe};
use crate::wire::{read_frame, write_frame, Dec, Enc, WireError};

/// Client→server: a sweep submission (`magic`, `version`, `submit_id`,
/// `progress_every`, encoded [`SweepRecipe`]).
pub const FT_SUBMIT: u8 = 0x60;
/// Client→server: orderly hangup; the reader thread exits.
pub const FT_CLOSE: u8 = 0x61;
/// Server→client: submission admitted (`submit_id`, `total_cells`,
/// `queue_depth` at admission).
pub const FT_ACCEPTED: u8 = 0x70;
/// Server→client: progress snapshot (`submit_id`, `done`, `total`).
pub const FT_PROGRESS: u8 = 0x71;
/// Server→client: one result record (`submit_id`, `flat`, record).
pub const FT_CELL: u8 = 0x72;
/// Server→client: submission finished (`submit_id`, `cells`,
/// `queued_micros`, `exec_micros`).
pub const FT_SWEEP_DONE: u8 = 0x73;
/// Server→client: submission failed (`submit_id`, [`SimError`]).
pub const FT_SWEEP_ERROR: u8 = 0x74;
/// Server→client: submission shed at admission — the pending-submission
/// bound was hit (`submit_id`, `queue_depth`, `max_pending`). Retryable:
/// nothing about the submission was executed or retained.
pub const FT_BUSY: u8 = 0x75;

/// Submit-frame magic ("SVSW" little-endian), catching a client that
/// frames correctly but speaks a different protocol.
const SERVE_MAGIC: u32 = 0x5753_5653;

/// Submission payload layout version.
const SERVE_VERSION: u16 = 1;

/// How the service turns admitted submissions into executed sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorMode {
    /// One executor thread runs submissions to completion in admission
    /// order — a small sweep behind a big one waits out the whole thing.
    /// Kept for A/B measurement (the stress bench's serial baseline).
    Serial,
    /// One worker pool multiplexes leases from every active submission
    /// under the cost-fair interleave policy; per-submission record
    /// streams stay byte-identical to the serial mode (and to the
    /// in-process fold).
    #[default]
    Shared,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fold workers per sweep (the `threads` argument of
    /// [`SweepSet::run_parallel_fold_sharded`](sysscale::SweepSet)). In
    /// [`ExecutorMode::Shared`] this is also the worker-thread count of
    /// the shared pool. The byte-identity contract holds at every value.
    pub workers: usize,
    /// Executor topology; defaults to [`ExecutorMode::Shared`].
    pub mode: ExecutorMode,
    /// Admission bound: submissions admitted (pending or executing) at
    /// any instant. A submission arriving past the bound is shed with a
    /// [`FT_BUSY`] frame instead of growing server memory without bound
    /// under a client storm.
    pub max_pending: u64,
    /// Target cells per scheduler lease in [`ExecutorMode::Shared`]: each
    /// slot's cell list is cut into `ceil(len / lease_cells)`
    /// cost-quantile chunks. Smaller leases interleave submissions at a
    /// finer grain (lower small-sweep latency) at slightly more
    /// scheduling overhead.
    pub lease_cells: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            mode: ExecutorMode::Shared,
            max_pending: 256,
            lease_cells: 4,
        }
    }
}

/// One request's measured life cycle, recorded by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSample {
    /// Cells the submission's sweep ran.
    pub cells: u64,
    /// Queue depth at admission (this submission included).
    pub queue_depth: u64,
    /// Microseconds between admission and execution start.
    pub queued_micros: u64,
    /// Microseconds executing the sweep and streaming its results.
    pub exec_micros: u64,
    /// Microseconds between admission and completion frame.
    pub total_micros: u64,
    /// Whether the submission completed (vs. a `SweepError`).
    pub ok: bool,
}

/// Shared mutable server state: counters the reader threads bump and the
/// samples the executor appends.
#[derive(Debug, Default)]
struct ServeShared {
    submissions: AtomicU64,
    errors: AtomicU64,
    frames_rejected: AtomicU64,
    busy_shed: AtomicU64,
    /// Submissions admitted and not yet completed (pending **or**
    /// executing) — incremented at admission, decremented when the
    /// completion frame goes out, so the depth a new admission samples
    /// reflects actual contention, not executor pickup timing.
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    samples: Mutex<Vec<RequestSample>>,
}

impl ServeShared {
    fn push_sample(&self, sample: RequestSample) {
        self.samples.lock().expect("samples poisoned").push(sample);
    }
}

/// The server half of one client connection: a writer every server thread
/// shares. A [`Mutex`] serializes frames — `Accepted` acks from the reader
/// thread interleave with result frames from the executor on the same
/// stream, and a frame must never be torn.
struct ClientPort {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl ClientPort {
    fn send(&self, frame_type: u8, payload: &[u8]) -> Result<(), WireError> {
        let mut writer = self.writer.lock().expect("client writer poisoned");
        write_frame(&mut *writer, frame_type, payload)
    }
}

impl std::fmt::Debug for ClientPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPort").finish_non_exhaustive()
    }
}

/// An admitted submission travelling from a reader thread to the serial
/// executor.
struct Submission {
    port: Arc<ClientPort>,
    submit_id: u64,
    recipe: SweepRecipe,
    progress_every: u64,
    queue_depth: u64,
    accepted: Instant,
}

/// Where reader threads hand admitted submissions: the serial executor's
/// channel, or the shared scheduler.
#[derive(Clone)]
enum Intake {
    Serial(Sender<Submission>),
    Shared(Arc<Scheduler>),
}

/// A running sweep service. Create with [`SweepService::start`], attach
/// clients with [`SweepService::connect`] (in-memory) /
/// [`SweepService::listen_tcp`] (sockets), and finish with
/// [`SweepService::shutdown`] to collect [`ServeStats`].
pub struct SweepService {
    shared: Arc<ServeShared>,
    intake: Option<Intake>,
    executor: Option<std::thread::JoinHandle<(usize, usize)>>,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    acceptors: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    started: Instant,
    max_pending: u64,
}

impl std::fmt::Debug for SweepService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepService")
            .field("max_pending", &self.max_pending)
            .finish_non_exhaustive()
    }
}

impl SweepService {
    /// Starts the executor (owning the shared warm [`SessionPool`]) and
    /// returns the service handle. [`ExecutorMode::Shared`] spawns the
    /// worker pool under a supervisor thread; [`ExecutorMode::Serial`]
    /// spawns the single executor thread.
    #[must_use]
    pub fn start(options: &ServeOptions) -> Self {
        let shared = Arc::new(ServeShared::default());
        let workers = options.workers.max(1);
        let (intake, executor) = match options.mode {
            ExecutorMode::Serial => {
                let (submit_tx, submit_rx) = mpsc::channel::<Submission>();
                let executor_shared = Arc::clone(&shared);
                let executor = std::thread::spawn(move || {
                    executor_loop(&submit_rx, workers, &executor_shared)
                });
                (Intake::Serial(submit_tx), executor)
            }
            ExecutorMode::Shared => {
                let scheduler = Arc::new(Scheduler::new(workers, options.lease_cells.max(1)));
                let executor_scheduler = Arc::clone(&scheduler);
                let executor_shared = Arc::clone(&shared);
                let executor = std::thread::spawn(move || {
                    shared_executor(&executor_scheduler, workers, &executor_shared)
                });
                (Intake::Shared(scheduler), executor)
            }
        };
        Self {
            shared,
            intake: Some(intake),
            executor: Some(executor),
            readers: Mutex::new(Vec::new()),
            acceptors: Mutex::new(Vec::new()),
            stop: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            max_pending: options.max_pending.max(1),
        }
    }

    /// Attaches one client connection: spawns a reader thread decoding
    /// submissions from `reader` and shares `writer` between that thread
    /// (acks) and the executor (results).
    pub fn attach(&self, reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) {
        let port = Arc::new(ClientPort {
            writer: Mutex::new(writer),
        });
        let shared = Arc::clone(&self.shared);
        let intake = self.intake.as_ref().expect("attach after shutdown").clone();
        let max_pending = self.max_pending;
        let handle =
            std::thread::spawn(move || client_loop(reader, &port, &intake, &shared, max_pending));
        self.readers.lock().expect("readers poisoned").push(handle);
    }

    /// Connects an in-memory client over a [`crate::duplex::duplex`] pair —
    /// the test transport.
    #[must_use]
    pub fn connect(&self) -> ServeClient {
        let (client_end, server_end) = duplex();
        let (server_reader, server_writer) = server_end.split();
        self.attach(Box::new(server_reader), Box::new(server_writer));
        let (client_reader, client_writer) = client_end.split();
        ServeClient::new(Box::new(client_reader), Box::new(client_writer))
    }

    /// Binds a TCP listener on `addr` (e.g. `"127.0.0.1:0"`) and spawns an
    /// accept thread attaching every connection until shutdown. Returns the
    /// bound address — with port 0, the one the OS picked.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn listen_tcp(&self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::clone(&self.stop);
        let shared = Arc::clone(&self.shared);
        let max_pending = self.max_pending;
        let intake = self.intake.as_ref().expect("listen after shutdown").clone();
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let acceptor_readers = Arc::clone(&readers);
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let write_half = match stream.try_clone() {
                            Ok(clone) => clone,
                            Err(_) => continue,
                        };
                        let port = Arc::new(ClientPort {
                            writer: Mutex::new(Box::new(write_half) as Box<dyn Write + Send>),
                        });
                        let shared = Arc::clone(&shared);
                        let intake = intake.clone();
                        let reader = std::thread::spawn(move || {
                            client_loop(Box::new(stream), &port, &intake, &shared, max_pending);
                        });
                        acceptor_readers
                            .lock()
                            .expect("tcp readers poisoned")
                            .push(reader);
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // Orderly drain: connected clients finish their streams.
            for reader in acceptor_readers
                .lock()
                .expect("tcp readers poisoned")
                .drain(..)
            {
                let _ = reader.join();
            }
        });
        self.acceptors
            .lock()
            .expect("acceptors poisoned")
            .push(handle);
        Ok(local)
    }

    /// Stops accepting, waits for attached clients to hang up, drains the
    /// queue, and returns the measured [`ServeStats`].
    ///
    /// Orderly-shutdown contract: clients must close (drop their write
    /// half or send [`FT_CLOSE`]) for their reader threads — and therefore
    /// this call — to finish.
    #[must_use]
    pub fn shutdown(mut self) -> ServeStats {
        self.stop.store(true, Ordering::SeqCst);
        for acceptor in self.acceptors.lock().expect("acceptors poisoned").drain(..) {
            let _ = acceptor.join();
        }
        for reader in self.readers.lock().expect("readers poisoned").drain(..) {
            let _ = reader.join();
        }
        // Every reader has exited, so no further admissions: dropping the
        // serial sender (or flagging the scheduler) lets the executor
        // drain the in-flight work and return.
        match self.intake.take() {
            Some(Intake::Serial(submit_tx)) => drop(submit_tx),
            Some(Intake::Shared(scheduler)) => scheduler.request_stop(),
            None => {}
        }
        let (pool_workers, pool_cached_platforms) = self
            .executor
            .take()
            .expect("executor joined twice")
            .join()
            .expect("executor panicked");
        let shared = &self.shared;
        ServeStats {
            submissions: shared.submissions.load(Ordering::SeqCst),
            errors: shared.errors.load(Ordering::SeqCst),
            frames_rejected: shared.frames_rejected.load(Ordering::SeqCst),
            busy_shed: shared.busy_shed.load(Ordering::SeqCst),
            max_queue_depth: shared.max_queue_depth.load(Ordering::SeqCst),
            wall_micros: micros_since(self.started),
            samples: shared.samples.lock().expect("samples poisoned").clone(),
            pool_workers,
            pool_cached_platforms,
        }
    }
}

/// Saturating microseconds since `instant`.
fn micros_since(instant: Instant) -> u64 {
    u64::try_from(instant.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One connection's reader loop: decode frames, admit submissions, exit on
/// hangup. Framing errors (a CRC mismatch, a torn frame) drop the
/// connection — the stream position is unrecoverable — and count toward
/// [`ServeStats::frames_rejected`]; an unknown-but-well-framed frame type
/// is counted and skipped.
fn client_loop(
    mut reader: Box<dyn Read + Send>,
    port: &Arc<ClientPort>,
    intake: &Intake,
    shared: &Arc<ServeShared>,
    max_pending: u64,
) {
    loop {
        match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some((FT_SUBMIT, payload))) => {
                if !admit_submission(&payload, port, intake, shared, max_pending) {
                    break;
                }
            }
            Ok(Some((FT_CLOSE, _))) => break,
            Ok(Some((_, _))) => {
                shared.frames_rejected.fetch_add(1, Ordering::SeqCst);
            }
            Err(WireError::Malformed(_)) => {
                shared.frames_rejected.fetch_add(1, Ordering::SeqCst);
                break;
            }
            Err(WireError::Io(_)) => break,
        }
    }
}

/// Decodes and admits one submission payload. Returns `false` when the
/// connection should drop (undecodable header, or the executor is gone).
fn admit_submission(
    payload: &[u8],
    port: &Arc<ClientPort>,
    intake: &Intake,
    shared: &Arc<ServeShared>,
    max_pending: u64,
) -> bool {
    let mut dec = Dec::new(payload);
    let header = (|| -> Result<(u64, u64, Vec<u8>), WireError> {
        let magic = dec.u32()?;
        if magic != SERVE_MAGIC {
            return Err(WireError::malformed(format!(
                "bad submit magic {magic:#010x}"
            )));
        }
        let version = dec.u16()?;
        if version != SERVE_VERSION {
            return Err(WireError::malformed(format!(
                "submit version {version} (this build speaks {SERVE_VERSION})"
            )));
        }
        let submit_id = dec.u64()?;
        let progress_every = dec.u64()?;
        let recipe_bytes = dec.bytes()?.to_vec();
        dec.finish()?;
        Ok((submit_id, progress_every, recipe_bytes))
    })();
    let (submit_id, progress_every, recipe_bytes) = match header {
        Ok(parts) => parts,
        Err(_) => {
            // Can't even name the submission: count and drop the client.
            shared.frames_rejected.fetch_add(1, Ordering::SeqCst);
            return false;
        }
    };
    let recipe = match SweepRecipe::decode(&recipe_bytes) {
        Ok(recipe) => recipe,
        Err(error) => {
            // The submission is addressable; answer it with a SweepError
            // instead of killing the connection.
            shared.errors.fetch_add(1, Ordering::SeqCst);
            shared.submissions.fetch_add(1, Ordering::SeqCst);
            let sim_error = SimError::InvalidConfig {
                reason: format!("undecodable sweep recipe: {error}"),
            };
            let _ = port.send(FT_SWEEP_ERROR, &encode_sweep_error(submit_id, &sim_error));
            return true;
        }
    };
    // Race-free admission bound: reserve a depth slot first, roll back if
    // it overflows the bound. Shed submissions execute nothing and retain
    // nothing — the client retries.
    let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
    if depth > max_pending {
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared.busy_shed.fetch_add(1, Ordering::SeqCst);
        let _ = port.send(FT_BUSY, &encode_busy(submit_id, depth, max_pending));
        return true;
    }
    shared.max_queue_depth.fetch_max(depth, Ordering::SeqCst);
    shared.submissions.fetch_add(1, Ordering::SeqCst);
    let total_cells = recipe.total_cells() as u64;
    let _ = port.send(FT_ACCEPTED, &encode_accepted(submit_id, total_cells, depth));
    let accepted = Instant::now();
    match intake {
        Intake::Serial(submit_tx) => submit_tx
            .send(Submission {
                port: Arc::clone(port),
                submit_id,
                recipe,
                progress_every,
                queue_depth: depth,
                accepted,
            })
            .is_ok(),
        Intake::Shared(scheduler) => {
            scheduler.admit(
                Arc::clone(port),
                submit_id,
                &recipe,
                progress_every,
                depth,
                accepted,
                shared,
            );
            true
        }
    }
}

/// The executor loop: one thread, one warm pool, submissions in admission
/// order. Returns the pool's final `(workers, cached_platforms)` so
/// shutdown can assert boundedness.
fn executor_loop(
    submit_rx: &Receiver<Submission>,
    workers: usize,
    shared: &Arc<ServeShared>,
) -> (usize, usize) {
    let mut pool = SessionPool::new();
    while let Ok(submission) = submit_rx.recv() {
        let queued_micros = micros_since(submission.accepted);
        let exec_started = Instant::now();
        let ok = run_submission(&mut pool, workers, &submission, queued_micros, shared);
        if !ok {
            shared.errors.fetch_add(1, Ordering::SeqCst);
        }
        shared.push_sample(RequestSample {
            cells: submission.recipe.total_cells() as u64,
            queue_depth: submission.queue_depth,
            queued_micros,
            exec_micros: micros_since(exec_started),
            total_micros: micros_since(submission.accepted),
            ok,
        });
    }
    (pool.workers(), pool.cached_platforms())
}

/// Runs one submission to completion: build, fold with a monotone-gated
/// progress tap, stream records in flat order, close with done/error.
/// Returns whether the sweep succeeded.
fn run_submission(
    pool: &mut SessionPool,
    workers: usize,
    submission: &Submission,
    queued_micros: u64,
    shared: &ServeShared,
) -> bool {
    let port = &submission.port;
    let submit_id = submission.submit_id;
    let outcome = (|| -> Result<Vec<(usize, RunRecord)>, SimError> {
        let sets = submission.recipe.build()?;
        let sweep = sweep_from_sets(&sets);
        let total = sweep.cells() as u64;
        // The gate makes delivered progress strictly monotone even though
        // fold workers publish concurrently.
        let gate = Mutex::new(0u64);
        let tap = ProgressTap::new(
            &CollectRuns,
            submission.progress_every,
            total,
            |done, of| {
                let mut last = gate.lock().expect("progress gate poisoned");
                if done > *last {
                    *last = done;
                    let _ = port.send(FT_PROGRESS, &encode_progress(submit_id, done, of));
                }
            },
        );
        let acc =
            sweep.run_parallel_fold_sharded(pool, workers, submission.recipe.sharding, &tap)?;
        Ok(CollectRuns::into_flat_records(acc))
    })();
    // Execution is over either way: release the depth slot *before* the
    // terminal frame goes out, so a client that retries on seeing it can
    // never bounce off its own completed submission. Depths sampled at
    // admission thus count pending + executing submissions.
    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
    match outcome {
        Ok(records) => {
            let cells = records.len() as u64;
            for (flat, record) in &records {
                let _ = port.send(FT_CELL, &encode_cell(submit_id, *flat, record));
            }
            let exec_micros = micros_since(submission.accepted).saturating_sub(queued_micros);
            let _ = port.send(
                FT_SWEEP_DONE,
                &encode_sweep_done(submit_id, cells, queued_micros, exec_micros),
            );
            true
        }
        Err(error) => {
            let _ = port.send(FT_SWEEP_ERROR, &encode_sweep_error(submit_id, &error));
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Shared cost-aware scheduler
// ---------------------------------------------------------------------------

/// The accumulator type every served sweep folds into.
type CollectAcc = <CollectRuns as RunConsumer>::Acc;

/// The (type-erased) per-submission consumer: a [`ProgressTap`] over
/// [`CollectRuns`] whose publish closure owns the monotone progress gate
/// and the client port.
type SweepConsumer = Arc<dyn RunConsumer<Acc = CollectAcc> + Send + Sync>;

/// One contiguous-by-slot-order unit of work: an ascending flat-index run
/// plus its summed cell cost (the scheduler's fairness weight).
struct Lease {
    flats: Vec<usize>,
    cost: u128,
}

/// One slot (= one in-process fold worker) of an active submission: its
/// remaining leases in ascending order, whether a worker currently holds
/// its accumulator, and the slot's first error if it hit one.
struct SlotQueue {
    leases: VecDeque<Lease>,
    busy: bool,
    error: Option<(usize, SimError)>,
}

/// A submission being executed by the shared pool. The `fold` holds one
/// accumulator per slot — workers check accumulators out at lease
/// boundaries and restore them, and the slot-order merge at completion
/// reproduces the in-process fold's merge exactly.
struct ActiveSweep {
    seq: u64,
    submit_id: u64,
    port: Arc<ClientPort>,
    sets: Arc<Vec<ScenarioSet>>,
    consumer: SweepConsumer,
    fold: IncrementalFold<CollectAcc>,
    slots: Vec<SlotQueue>,
    /// Total cell cost of leases handed to workers so far — the fairness
    /// currency: a free worker serves the active submission with the
    /// least cost served.
    served_cost: u128,
    queued_micros: Option<u64>,
    queue_depth: u64,
    total_cells: u64,
    accepted: Instant,
}

/// What a worker carries out of the scheduler lock to execute one lease.
struct WorkItem {
    seq: u64,
    sets: Arc<Vec<ScenarioSet>>,
    consumer: SweepConsumer,
    slot: usize,
    flats: Vec<usize>,
    acc: CollectAcc,
}

struct SchedState {
    active: Vec<ActiveSweep>,
    stop: bool,
}

/// The shared cost-aware scheduler: reader threads [`Scheduler::admit`]
/// planned submissions, pool workers pull leases with
/// [`Scheduler::next_lease`] and return accumulators with
/// [`Scheduler::complete_lease`]. All policy lives here; all simulation
/// happens outside the lock.
struct Scheduler {
    state: Mutex<SchedState>,
    cvar: Condvar,
    /// Worker-thread count — also the `threads` argument of the slot
    /// plan, so the partition matches the in-process fold's.
    workers: usize,
    /// Target cells per lease (see [`ServeOptions::lease_cells`]).
    lease_cells: usize,
    next_seq: AtomicU64,
}

impl Scheduler {
    fn new(workers: usize, lease_cells: usize) -> Self {
        Self {
            state: Mutex::new(SchedState {
                active: Vec::new(),
                stop: false,
            }),
            cvar: Condvar::new(),
            workers,
            lease_cells,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Builds and plans one admitted submission, then publishes it to the
    /// worker pool. Runs on the reader thread, so recipe builds for
    /// concurrent clients overlap with execution. Degenerate submissions
    /// (build failure, zero cells) complete right here.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        port: Arc<ClientPort>,
        submit_id: u64,
        recipe: &SweepRecipe,
        progress_every: u64,
        queue_depth: u64,
        accepted: Instant,
        shared: &ServeShared,
    ) {
        // Runs before the terminal frame is sent, so a client that
        // retries on seeing it can never bounce off its own completed
        // submission still holding a depth slot.
        let finish_now = |ok: bool, cells: u64| {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            let total_micros = micros_since(accepted);
            shared.push_sample(RequestSample {
                cells,
                queue_depth,
                queued_micros: 0,
                exec_micros: total_micros,
                total_micros,
                ok,
            });
        };
        let sets = match recipe.build() {
            Ok(sets) => sets,
            Err(error) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                finish_now(false, recipe.total_cells() as u64);
                let _ = port.send(FT_SWEEP_ERROR, &encode_sweep_error(submit_id, &error));
                return;
            }
        };
        let sets = Arc::new(sets);
        let mut sweep = SweepSet::new();
        for set in sets.iter() {
            sweep.push_set_ref(set);
        }
        let total = sweep.cells();
        if total == 0 {
            finish_now(true, 0);
            let _ = port.send(FT_SWEEP_DONE, &encode_sweep_done(submit_id, 0, 0, 0));
            return;
        }

        // The same partition the in-process fold at `workers` threads
        // computes, each slot cut into cost-quantile leases.
        let costs = sweep.cell_costs();
        let slots: Vec<SlotQueue> = sweep
            .slot_indices(self.workers, recipe.sharding)
            .into_iter()
            .map(|list| {
                let leases = if list.is_empty() {
                    VecDeque::new()
                } else {
                    let chunks = list.len().div_ceil(self.lease_cells);
                    exec::cost_quantile_chunks(&list, |flat| costs[flat], chunks)
                        .into_iter()
                        .map(|flats| {
                            let cost = flats.iter().map(|&f| u128::from(costs[f].max(1))).sum();
                            Lease { flats, cost }
                        })
                        .collect()
                };
                SlotQueue {
                    leases,
                    busy: false,
                    error: None,
                }
            })
            .collect();

        // &'static inner consumer so the tap (and the type-erased Arc)
        // can outlive this stack frame; the gate keeps delivered progress
        // values strictly increasing across racing workers.
        static COLLECT: CollectRuns = CollectRuns;
        let gate = Mutex::new(0u64);
        let progress_port = Arc::clone(&port);
        let tap = ProgressTap::new(&COLLECT, progress_every, total as u64, move |done, of| {
            let mut last = gate.lock().expect("progress gate poisoned");
            if done > *last {
                *last = done;
                let _ = progress_port.send(FT_PROGRESS, &encode_progress(submit_id, done, of));
            }
        });
        let consumer: SweepConsumer = Arc::new(tap);
        let fold = IncrementalFold::new(slots.len(), || consumer.accumulator());
        let entry = ActiveSweep {
            seq: self.next_seq.fetch_add(1, Ordering::SeqCst),
            submit_id,
            port,
            sets,
            consumer,
            fold,
            slots,
            served_cost: 0,
            queued_micros: None,
            queue_depth,
            total_cells: total as u64,
            accepted,
        };
        self.state
            .lock()
            .expect("scheduler poisoned")
            .active
            .push(entry);
        self.cvar.notify_all();
    }

    /// Blocks until a lease is runnable (returning the checked-out work)
    /// or the service is stopping with nothing left (returning `None`,
    /// the worker's exit signal).
    fn next_lease(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        loop {
            if let Some(item) = Self::try_pick(&mut state) {
                return Some(item);
            }
            if state.stop && state.active.is_empty() {
                return None;
            }
            state = self.cvar.wait(state).expect("scheduler poisoned");
        }
    }

    /// The interleave policy: serve the runnable submission with the
    /// least cost served so far (ties to the earliest admitted), taking
    /// its first free slot's next lease. Cost-fair sharing means a small
    /// sweep overtakes a big one's backlog — the big sweep's own leases
    /// keep flowing on the remaining workers.
    fn try_pick(state: &mut SchedState) -> Option<WorkItem> {
        let runnable = |entry: &ActiveSweep| {
            entry
                .slots
                .iter()
                .any(|slot| !slot.busy && !slot.leases.is_empty())
        };
        let index = state
            .active
            .iter()
            .enumerate()
            .filter(|(_, entry)| runnable(entry))
            .min_by_key(|(_, entry)| (entry.served_cost, entry.seq))
            .map(|(index, _)| index)?;
        let entry = &mut state.active[index];
        let slot = entry
            .slots
            .iter()
            .position(|slot| !slot.busy && !slot.leases.is_empty())
            .expect("runnable submission lost its lease");
        let lease = entry.slots[slot]
            .leases
            .pop_front()
            .expect("lease vanished");
        entry.slots[slot].busy = true;
        entry.served_cost += lease.cost;
        if entry.queued_micros.is_none() {
            entry.queued_micros = Some(micros_since(entry.accepted));
        }
        let acc = entry.fold.checkout(slot, lease.flats[0]);
        Some(WorkItem {
            seq: entry.seq,
            sets: Arc::clone(&entry.sets),
            consumer: Arc::clone(&entry.consumer),
            slot,
            flats: lease.flats,
            acc,
        })
    }

    /// Returns a lease's accumulator. A lease error poisons its slot the
    /// way the in-process fold does: the slot's remaining leases are
    /// dropped (its worker would skip them), other slots run to
    /// completion, and the earliest flat-index error wins at finalize.
    /// When this lease was the submission's last, the finished
    /// [`ActiveSweep`] is handed back for finalizing outside the lock.
    fn complete_lease(
        &self,
        seq: u64,
        slot: usize,
        flats: &[usize],
        acc: CollectAcc,
        error: Option<CellError>,
    ) -> Option<ActiveSweep> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        let index = state
            .active
            .iter()
            .position(|entry| entry.seq == seq)
            .expect("completed lease for unknown submission");
        let entry = &mut state.active[index];
        let next = flats.last().copied().unwrap_or(0) + 1;
        entry.fold.restore(slot, acc, next);
        entry.slots[slot].busy = false;
        if let Some(cell_error) = error {
            entry.slots[slot].error = Some((cell_error.flat, cell_error.error));
            entry.slots[slot].leases.clear();
        }
        let done = entry
            .slots
            .iter()
            .all(|slot| !slot.busy && slot.leases.is_empty());
        let finished = done.then(|| state.active.remove(index));
        drop(state);
        // Wake waiters either way: the freed slot may make this
        // submission runnable again, and a removal may complete a drain.
        self.cvar.notify_all();
        finished
    }

    /// Flags shutdown: workers exit once every active submission drains.
    fn request_stop(&self) {
        self.state.lock().expect("scheduler poisoned").stop = true;
        self.cvar.notify_all();
    }
}

/// The shared-pool supervisor: owns the warm [`SessionPool`], runs one
/// worker loop per pool session until the scheduler drains, and reports
/// the pool's final `(workers, cached_platforms)` for shutdown's
/// boundedness assertions. Sessions cache simulators by platform-config
/// equality, so submissions pinning the same platform share warm
/// simulators across submissions — per-submission pools would rebuild
/// them every time.
fn shared_executor(
    scheduler: &Arc<Scheduler>,
    workers: usize,
    shared: &Arc<ServeShared>,
) -> (usize, usize) {
    let mut pool = SessionPool::new();
    std::thread::scope(|scope| {
        for session in pool.worker_sessions(workers) {
            scope.spawn(|| worker_loop(scheduler, session, shared));
        }
    });
    (pool.workers(), pool.cached_platforms())
}

/// One pool worker: pull a lease, fold its cells on this session, return
/// the accumulator; finalize the submission when its last lease lands.
fn worker_loop(scheduler: &Scheduler, session: &mut SimSession, shared: &ServeShared) {
    while let Some(work) = scheduler.next_lease() {
        // Rebuilding the borrow-only SweepSet per lease is a few pointer
        // pushes; the scenario data lives in the shared Arc.
        let mut sweep = SweepSet::new();
        for set in work.sets.iter() {
            sweep.push_set_ref(set);
        }
        let mut acc = work.acc;
        let error = sweep
            .fold_flat_slice(session, &work.flats, work.consumer.as_ref(), &mut acc)
            .err();
        if let Some(entry) = scheduler.complete_lease(work.seq, work.slot, &work.flats, acc, error)
        {
            finalize_submission(entry, shared);
        }
    }
}

/// Streams a finished submission's result frames and records its sample —
/// outside the scheduler lock, so a slow client never stalls the pool.
fn finalize_submission(entry: ActiveSweep, shared: &ServeShared) {
    let ActiveSweep {
        submit_id,
        port,
        consumer,
        fold,
        slots,
        queued_micros,
        queue_depth,
        total_cells,
        accepted,
        ..
    } = entry;
    let queued_micros = queued_micros.unwrap_or(0);
    let error = slots
        .into_iter()
        .filter_map(|slot| slot.error)
        .min_by_key(|(flat, _)| *flat);
    let ok = error.is_none();
    // All leases have retired: release the depth slot *before* the
    // terminal frame goes out, so a client that retries on seeing
    // `SweepDone` can never bounce off its own completed submission.
    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
    match error {
        None => {
            let acc = fold.finish(|into, from| consumer.merge(into, from));
            let records = CollectRuns::into_flat_records(acc);
            let cells = records.len() as u64;
            for (flat, record) in &records {
                let _ = port.send(FT_CELL, &encode_cell(submit_id, *flat, record));
            }
            let exec_micros = micros_since(accepted).saturating_sub(queued_micros);
            let _ = port.send(
                FT_SWEEP_DONE,
                &encode_sweep_done(submit_id, cells, queued_micros, exec_micros),
            );
        }
        Some((_, error)) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            let _ = port.send(FT_SWEEP_ERROR, &encode_sweep_error(submit_id, &error));
        }
    }
    let total_micros = micros_since(accepted);
    shared.push_sample(RequestSample {
        cells: total_cells,
        queue_depth,
        queued_micros,
        exec_micros: total_micros.saturating_sub(queued_micros),
        total_micros,
        ok,
    });
}

// ---------------------------------------------------------------------------
// Frame payload codecs
// ---------------------------------------------------------------------------

/// Encodes a [`FT_SUBMIT`] payload.
#[must_use]
pub fn encode_submit(submit_id: u64, progress_every: u64, recipe: &SweepRecipe) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u32(SERVE_MAGIC);
    enc.put_u16(SERVE_VERSION);
    enc.put_u64(submit_id);
    enc.put_u64(progress_every);
    enc.put_bytes(&recipe.encode());
    enc.into_bytes()
}

fn encode_accepted(submit_id: u64, total_cells: u64, queue_depth: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(submit_id);
    enc.put_u64(total_cells);
    enc.put_u64(queue_depth);
    enc.into_bytes()
}

fn encode_progress(submit_id: u64, done: u64, total: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(submit_id);
    enc.put_u64(done);
    enc.put_u64(total);
    enc.into_bytes()
}

fn encode_cell(submit_id: u64, flat: usize, record: &RunRecord) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(submit_id);
    enc.put_usize(flat);
    put_record(&mut enc, record);
    enc.into_bytes()
}

fn encode_sweep_done(submit_id: u64, cells: u64, queued_micros: u64, exec_micros: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(submit_id);
    enc.put_u64(cells);
    enc.put_u64(queued_micros);
    enc.put_u64(exec_micros);
    enc.into_bytes()
}

fn encode_sweep_error(submit_id: u64, error: &SimError) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(submit_id);
    put_sim_error(&mut enc, error);
    enc.into_bytes()
}

fn encode_busy(submit_id: u64, queue_depth: u64, max_pending: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(submit_id);
    enc.put_u64(queue_depth);
    enc.put_u64(max_pending);
    enc.into_bytes()
}

/// One server→client frame, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// Submission admitted.
    Accepted {
        /// Client-chosen submission id.
        submit_id: u64,
        /// Cells the sweep will run.
        total_cells: u64,
        /// Executor queue depth at admission (this submission included).
        queue_depth: u64,
    },
    /// Progress snapshot; `done` is strictly increasing per submission.
    Progress {
        /// Client-chosen submission id.
        submit_id: u64,
        /// Cells folded so far.
        done: u64,
        /// Total cells in the sweep.
        total: u64,
    },
    /// One result record, streamed in ascending flat-cell order.
    Cell {
        /// Client-chosen submission id.
        submit_id: u64,
        /// Flat cell index within the sweep.
        flat: usize,
        /// The cell's run record, bit-identical to in-process execution.
        record: Box<RunRecord>,
    },
    /// Submission completed.
    SweepDone {
        /// Client-chosen submission id.
        submit_id: u64,
        /// Records streamed.
        cells: u64,
        /// Microseconds queued before execution.
        queued_micros: u64,
        /// Microseconds executing.
        exec_micros: u64,
    },
    /// Submission failed.
    SweepError {
        /// Client-chosen submission id.
        submit_id: u64,
        /// The failure, round-tripped through the wire codec.
        error: SimError,
    },
    /// Submission shed at admission: the service is at its
    /// pending-submission bound. Nothing was executed — retry later.
    Busy {
        /// Client-chosen submission id.
        submit_id: u64,
        /// Pending depth the submission would have pushed the service to.
        queue_depth: u64,
        /// The configured bound it exceeded.
        max_pending: u64,
    },
}

/// Decodes one server→client frame.
///
/// # Errors
///
/// [`WireError::Malformed`] on an unknown frame type or a payload that does
/// not parse as that type's layout.
pub fn decode_event(frame_type: u8, payload: &[u8]) -> Result<ServeEvent, WireError> {
    let mut dec = Dec::new(payload);
    let event = match frame_type {
        FT_ACCEPTED => ServeEvent::Accepted {
            submit_id: dec.u64()?,
            total_cells: dec.u64()?,
            queue_depth: dec.u64()?,
        },
        FT_PROGRESS => ServeEvent::Progress {
            submit_id: dec.u64()?,
            done: dec.u64()?,
            total: dec.u64()?,
        },
        FT_CELL => ServeEvent::Cell {
            submit_id: dec.u64()?,
            flat: dec.usize()?,
            record: Box::new(get_record(&mut dec)?),
        },
        FT_SWEEP_DONE => ServeEvent::SweepDone {
            submit_id: dec.u64()?,
            cells: dec.u64()?,
            queued_micros: dec.u64()?,
            exec_micros: dec.u64()?,
        },
        FT_SWEEP_ERROR => ServeEvent::SweepError {
            submit_id: dec.u64()?,
            error: get_sim_error(&mut dec)?,
        },
        FT_BUSY => ServeEvent::Busy {
            submit_id: dec.u64()?,
            queue_depth: dec.u64()?,
            max_pending: dec.u64()?,
        },
        other => return Err(WireError::malformed(format!("server frame type {other}"))),
    };
    dec.finish()?;
    Ok(event)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A shed submission's details, from the server's [`FT_BUSY`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyShed {
    /// Pending depth the submission would have pushed the service to.
    pub queue_depth: u64,
    /// The configured [`ServeOptions::max_pending`] bound it exceeded.
    pub max_pending: u64,
}

/// Why a submission produced no records: shed at admission (retryable —
/// the server executed nothing) or failed mid-sweep (not retryable — the
/// recipe itself produces this error).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Shed at admission by the pending-submission bound.
    Busy(BusyShed),
    /// The sweep failed (undecodable/unbuildable recipe, simulator error).
    Sweep(SimError),
}

impl ServeError {
    /// Whether resubmitting the identical recipe can succeed: true for
    /// [`ServeError::Busy`] (load-dependent), false for
    /// [`ServeError::Sweep`] (deterministic).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Busy(_))
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy(busy) => write!(
                f,
                "service busy: {} pending submissions at the max_pending={} bound (retryable)",
                busy.queue_depth, busy.max_pending
            ),
            ServeError::Sweep(error) => write!(f, "sweep failed: {error}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything a client saw for one finished submission.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// `(flat, record)` pairs in arrival order — ascending flat order on
    /// the healthy path, byte-identical to
    /// [`CollectRuns::into_flat_records`] of an in-process fold.
    pub records: Vec<(usize, RunRecord)>,
    /// `(done, total)` progress snapshots in arrival order.
    pub progress: Vec<(u64, u64)>,
    /// Queue depth reported by the `Accepted` frame.
    pub queue_depth: u64,
    /// Total cells reported by the `Accepted` frame.
    pub total_cells: u64,
    /// Microseconds queued, from `SweepDone`.
    pub queued_micros: u64,
    /// Microseconds executing, from `SweepDone`.
    pub exec_micros: u64,
    /// The failure, if the submission ended in `SweepError`.
    pub error: Option<SimError>,
    /// Set when the submission was shed at admission (a `Busy` frame).
    pub busy: Option<BusyShed>,
    /// Whether `SweepDone`/`SweepError`/`Busy` arrived.
    pub finished: bool,
}

impl SweepOutcome {
    /// The outcome as a typed result: the records on success, a
    /// [`ServeError`] (with [`ServeError::is_retryable`]) otherwise.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] when the submission was shed at admission,
    /// [`ServeError::Sweep`] when it failed mid-sweep.
    pub fn result(&self) -> Result<&[(usize, RunRecord)], ServeError> {
        if let Some(busy) = self.busy {
            return Err(ServeError::Busy(busy));
        }
        if let Some(error) = &self.error {
            return Err(ServeError::Sweep(error.clone()));
        }
        Ok(&self.records)
    }
}

/// A client connection to a [`SweepService`]: submit recipes, read events.
pub struct ServeClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    next_submit_id: u64,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("next_submit_id", &self.next_submit_id)
            .finish_non_exhaustive()
    }
}

impl ServeClient {
    /// A client over arbitrary stream halves (an in-memory duplex end, a
    /// socket pair, …).
    #[must_use]
    pub fn new(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Self {
        Self {
            reader,
            writer,
            next_submit_id: 1,
        }
    }

    /// Dials a TCP service (with the crate's bounded connect backoff).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Self> {
        let stream = crate::net::connect_with_backoff(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Self::new(Box::new(stream), Box::new(write_half)))
    }

    /// Submits a sweep, returning the submission id to match events
    /// against. `progress_every` ≥ 1 requests a progress snapshot every
    /// that many cells (plus a final one); 0 requests only the final one.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit(&mut self, recipe: &SweepRecipe, progress_every: u64) -> Result<u64, WireError> {
        let submit_id = self.next_submit_id;
        self.next_submit_id += 1;
        write_frame(
            &mut self.writer,
            FT_SUBMIT,
            &encode_submit(submit_id, progress_every, recipe),
        )?;
        Ok(submit_id)
    }

    /// Reads the next server event; `None` on a clean server hangup.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed frames.
    pub fn recv(&mut self) -> Result<Option<ServeEvent>, WireError> {
        match read_frame(&mut self.reader)? {
            None => Ok(None),
            Some((frame_type, payload)) => decode_event(frame_type, &payload).map(Some),
        }
    }

    /// Reads events until every submission in `ids` has finished, folding
    /// frames into per-submission [`SweepOutcome`]s. Events for ids not in
    /// the set are folded too (and returned), so interleaved clients can
    /// collect everything in one call.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; errors if the server hangs up before
    /// every requested id finishes.
    pub fn collect(&mut self, ids: &[u64]) -> Result<BTreeMap<u64, SweepOutcome>, WireError> {
        let mut outcomes: BTreeMap<u64, SweepOutcome> = BTreeMap::new();
        let finished = |outcomes: &BTreeMap<u64, SweepOutcome>| {
            ids.iter()
                .all(|id| outcomes.get(id).is_some_and(|o| o.finished))
        };
        while !finished(&outcomes) {
            let event = self.recv()?.ok_or_else(|| {
                WireError::malformed("server hung up before every submission finished")
            })?;
            match event {
                ServeEvent::Accepted {
                    submit_id,
                    total_cells,
                    queue_depth,
                } => {
                    let o = outcomes.entry(submit_id).or_default();
                    o.total_cells = total_cells;
                    o.queue_depth = queue_depth;
                }
                ServeEvent::Progress {
                    submit_id,
                    done,
                    total,
                    ..
                } => outcomes
                    .entry(submit_id)
                    .or_default()
                    .progress
                    .push((done, total)),
                ServeEvent::Cell {
                    submit_id,
                    flat,
                    record,
                } => outcomes
                    .entry(submit_id)
                    .or_default()
                    .records
                    .push((flat, *record)),
                ServeEvent::SweepDone {
                    submit_id,
                    queued_micros,
                    exec_micros,
                    ..
                } => {
                    let o = outcomes.entry(submit_id).or_default();
                    o.queued_micros = queued_micros;
                    o.exec_micros = exec_micros;
                    o.finished = true;
                }
                ServeEvent::SweepError { submit_id, error } => {
                    let o = outcomes.entry(submit_id).or_default();
                    o.error = Some(error);
                    o.finished = true;
                }
                ServeEvent::Busy {
                    submit_id,
                    queue_depth,
                    max_pending,
                } => {
                    let o = outcomes.entry(submit_id).or_default();
                    o.busy = Some(BusyShed {
                        queue_depth,
                        max_pending,
                    });
                    o.finished = true;
                }
            }
        }
        Ok(outcomes)
    }

    /// Submits one sweep and blocks until it finishes.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; a sweep-level failure arrives as
    /// [`SweepOutcome::error`], not an `Err`.
    pub fn run_sweep(
        &mut self,
        recipe: &SweepRecipe,
        progress_every: u64,
    ) -> Result<SweepOutcome, WireError> {
        let id = self.submit(recipe, progress_every)?;
        let mut outcomes = self.collect(&[id])?;
        Ok(outcomes.remove(&id).unwrap_or_default())
    }

    /// Sends an orderly close. Dropping the client without calling this is
    /// equivalent (the reader thread sees EOF).
    pub fn close(mut self) {
        let _ = write_frame(&mut self.writer, FT_CLOSE, &[]);
    }
}

// ---------------------------------------------------------------------------
// Load metrics
// ---------------------------------------------------------------------------

/// Everything the service measured over its lifetime, returned by
/// [`SweepService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Submissions admitted (including undecodable-recipe rejections).
    pub submissions: u64,
    /// Submissions that ended in `SweepError`.
    pub errors: u64,
    /// Frames dropped for framing/protocol reasons (CRC mismatch, unknown
    /// type, bad submit header). Zero on the healthy path.
    pub frames_rejected: u64,
    /// Submissions shed at admission by the [`ServeOptions::max_pending`]
    /// bound (these do not count as `submissions` or `errors`). Zero on a
    /// healthy run.
    pub busy_shed: u64,
    /// Deepest pending-submission depth observed at any admission.
    pub max_queue_depth: u64,
    /// Service lifetime, start to shutdown.
    pub wall_micros: u64,
    /// Per-request life cycles, in completion order.
    pub samples: Vec<RequestSample>,
    /// Pool worker sessions at shutdown — bounded by the configured
    /// worker count, never per-request.
    pub pool_workers: usize,
    /// Cached `(worker, platform)` simulators at shutdown.
    pub pool_cached_platforms: usize,
}

impl ServeStats {
    /// Reduces the samples to a [`StressMetrics`] summary.
    #[must_use]
    pub fn metrics(&self) -> StressMetrics {
        StressMetrics::from_samples(&self.samples, self.wall_micros)
    }
}

/// The llamaburn-style load summary: throughput, latency percentiles,
/// error rate — the payload of a `{"kind":"stress_perf"}` bench record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressMetrics {
    /// Requests measured.
    pub requests: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Completed requests per second of service wall time.
    pub requests_per_sec: f64,
    /// Cells folded per second of service wall time.
    pub cells_per_sec: f64,
    /// Median request latency (admission→completion), milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_latency_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_latency_ms: f64,
    /// 99.9th-percentile request latency, milliseconds.
    pub p999_latency_ms: f64,
    /// Fraction of requests admitted while at least one other submission
    /// was already pending or executing (0..=1) — contention sampled **at
    /// admission**, so an idle service between bursts reads 0 even when
    /// pickup bookkeeping lags.
    pub queue_share: f64,
    /// `errors / requests` (0 when no requests).
    pub error_rate: f64,
    /// The observation window, milliseconds — what
    /// [`LoadAssessment::recovery_ms`] sums over stages.
    pub wall_ms: f64,
}

impl StressMetrics {
    /// Reduces request samples over a `wall_micros` observation window.
    /// Percentiles are nearest-rank over total latency, so
    /// p50 ≤ p95 ≤ p99 ≤ p999 by construction.
    #[must_use]
    pub fn from_samples(samples: &[RequestSample], wall_micros: u64) -> Self {
        let requests = samples.len() as u64;
        let errors = samples.iter().filter(|s| !s.ok).count() as u64;
        let wall_secs = (wall_micros.max(1) as f64) / 1e6;
        let cells: u64 = samples.iter().map(|s| s.cells).sum();
        let mut latencies: Vec<u64> = samples.iter().map(|s| s.total_micros).collect();
        latencies.sort_unstable();
        let percentile = |q: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
            latencies[rank - 1] as f64 / 1e3
        };
        let contended = samples.iter().filter(|s| s.queue_depth > 1).count() as u64;
        Self {
            requests,
            errors,
            requests_per_sec: requests as f64 / wall_secs,
            cells_per_sec: cells as f64 / wall_secs,
            p50_latency_ms: percentile(0.50),
            p95_latency_ms: percentile(0.95),
            p99_latency_ms: percentile(0.99),
            p999_latency_ms: percentile(0.999),
            queue_share: if requests == 0 {
                0.0
            } else {
                contended as f64 / requests as f64
            },
            error_rate: if requests == 0 {
                0.0
            } else {
                errors as f64 / requests as f64
            },
            wall_ms: wall_micros as f64 / 1e3,
        }
    }
}

/// Detects the degradation point of a rising-load schedule: the first
/// stage whose p95 latency exceeds 4× the first stage's (plus a 2ms floor,
/// so microsecond-scale baselines don't trip on noise) or that saw any
/// errors. `None` while the service degrades gracefully.
#[must_use]
pub fn degradation_point(stages: &[StressMetrics]) -> Option<usize> {
    let baseline = stages.first()?;
    let threshold = baseline.p95_latency_ms * 4.0 + 2.0;
    stages
        .iter()
        .position(|stage| stage.errors > 0 || stage.p95_latency_ms > threshold)
}

/// Degradation **and** recovery over a staged load schedule — what
/// [`assess_stages`] computes from a fall-then-rise schedule's per-stage
/// [`StressMetrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadAssessment {
    /// First degraded stage ([`degradation_point`]); `None` when the
    /// whole schedule stayed healthy.
    pub degradation_stage: Option<usize>,
    /// First post-degradation stage whose p95 is back within the
    /// baseline threshold with zero errors; `None` when the service
    /// never recovered (or never degraded).
    pub recovery_stage: Option<usize>,
    /// Wall time spent degraded: the sum of [`StressMetrics::wall_ms`]
    /// over stages `[degradation..recovery)` (through the schedule's end
    /// when recovery never came); 0 when nothing degraded.
    pub recovery_ms: f64,
}

/// Assesses a staged schedule for degradation and recovery, using the
/// same threshold as [`degradation_point`] (first stage's p95 × 4 + 2ms).
#[must_use]
pub fn assess_stages(stages: &[StressMetrics]) -> LoadAssessment {
    let degradation_stage = degradation_point(stages);
    let (recovery_stage, recovery_ms) = match degradation_stage {
        None => (None, 0.0),
        Some(degraded) => {
            let threshold = stages[0].p95_latency_ms * 4.0 + 2.0;
            let recovered = stages
                .iter()
                .enumerate()
                .skip(degraded + 1)
                .find(|(_, stage)| stage.errors == 0 && stage.p95_latency_ms <= threshold)
                .map(|(index, _)| index);
            let end = recovered.unwrap_or(stages.len());
            let degraded_ms = stages[degraded..end].iter().map(|s| s.wall_ms).sum();
            (recovered, degraded_ms)
        }
    };
    LoadAssessment {
        degradation_stage,
        recovery_stage,
        recovery_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(total_micros: u64, ok: bool) -> RequestSample {
        RequestSample {
            cells: 4,
            queue_depth: 1,
            queued_micros: total_micros / 4,
            exec_micros: total_micros - total_micros / 4,
            total_micros,
            ok,
        }
    }

    #[test]
    fn stress_metrics_percentiles_are_monotone_and_rates_positive() {
        let samples: Vec<RequestSample> = (1..=100).map(|i| sample(i * 1000, true)).collect();
        let metrics = StressMetrics::from_samples(&samples, 2_000_000);
        assert_eq!(metrics.requests, 100);
        assert_eq!(metrics.errors, 0);
        assert!((metrics.requests_per_sec - 50.0).abs() < 1e-9);
        assert!(metrics.cells_per_sec > 0.0);
        // Nearest-rank over 1..=100 ms: exact percentile values.
        assert!((metrics.p50_latency_ms - 50.0).abs() < 1e-9);
        assert!((metrics.p95_latency_ms - 95.0).abs() < 1e-9);
        assert!((metrics.p99_latency_ms - 99.0).abs() < 1e-9);
        assert!((metrics.p999_latency_ms - 100.0).abs() < 1e-9);
        assert!(metrics.p50_latency_ms <= metrics.p95_latency_ms);
        assert!(metrics.p95_latency_ms <= metrics.p99_latency_ms);
        assert!(metrics.p99_latency_ms <= metrics.p999_latency_ms);
        assert_eq!(metrics.error_rate, 0.0);
    }

    #[test]
    fn stress_metrics_empty_samples_are_all_zeros() {
        let metrics = StressMetrics::from_samples(&[], 1_000_000);
        assert_eq!(metrics.requests, 0);
        assert_eq!(metrics.p999_latency_ms, 0.0);
        assert_eq!(metrics.error_rate, 0.0);
    }

    fn stage(p95_ms: f64, errors: u64) -> StressMetrics {
        StressMetrics {
            requests: 10,
            errors,
            requests_per_sec: 1.0,
            cells_per_sec: 4.0,
            p50_latency_ms: p95_ms / 2.0,
            p95_latency_ms: p95_ms,
            p99_latency_ms: p95_ms,
            p999_latency_ms: p95_ms,
            queue_share: 0.1,
            error_rate: errors as f64 / 10.0,
            wall_ms: 1000.0,
        }
    }

    #[test]
    fn degradation_point_finds_the_first_bad_stage() {
        // Graceful: latency grows but stays under 4x + 2ms.
        assert_eq!(
            degradation_point(&[stage(1.0, 0), stage(3.0, 0), stage(5.0, 0)]),
            None
        );
        // Latency blowup at stage 2.
        assert_eq!(
            degradation_point(&[stage(1.0, 0), stage(2.0, 0), stage(10.0, 0)]),
            Some(2)
        );
        // Errors trump latency.
        assert_eq!(
            degradation_point(&[stage(1.0, 0), stage(1.5, 1), stage(1.0, 0)]),
            Some(1)
        );
        assert_eq!(degradation_point(&[]), None);
    }

    #[test]
    fn assess_stages_reports_recovery_and_time_degraded() {
        // Healthy end to end: nothing degrades, nothing to recover from.
        let healthy = assess_stages(&[stage(1.0, 0), stage(2.0, 0)]);
        assert_eq!(healthy.degradation_stage, None);
        assert_eq!(healthy.recovery_stage, None);
        assert_eq!(healthy.recovery_ms, 0.0);

        // Fall-then-rise: degrades at stage 1, p95 back within the
        // threshold (1.0 * 4 + 2 = 6ms) at stage 3 — two degraded stages.
        let recovered =
            assess_stages(&[stage(1.0, 0), stage(10.0, 0), stage(8.0, 0), stage(2.0, 0)]);
        assert_eq!(recovered.degradation_stage, Some(1));
        assert_eq!(recovered.recovery_stage, Some(3));
        assert!((recovered.recovery_ms - 2000.0).abs() < 1e-9);

        // A post-degradation stage with errors is not a recovery even
        // with good latency.
        let errored = assess_stages(&[stage(1.0, 0), stage(10.0, 0), stage(1.0, 1)]);
        assert_eq!(errored.degradation_stage, Some(1));
        assert_eq!(errored.recovery_stage, None);
        assert!((errored.recovery_ms - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn queue_share_reflects_admission_contention_not_pickup_wait() {
        // Regression: every sample waited in the queue (queued_micros > 0)
        // but was admitted to an otherwise idle service (depth 1) — the
        // old pickup-time accounting called this 0.77 contention; admission
        // depth calls it what it is: zero.
        let idle: Vec<RequestSample> = (0..9).map(|_| sample(8000, true)).collect();
        assert!(idle.iter().all(|s| s.queued_micros > 0));
        let metrics = StressMetrics::from_samples(&idle, 1_000_000);
        assert_eq!(metrics.queue_share, 0.0);
        assert!((metrics.wall_ms - 1000.0).abs() < 1e-9);

        // A third of the admissions saw another submission in flight.
        let mut mixed = idle;
        for s in mixed.iter_mut().take(3) {
            s.queue_depth = 2;
        }
        let metrics = StressMetrics::from_samples(&mixed, 1_000_000);
        assert!((metrics.queue_share - 3.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn submit_payload_round_trips_through_the_admission_decoder() {
        let recipe = SweepRecipe::fig10(&[4.5]);
        let payload = encode_submit(7, 16, &recipe);
        let mut dec = Dec::new(&payload);
        assert_eq!(dec.u32().unwrap(), SERVE_MAGIC);
        assert_eq!(dec.u16().unwrap(), SERVE_VERSION);
        assert_eq!(dec.u64().unwrap(), 7);
        assert_eq!(dec.u64().unwrap(), 16);
        let decoded = SweepRecipe::decode(dec.bytes().unwrap()).unwrap();
        assert_eq!(decoded.members.len(), recipe.members.len());
        dec.finish().unwrap();
    }

    #[test]
    fn server_event_payloads_round_trip() {
        let accepted = decode_event(FT_ACCEPTED, &encode_accepted(3, 24, 2)).unwrap();
        assert_eq!(
            accepted,
            ServeEvent::Accepted {
                submit_id: 3,
                total_cells: 24,
                queue_depth: 2
            }
        );
        let progress = decode_event(FT_PROGRESS, &encode_progress(3, 8, 24)).unwrap();
        assert_eq!(
            progress,
            ServeEvent::Progress {
                submit_id: 3,
                done: 8,
                total: 24
            }
        );
        let done = decode_event(FT_SWEEP_DONE, &encode_sweep_done(3, 24, 10, 90)).unwrap();
        assert_eq!(
            done,
            ServeEvent::SweepDone {
                submit_id: 3,
                cells: 24,
                queued_micros: 10,
                exec_micros: 90
            }
        );
        let error = SimError::InvalidConfig {
            reason: "nope".to_string(),
        };
        let decoded = decode_event(FT_SWEEP_ERROR, &encode_sweep_error(3, &error)).unwrap();
        assert_eq!(
            decoded,
            ServeEvent::SweepError {
                submit_id: 3,
                error
            }
        );
        assert!(decode_event(0x55, &[]).is_err(), "unknown frame type");
        let busy = decode_event(FT_BUSY, &encode_busy(9, 5, 4)).unwrap();
        assert_eq!(
            busy,
            ServeEvent::Busy {
                submit_id: 9,
                queue_depth: 5,
                max_pending: 4
            }
        );
    }

    #[test]
    fn busy_outcomes_surface_as_typed_retryable_errors() {
        let outcome = SweepOutcome {
            busy: Some(BusyShed {
                queue_depth: 5,
                max_pending: 4,
            }),
            finished: true,
            ..SweepOutcome::default()
        };
        let error = outcome.result().unwrap_err();
        assert!(error.is_retryable());
        assert!(matches!(error, ServeError::Busy(b) if b.max_pending == 4));

        let failed = SweepOutcome {
            error: Some(SimError::InvalidConfig {
                reason: "nope".to_string(),
            }),
            finished: true,
            ..SweepOutcome::default()
        };
        assert!(!failed.result().unwrap_err().is_retryable());

        let healthy = SweepOutcome::default();
        assert!(healthy.result().is_ok());
    }
}
