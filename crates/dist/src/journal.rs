//! The sweep checkpoint journal: crash-safe progress for the dispatcher.
//!
//! A [`SweepJournal`] is an append-only file of [`crate::wire`] frames (the
//! same CRC-protected framing the transports use — no serde, and a torn
//! tail from a killed dispatcher is detected exactly like a torn TCP
//! write). The dispatcher appends every folded `Result`, a `Done` marker
//! when a lease retires, an `Abort` when a lease's partials are discarded
//! for re-issue, and a `Quarantine` entry for every poisoned cell. On
//! restart with the same recipe (keyed by
//! [`crate::recipe::SweepRecipe::fingerprint64`]) and slot/lease plan, the
//! journal replays **completed leases only** — a lease is restored iff its
//! recorded results and quarantines exactly tile its planned flat indices —
//! and the dispatcher re-executes just the unfinished remainder. Because
//! records round-trip the codec bit-exactly and restored leases merge in
//! the same plan order, a resumed sweep is byte-identical to an
//! uninterrupted one.
//!
//! Lifecycle: created (or adopted) at dispatch start, appended during the
//! run, **deleted on success** ([`SweepJournal::finish`]); any failure path
//! leaves it behind for the next attempt. A journal whose header doesn't
//! match the current (fingerprint, slots, leases, cells) tuple — a
//! different recipe, process count, or lease plan — is discarded and
//! rewritten fresh rather than misapplied.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sysscale::RunRecord;
use sysscale_types::SimError;

use crate::codec;
use crate::wire::{read_frame, write_frame, Dec, Enc, WireError, FRAME_HEADER_LEN};

/// Magic prefix of a journal header frame (`"SSJL"`).
pub const JOURNAL_MAGIC: u32 = 0x5353_4A4C;

/// Journal format version; bump on any entry-layout change.
pub const JOURNAL_VERSION: u16 = 1;

const JF_HEADER: u8 = 1;
const JF_RESULT: u8 = 2;
const JF_DONE: u8 = 3;
const JF_ABORT: u8 = 4;
const JF_QUARANTINE: u8 = 5;

/// Identifies the exact run a journal belongs to: same recipe bytes, same
/// slot count, same lease plan. Any mismatch means the journal cannot be
/// replayed (flat indices would map to different cells or leases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`crate::recipe::SweepRecipe::fingerprint64`] of the recipe.
    pub recipe_fingerprint: u64,
    /// Virtual worker slots the plan was cut for.
    pub slots: u64,
    /// Total leases in the plan.
    pub leases: u64,
    /// Total cells in the sweep.
    pub cells: u64,
}

impl JournalHeader {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u32(JOURNAL_MAGIC);
        enc.put_u16(JOURNAL_VERSION);
        enc.put_u64(self.recipe_fingerprint);
        enc.put_u64(self.slots);
        enc.put_u64(self.leases);
        enc.put_u64(self.cells);
        enc.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut dec = Dec::new(payload);
        let magic = dec.u32()?;
        if magic != JOURNAL_MAGIC {
            return Err(WireError::malformed(format!(
                "bad journal magic {magic:#010x}"
            )));
        }
        let version = dec.u16()?;
        if version != JOURNAL_VERSION {
            return Err(WireError::malformed(format!(
                "journal version {version} (this build speaks {JOURNAL_VERSION})"
            )));
        }
        let header = Self {
            recipe_fingerprint: dec.u64()?,
            slots: dec.u64()?,
            leases: dec.u64()?,
            cells: dec.u64()?,
        };
        dec.finish()?;
        Ok(header)
    }
}

/// One quarantined cell restored from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedQuarantine {
    /// Flat index of the poisoned cell.
    pub flat: u64,
    /// How many times its lease had executed when it was quarantined.
    pub executions: u64,
    /// The structured error it was quarantined with.
    pub error: SimError,
}

/// One *completed* lease restored from a journal: every result in the
/// order it was folded, plus any quarantined cells.
#[derive(Debug)]
pub struct ReplayedLease {
    /// The lease's dispatcher-global id.
    pub lease_id: u64,
    /// `(flat, record)` pairs in fold (ascending-flat) order.
    pub results: Vec<(u64, RunRecord)>,
    /// Quarantined cells of the lease, in stream order.
    pub quarantined: Vec<ReplayedQuarantine>,
}

/// Everything a prior run's journal can prove finished.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Completed leases, in the order their `Done` markers were journaled.
    pub leases: Vec<ReplayedLease>,
}

/// An append-mode sweep checkpoint journal (see the module docs).
pub struct SweepJournal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl std::fmt::Debug for SweepJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJournal")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

/// Scans an existing journal body after a validated header, returning the
/// completed leases and the byte offset of the last fully-valid frame (the
/// truncation point for a torn tail). Aborted leases drop their pending
/// entries; a `Done` whose result count disagrees with its pending entries
/// is ignored rather than trusted.
fn scan_body(
    r: &mut impl std::io::Read,
    mut valid_end: u64,
) -> (Vec<ReplayedLease>, Vec<u64>, u64) {
    let mut pending_results: HashMap<u64, Vec<(u64, RunRecord)>> = HashMap::new();
    let mut pending_quarantine: HashMap<u64, Vec<ReplayedQuarantine>> = HashMap::new();
    let mut completed: Vec<ReplayedLease> = Vec::new();
    // A clean EOF, torn tail, or trailing garbage all stop the scan at the
    // last frame that parsed (`valid_end` already points there).
    while let Ok(Some((frame_type, payload))) = read_frame(r) {
        let consumed = (FRAME_HEADER_LEN + payload.len()) as u64;
        let mut dec = Dec::new(&payload);
        let applied = match frame_type {
            JF_RESULT => (|| {
                let lease = dec.u64()?;
                let flat = dec.u64()?;
                let record = codec::get_record(&mut dec)?;
                dec.finish()?;
                pending_results
                    .entry(lease)
                    .or_default()
                    .push((flat, record));
                Ok::<(), WireError>(())
            })()
            .is_ok(),
            JF_DONE => (|| {
                let lease = dec.u64()?;
                let results = dec.u64()?;
                dec.finish()?;
                let recorded = pending_results.remove(&lease).unwrap_or_default();
                let quarantined = pending_quarantine.remove(&lease).unwrap_or_default();
                if recorded.len() as u64 == results {
                    completed.push(ReplayedLease {
                        lease_id: lease,
                        results: recorded,
                        quarantined,
                    });
                }
                Ok::<(), WireError>(())
            })()
            .is_ok(),
            JF_ABORT => (|| {
                let lease = dec.u64()?;
                dec.finish()?;
                pending_results.remove(&lease);
                pending_quarantine.remove(&lease);
                Ok::<(), WireError>(())
            })()
            .is_ok(),
            JF_QUARANTINE => (|| {
                let lease = dec.u64()?;
                let flat = dec.u64()?;
                let executions = dec.u64()?;
                let error = codec::get_sim_error(&mut dec)?;
                dec.finish()?;
                pending_quarantine
                    .entry(lease)
                    .or_default()
                    .push(ReplayedQuarantine {
                        flat,
                        executions,
                        error,
                    });
                Ok::<(), WireError>(())
            })()
            .is_ok(),
            _ => false,
        };
        if !applied {
            break;
        }
        valid_end += consumed;
    }
    let dangling: Vec<u64> = {
        let mut ids: Vec<u64> = pending_results
            .keys()
            .chain(pending_quarantine.keys())
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    (completed, dangling, valid_end)
}

impl SweepJournal {
    /// Opens (or creates) the journal at `path` for the run described by
    /// `header`.
    ///
    /// If a journal already exists there **and** its header matches, the
    /// completed leases it proves are returned for replay, any torn tail is
    /// truncated away, and dangling partial leases are explicitly aborted
    /// so they never mix with the re-execution's entries. Otherwise —
    /// missing file, foreign recipe, different plan, or an unreadable
    /// header — a fresh journal is written in place.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating, truncating, or writing the
    /// file.
    pub fn open(
        path: &Path,
        header: &JournalHeader,
    ) -> Result<(Self, Option<JournalReplay>), WireError> {
        let mut adoption: Option<(Vec<ReplayedLease>, Vec<u64>, u64)> = None;
        if let Ok(file) = File::open(path) {
            let mut r = BufReader::new(file);
            if let Ok(Some((JF_HEADER, payload))) = read_frame(&mut r) {
                if JournalHeader::decode(&payload).is_ok_and(|found| found == *header) {
                    let header_end = (FRAME_HEADER_LEN + payload.len()) as u64;
                    adoption = Some(scan_body(&mut r, header_end));
                }
            }
        }
        match adoption {
            Some((completed, dangling, valid_end)) => {
                let mut file = OpenOptions::new().write(true).open(path)?;
                file.set_len(valid_end)?;
                file.seek(SeekFrom::Start(valid_end))?;
                let mut journal = Self {
                    writer: BufWriter::new(file),
                    path: path.to_path_buf(),
                };
                for lease in dangling {
                    journal.record_abort(lease)?;
                }
                journal.flush()?;
                Ok((journal, Some(JournalReplay { leases: completed })))
            }
            None => {
                let file = OpenOptions::new()
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(path)?;
                let mut journal = Self {
                    writer: BufWriter::new(file),
                    path: path.to_path_buf(),
                };
                write_frame(&mut journal.writer, JF_HEADER, &header.encode())?;
                Ok((journal, None))
            }
        }
    }

    /// Appends one folded result. Buffered; durability comes from the
    /// [`SweepJournal::record_done`] flush that retires the lease.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_result(
        &mut self,
        lease_id: u64,
        flat: u64,
        record: &RunRecord,
    ) -> Result<(), WireError> {
        let mut enc = Enc::new();
        enc.put_u64(lease_id);
        enc.put_u64(flat);
        codec::put_record(&mut enc, record);
        write_frame(&mut self.writer, JF_RESULT, &enc.into_bytes())
    }

    /// Marks a lease complete with `results` recorded results and flushes —
    /// after this returns, a killed dispatcher will restore the lease.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_done(&mut self, lease_id: u64, results: u64) -> Result<(), WireError> {
        let mut enc = Enc::new();
        enc.put_u64(lease_id);
        enc.put_u64(results);
        write_frame(&mut self.writer, JF_DONE, &enc.into_bytes())?;
        self.flush()
    }

    /// Discards a lease's journaled partial results (worker death → the
    /// lease re-executes; its old entries must not double-fold on resume).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_abort(&mut self, lease_id: u64) -> Result<(), WireError> {
        let mut enc = Enc::new();
        enc.put_u64(lease_id);
        write_frame(&mut self.writer, JF_ABORT, &enc.into_bytes())
    }

    /// Records a quarantined cell (flat index, lease execution count, and
    /// the structured error) and flushes — quarantine decisions survive any
    /// later crash.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_quarantine(
        &mut self,
        lease_id: u64,
        flat: u64,
        executions: u64,
        error: &SimError,
    ) -> Result<(), WireError> {
        let mut enc = Enc::new();
        enc.put_u64(lease_id);
        enc.put_u64(flat);
        enc.put_u64(executions);
        codec::put_sim_error(&mut enc, error);
        write_frame(&mut self.writer, JF_QUARANTINE, &enc.into_bytes())?;
        self.flush()
    }

    /// Flushes buffered entries to the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.writer.flush()?;
        Ok(())
    }

    /// The sweep completed: flush, close, and **delete** the journal (a
    /// finished run must not be replayed into a later one).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(mut self) -> Result<(), WireError> {
        self.writer.flush()?;
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale::{Scenario, SimSession};
    use sysscale_workloads::spec_workload;

    fn sample_record(tag: &str) -> RunRecord {
        let workload = spec_workload("mcf").expect("known workload");
        let mut session = SimSession::new();
        let scenario = Scenario::builder(workload).build().unwrap();
        let mut record = session.run(&scenario).unwrap();
        record.workload = tag.to_string();
        record
    }

    fn header() -> JournalHeader {
        JournalHeader {
            recipe_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            slots: 2,
            leases: 3,
            cells: 6,
        }
    }

    #[test]
    fn completed_leases_replay_and_partials_do_not() {
        let dir = std::env::temp_dir().join(format!("ssjl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.journal");
        let _ = std::fs::remove_file(&path);

        let r0 = sample_record("cell0");
        let r1 = sample_record("cell1");
        let r2 = sample_record("cell2");
        {
            let (mut journal, replay) = SweepJournal::open(&path, &header()).unwrap();
            assert!(replay.is_none(), "fresh file has nothing to replay");
            journal.record_result(0, 0, &r0).unwrap();
            journal.record_result(0, 1, &r1).unwrap();
            journal.record_done(0, 2).unwrap();
            // Lease 1: one result, never done — a dangling partial.
            journal.record_result(1, 2, &r2).unwrap();
            journal.flush().unwrap();
        }

        let (journal, replay) = SweepJournal::open(&path, &header()).unwrap();
        let replay = replay.expect("matching header must replay");
        assert_eq!(replay.leases.len(), 1, "only the Done lease restores");
        let lease = &replay.leases[0];
        assert_eq!(lease.lease_id, 0);
        assert_eq!(lease.results.len(), 2);
        assert_eq!(lease.results[0].0, 0);
        assert_eq!(
            lease.results[0].1, r0,
            "records must round-trip bit-exactly"
        );
        assert_eq!(lease.results[1].1, r1);
        assert!(lease.quarantined.is_empty());
        journal.finish().unwrap();
        assert!(!path.exists(), "finish() deletes the journal");
    }

    #[test]
    fn torn_tail_is_truncated_and_the_journal_stays_usable() {
        let dir = std::env::temp_dir().join(format!("ssjl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let _ = std::fs::remove_file(&path);

        let record = sample_record("cell0");
        {
            let (mut journal, _) = SweepJournal::open(&path, &header()).unwrap();
            journal.record_result(0, 0, &record).unwrap();
            journal.record_done(0, 1).unwrap();
            journal.record_result(1, 1, &record).unwrap();
            journal.flush().unwrap();
        }
        // Tear the last frame, as a SIGKILL mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let (mut journal, replay) = SweepJournal::open(&path, &header()).unwrap();
        let replay = replay.expect("header still matches");
        assert_eq!(replay.leases.len(), 1, "the torn lease must not restore");
        // And the file is append-consistent again: a new entry lands on a
        // frame boundary and the journal reopens cleanly.
        journal.record_result(1, 1, &record).unwrap();
        journal.record_done(1, 1).unwrap();
        drop(journal);
        let (journal, replay) = SweepJournal::open(&path, &header()).unwrap();
        assert_eq!(replay.expect("replay").leases.len(), 2);
        journal.finish().unwrap();
    }

    #[test]
    fn foreign_or_drifted_headers_start_fresh() {
        let dir = std::env::temp_dir().join(format!("ssjl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.journal");
        let _ = std::fs::remove_file(&path);

        let record = sample_record("cell0");
        {
            let (mut journal, _) = SweepJournal::open(&path, &header()).unwrap();
            journal.record_result(0, 0, &record).unwrap();
            journal.record_done(0, 1).unwrap();
        }
        // Same path, different plan (more slots): nothing replays.
        let other = JournalHeader {
            slots: 4,
            ..header()
        };
        let (journal, replay) = SweepJournal::open(&path, &other).unwrap();
        assert!(replay.is_none(), "a drifted plan must not replay");
        drop(journal);
        // The rewrite also wiped the old contents.
        let (journal, replay) = SweepJournal::open(&path, &other).unwrap();
        assert!(replay.is_some_and(|r| r.leases.is_empty()));
        journal.finish().unwrap();
    }

    #[test]
    fn aborted_leases_drop_their_pending_results() {
        let dir = std::env::temp_dir().join(format!("ssjl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("abort.journal");
        let _ = std::fs::remove_file(&path);

        let record = sample_record("cell0");
        {
            let (mut journal, _) = SweepJournal::open(&path, &header()).unwrap();
            journal.record_result(0, 0, &record).unwrap();
            journal.record_abort(0).unwrap();
            // Re-execution after the abort: fresh entries, then done.
            journal.record_result(0, 0, &record).unwrap();
            journal.record_result(0, 1, &record).unwrap();
            journal.record_done(0, 2).unwrap();
        }
        let (journal, replay) = SweepJournal::open(&path, &header()).unwrap();
        let replay = replay.expect("replay");
        assert_eq!(replay.leases.len(), 1);
        assert_eq!(
            replay.leases[0].results.len(),
            2,
            "only post-abort entries count toward Done"
        );
        journal.finish().unwrap();
    }

    #[test]
    fn quarantine_entries_ride_with_their_lease() {
        let dir = std::env::temp_dir().join(format!("ssjl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.journal");
        let _ = std::fs::remove_file(&path);

        let record = sample_record("cell0");
        let poison = SimError::invalid_config("poisoned cell 1");
        {
            let (mut journal, _) = SweepJournal::open(&path, &header()).unwrap();
            journal.record_result(0, 0, &record).unwrap();
            journal.record_quarantine(0, 1, 3, &poison).unwrap();
            journal.record_done(0, 1).unwrap();
        }
        let (journal, replay) = SweepJournal::open(&path, &header()).unwrap();
        let replay = replay.expect("replay");
        assert_eq!(replay.leases.len(), 1);
        assert_eq!(
            replay.leases[0].quarantined,
            vec![ReplayedQuarantine {
                flat: 1,
                executions: 3,
                error: poison,
            }]
        );
        journal.finish().unwrap();
    }
}
