//! The distributed sweep worker executable.
//!
//! Spawned by the dispatcher ([`sysscale_dist::run_distributed`]), one
//! process per virtual worker slot. Speaks the framed protocol on
//! stdin/stdout by default, or over TCP with `--connect <addr>` (the
//! dispatcher picks; both carry identical frames).

use std::process::ExitCode;

use sysscale_dist::{connect_with_backoff, worker_main};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut connect: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("sysscale-dist-worker: --connect needs an address");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: sysscale-dist-worker [--connect ADDR]\n\n\
                     Executes sweep leases for a sysscale-dist dispatcher. With no\n\
                     arguments the framed protocol runs on stdin/stdout; with\n\
                     --connect the worker dials the dispatcher's TCP listener and\n\
                     speaks the same protocol over the socket."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sysscale-dist-worker: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let outcome = match connect {
        // Bounded exponential backoff with deterministic jitter: a worker
        // that races the dispatcher's listener setup (or lands on a
        // transiently refused port) retries instead of dying at birth.
        Some(addr) => match connect_with_backoff(&addr) {
            Ok(stream) => {
                let read = match stream.try_clone() {
                    Ok(read) => read,
                    Err(error) => {
                        eprintln!("sysscale-dist-worker: cloning stream: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                worker_main(read, stream)
            }
            Err(error) => Err(format!("connecting to {addr}: {error}")),
        },
        None => worker_main(std::io::stdin().lock(), std::io::stdout().lock()),
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sysscale-dist-worker: {message}");
            ExitCode::FAILURE
        }
    }
}
