//! Fault-tolerance probe: the fig. 10 sweep as one checksummed process.
//!
//! Runs the distributed fig. 10 sweep ([`SweepRecipe::fig10`]) and prints a
//! single JSON line with an FNV-1a-64 hash over every result record's codec
//! encoding (flat order) plus the run's [`sysscale_dist::DistStats`]
//! counters. Two
//! invocations print the same hash iff their merged results are
//! byte-identical — which is exactly what the checkpoint/resume and
//! wire-fault CI jobs assert across kill/resume cycles, process counts,
//! transports, and fault-plan seeds.
//!
//! `--halt-after N` aborts the dispatcher after `N` retired leases (exit
//! code 3, journal left behind) — a deterministic stand-in for `kill -9` on
//! the dispatcher; the CI job also kills the real process mid-run.

use std::path::PathBuf;
use std::process::ExitCode;

use sysscale_dist::dispatcher::PoisonFault;
use sysscale_dist::net::fnv1a64;
use sysscale_dist::{codec, run_distributed, DistOptions, Enc, SweepRecipe, TransportKind};

const USAGE: &str = "usage: sysscale-dist-fig10 [--tdps W,W,..] [--procs N] \
                     [--transport pipes|tcp] [--journal PATH] [--halt-after N] \
                     [--fault-plan SEED] [--poison-flat N [--poison-crash]] \
                     [--duration SECS]";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("sysscale-dist-fig10: {message}");
    ExitCode::FAILURE
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut tdps: Vec<f64> = vec![3.5, 4.5];
    let mut procs: Option<usize> = None;
    let mut transport = TransportKind::Pipes;
    let mut journal: Option<PathBuf> = None;
    let mut halt_after: Option<usize> = None;
    let mut fault_plan: Option<u64> = None;
    let mut poison_flat: Option<usize> = None;
    let mut poison_crash = false;
    let mut duration_secs: Option<f64> = Some(0.25);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        let parsed = match arg.as_str() {
            "--tdps" => value("--tdps").and_then(|v| {
                v.split(',')
                    .map(|w| w.trim().parse::<f64>().map_err(|e| format!("--tdps: {e}")))
                    .collect::<Result<Vec<f64>, _>>()
                    .map(|list| tdps = list)
            }),
            "--procs" => value("--procs").and_then(|v| {
                v.parse()
                    .map(|n| procs = Some(n))
                    .map_err(|e| format!("--procs: {e}"))
            }),
            "--transport" => value("--transport").and_then(|v| match v.as_str() {
                "pipes" => {
                    transport = TransportKind::Pipes;
                    Ok(())
                }
                "tcp" => {
                    transport = TransportKind::Tcp;
                    Ok(())
                }
                other => Err(format!("--transport: unknown kind {other:?}")),
            }),
            "--journal" => value("--journal").map(|v| journal = Some(PathBuf::from(v))),
            "--halt-after" => value("--halt-after").and_then(|v| {
                v.parse()
                    .map(|n| halt_after = Some(n))
                    .map_err(|e| format!("--halt-after: {e}"))
            }),
            "--fault-plan" => value("--fault-plan").and_then(|v| {
                v.parse()
                    .map(|s| fault_plan = Some(s))
                    .map_err(|e| format!("--fault-plan: {e}"))
            }),
            "--poison-flat" => value("--poison-flat").and_then(|v| {
                v.parse()
                    .map(|n| poison_flat = Some(n))
                    .map_err(|e| format!("--poison-flat: {e}"))
            }),
            "--poison-crash" => {
                poison_crash = true;
                Ok(())
            }
            "--duration" => value("--duration").and_then(|v| {
                v.parse()
                    .map(|s| duration_secs = Some(s))
                    .map_err(|e| format!("--duration: {e}"))
            }),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?}\n{USAGE}")),
        };
        if let Err(message) = parsed {
            return fail(message);
        }
    }

    let mut recipe = SweepRecipe::fig10(&tdps);
    for member in &mut recipe.members {
        member.duration_secs = duration_secs;
    }
    let options = DistOptions {
        procs,
        transport,
        journal,
        fault_plan,
        halt_after_leases: halt_after,
        poison: poison_flat.map(|flat| PoisonFault {
            flat,
            crash: poison_crash,
        }),
        max_respawns: 64, // bisection under a crash-poison burns respawns
        ..DistOptions::default()
    };

    let outcome = if poison_flat.is_some() {
        sysscale_dist::run_distributed_partial(&recipe, &options)
    } else {
        run_distributed(&recipe, &options).map(|(sets, stats)| (sets, Default::default(), stats))
    };
    let (run_sets, failed, stats) = match outcome {
        Ok(result) => result,
        // A deliberate halt is the probe's stand-in for a dispatcher kill:
        // distinct exit code so CI can tell it from a real failure.
        Err(error) if error.to_string().contains("halted after") => {
            eprintln!("sysscale-dist-fig10: {error}");
            return ExitCode::from(3);
        }
        Err(error) => return fail(error),
    };

    // Hash every record's codec encoding, flat order: byte-identity in one
    // u64. Quarantined cells are absent from the stream on every run with
    // the same poison, so the hash stays comparable.
    let mut enc = Enc::new();
    let mut cells = 0u64;
    for set in &run_sets {
        for record in set.records() {
            codec::put_record(&mut enc, record);
            cells += 1;
        }
    }
    let hash = fnv1a64(&enc.into_bytes());
    let quarantined: Vec<String> = failed
        .cells()
        .iter()
        .map(|c| c.cell.flat.to_string())
        .collect();
    println!(
        "{{\"kind\":\"dist_fig10\",\"procs\":{},\"slots\":{},\"cells\":{},\"hash\":\"{:#018x}\",\
         \"quarantined\":[{}],\"quarantined_cells\":{},\"journal_resumes\":{},\
         \"frames_rejected\":{},\"retries\":{},\"reissued_leases\":{},\"result_frames\":{}}}",
        procs.unwrap_or(0),
        stats.slots,
        cells,
        hash,
        quarantined.join(","),
        stats.quarantined_cells,
        stats.journal_resumes,
        stats.frames_rejected,
        stats.retries,
        stats.reissued_leases,
        stats.result_frames,
    );
    ExitCode::SUCCESS
}
