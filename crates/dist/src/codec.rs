//! Wire codecs for the simulation result types.
//!
//! A [`RunRecord`] crossing the dispatcher↔worker boundary must rebuild
//! **`PartialEq`-identically** on the other side: every `f64` travels as its
//! bit pattern ([`crate::wire`]), sparse structures ([`CounterSet`],
//! [`EnergyAccount`]) travel as their present `(key, value)` pairs in
//! canonical iteration order, and decoding rebuilds them through the same
//! public mutation paths the simulator uses — so a record that took a
//! round-trip is indistinguishable from one that never left the process.

use sysscale::{RunRecord, SimReport, SliceLoopStats};
use sysscale_power::EnergyAccount;
use sysscale_soc::{SliceTrace, TransitionStats};
use sysscale_types::{
    Bandwidth, Component, CounterKind, CounterSet, Domain, Energy, Power, RunMetrics, SimError,
    SimTime,
};

use crate::wire::{Dec, Enc, WireError};

fn put_sim_time(enc: &mut Enc, t: SimTime) {
    enc.put_f64(t.as_secs());
}

fn get_sim_time(dec: &mut Dec<'_>) -> Result<SimTime, WireError> {
    Ok(SimTime::from_secs(dec.f64()?))
}

fn component_from_index(index: u8) -> Result<Component, WireError> {
    Component::ALL
        .get(index as usize)
        .copied()
        .ok_or_else(|| WireError::malformed(format!("component index {index}")))
}

fn counter_from_index(index: u8) -> Result<CounterKind, WireError> {
    CounterKind::ALL
        .get(index as usize)
        .copied()
        .ok_or_else(|| WireError::malformed(format!("counter index {index}")))
}

fn put_energy_account(enc: &mut Enc, account: &EnergyAccount) {
    put_sim_time(enc, account.duration());
    let parts: Vec<(Component, Energy)> = account.iter().collect();
    enc.put_u8(parts.len() as u8);
    for (component, energy) in parts {
        enc.put_u8(component.index() as u8);
        enc.put_f64(energy.as_joules());
    }
}

fn get_energy_account(dec: &mut Dec<'_>) -> Result<EnergyAccount, WireError> {
    let duration = get_sim_time(dec)?;
    let count = dec.u8()?;
    let mut parts = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let component = component_from_index(dec.u8()?)?;
        let energy = Energy::from_joules(dec.f64()?);
        parts.push((component, energy));
    }
    Ok(EnergyAccount::from_parts(duration, parts))
}

fn put_counters(enc: &mut Enc, counters: &CounterSet) {
    let entries: Vec<(CounterKind, f64)> = counters.iter().collect();
    enc.put_u8(entries.len() as u8);
    for (kind, value) in entries {
        enc.put_u8(kind.index() as u8);
        enc.put_f64(value);
    }
}

fn get_counters(dec: &mut Dec<'_>) -> Result<CounterSet, WireError> {
    let count = dec.u8()?;
    let mut counters = CounterSet::new();
    for _ in 0..count {
        let kind = counter_from_index(dec.u8()?)?;
        let value = dec.f64()?;
        counters.set(kind, value);
    }
    Ok(counters)
}

fn put_trace_slice(enc: &mut Enc, slice: &SliceTrace) {
    put_sim_time(enc, slice.at);
    enc.put_f64(slice.demanded_gib_s);
    enc.put_f64(slice.served_gib_s);
    enc.put_f64(slice.power_w);
    enc.put_usize(slice.operating_point);
    enc.put_f64(slice.cpu_freq_ghz);
}

fn get_trace_slice(dec: &mut Dec<'_>) -> Result<SliceTrace, WireError> {
    Ok(SliceTrace {
        at: get_sim_time(dec)?,
        demanded_gib_s: dec.f64()?,
        served_gib_s: dec.f64()?,
        power_w: dec.f64()?,
        operating_point: dec.usize()?,
        cpu_freq_ghz: dec.f64()?,
    })
}

/// Encodes a [`SimError`] structurally: a variant discriminant followed by
/// the variant's payload fields (floats as bit patterns, [`Domain`] by its
/// [`Domain::ALL`] index) — not a rendered message. A worker-reported error
/// therefore rebuilds as the *same* [`SimError`] value on the dispatcher
/// side, so distributed failures match the in-process executor's errors
/// `PartialEq`-identically, not just textually.
pub fn put_sim_error(enc: &mut Enc, error: &SimError) {
    match error {
        SimError::InvalidConfig { reason } => {
            enc.put_u8(0);
            enc.put_str(reason);
        }
        SimError::UnknownOperatingPoint { index, ladder_len } => {
            enc.put_u8(1);
            enc.put_usize(*index);
            enc.put_usize(*ladder_len);
        }
        SimError::QosViolation { demanded, provided } => {
            enc.put_u8(2);
            enc.put_f64(demanded.as_gib_s());
            enc.put_f64(provided.as_gib_s());
        }
        SimError::BudgetExceeded {
            domain,
            budget,
            measured,
        } => {
            enc.put_u8(3);
            let index = Domain::ALL
                .iter()
                .position(|d| d == domain)
                .expect("domain in Domain::ALL");
            enc.put_u8(index as u8);
            enc.put_f64(budget.as_watts());
            enc.put_f64(measured.as_watts());
        }
        SimError::UnknownWorkload { name } => {
            enc.put_u8(4);
            enc.put_str(name);
        }
        SimError::EmptySimulation => enc.put_u8(5),
    }
}

/// Decodes a [`SimError`] — the exact inverse of [`put_sim_error`].
///
/// # Errors
///
/// Returns [`WireError::Malformed`] for an unknown discriminant, an
/// out-of-range domain index, or a truncated payload.
pub fn get_sim_error(dec: &mut Dec<'_>) -> Result<SimError, WireError> {
    Ok(match dec.u8()? {
        0 => SimError::InvalidConfig { reason: dec.str()? },
        1 => SimError::UnknownOperatingPoint {
            index: dec.usize()?,
            ladder_len: dec.usize()?,
        },
        2 => SimError::QosViolation {
            demanded: Bandwidth::from_gib_s(dec.f64()?),
            provided: Bandwidth::from_gib_s(dec.f64()?),
        },
        3 => {
            let index = dec.u8()?;
            let domain = Domain::ALL
                .get(index as usize)
                .copied()
                .ok_or_else(|| WireError::malformed(format!("domain index {index}")))?;
            SimError::BudgetExceeded {
                domain,
                budget: Power::from_watts(dec.f64()?),
                measured: Power::from_watts(dec.f64()?),
            }
        }
        4 => SimError::UnknownWorkload { name: dec.str()? },
        5 => SimError::EmptySimulation,
        tag => return Err(WireError::malformed(format!("error discriminant {tag}"))),
    })
}

/// Encodes one [`RunRecord`] (including its optional trace) into `enc`.
pub fn put_record(enc: &mut Enc, record: &RunRecord) {
    enc.put_str(&record.workload);
    enc.put_str(&record.governor);
    let report = &record.report;
    enc.put_str(&report.workload);
    enc.put_str(&report.governor);
    put_sim_time(enc, report.metrics.duration);
    enc.put_f64(report.metrics.energy.as_joules());
    enc.put_f64(report.metrics.work_done);
    put_energy_account(enc, &report.energy);
    put_counters(enc, &report.counters);
    enc.put_u64(report.transitions.count);
    put_sim_time(enc, report.transitions.total_stall);
    put_sim_time(enc, report.transitions.max_stall);
    enc.put_u64(report.qos_violations);
    enc.put_f64(report.low_op_residency);
    enc.put_f64(report.average_fps);
    enc.put_f64(report.average_cpu_freq_ghz);
    enc.put_f64(report.average_gfx_freq_ghz);
    enc.put_u64(report.loop_stats.slices);
    enc.put_u64(report.loop_stats.fixed_point_iters);
    match &record.trace {
        None => enc.put_bool(false),
        Some(slices) => {
            enc.put_bool(true);
            enc.put_usize(slices.len());
            for slice in slices {
                put_trace_slice(enc, slice);
            }
        }
    }
}

/// Decodes one [`RunRecord`] from `dec` — the exact inverse of
/// [`put_record`].
///
/// # Errors
///
/// Returns [`WireError::Malformed`] for any truncated or out-of-range
/// payload.
pub fn get_record(dec: &mut Dec<'_>) -> Result<RunRecord, WireError> {
    let workload = dec.str()?;
    let governor = dec.str()?;
    let report_workload = dec.str()?;
    let report_governor = dec.str()?;
    let metrics = RunMetrics {
        duration: get_sim_time(dec)?,
        energy: Energy::from_joules(dec.f64()?),
        work_done: dec.f64()?,
    };
    let energy = get_energy_account(dec)?;
    let counters = get_counters(dec)?;
    let transitions = TransitionStats {
        count: dec.u64()?,
        total_stall: get_sim_time(dec)?,
        max_stall: get_sim_time(dec)?,
    };
    let report = SimReport {
        workload: report_workload,
        governor: report_governor,
        metrics,
        energy,
        counters,
        transitions,
        qos_violations: dec.u64()?,
        low_op_residency: dec.f64()?,
        average_fps: dec.f64()?,
        average_cpu_freq_ghz: dec.f64()?,
        average_gfx_freq_ghz: dec.f64()?,
        loop_stats: SliceLoopStats {
            slices: dec.u64()?,
            fixed_point_iters: dec.u64()?,
        },
    };
    let trace = if dec.bool()? {
        let len = dec.usize()?;
        let mut slices = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            slices.push(get_trace_slice(dec)?);
        }
        Some(slices)
    } else {
        None
    };
    Ok(RunRecord {
        workload,
        governor,
        report,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale::{Scenario, SimSession};
    use sysscale_workloads::spec_workload;

    fn round_trip(record: &RunRecord) -> RunRecord {
        let mut enc = Enc::new();
        put_record(&mut enc, record);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let decoded = get_record(&mut dec).expect("decode");
        dec.finish().expect("payload fully consumed");
        decoded
    }

    #[test]
    fn simulated_record_round_trips_identically() {
        let workload = spec_workload("mcf").expect("known workload");
        let mut session = SimSession::new();
        let plain = Scenario::builder(workload.clone()).build().unwrap();
        let record = session.run(&plain).unwrap();
        assert_eq!(round_trip(&record), record);

        // With a collected trace (exercises the Some(trace) arm).
        let traced = Scenario::builder(workload).trace(true).build().unwrap();
        let record = session.run(&traced).unwrap();
        assert!(record.trace.is_some());
        assert_eq!(round_trip(&record), record);
    }

    /// Satellite: every [`SimError`] variant — payload fields included —
    /// survives the wire `PartialEq`-identically, across randomly sampled
    /// payloads.
    #[test]
    fn sim_errors_round_trip_structurally_property() {
        use sysscale_types::rng::SplitMix64;
        let mut rng = SplitMix64::new(0x51E7_7071);
        for round in 0..200 {
            let error = match rng.next_u64() % 6 {
                0 => SimError::InvalidConfig {
                    reason: format!("reason #{round} \u{2014} non-ascii ✓"),
                },
                1 => SimError::UnknownOperatingPoint {
                    index: (rng.next_u64() % 1000) as usize,
                    ladder_len: (rng.next_u64() % 100) as usize,
                },
                2 => SimError::QosViolation {
                    demanded: Bandwidth::from_gib_s(rng.gen_range(0.0, 50.0)),
                    provided: Bandwidth::from_gib_s(rng.gen_range(0.0, 50.0)),
                },
                3 => SimError::BudgetExceeded {
                    domain: Domain::ALL[(rng.next_u64() % 3) as usize],
                    budget: Power::from_watts(rng.gen_range(0.0, 15.0)),
                    measured: Power::from_watts(rng.gen_range(0.0, 20.0)),
                },
                4 => SimError::UnknownWorkload {
                    name: format!("bench-{}", rng.next_u64() % 1000),
                },
                _ => SimError::EmptySimulation,
            };
            let mut enc = Enc::new();
            put_sim_error(&mut enc, &error);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            let decoded = get_sim_error(&mut dec).expect("decode");
            dec.finish().expect("payload fully consumed");
            assert_eq!(decoded, error, "round {round}");
        }
        // Unknown discriminants are rejected, not misread.
        let mut dec = Dec::new(&[6]);
        assert!(get_sim_error(&mut dec).is_err());
    }
}
