//! Deterministic wire-fault injection for the dispatcher's read paths.
//!
//! A [`FaultPlan`] (seeded explicitly or via [`FAULT_PLAN_ENV`]) decides,
//! per worker connection, whether and where to sabotage the byte stream
//! the dispatcher reads from that worker: a chosen frame ordinal gets one
//! of the mutations in [`FaultKind`] — a bit-flipped payload, a corrupted
//! length prefix, a frame torn mid-write, a duplicated `Result` frame, or
//! a delayed delivery. Everything is a pure function of
//! `(seed, slot, generation)` — no wall clock, no global RNG — so a
//! faulted run is exactly reproducible, and only **generation 0**
//! connections are sabotaged: a replacement worker's stream runs clean,
//! which bounds lease executions under injection to 2, safely below the
//! dispatcher's give-up threshold.
//!
//! The injector sits *between* the transport and the frame parser
//! ([`FaultReader`] wraps the dispatcher-side read half), so the mutations
//! model real-world corruption: the CRC check in [`crate::wire`] rejects
//! flipped bits, the length cap and EOF handling reject torn or
//! length-corrupted frames (tearing the connection, which re-issues the
//! slot's leases through the ordinary death path), and the dispatcher's
//! dedup-by-`(lease, flat)` absorbs duplicated `Result` frames
//! idempotently. Every fault mode therefore ends in a clean
//! rejection+replay or an idempotent absorption — never a hang, panic, or
//! silent corruption.

use std::io::Read;

use sysscale_types::rng::SplitMix64;

use crate::proto::FT_RESULT;
use crate::wire::{FRAME_HEADER_LEN, MAX_FRAME_LEN};

/// Environment variable carrying the fault-plan seed (a `u64`; `0` or
/// unset disables injection). [`crate::DistOptions::fault_plan`] overrides
/// it.
pub const FAULT_PLAN_ENV: &str = "SYSSCALE_DIST_FAULT_PLAN";

/// Frame ordinals a connection's single fault is drawn from: large enough
/// to land mid-lease on real sweeps, small enough that short test sweeps
/// still reach the chosen ordinal.
const FAULT_ORDINAL_RANGE: u64 = 12;

/// The mutation applied at a chosen frame ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one payload bit (one CRC-check failure; empty payloads flip a
    /// CRC byte instead).
    BitFlipPayload,
    /// XOR the length prefix (either an over-cap length or a CRC/framing
    /// mismatch downstream).
    CorruptLength,
    /// Emit only half the frame, then EOF — a torn write from a peer that
    /// died mid-`write_all`.
    TruncateFrame,
    /// Deliver the next `Result` frame twice — a retransmit-style
    /// duplicate the dispatcher must absorb idempotently.
    DuplicateResult,
    /// Deliver the frame intact but late — a stalled-then-recovered write.
    DelayFrame,
}

/// All kinds, in discriminant order (drawing order for the plan RNG).
const ALL_KINDS: [FaultKind; 5] = [
    FaultKind::BitFlipPayload,
    FaultKind::CorruptLength,
    FaultKind::TruncateFrame,
    FaultKind::DuplicateResult,
    FaultKind::DelayFrame,
];

/// One concrete sabotage: which frame ordinal of a connection, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFault {
    /// Zero-based frame ordinal (counted on the worker→dispatcher stream).
    pub ordinal: u64,
    /// The mutation.
    pub kind: FaultKind,
}

/// A deterministic per-run sabotage schedule, seeded by a single `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The plan seed (nonzero; `0` means "no plan").
    pub seed: u64,
}

impl FaultPlan {
    /// A plan from a nonzero seed; `0` disables injection.
    #[must_use]
    pub fn new(seed: u64) -> Option<Self> {
        (seed != 0).then_some(Self { seed })
    }

    /// Reads [`FAULT_PLAN_ENV`]; unset, unparsable, or `0` means no plan.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        std::env::var(FAULT_PLAN_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .and_then(Self::new)
    }

    /// The fault (if any) for one worker connection. Only generation-0
    /// connections are sabotaged — a respawned worker's stream is clean,
    /// so injected faults always heal within one replay.
    #[must_use]
    pub fn connection_fault(&self, slot: usize, generation: u64) -> Option<WireFault> {
        if generation > 0 {
            return None;
        }
        let mut rng =
            SplitMix64::new(self.seed ^ (slot as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ordinal = rng.next_u64() % FAULT_ORDINAL_RANGE;
        let kind = ALL_KINDS[(rng.next_u64() % ALL_KINDS.len() as u64) as usize];
        Some(WireFault { ordinal, kind })
    }
}

/// A frame-aware sabotaging `Read` wrapper for one worker connection.
///
/// It parses the inner stream frame by frame (type byte, length, CRC,
/// payload — it never interprets payloads beyond the type byte), applies
/// its [`WireFault`] at the chosen ordinal, and serves the possibly-mutated
/// bytes to the caller. Corrupting faults also cut the stream (EOF after
/// the mutated frame), modelling the connection tear that real corruption
/// causes once the parser gives up.
pub struct FaultReader<R> {
    inner: R,
    fault: WireFault,
    ordinal: u64,
    fired: bool,
    dead: bool,
    buf: Vec<u8>,
    pos: usize,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner` with one planned fault.
    pub fn new(inner: R, fault: WireFault) -> Self {
        Self {
            inner,
            fault,
            ordinal: 0,
            fired: false,
            dead: false,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Reads exactly `buf.len()` bytes from the inner stream; `Ok(false)`
    /// on EOF at offset 0, errors on EOF mid-buffer.
    fn fill_inner(&mut self, buf: &mut [u8]) -> std::io::Result<bool> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(false),
                Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Pulls the next frame from the inner stream, applies the fault if
    /// this is its ordinal, and stages the output bytes.
    fn refill(&mut self) -> std::io::Result<()> {
        self.buf.clear();
        self.pos = 0;
        let mut header = [0u8; FRAME_HEADER_LEN];
        if !self.fill_inner(&mut header)? {
            return Ok(()); // clean EOF propagates
        }
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            // The inner stream is already garbage; pass it through and let
            // the parser reject it.
            self.buf.extend_from_slice(&header);
            self.dead = true;
            return Ok(());
        }
        let mut payload = vec![0u8; len as usize];
        if !payload.is_empty() && !self.fill_inner(&mut payload)? {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }

        // The fault fires at the first eligible frame at or after its
        // ordinal; DuplicateResult additionally waits for a *Result* frame
        // (duplicating a heartbeat would be invisible to the dispatcher).
        let applies = !self.fired
            && self.ordinal >= self.fault.ordinal
            && (self.fault.kind != FaultKind::DuplicateResult || header[0] == FT_RESULT);
        self.ordinal += 1;
        if !applies {
            self.buf.extend_from_slice(&header);
            self.buf.extend_from_slice(&payload);
            return Ok(());
        }
        self.fired = true;
        match self.fault.kind {
            FaultKind::BitFlipPayload => {
                self.buf.extend_from_slice(&header);
                if payload.is_empty() {
                    // No payload bits to flip: flip a CRC bit instead.
                    let crc_byte = self.buf.len() - 2;
                    self.buf[crc_byte] ^= 0x10;
                } else {
                    let mid = payload.len() / 2;
                    payload[mid] ^= 0x10;
                }
                self.buf.extend_from_slice(&payload);
                self.dead = true;
            }
            FaultKind::CorruptLength => {
                let mut corrupt = header;
                corrupt[4] ^= 0x7F; // top length byte: a multi-GB "frame"
                self.buf.extend_from_slice(&corrupt);
                self.buf.extend_from_slice(&payload);
                self.dead = true;
            }
            FaultKind::TruncateFrame => {
                let keep = FRAME_HEADER_LEN + payload.len() / 2;
                self.buf.extend_from_slice(&header);
                self.buf.extend_from_slice(&payload);
                self.buf.truncate(keep.max(3)); // at least a torn header
                self.dead = true;
            }
            FaultKind::DuplicateResult => {
                self.buf.extend_from_slice(&header);
                self.buf.extend_from_slice(&payload);
                self.buf.extend_from_slice(&header);
                self.buf.extend_from_slice(&payload);
            }
            FaultKind::DelayFrame => {
                std::thread::sleep(std::time::Duration::from_millis(25));
                self.buf.extend_from_slice(&header);
                self.buf.extend_from_slice(&payload);
            }
        }
        Ok(())
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.buf.len() {
            if self.dead {
                return Ok(0); // the injected tear: EOF after the mutation
            }
            self.refill()?;
            if self.buf.is_empty() {
                return Ok(0); // inner stream hit clean EOF
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame, WireError};

    /// A small synthetic stream: heartbeat-ish frames around one Result.
    fn sample_stream() -> Vec<u8> {
        let mut stream = Vec::new();
        write_frame(&mut stream, 5, &[1, 0, 0]).unwrap();
        write_frame(&mut stream, FT_RESULT, &[10, 20, 30, 40, 50, 60]).unwrap();
        write_frame(&mut stream, 5, &[2, 0, 0]).unwrap();
        write_frame(&mut stream, 4, &[9, 9]).unwrap();
        stream
    }

    fn drain(reader: &mut impl Read) -> (Vec<(u8, Vec<u8>)>, Option<WireError>) {
        let mut frames = Vec::new();
        loop {
            match read_frame(reader) {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => return (frames, None),
                Err(e) => return (frames, Some(e)),
            }
        }
    }

    #[test]
    fn delay_passes_every_frame_through_intact() {
        let clean = {
            let (frames, err) = drain(&mut &sample_stream()[..]);
            assert!(err.is_none());
            frames
        };
        let stream = sample_stream();
        let mut reader = FaultReader::new(
            &stream[..],
            WireFault {
                ordinal: 1,
                kind: FaultKind::DelayFrame,
            },
        );
        let (frames, err) = drain(&mut reader);
        assert!(err.is_none());
        assert_eq!(frames, clean, "a delayed frame is still the same frame");
    }

    #[test]
    fn duplicate_result_emits_the_result_frame_twice() {
        let stream = sample_stream();
        let mut reader = FaultReader::new(
            &stream[..],
            WireFault {
                ordinal: 0,
                kind: FaultKind::DuplicateResult,
            },
        );
        let (frames, err) = drain(&mut reader);
        assert!(err.is_none(), "duplication is benign at the wire level");
        let results: Vec<_> = frames.iter().filter(|(t, _)| *t == FT_RESULT).collect();
        assert_eq!(results.len(), 2, "the Result frame must appear twice");
        assert_eq!(results[0], results[1]);
        assert_eq!(frames.len(), 5, "all four originals plus one duplicate");
    }

    #[test]
    fn bit_flip_fails_the_crc_and_tears_the_stream() {
        let stream = sample_stream();
        let mut reader = FaultReader::new(
            &stream[..],
            WireFault {
                ordinal: 1,
                kind: FaultKind::BitFlipPayload,
            },
        );
        let (frames, err) = drain(&mut reader);
        assert_eq!(frames.len(), 1, "frames before the fault still parse");
        assert!(
            err.is_some_and(|e| e.to_string().contains("crc mismatch")),
            "the flipped bit must be caught by the CRC"
        );
    }

    #[test]
    fn corrupt_length_is_rejected_not_misparsed() {
        let stream = sample_stream();
        let mut reader = FaultReader::new(
            &stream[..],
            WireFault {
                ordinal: 2,
                kind: FaultKind::CorruptLength,
            },
        );
        let (frames, err) = drain(&mut reader);
        assert_eq!(frames.len(), 2);
        assert!(err.is_some(), "a corrupted length prefix must error");
    }

    #[test]
    fn truncated_frame_reads_as_a_torn_write() {
        let stream = sample_stream();
        let mut reader = FaultReader::new(
            &stream[..],
            WireFault {
                ordinal: 3,
                kind: FaultKind::TruncateFrame,
            },
        );
        let (frames, err) = drain(&mut reader);
        assert_eq!(frames.len(), 3, "frames before the tear still parse");
        assert!(
            err.is_some_and(|e| e.to_string().contains("stream ended inside")),
            "the torn frame must read as an EOF inside a frame"
        );
    }

    #[test]
    fn plans_are_deterministic_and_generation_zero_only() {
        let plan = FaultPlan::new(41).expect("nonzero seed");
        for slot in 0..8 {
            let a = plan.connection_fault(slot, 0);
            let b = plan.connection_fault(slot, 0);
            assert_eq!(a, b, "same (seed, slot, generation) → same fault");
            assert!(a.is_some());
            assert!(
                plan.connection_fault(slot, 1).is_none(),
                "respawned workers must run clean"
            );
        }
        assert!(FaultPlan::new(0).is_none(), "seed 0 disables injection");
        // Different slots see different faults for most seeds (spot-check).
        let faults: std::collections::BTreeSet<_> = (0..8)
            .map(|slot| format!("{:?}", plan.connection_fault(slot, 0)))
            .collect();
        assert!(faults.len() > 1, "the plan must vary across slots");
    }
}
