//! The dispatcher half of the distributed executor.
//!
//! The dispatcher owns the sweep: it plans **leases** (ascending flat-index
//! chunks of one virtual worker slot's shard), spawns one worker OS process
//! per slot, streams each worker its leases, and folds the `Result` frames
//! coming back into per-lease consumer accumulators. Because every lease is
//! replayed through the same [`RunConsumer`] fold the in-process executor
//! uses — cells in ascending flat order within a lease, leases merged in
//! plan order within a slot, slots merged in slot order — the merged
//! accumulator is **bit-identical** to
//! [`sysscale::SweepSet::run_parallel_fold_sharded`] with the same sharding, at any
//! process count.
//!
//! Leases are *replayable*: a lease is only retired when its `LeaseDone`
//! frame arrives with every cell accounted for. If a worker dies mid-lease
//! (crash, OOM-kill, `kill -9`), the dispatcher discards the partial
//! accumulators of that worker's unfinished leases, respawns the slot, and
//! re-issues exactly those leases — re-executing at most the cells the dead
//! worker had claimed, never corrupting cells other slots own.
//!
//! On top of the lease protocol sit three fault-tolerance layers:
//!
//! * **checkpoint/resume** ([`DistOptions::journal`]): completed leases are
//!   journaled ([`crate::journal::SweepJournal`]) as they retire, so a
//!   killed dispatcher restarted with the same recipe and plan replays
//!   only the unfinished leases — and merges byte-identically to an
//!   uninterrupted run;
//! * **poisoned-cell quarantine** ([`run_distributed_partial`]): a cell
//!   that fails (or kills its worker [`MAX_LEASE_EXECUTIONS`] times, after
//!   which its lease is bisected down to the single offending flat) is
//!   recorded in a [`FailedCells`] manifest and the sweep *completes*
//!   around it in explicit partial-result mode;
//! * **wire hardening**: frames carry CRCs ([`crate::wire`]), duplicated
//!   `Result`/`LeaseDone` frames are absorbed idempotently (counted in
//!   [`DistStats::frames_rejected`]), and a deterministic fault injector
//!   ([`crate::fault::FaultPlan`]) proves every corruption mode ends in a
//!   clean rejection+replay, never silent corruption.

use std::io::{BufReader, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, Sender};
use std::time::{Duration, Instant};

use sysscale::types::exec;
use sysscale::{
    CellId, CollectRuns, RunConsumer, RunSet, ScenarioSet, ScenarioSource, SweepSharding,
};
use sysscale_types::{SimError, SimResult};

use crate::fault::{FaultPlan, FaultReader};
use crate::journal::{JournalHeader, SweepJournal};
use crate::net;
use crate::proto::{LeaseIndices, Message, PipeTransport, TcpTransport, WorkerTransport};
use crate::recipe::SweepRecipe;
use crate::wire::WireError;
use crate::worker::{FAULT_ENV, HANG_ENV, POISON_CRASH_ENV, POISON_FLAT_ENV};

/// Environment variable naming the worker binary, overriding the default
/// next-to-the-current-executable discovery.
pub const WORKER_ENV: &str = "SYSSCALE_DIST_WORKER";

/// Environment variable enabling the dispatcher's heartbeat watchdog: a
/// worker slot with outstanding leases that streams no frame for this many
/// milliseconds is declared hung, killed, and its leases re-issued through
/// the same generation-tagged death path a crashed worker takes. Unset (or
/// 0) disables the watchdog; [`DistOptions::heartbeat_timeout`] overrides
/// the environment.
pub const HEARTBEAT_TIMEOUT_ENV: &str = "SYSSCALE_DIST_HEARTBEAT_TIMEOUT_MS";

/// How long the dispatcher waits for a TCP worker to dial back before
/// declaring the spawn failed.
const TCP_ACCEPT_TIMEOUT: Duration = Duration::from_secs(30);

/// Times a single lease may execute before the dispatcher gives up on it
/// (first execution + re-issues after worker deaths). A death is charged to
/// the lease the worker was executing — the slot's first unfinished lease
/// in plan order — not to queued leases that never started. In quarantine
/// mode "giving up" means bisecting a multi-cell lease (or quarantining a
/// single-cell one) instead of failing the run.
pub const MAX_LEASE_EXECUTIONS: usize = 3;

/// The byte channel family between dispatcher and workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The worker child's stdin/stdout pipes (default; no network at all).
    #[default]
    Pipes,
    /// A loopback TCP socket per worker (`--connect <addr>`); same frames,
    /// same protocol, useful as the template for off-host workers.
    Tcp,
}

/// Deliberate worker sacrifice for fault-tolerance tests: the given slot's
/// *first* process kills itself (SIGKILL, no cleanup) — or, with `hang`,
/// sleeps forever with the stream open — right after streaming
/// `after_results` result frames. Respawns of the slot run clean.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFault {
    /// The victim slot.
    pub slot: usize,
    /// Result frames to stream before dying (or hanging).
    pub after_results: u64,
    /// `false`: SIGKILL (the reader sees EOF and the death path fires on
    /// its own). `true`: hang with the stream open — only the heartbeat
    /// watchdog ([`HEARTBEAT_TIMEOUT_ENV`]) can recover.
    pub hang: bool,
}

/// Deterministic always-failing-cell injection for the quarantine tests:
/// the given flat index fails (or crashes its worker) in **every** process
/// that executes it, respawns included — a cell that is broken for cause,
/// not by chance. Forwarded to workers via [`POISON_FLAT_ENV`] /
/// [`POISON_CRASH_ENV`].
#[derive(Debug, Clone, Copy)]
pub struct PoisonFault {
    /// The flat index of the poisoned cell.
    pub flat: usize,
    /// `false`: the cell fails with a structured error (clean shape).
    /// `true`: the cell SIGKILLs its worker (the shape only bisection can
    /// isolate).
    pub crash: bool,
}

/// Tuning knobs for [`run_distributed`] / [`run_distributed_fold`].
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Worker process count; `None` resolves via
    /// [`exec::resolve_parallelism`] (`SYSSCALE_PROCS`, then detected
    /// cores).
    pub procs: Option<usize>,
    /// In-process fold threads *inside* each worker (default 1: processes
    /// replace threads rather than multiplying them).
    pub worker_threads: usize,
    /// Leases to cut each slot's shard into (default 4). More leases bound
    /// re-execution after a death more tightly but cost more protocol
    /// round-trips.
    pub leases_per_worker: usize,
    /// Cells a worker executes between heartbeats (default 8).
    pub batch_cells: usize,
    /// Pipe or TCP framing.
    pub transport: TransportKind,
    /// Explicit worker binary path (default: [`WORKER_ENV`], then
    /// `sysscale-dist-worker` next to the current executable).
    pub worker_binary: Option<PathBuf>,
    /// Total respawn budget across the whole run (default 8); exceeded
    /// deaths fail the sweep.
    pub max_respawns: usize,
    /// Heartbeat watchdog timeout: a slot with outstanding leases that
    /// streams no frame for this long is killed and its leases re-issued.
    /// `None` (default) falls back to [`HEARTBEAT_TIMEOUT_ENV`]; unset
    /// there too disables the watchdog.
    pub heartbeat_timeout: Option<Duration>,
    /// Test-only deliberate worker sacrifice.
    pub fault: Option<WorkerFault>,
    /// Checkpoint journal path: when set, completed leases are journaled
    /// there and a compatible existing journal is resumed (see
    /// [`crate::journal`]). Deleted automatically when the sweep succeeds.
    pub journal: Option<PathBuf>,
    /// Deterministic wire-fault plan seed; `None` falls back to
    /// [`crate::fault::FAULT_PLAN_ENV`], and `Some(0)` forces injection
    /// off regardless of the environment.
    pub fault_plan: Option<u64>,
    /// Test hook: abort the run (workers killed, journal left behind)
    /// after this many leases have retired — a deterministic stand-in for
    /// killing the dispatcher mid-run in resume tests.
    pub halt_after_leases: Option<usize>,
    /// Test hook: a deterministically failing cell (see [`PoisonFault`]).
    pub poison: Option<PoisonFault>,
}

impl Default for DistOptions {
    fn default() -> Self {
        Self {
            procs: None,
            worker_threads: 1,
            leases_per_worker: 4,
            batch_cells: 8,
            transport: TransportKind::default(),
            worker_binary: None,
            max_respawns: 8,
            heartbeat_timeout: None,
            fault: None,
            journal: None,
            fault_plan: None,
            halt_after_leases: None,
            poison: None,
        }
    }
}

/// What a distributed run did, beyond its results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Virtual worker slots (the resolved process count, capped by cells).
    pub slots: usize,
    /// Worker processes actually spawned (slots + respawns).
    pub workers_spawned: usize,
    /// Leases planned.
    pub leases: usize,
    /// Leases re-issued after a worker death.
    pub reissued_leases: usize,
    /// Cells whose partial results were discarded and re-executed because
    /// their worker died mid-lease.
    pub reexecuted_cells: usize,
    /// Result frames received (including discarded partials).
    pub result_frames: u64,
    /// Heartbeat frames received.
    pub heartbeats: u64,
    /// Hung-but-alive workers the heartbeat watchdog killed.
    pub watchdog_kills: usize,
    /// Cells quarantined into the [`FailedCells`] manifest (always 0
    /// outside quarantine mode — non-quarantine runs fail instead).
    pub quarantined_cells: usize,
    /// Leases restored from a checkpoint journal instead of executed.
    pub journal_resumes: usize,
    /// Frames dropped as duplicates or stale (dedup absorption; protocol
    /// *violations* still fail the run).
    pub frames_rejected: u64,
    /// Transient I/O retries absorbed during the run (`Interrupted`,
    /// bounded `WouldBlock`, TCP connect backoff), counted by this run's
    /// [`crate::net::RetryScope`] — per-run accounting, so concurrent
    /// dispatches in one process never attribute each other's retries
    /// ([`crate::net::transient_retries`] remains the process total).
    pub retries: u64,
}

/// One quarantined cell: identity, the structured error it failed with,
/// and how many executions its lease burned before isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCell {
    /// The cell (member/local/flat), as [`RunConsumer::fold`] would see it.
    pub cell: CellId,
    /// The structured failure — either the worker-reported [`SimError`] or
    /// a synthesized one for cells that killed their workers outright.
    pub error: SimError,
    /// Lease executions burned when the cell was quarantined.
    pub executions: usize,
}

/// The quarantine manifest of a partial-result run: every poisoned cell,
/// ascending by flat index. Empty for a fully-clean sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailedCells {
    cells: Vec<FailedCell>,
}

impl FailedCells {
    /// Records a quarantined cell, keeping the manifest ascending by flat
    /// index and idempotent (a replayed quarantine updates in place).
    fn insert(&mut self, cell: CellId, error: SimError, executions: usize) {
        match self.cells.binary_search_by_key(&cell.flat, |c| c.cell.flat) {
            Ok(i) => {
                self.cells[i] = FailedCell {
                    cell,
                    error,
                    executions,
                };
            }
            Err(i) => self.cells.insert(
                i,
                FailedCell {
                    cell,
                    error,
                    executions,
                },
            ),
        }
    }

    /// The quarantined cells, ascending by flat index.
    #[must_use]
    pub fn cells(&self) -> &[FailedCell] {
        &self.cells
    }

    /// Number of quarantined cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep completed with no quarantined cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether the given flat index is quarantined.
    #[must_use]
    pub fn contains_flat(&self, flat: usize) -> bool {
        self.cells
            .binary_search_by_key(&flat, |c| c.cell.flat)
            .is_ok()
    }

    /// Drops quarantine entries for the given (ascending) flats: aborting a
    /// lease voids the execution that produced them, and a retried cell
    /// that now succeeds must not stay in the manifest.
    fn remove_flats(&mut self, flats: &[usize]) {
        self.cells
            .retain(|c| flats.binary_search(&c.cell.flat).is_err());
    }
}

/// One planned lease and its in-flight fold state.
struct LeaseState<A> {
    slot: usize,
    flats: Vec<usize>,
    acc: A,
    received: usize,
    /// Cells of this lease quarantined via `WorkerError` (quarantine mode
    /// only); `received + failed` is the lease's stream progress.
    failed: usize,
    executions: usize,
    done: bool,
}

impl<A> LeaseState<A> {
    /// Stream progress: results folded plus failures recorded.
    fn progress(&self) -> usize {
        self.received + self.failed
    }
}

/// A live worker process bound to one slot.
struct WorkerSlot {
    child: Child,
    tx: Box<dyn Write + Send>,
    generation: u64,
    alive: bool,
}

/// What a reader thread reports back to the dispatcher loop.
enum Event {
    Frame {
        slot: usize,
        generation: u64,
        message: Message,
    },
    Closed {
        slot: usize,
        generation: u64,
        error: Option<String>,
    },
}

fn dist_error(context: impl std::fmt::Display) -> SimError {
    SimError::invalid_config(format!("distributed executor: {context}"))
}

/// Resolves the worker binary: explicit option, then [`WORKER_ENV`], then
/// `sysscale-dist-worker` in the current executable's directory (popping a
/// trailing `deps/` so cargo test binaries find the sibling bin target).
fn worker_binary(options: &DistOptions) -> PathBuf {
    if let Some(path) = &options.worker_binary {
        return path.clone();
    }
    if let Ok(path) = std::env::var(WORKER_ENV) {
        if !path.trim().is_empty() {
            return PathBuf::from(path);
        }
    }
    let mut dir = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(std::path::Path::to_path_buf))
        .unwrap_or_default();
    if dir.file_name().is_some_and(|name| name == "deps") {
        dir.pop();
    }
    let candidate = dir.join("sysscale-dist-worker");
    if candidate.exists() {
        candidate
    } else {
        PathBuf::from("sysscale-dist-worker")
    }
}

/// Spawns one worker process for `slot`, wires its transport, starts its
/// reader thread, and sends the opening `Job` frame.
#[allow(clippy::too_many_arguments)] // a private call site with one caller
fn spawn_worker(
    binary: &std::path::Path,
    slot: usize,
    generation: u64,
    options: &DistOptions,
    recipe_bytes: &[u8],
    fault: Option<WorkerFault>,
    quarantine: bool,
    fault_plan: Option<FaultPlan>,
    events: &Sender<Event>,
    retry_scope: &net::RetryScope,
) -> SimResult<WorkerSlot> {
    let mut command = Command::new(binary);
    command.stderr(Stdio::inherit());
    // Never inherit a fault directive from the environment; only a spawn
    // the dispatcher deliberately sacrifices gets one. Poison directives,
    // by contrast, model a cell that is broken *for cause*, so they ride
    // on every spawn — respawns included.
    command.env_remove(FAULT_ENV);
    command.env_remove(HANG_ENV);
    command.env_remove(POISON_FLAT_ENV);
    command.env_remove(POISON_CRASH_ENV);
    if let Some(fault) = fault {
        command.env(FAULT_ENV, fault.after_results.to_string());
        if fault.hang {
            command.env(HANG_ENV, "1");
        }
    }
    if let Some(poison) = options.poison {
        command.env(POISON_FLAT_ENV, poison.flat.to_string());
        if poison.crash {
            command.env(POISON_CRASH_ENV, "1");
        }
    }

    match options.transport {
        TransportKind::Pipes => {
            command.stdin(Stdio::piped()).stdout(Stdio::piped());
            let mut child = command
                .spawn()
                .map_err(|e| dist_error(format!("spawning {}: {e}", binary.display())))?;
            let stdin = child.stdin.take().expect("piped stdin");
            let stdout = child.stdout.take().expect("piped stdout");
            finish_spawn(
                child,
                Box::new(PipeTransport { stdin, stdout }),
                slot,
                generation,
                options,
                recipe_bytes,
                quarantine,
                fault_plan,
                events,
                retry_scope,
            )
        }
        TransportKind::Tcp => {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| dist_error(format!("binding worker listener: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| dist_error(format!("listener address: {e}")))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| dist_error(format!("listener mode: {e}")))?;
            command.stdin(Stdio::null()).stdout(Stdio::inherit());
            command.arg("--connect").arg(addr.to_string());
            let mut child = command
                .spawn()
                .map_err(|e| dist_error(format!("spawning {}: {e}", binary.display())))?;
            // Spawn-then-accept, one worker at a time, keeps the
            // connection↔slot mapping trivial: the next accepted stream is
            // this child's.
            let started = Instant::now();
            let stream = loop {
                match listener.accept() {
                    Ok((stream, _)) => break stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if let Ok(Some(status)) = child.try_wait() {
                            return Err(dist_error(format!(
                                "worker exited before connecting ({status})"
                            )));
                        }
                        if started.elapsed() > TCP_ACCEPT_TIMEOUT {
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(dist_error("worker never dialed back"));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(dist_error(format!("accepting worker: {e}"))),
                }
            };
            stream
                .set_nonblocking(false)
                .map_err(|e| dist_error(format!("stream mode: {e}")))?;
            finish_spawn(
                child,
                Box::new(TcpTransport { stream }),
                slot,
                generation,
                options,
                recipe_bytes,
                quarantine,
                fault_plan,
                events,
                retry_scope,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)] // a private call site with one caller
fn finish_spawn(
    child: Child,
    transport: Box<dyn WorkerTransport>,
    slot: usize,
    generation: u64,
    options: &DistOptions,
    recipe_bytes: &[u8],
    quarantine: bool,
    fault_plan: Option<FaultPlan>,
    events: &Sender<Event>,
    retry_scope: &net::RetryScope,
) -> SimResult<WorkerSlot> {
    let (read_half, mut tx) = transport.split();
    // The fault injector sits between the transport and the frame parser,
    // sabotaging this connection's byte stream if the plan says so (only
    // ever on generation 0 — respawn streams run clean).
    let read_half: Box<dyn Read + Send> =
        match fault_plan.and_then(|plan| plan.connection_fault(slot, generation)) {
            Some(wire_fault) => Box::new(FaultReader::new(read_half, wire_fault)),
            None => read_half,
        };
    let events = events.clone();
    // The reader thread performs this run's wire reads, so it must carry
    // the run's retry scope: transient conditions it absorbs count toward
    // this dispatch, not whichever run happens to snapshot the global.
    let retry_scope = retry_scope.clone();
    std::thread::spawn(move || {
        let _scope = retry_scope.enter();
        read_loop(read_half, slot, generation, &events);
    });
    // A send failure here means the worker already died; the reader's
    // Closed event drives the respawn, so don't fail the run for it.
    let _ = Message::Job {
        worker_slot: slot as u32,
        threads: options.worker_threads.max(1) as u32,
        batch_cells: options.batch_cells.max(1) as u32,
        quarantine,
        recipe: recipe_bytes.to_vec(),
    }
    .write_to(&mut tx);
    Ok(WorkerSlot {
        child,
        tx,
        generation,
        alive: true,
    })
}

fn read_loop(
    read_half: Box<dyn Read + Send>,
    slot: usize,
    generation: u64,
    events: &Sender<Event>,
) {
    let mut rx = BufReader::new(read_half);
    loop {
        match Message::read_from(&mut rx) {
            Ok(Some(message)) => {
                if events
                    .send(Event::Frame {
                        slot,
                        generation,
                        message,
                    })
                    .is_err()
                {
                    return; // dispatcher gone
                }
            }
            Ok(None) => {
                let _ = events.send(Event::Closed {
                    slot,
                    generation,
                    error: None,
                });
                return;
            }
            Err(error) => {
                let _ = events.send(Event::Closed {
                    slot,
                    generation,
                    error: Some(error.to_string()),
                });
                return;
            }
        }
    }
}

fn kill_all(workers: &mut [Option<WorkerSlot>]) {
    for worker in workers.iter_mut().flatten() {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
        worker.alive = false;
    }
}

/// Sends a lease to a worker; send failures are left to the reader's
/// `Closed` event (the worker is already dead or dying).
fn send_lease(worker: &mut WorkerSlot, lease_id: usize, flats: &[usize]) {
    let _ = Message::Lease {
        lease_id: lease_id as u64,
        indices: LeaseIndices::from_flats(flats),
    }
    .write_to(&mut worker.tx);
}

/// Cuts one slot's ascending cell list into up to `leases_per_worker`
/// contiguous chunks of near-equal size.
fn plan_slot_leases(cells: &[usize], leases_per_worker: usize) -> Vec<Vec<usize>> {
    if cells.is_empty() {
        return Vec::new();
    }
    let chunks = leases_per_worker.clamp(1, cells.len());
    (0..chunks)
        .map(|c| cells[c * cells.len() / chunks..(c + 1) * cells.len() / chunks].to_vec())
        .collect()
}

/// Like [`plan_slot_leases`], but the chunk boundaries fall on cost-prefix
/// quantiles instead of index quantiles: chunk `c` ends at the first cell
/// whose cumulative cost reaches `(c+1)/chunks` of the slot's total, so an
/// expensive cell no longer drags a count-equal share of cheap neighbours
/// into its lease. Every chunk keeps at least one cell, chunks stay
/// contiguous and ascending, and the plan is a pure function of
/// `(cells, costs, leases_per_worker)` — replay after a death re-issues
/// identical leases. Zero costs count as one, mirroring the shard layer.
fn plan_slot_leases_by_cost(
    cells: &[usize],
    costs: &[u64],
    leases_per_worker: usize,
) -> Vec<Vec<usize>> {
    exec::cost_quantile_chunks(cells, |flat| costs[flat], leases_per_worker)
}

/// Executes `recipe` across worker processes and returns one [`RunSet`] per
/// recipe member (byte-identical to
/// [`sysscale::SweepSet::run_parallel`] on the rebuilt sets), plus run
/// statistics.
///
/// # Errors
///
/// Fails on unbuildable recipes, spawn/transport failures, exhausted
/// respawn budgets, or a failing cell (reported by the worker that ran it).
pub fn run_distributed(
    recipe: &SweepRecipe,
    options: &DistOptions,
) -> SimResult<(Vec<RunSet>, DistStats)> {
    let sets = recipe.build()?;
    let (collected, failed, stats) = dispatch(recipe, &sets, options, &CollectRuns, false)?;
    debug_assert!(failed.is_empty(), "non-quarantine runs fail, not degrade");
    let mut records = CollectRuns::into_records(collected).into_iter();
    let run_sets = sets
        .iter()
        .map(|set| {
            let len = set.scenarios().len();
            RunSet::from_records(
                records.by_ref().take(len).collect(),
                set.baseline().map(str::to_string),
            )
        })
        .collect();
    Ok((run_sets, stats))
}

/// Like [`run_distributed`], but folding every cell into `consumer` —
/// the distributed twin of [`sysscale::SweepSet::run_parallel_fold_sharded`]
/// with the recipe's sharding strategy.
///
/// # Errors
///
/// See [`run_distributed`].
pub fn run_distributed_fold<Q: RunConsumer>(
    recipe: &SweepRecipe,
    options: &DistOptions,
    consumer: &Q,
) -> SimResult<(Q::Acc, DistStats)> {
    let sets = recipe.build()?;
    let (acc, failed, stats) = dispatch(recipe, &sets, options, consumer, false)?;
    debug_assert!(failed.is_empty(), "non-quarantine runs fail, not degrade");
    Ok((acc, stats))
}

/// [`run_distributed`] in **explicit partial-result mode**: instead of
/// failing on the first poisoned cell, the sweep completes around it. A
/// cell that fails cleanly is quarantined immediately; a cell that *kills*
/// its worker [`MAX_LEASE_EXECUTIONS`] times is isolated by bisecting its
/// lease down to the single offending flat index, then quarantined. The
/// returned [`FailedCells`] manifest lists every quarantined cell (id,
/// structured [`SimError`], execution count); every *other* cell's record
/// is byte-identical to a clean run's, and its member `RunSet` simply
/// omits the quarantined rows.
///
/// # Errors
///
/// Still fails on unbuildable recipes, spawn/transport failures, protocol
/// violations, and exhausted respawn budgets — quarantine absorbs cell
/// failures, not infrastructure failures.
pub fn run_distributed_partial(
    recipe: &SweepRecipe,
    options: &DistOptions,
) -> SimResult<(Vec<RunSet>, FailedCells, DistStats)> {
    let sets = recipe.build()?;
    let (collected, failed, stats) = dispatch(recipe, &sets, options, &CollectRuns, true)?;
    // Regroup the surviving records by member; quarantined flats are
    // simply absent, so members are cut by flat-index ranges rather than
    // by scenario counts.
    let mut offsets = Vec::with_capacity(sets.len());
    let mut total = 0usize;
    for set in &sets {
        offsets.push(total);
        total += set.scenarios().len();
    }
    let mut records = CollectRuns::into_flat_records(collected)
        .into_iter()
        .peekable();
    let run_sets = sets
        .iter()
        .enumerate()
        .map(|(member, set)| {
            let end = offsets[member] + set.scenarios().len();
            let mut member_records = Vec::new();
            while records.peek().is_some_and(|(flat, _)| *flat < end) {
                member_records.push(records.next().expect("peeked").1);
            }
            RunSet::from_records(member_records, set.baseline().map(str::to_string))
        })
        .collect();
    Ok((run_sets, failed, stats))
}

/// [`run_distributed_fold`] in explicit partial-result mode: quarantined
/// cells are skipped by the fold (never passed to [`RunConsumer::fold`])
/// and reported in the [`FailedCells`] manifest instead.
///
/// # Errors
///
/// See [`run_distributed_partial`].
pub fn run_distributed_fold_partial<Q: RunConsumer>(
    recipe: &SweepRecipe,
    options: &DistOptions,
    consumer: &Q,
) -> SimResult<(Q::Acc, FailedCells, DistStats)> {
    let sets = recipe.build()?;
    dispatch(recipe, &sets, options, consumer, true)
}

/// Converts a journal I/O failure into the executor's error type.
fn journal_error(error: WireError) -> SimError {
    dist_error(format!("checkpoint journal: {error}"))
}

/// The dispatcher event loop over pre-built sets. With `quarantine` set the
/// sweep runs in explicit partial-result mode (see
/// [`run_distributed_partial`]); otherwise the returned [`FailedCells`] is
/// always empty and the first cell failure fails the run.
fn dispatch<Q: RunConsumer>(
    recipe: &SweepRecipe,
    sets: &[ScenarioSet],
    options: &DistOptions,
    consumer: &Q,
    quarantine: bool,
) -> SimResult<(Q::Acc, FailedCells, DistStats)> {
    let lens: Vec<usize> = sets.iter().map(|set| set.scenarios().len()).collect();
    let mut offsets = Vec::with_capacity(lens.len());
    let mut total = 0usize;
    for &len in &lens {
        offsets.push(total);
        total += len;
    }

    let mut stats = DistStats::default();
    // Per-run retry accounting: one scope for this dispatch, installed on
    // this thread and every reader thread it spawns. The process-global
    // total (net::transient_retries) keeps ticking for all runs combined.
    let retry_scope = net::RetryScope::new();
    let _retry_guard = retry_scope.enter();
    if total == 0 {
        return Ok((consumer.accumulator(), FailedCells::default(), stats));
    }
    let fault_plan = match options.fault_plan {
        Some(0) => None,
        Some(seed) => FaultPlan::new(seed),
        None => FaultPlan::from_env(),
    };

    let procs = exec::resolve_parallelism(options.procs, exec::PROCS_ENV);
    let slots = exec::effective_workers(procs, total);
    stats.slots = slots;

    // The same cell→worker assignment the in-process fold core computes.
    let keys: Vec<u64> = match recipe.sharding {
        SweepSharding::RoundRobin => Vec::new(),
        SweepSharding::ByPlatform
        | SweepSharding::SplitHotKeys
        | SweepSharding::ByCost
        | SweepSharding::SplitHotCost => sets.iter().flat_map(ScenarioSource::shard_keys).collect(),
    };
    let costs: Vec<u64> = match recipe.sharding {
        SweepSharding::ByCost | SweepSharding::SplitHotCost => {
            sets.iter().flat_map(ScenarioSource::cell_costs).collect()
        }
        _ => Vec::new(),
    };
    let shard = match recipe.sharding {
        SweepSharding::RoundRobin => exec::Shard::RoundRobin,
        SweepSharding::ByPlatform => exec::Shard::ByKey(&keys),
        SweepSharding::SplitHotKeys => exec::Shard::SplitHotKeys(&keys),
        SweepSharding::ByCost => exec::Shard::ByCostKeyed {
            keys: &keys,
            costs: &costs,
        },
        SweepSharding::SplitHotCost => exec::Shard::SplitHotCost {
            keys: &keys,
            costs: &costs,
        },
    };
    let assignment = shard.assignments(total, slots);
    let mut slot_cells: Vec<Vec<usize>> = vec![Vec::new(); slots];
    for (flat, &slot) in assignment.iter().enumerate() {
        slot_cells[slot].push(flat);
    }

    // Plan leases: ascending contiguous chunks of each slot's cell list —
    // index-sized normally, cost-sized under a cost-based sharding so one
    // expensive cell doesn't fill a lease with cheap followers.
    let mut leases: Vec<LeaseState<Q::Acc>> = Vec::new();
    let mut slot_leases: Vec<Vec<usize>> = vec![Vec::new(); slots];
    for (slot, cells) in slot_cells.iter().enumerate() {
        let chunks = if costs.is_empty() {
            plan_slot_leases(cells, options.leases_per_worker)
        } else {
            plan_slot_leases_by_cost(cells, &costs, options.leases_per_worker)
        };
        for flats in chunks {
            slot_leases[slot].push(leases.len());
            leases.push(LeaseState {
                slot,
                flats,
                acc: consumer.accumulator(),
                received: 0,
                failed: 0,
                executions: 1,
                done: false,
            });
        }
    }
    stats.leases = leases.len();
    let mut remaining = leases.len();

    let cell_id = |flat: usize| {
        let member = offsets.partition_point(|&start| start <= flat) - 1;
        CellId {
            member,
            local: flat - offsets[member],
            flat,
        }
    };

    // Adopt a checkpoint journal: leases a prior (killed) dispatcher proved
    // complete are restored from disk instead of re-executed. A restored
    // lease must tile its planned flats exactly — results in fold order
    // interleaved with quarantine entries — or it is ignored and re-runs.
    let mut manifest = FailedCells::default();
    let mut journal: Option<SweepJournal> = None;
    if let Some(path) = &options.journal {
        let header = JournalHeader {
            recipe_fingerprint: recipe.fingerprint64(),
            slots: slots as u64,
            leases: leases.len() as u64,
            cells: total as u64,
        };
        let (opened, replay) = SweepJournal::open(path, &header).map_err(journal_error)?;
        for replayed in replay.map(|r| r.leases).unwrap_or_default() {
            let Some(lease) = leases.get_mut(replayed.lease_id as usize) else {
                continue; // a bisection child of the prior run; re-discovered live
            };
            if lease.done || (!quarantine && !replayed.quarantined.is_empty()) {
                continue;
            }
            let mut results = replayed.results.iter().map(|(flat, _)| *flat).peekable();
            let mut failed = replayed.quarantined.iter().map(|q| q.flat).peekable();
            let tiles = lease.flats.iter().all(|&flat| {
                if results.peek() == Some(&(flat as u64)) {
                    results.next();
                    true
                } else if failed.peek() == Some(&(flat as u64)) {
                    failed.next();
                    true
                } else {
                    false
                }
            }) && results.peek().is_none()
                && failed.peek().is_none();
            if !tiles {
                continue;
            }
            lease.received = replayed.results.len();
            lease.failed = replayed.quarantined.len();
            for (flat, record) in replayed.results {
                consumer.fold(&mut lease.acc, cell_id(flat as usize), record);
            }
            for q in replayed.quarantined {
                manifest.insert(cell_id(q.flat as usize), q.error, q.executions as usize);
            }
            lease.done = true;
            remaining -= 1;
            stats.journal_resumes += 1;
        }
        journal = Some(opened);
    }

    let binary = worker_binary(options);
    let recipe_bytes = recipe.encode();
    let (events_tx, events_rx) = channel();

    let mut workers: Vec<Option<WorkerSlot>> = Vec::with_capacity(slots);
    let mut respawns_left = options.max_respawns;
    for (slot, lease_ids) in slot_leases.iter().enumerate() {
        // A resumed run only spawns slots with unfinished leases.
        let pending: Vec<usize> = lease_ids
            .iter()
            .copied()
            .filter(|&id| !leases[id].done)
            .collect();
        if pending.is_empty() {
            workers.push(None);
            continue;
        }
        let fault = options.fault.filter(|fault| fault.slot == slot);
        let worker = spawn_worker(
            &binary,
            slot,
            0,
            options,
            &recipe_bytes,
            fault,
            quarantine,
            fault_plan,
            &events_tx,
            &retry_scope,
        );
        let mut worker = match worker {
            Ok(worker) => worker,
            Err(error) => {
                kill_all(&mut workers);
                return Err(error);
            }
        };
        stats.workers_spawned += 1;
        for &lease_id in &pending {
            send_lease(&mut worker, lease_id, &leases[lease_id].flats);
        }
        workers.push(Some(worker));
    }

    // Heartbeat watchdog state: when enabled, every live slot's last frame
    // time; a slot with outstanding leases that stays silent past the
    // timeout is killed, which closes its stream and drives the ordinary
    // generation-tagged death path below — re-issue, respawn, replay.
    let heartbeat_timeout = options.heartbeat_timeout.or_else(|| {
        std::env::var(HEARTBEAT_TIMEOUT_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    });
    let mut last_seen: Vec<Instant> = vec![Instant::now(); slots];

    let mut failure: Option<SimError> = None;
    let mut leases_retired = 0usize;
    while remaining > 0 && failure.is_none() {
        let event = match heartbeat_timeout {
            None => match events_rx.recv() {
                Ok(event) => Some(event),
                Err(_) => {
                    failure = Some(dist_error("event channel closed unexpectedly"));
                    break;
                }
            },
            Some(timeout) => {
                // Poll at a fraction of the timeout so a hang is noticed at
                // most ~1.25 timeouts after the last frame.
                let poll = (timeout / 4).max(Duration::from_millis(10));
                match events_rx.recv_timeout(poll) {
                    Ok(event) => Some(event),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                        failure = Some(dist_error("event channel closed unexpectedly"));
                        break;
                    }
                }
            }
        };
        if let Some(timeout) = heartbeat_timeout {
            for slot in 0..slots {
                let hung = workers[slot].as_ref().is_some_and(|w| w.alive)
                    && slot_leases[slot].iter().any(|&id| !leases[id].done)
                    && last_seen[slot].elapsed() > timeout;
                if hung {
                    // Kill the hung process; its reader thread then reports
                    // `Closed` for this generation and the death path
                    // re-issues the slot's unfinished leases. Clearing
                    // `alive` keeps the watchdog from re-killing the slot
                    // while that event is in flight.
                    stats.watchdog_kills += 1;
                    let worker = workers[slot].as_mut().expect("checked above");
                    let _ = worker.child.kill();
                    worker.alive = false;
                }
            }
        }
        let Some(event) = event else { continue };
        match event {
            Event::Frame {
                slot,
                generation,
                message,
            } => {
                let current = workers[slot].as_ref().map(|w| w.generation);
                if current != Some(generation) {
                    stats.frames_rejected += 1;
                    continue; // stale frame from a replaced worker
                }
                last_seen[slot] = Instant::now();
                match message {
                    Message::Result {
                        lease_id,
                        flat,
                        record,
                    } => {
                        stats.result_frames += 1;
                        let Some(lease) = leases.get_mut(lease_id as usize) else {
                            failure = Some(dist_error(format!("unknown lease {lease_id}")));
                            break;
                        };
                        if lease.done {
                            stats.frames_rejected += 1;
                            continue; // late duplicate of a retired lease
                        }
                        if lease.slot != slot {
                            failure = Some(dist_error(format!(
                                "slot {slot} sent cell {flat} for foreign lease {lease_id}"
                            )));
                            break;
                        }
                        let progress = lease.progress();
                        if lease.flats[..progress]
                            .binary_search(&(flat as usize))
                            .is_ok()
                        {
                            // A duplicated `Result` frame (e.g. injected by
                            // the fault plan): the record is already folded,
                            // absorb the copy idempotently.
                            stats.frames_rejected += 1;
                            continue;
                        }
                        if lease.flats.get(progress).copied() != Some(flat as usize) {
                            failure = Some(dist_error(format!(
                                "slot {slot} sent cell {flat} out of order for lease {lease_id}"
                            )));
                            break;
                        }
                        if let Some(journal) = journal.as_mut() {
                            if let Err(error) = journal.record_result(lease_id, flat, &record) {
                                failure = Some(journal_error(error));
                                break;
                            }
                        }
                        consumer.fold(&mut lease.acc, cell_id(flat as usize), *record);
                        lease.received += 1;
                    }
                    Message::LeaseDone { lease_id, cells } => {
                        let Some(lease) = leases.get_mut(lease_id as usize) else {
                            failure = Some(dist_error(format!("unknown lease {lease_id}")));
                            break;
                        };
                        if lease.done {
                            stats.frames_rejected += 1;
                            continue; // duplicated retirement, absorb
                        }
                        if lease.slot != slot
                            || cells as usize != lease.flats.len()
                            || lease.progress() != lease.flats.len()
                        {
                            failure = Some(dist_error(format!(
                                "slot {slot} completed lease {lease_id} with {} of {} cells",
                                lease.progress(),
                                lease.flats.len()
                            )));
                            break;
                        }
                        if let Some(journal) = journal.as_mut() {
                            if let Err(error) = journal.record_done(lease_id, lease.received as u64)
                            {
                                failure = Some(journal_error(error));
                                break;
                            }
                        }
                        lease.done = true;
                        remaining -= 1;
                        leases_retired += 1;
                        if options
                            .halt_after_leases
                            .is_some_and(|n| leases_retired >= n)
                            && remaining > 0
                        {
                            // Deterministic stand-in for a dispatcher kill:
                            // fail here, journal flushed and left behind.
                            failure = Some(dist_error(format!(
                                "halted after {leases_retired} lease(s) (test hook)"
                            )));
                            break;
                        }
                    }
                    Message::Heartbeat { .. } => stats.heartbeats += 1,
                    Message::WorkerError {
                        lease_id,
                        flat,
                        error,
                    } => {
                        if !quarantine {
                            // The structured error round-trips the wire
                            // intact, so callers see the exact SimError the
                            // in-process executor would have returned.
                            failure = Some(error);
                            break;
                        }
                        // Partial-result mode: one cell failed cleanly; the
                        // worker keeps streaming, we quarantine and go on.
                        let Some(lease) = leases.get_mut(lease_id as usize) else {
                            failure = Some(dist_error(format!("unknown lease {lease_id}")));
                            break;
                        };
                        if lease.done {
                            stats.frames_rejected += 1;
                            continue;
                        }
                        let progress = lease.progress();
                        if lease.slot != slot
                            || lease.flats.get(progress).copied() != Some(flat as usize)
                        {
                            failure = Some(dist_error(format!(
                                "slot {slot} reported cell {flat} failed out of order for \
                                 lease {lease_id}"
                            )));
                            break;
                        }
                        if let Some(journal) = journal.as_mut() {
                            if let Err(journal_failure) = journal.record_quarantine(
                                lease_id,
                                flat,
                                lease.executions as u64,
                                &error,
                            ) {
                                failure = Some(journal_error(journal_failure));
                                break;
                            }
                        }
                        manifest.insert(cell_id(flat as usize), error, lease.executions);
                        lease.failed += 1;
                    }
                    other => {
                        failure = Some(dist_error(format!(
                            "unexpected frame from slot {slot}: {other:?}"
                        )));
                        break;
                    }
                }
            }
            Event::Closed {
                slot,
                generation,
                error,
            } => {
                let Some(worker) = workers[slot].as_mut() else {
                    continue;
                };
                if worker.generation != generation {
                    continue; // the replaced worker's reader winding down
                }
                let _ = worker.child.kill();
                let _ = worker.child.wait();
                worker.alive = false;

                let incomplete: Vec<usize> = slot_leases[slot]
                    .iter()
                    .copied()
                    .filter(|&id| !leases[id].done)
                    .collect();
                if incomplete.is_empty() {
                    // Finished every lease and hung up early — benign.
                    continue;
                }
                if respawns_left == 0 {
                    failure = Some(dist_error(format!(
                        "slot {slot} died with {} lease(s) outstanding ({}) and no respawn \
                         budget left",
                        incomplete.len(),
                        error.unwrap_or_else(|| "stream closed".to_string()),
                    )));
                    break;
                }
                // A worker executes its leases strictly in plan order, so
                // the death happened *in* the slot's first unfinished lease
                // — later leases never started and re-issue without being
                // charged an execution (else a poisoned lease at the head
                // of the queue would exhaust its innocent neighbours'
                // budgets without them ever running).
                let active = incomplete[0];
                for &lease_id in &incomplete {
                    let lease = &mut leases[lease_id];
                    if lease_id != active || lease.executions < MAX_LEASE_EXECUTIONS {
                        // Plain re-issue: discard partials, replay whole.
                        stats.reissued_leases += 1;
                        stats.reexecuted_cells += lease.received;
                        if let Some(journal) = journal.as_mut() {
                            if let Err(journal_failure) = journal.record_abort(lease_id as u64) {
                                failure = Some(journal_error(journal_failure));
                                break;
                            }
                        }
                        manifest.remove_flats(&lease.flats);
                        lease.acc = consumer.accumulator();
                        lease.received = 0;
                        lease.failed = 0;
                        if lease_id == active {
                            lease.executions += 1;
                        }
                        continue;
                    }
                    // The active lease's execution budget is exhausted:
                    // some cell in it kills every worker that touches it.
                    if !quarantine {
                        failure = Some(dist_error(format!(
                            "lease {lease_id} failed {} times; giving up",
                            lease.executions
                        )));
                        break;
                    }
                    if let Some(journal) = journal.as_mut() {
                        if let Err(journal_failure) = journal.record_abort(lease_id as u64) {
                            failure = Some(journal_error(journal_failure));
                            break;
                        }
                    }
                    manifest.remove_flats(&lease.flats);
                    if lease.flats.len() > 1 {
                        // Bisect: we cannot see *which* cell is the killer,
                        // so split the lease and let the halves isolate it.
                        // The parent retires in place and two child leases
                        // take its position in the slot's plan order, so
                        // the deterministic merge is unchanged.
                        stats.reexecuted_cells += lease.received;
                        let mid = lease.flats.len() / 2;
                        let right = lease.flats.split_off(mid);
                        let left = std::mem::take(&mut lease.flats);
                        lease.acc = consumer.accumulator();
                        lease.received = 0;
                        lease.failed = 0;
                        lease.done = true;
                        let left_id = leases.len();
                        for flats in [left, right] {
                            leases.push(LeaseState {
                                slot,
                                flats,
                                acc: consumer.accumulator(),
                                received: 0,
                                failed: 0,
                                executions: 1,
                                done: false,
                            });
                        }
                        let pos = slot_leases[slot]
                            .iter()
                            .position(|&id| id == lease_id)
                            .expect("bisected lease is in its slot's plan");
                        slot_leases[slot].splice(pos..=pos, [left_id, left_id + 1]);
                        stats.leases += 2;
                        remaining += 1; // parent retired, two children opened
                    } else {
                        // Isolated to a single flat: quarantine the cell
                        // with a synthesized error (the worker never got to
                        // report one — it was killed) and retire the lease.
                        let flat = lease.flats[0];
                        let executions = lease.executions;
                        let cell_error = SimError::invalid_config(format!(
                            "poisoned cell {flat}: killed its worker in {executions} \
                             consecutive executions; quarantined"
                        ));
                        if let Some(journal) = journal.as_mut() {
                            let journaled = journal
                                .record_quarantine(
                                    lease_id as u64,
                                    flat as u64,
                                    executions as u64,
                                    &cell_error,
                                )
                                .and_then(|()| journal.record_done(lease_id as u64, 0));
                            if let Err(journal_failure) = journaled {
                                failure = Some(journal_error(journal_failure));
                                break;
                            }
                        }
                        manifest.insert(cell_id(flat), cell_error, executions);
                        lease.acc = consumer.accumulator();
                        lease.received = 0;
                        lease.failed = 0;
                        lease.done = true;
                        remaining -= 1;
                    }
                }
                if failure.is_some() {
                    break;
                }
                let pending: Vec<usize> = slot_leases[slot]
                    .iter()
                    .copied()
                    .filter(|&id| !leases[id].done)
                    .collect();
                if pending.is_empty() {
                    // Every outstanding lease quarantined away — nothing
                    // left for this slot, no respawn needed.
                    continue;
                }
                respawns_left -= 1;
                // Respawn the slot — never re-arming the wire/worker fault,
                // so a sacrificed worker's replacement runs clean. Poison
                // directives still apply (the cell is broken for cause).
                match spawn_worker(
                    &binary,
                    slot,
                    generation + 1,
                    options,
                    &recipe_bytes,
                    None,
                    quarantine,
                    fault_plan,
                    &events_tx,
                    &retry_scope,
                ) {
                    Ok(mut replacement) => {
                        stats.workers_spawned += 1;
                        for &lease_id in &pending {
                            send_lease(&mut replacement, lease_id, &leases[lease_id].flats);
                        }
                        workers[slot] = Some(replacement);
                        last_seen[slot] = Instant::now();
                    }
                    Err(spawn_error) => {
                        failure = Some(spawn_error);
                        break;
                    }
                }
            }
        }
    }

    if let Some(error) = failure {
        kill_all(&mut workers);
        // The journal survives a failed run — that is the whole point:
        // flush what we know so a restart resumes from it.
        if let Some(journal) = journal.as_mut() {
            let _ = journal.flush();
        }
        return Err(error);
    }

    // Orderly shutdown: every lease is done, tell workers to exit and reap.
    for worker in workers.iter_mut().flatten() {
        if worker.alive {
            let _ = Message::Shutdown.write_to(&mut worker.tx);
        }
    }
    for worker in workers.iter_mut().flatten() {
        if worker.alive {
            let _ = worker.child.wait();
            worker.alive = false;
        }
    }

    // The sweep succeeded: a finished journal must never replay into a
    // later run, so delete it (best effort — the results stand regardless).
    if let Some(journal) = journal.take() {
        let _ = journal.finish();
    }
    stats.quarantined_cells = manifest.len();
    stats.retries = retry_scope.count();

    // The deterministic merge: leases in plan order within a slot, slots in
    // slot order — the exact partition the in-process fold core merges by.
    // Bisected parents were spliced out of the plan, so children merge at
    // the parent's position and the order matches an unfaulted run.
    let mut merged = consumer.accumulator();
    for lease_ids in &slot_leases {
        for &lease_id in lease_ids {
            let acc = std::mem::replace(&mut leases[lease_id].acc, consumer.accumulator());
            consumer.merge(&mut merged, acc);
        }
    }
    Ok((merged, manifest, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_leases_are_contiguous_ascending_chunks() {
        let cells: Vec<usize> = (0..10).map(|i| i * 3).collect();
        let plan = plan_slot_leases(&cells, 4);
        assert_eq!(plan.len(), 4);
        let rejoined: Vec<usize> = plan.iter().flatten().copied().collect();
        assert_eq!(rejoined, cells, "chunks must cover the slot in order");
        assert!(plan.iter().all(|chunk| !chunk.is_empty()));

        // Fewer cells than the lease budget: one lease per cell.
        assert_eq!(plan_slot_leases(&[5, 9], 4).len(), 2);
        assert!(plan_slot_leases(&[], 4).is_empty());
    }

    #[test]
    fn cost_sized_leases_cut_on_cost_quantiles_not_index_quantiles() {
        // Ten cells, cell 0 carrying ~90% of the slot's cost: the first
        // lease must be just that cell, with the cheap tail spread over the
        // remaining leases — where index-quantile chunks would give lease 0
        // two or three cells including the expensive one.
        let cells: Vec<usize> = (0..10).collect();
        let mut costs = vec![1u64; 10];
        costs[0] = 90;
        let plan = plan_slot_leases_by_cost(&cells, &costs, 4);
        assert_eq!(plan.len(), 4);
        let rejoined: Vec<usize> = plan.iter().flatten().copied().collect();
        assert_eq!(rejoined, cells, "chunks must cover the slot in order");
        assert!(plan.iter().all(|chunk| !chunk.is_empty()));
        assert_eq!(plan[0], vec![0], "the dominant cell gets its own lease");

        // Uniform costs degrade to near-equal counts, like the index plan.
        let plan = plan_slot_leases_by_cost(&cells, &[7; 10], 4);
        assert!(plan.iter().all(|chunk| (2..=3).contains(&chunk.len())));

        // Fewer cells than the lease budget: one lease per cell.
        assert_eq!(plan_slot_leases_by_cost(&[5, 9], &[1; 10], 4).len(), 2);
        assert!(plan_slot_leases_by_cost(&[], &[], 4).is_empty());
    }

    #[test]
    fn worker_binary_resolution_prefers_explicit_option() {
        let options = DistOptions {
            worker_binary: Some(PathBuf::from("/tmp/custom-worker")),
            ..DistOptions::default()
        };
        assert_eq!(worker_binary(&options), PathBuf::from("/tmp/custom-worker"));
    }
}
