//! In-memory byte pipes for exercising stream protocols without sockets.
//!
//! The serve loop ([`crate::serve`]) is written against plain
//! [`std::io::Read`]/[`std::io::Write`] halves so the same code drives a
//! `TcpStream` in production and these Mutex+Condvar pipes in tests — the
//! "pipes for tests, TCP for real use" split the dispatcher already uses,
//! minus the child process. `std` has no anonymous in-process pipe at the
//! toolchain floor this repo targets, so the pipe is hand-rolled: a shared
//! `VecDeque<u8>` with blocking reads, explicit EOF on writer drop, and
//! `BrokenPipe` on writes after the reader is gone. No artificial capacity
//! bound — a sweep's result stream is produced and consumed concurrently,
//! and the framing layer above already caps individual frame sizes.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Buffer plus the two hangup flags that turn it into a unidirectional
/// pipe: `writer_closed` makes an empty buffer mean EOF instead of "wait",
/// `reader_closed` turns further writes into `BrokenPipe`.
#[derive(Debug, Default)]
struct PipeState {
    data: VecDeque<u8>,
    writer_closed: bool,
    reader_closed: bool,
}

#[derive(Debug, Default)]
struct PipeShared {
    state: Mutex<PipeState>,
    readable: Condvar,
}

/// The write half of an in-memory pipe. Dropping it signals EOF to the
/// reader once the buffered bytes drain.
#[derive(Debug)]
pub struct PipeWriter {
    shared: Arc<PipeShared>,
}

/// The read half of an in-memory pipe. Reads block until bytes arrive or
/// the writer hangs up.
#[derive(Debug)]
pub struct PipeReader {
    shared: Arc<PipeShared>,
}

/// A unidirectional in-memory byte pipe: bytes written to the
/// [`PipeWriter`] come out of the [`PipeReader`] in order.
#[must_use]
pub fn byte_pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(PipeShared::default());
    (
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader { shared },
    )
}

/// One endpoint of an in-memory duplex connection: a read half fed by the
/// peer and a write half feeding it. Implements both [`Read`] and
/// [`Write`], and splits into owned halves for use on separate threads.
#[derive(Debug)]
pub struct DuplexEnd {
    /// Bytes arriving from the peer.
    pub reader: PipeReader,
    /// Bytes headed to the peer.
    pub writer: PipeWriter,
}

impl DuplexEnd {
    /// Splits into independently-owned halves.
    #[must_use]
    pub fn split(self) -> (PipeReader, PipeWriter) {
        (self.reader, self.writer)
    }
}

impl Read for DuplexEnd {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.reader.read(buf)
    }
}

impl Write for DuplexEnd {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

/// An in-memory duplex connection: two [`DuplexEnd`]s wired so each end's
/// writes surface as the other end's reads — an anonymous socket pair.
#[must_use]
pub fn duplex() -> (DuplexEnd, DuplexEnd) {
    let (a_writer, b_reader) = byte_pipe();
    let (b_writer, a_reader) = byte_pipe();
    (
        DuplexEnd {
            reader: a_reader,
            writer: a_writer,
        },
        DuplexEnd {
            reader: b_reader,
            writer: b_writer,
        },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self.shared.state.lock().expect("pipe lock poisoned");
        if state.reader_closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe reader dropped",
            ));
        }
        state.data.extend(buf);
        self.shared.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("pipe lock poisoned");
        state.writer_closed = true;
        self.shared.readable.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.state.lock().expect("pipe lock poisoned");
        while state.data.is_empty() {
            if state.writer_closed {
                return Ok(0); // clean EOF at a byte boundary
            }
            state = self
                .shared
                .readable
                .wait(state)
                .expect("pipe lock poisoned");
        }
        let take = state.data.len().min(buf.len());
        for slot in buf.iter_mut().take(take) {
            *slot = state.data.pop_front().expect("checked non-empty");
        }
        Ok(take)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("pipe lock poisoned");
        state.reader_closed = true;
        // Wake any writer-side observer; writes fail fast from here on.
        self.shared.readable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_the_pipe_in_order_and_eof_follows_writer_drop() {
        let (mut writer, mut reader) = byte_pipe();
        writer.write_all(b"hello ").unwrap();
        writer.write_all(b"world").unwrap();
        drop(writer);
        let mut out = String::new();
        reader.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello world");
    }

    #[test]
    fn reads_block_until_the_writer_produces() {
        let (mut writer, mut reader) = byte_pipe();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            reader.read_exact(&mut buf).unwrap();
            buf
        });
        // The reader is (very probably) parked by now; produce the bytes.
        std::thread::sleep(std::time::Duration::from_millis(10));
        writer.write_all(b"ping").unwrap();
        assert_eq!(&handle.join().unwrap(), b"ping");
    }

    #[test]
    fn writing_after_the_reader_drops_is_a_broken_pipe() {
        let (mut writer, reader) = byte_pipe();
        drop(reader);
        let err = writer.write(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn duplex_ends_talk_both_ways() {
        let (mut a, mut b) = duplex();
        a.write_all(b"to-b").unwrap();
        b.write_all(b"to-a").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"to-b");
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"to-a");
    }

    #[test]
    fn frames_survive_the_duplex_round_trip() {
        let (mut a, mut b) = duplex();
        crate::wire::write_frame(&mut a, 0x42, b"payload").unwrap();
        let (frame_type, payload) = crate::wire::read_frame(&mut b).unwrap().unwrap();
        assert_eq!(frame_type, 0x42);
        assert_eq!(payload, b"payload");
    }
}
