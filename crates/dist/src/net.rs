//! Transient-failure handling for the dispatcher↔worker transports.
//!
//! Two concerns live here, both satellites of the fault-tolerance layer:
//!
//! * a **process-global retry counter**: every transient I/O condition the
//!   wire layer absorbs (`Interrupted`, bounded `WouldBlock`, TCP connect
//!   retries) bumps it, and [`crate::DistStats::retries`] reports the delta
//!   across one run — so a sweep that limped over a flaky transport is
//!   visible in the stats instead of silently slower;
//! * a **bounded, deterministically-jittered TCP connect backoff**
//!   ([`connect_with_backoff`]): workers dialing the dispatcher back retry
//!   a refused or not-yet-listening address with exponential delays whose
//!   jitter comes from a [`SplitMix64`] seeded by the address — no wall
//!   clock, no global RNG, same delay schedule on every run.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sysscale_types::rng::SplitMix64;

/// Connect attempts before [`connect_with_backoff`] gives up.
pub const CONNECT_ATTEMPTS: u32 = 8;

/// First retry delay; doubles per attempt up to [`CONNECT_DELAY_CAP_MS`].
const CONNECT_BASE_DELAY_MS: u64 = 2;

/// Ceiling on a single backoff delay.
const CONNECT_DELAY_CAP_MS: u64 = 100;

/// Transient retries absorbed since process start (monotone; see
/// [`transient_retries`]).
static TRANSIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Records one absorbed transient condition (`Interrupted`, `WouldBlock`,
/// or a connect retry).
pub(crate) fn note_transient_retry() {
    TRANSIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Transient I/O retries absorbed by this process since start. Monotone and
/// process-global: callers wanting a per-run figure (as
/// [`crate::DistStats::retries`] does) snapshot it before and after.
#[must_use]
pub fn transient_retries() -> u64 {
    TRANSIENT_RETRIES.load(Ordering::Relaxed)
}

/// FNV-1a 64-bit hash — the crate's deterministic, dependency-free content
/// hash (recipe fingerprints, backoff jitter seeds).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Connects to `addr` with bounded exponential backoff: up to
/// [`CONNECT_ATTEMPTS`] attempts, delays doubling from 2ms to a 100ms cap,
/// each stretched by a deterministic jitter (up to +50%) drawn from a
/// [`SplitMix64`] seeded by the address — so two workers racing to the same
/// dispatcher don't retry in lockstep, yet every run waits identically.
///
/// This replaces the worker binary's previous single `connect` attempt: a
/// dispatcher that is momentarily slow to `accept` (or an address published
/// a beat before `listen`) is a retry, not a dead worker.
///
/// # Errors
///
/// The last connect error once the attempt budget is exhausted.
pub fn connect_with_backoff(addr: &str) -> std::io::Result<TcpStream> {
    let mut rng = SplitMix64::new(fnv1a64(addr.as_bytes()) ^ 0x5359_5353_4341_4C45);
    let mut delay_ms = CONNECT_BASE_DELAY_MS;
    let mut last_error = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(error) => last_error = Some(error),
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            note_transient_retry();
            let jitter = rng.next_u64() % (delay_ms / 2 + 1);
            std::thread::sleep(Duration::from_millis(delay_ms + jitter));
            delay_ms = (delay_ms * 2).min(CONNECT_DELAY_CAP_MS);
        }
    }
    Err(last_error
        .unwrap_or_else(|| std::io::Error::new(std::io::ErrorKind::NotConnected, "no attempts")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn connect_with_backoff_reaches_a_live_listener_first_try() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let before = transient_retries();
        let stream = connect_with_backoff(&addr).expect("live listener");
        drop(stream);
        // A live listener costs zero retries... unless a parallel test
        // bumped the global counter; only assert it didn't explode.
        assert!(transient_retries() - before <= CONNECT_ATTEMPTS as u64);
    }

    #[test]
    fn connect_with_backoff_retries_then_reports_the_last_error() {
        // Bind-then-drop frees a port that (almost certainly) refuses.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let before = transient_retries();
        let started = std::time::Instant::now();
        let outcome = connect_with_backoff(&addr);
        assert!(outcome.is_err(), "connect to a dropped port should fail");
        assert!(
            transient_retries() - before >= (CONNECT_ATTEMPTS - 1) as u64,
            "every failed attempt but the last must count as a retry"
        );
        // Bounded: the whole budget is well under a second of delays.
        assert!(started.elapsed() < Duration::from_secs(10));
    }
}
