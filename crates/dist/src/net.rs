//! Transient-failure handling for the dispatcher↔worker transports.
//!
//! Two concerns live here, both satellites of the fault-tolerance layer:
//!
//! * **retry accounting**: every transient I/O condition the wire layer
//!   absorbs (`Interrupted`, bounded `WouldBlock`, TCP connect retries)
//!   bumps a process-global total *and* the [`RetryScope`] installed on the
//!   current thread, if any. A dispatcher installs one scope per run — on
//!   its own thread and on every reader thread it spawns — so
//!   [`crate::DistStats::retries`] is a genuinely per-run figure even when
//!   several dispatchers share one process, while [`transient_retries`]
//!   stays the process-lifetime total;
//! * a **bounded, deterministically-jittered TCP connect backoff**
//!   ([`connect_with_backoff`]): workers dialing the dispatcher back retry
//!   a refused or not-yet-listening address with exponential delays whose
//!   jitter comes from a [`SplitMix64`] seeded by the address — no wall
//!   clock, no global RNG, same delay schedule on every run. Only
//!   *transient* connect errors are retried: a permanent failure (an
//!   unparseable address, an unroutable one) fails on the first attempt
//!   instead of burning the whole backoff budget.

use std::cell::RefCell;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sysscale_types::rng::SplitMix64;

/// Connect attempts before [`connect_with_backoff`] gives up.
pub const CONNECT_ATTEMPTS: u32 = 8;

/// First retry delay; doubles per attempt up to [`CONNECT_DELAY_CAP_MS`].
const CONNECT_BASE_DELAY_MS: u64 = 2;

/// Ceiling on a single backoff delay.
const CONNECT_DELAY_CAP_MS: u64 = 100;

/// Transient retries absorbed since process start (monotone; see
/// [`transient_retries`]).
static TRANSIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The per-run retry counter installed on this thread, if any.
    static ACTIVE_SCOPE: RefCell<Option<Arc<AtomicU64>>> = const { RefCell::new(None) };
}

/// A per-run transient-retry counter.
///
/// The process-global [`transient_retries`] total cannot attribute retries
/// to a run: two dispatchers in one process snapshotting before/after would
/// see each other's retries. A `RetryScope` is the per-run fix — the
/// dispatcher creates one per dispatch, installs it (via [`RetryScope::enter`])
/// on every thread that performs wire I/O for that run, and reads
/// [`RetryScope::count`] at the end. Retries noted on a thread with no
/// installed scope still count toward the process total only.
#[derive(Debug, Clone, Default)]
pub struct RetryScope {
    count: Arc<AtomicU64>,
}

impl RetryScope {
    /// A fresh scope with a zero count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Retries attributed to this scope so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Installs this scope on the current thread until the returned guard
    /// drops (restoring whatever scope was active before — scopes nest).
    #[must_use]
    pub fn enter(&self) -> RetryScopeGuard {
        let previous =
            ACTIVE_SCOPE.with(|active| active.borrow_mut().replace(Arc::clone(&self.count)));
        RetryScopeGuard { previous }
    }
}

/// Restores the previously-installed [`RetryScope`] (if any) on drop.
#[derive(Debug)]
pub struct RetryScopeGuard {
    previous: Option<Arc<AtomicU64>>,
}

impl Drop for RetryScopeGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ACTIVE_SCOPE.with(|active| *active.borrow_mut() = previous);
    }
}

/// Records one absorbed transient condition (`Interrupted`, `WouldBlock`,
/// or a connect retry): bumps the process total and the current thread's
/// installed [`RetryScope`], if any.
pub(crate) fn note_transient_retry() {
    TRANSIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
    ACTIVE_SCOPE.with(|active| {
        if let Some(scope) = active.borrow().as_ref() {
            scope.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Transient I/O retries absorbed by this process since start. Monotone and
/// process-global; for a per-run figure, install a [`RetryScope`] (as
/// [`crate::DistStats::retries`] does).
#[must_use]
pub fn transient_retries() -> u64 {
    TRANSIENT_RETRIES.load(Ordering::Relaxed)
}

/// FNV-1a 64-bit hash — the crate's deterministic, dependency-free content
/// hash (recipe fingerprints, backoff jitter seeds).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Whether a failed `connect` is worth retrying: the peer may simply not be
/// listening *yet* (refused, reset, aborted, timed out) or the kernel asked
/// us to try again (`WouldBlock`, `Interrupted`). Anything else — an
/// unparseable address (`InvalidInput`), an address this host cannot use
/// (`AddrNotAvailable`), a permission failure — is permanent: retrying
/// burns the whole backoff budget to reach the identical error.
fn connect_error_is_transient(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
            | ErrorKind::Interrupted
    )
}

/// Connects to `addr` with bounded exponential backoff: up to
/// [`CONNECT_ATTEMPTS`] attempts, delays doubling from 2ms to a 100ms cap,
/// each stretched by a deterministic jitter (up to +50%) drawn from a
/// [`SplitMix64`] seeded by the address — so two workers racing to the same
/// dispatcher don't retry in lockstep, yet every run waits identically.
///
/// This replaces the worker binary's previous single `connect` attempt: a
/// dispatcher that is momentarily slow to `accept` (or an address published
/// a beat before `listen`) is a retry, not a dead worker. Only transient
/// error kinds are retried; a permanent failure (unparseable address,
/// `AddrNotAvailable`, permission denied) returns on the **first** attempt
/// instead of sleeping through the full backoff schedule.
///
/// # Errors
///
/// The first non-transient connect error, or the last transient one once
/// the attempt budget is exhausted.
pub fn connect_with_backoff(addr: &str) -> std::io::Result<TcpStream> {
    let mut rng = SplitMix64::new(fnv1a64(addr.as_bytes()) ^ 0x5359_5353_4341_4C45);
    let mut delay_ms = CONNECT_BASE_DELAY_MS;
    let mut last_error = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(error) if connect_error_is_transient(error.kind()) => last_error = Some(error),
            Err(error) => return Err(error),
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            note_transient_retry();
            let jitter = rng.next_u64() % (delay_ms / 2 + 1);
            std::thread::sleep(Duration::from_millis(delay_ms + jitter));
            delay_ms = (delay_ms * 2).min(CONNECT_DELAY_CAP_MS);
        }
    }
    Err(last_error
        .unwrap_or_else(|| std::io::Error::new(std::io::ErrorKind::NotConnected, "no attempts")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn connect_with_backoff_reaches_a_live_listener_first_try() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let scope = RetryScope::new();
        let _guard = scope.enter();
        let stream = connect_with_backoff(&addr).expect("live listener");
        drop(stream);
        assert_eq!(scope.count(), 0, "a live listener costs zero retries");
    }

    #[test]
    fn connect_with_backoff_retries_transient_refusals() {
        // Bind-then-drop frees a port that normally refuses. The port *can*
        // be re-bound by an unrelated process between drop and connect, so
        // an unexpected success is an environment artifact, not a failure:
        // try a few fresh ports before giving the environment up as too
        // busy to test against (instead of flaking).
        for _ in 0..5 {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            drop(listener);
            let scope = RetryScope::new();
            let guard = scope.enter();
            let started = std::time::Instant::now();
            let outcome = connect_with_backoff(&addr);
            drop(guard);
            if outcome.is_ok() {
                continue; // port re-bound under us; try another
            }
            assert_eq!(
                scope.count(),
                u64::from(CONNECT_ATTEMPTS - 1),
                "every failed attempt but the last must count as a retry"
            );
            // Bounded: the whole budget is well under a second of delays.
            assert!(started.elapsed() < Duration::from_secs(10));
            return;
        }
        // Five freed ports all got re-bound instantly: nothing to assert
        // in an environment this adversarial, but nothing failed either.
    }

    #[test]
    fn connect_with_backoff_fails_fast_on_permanent_errors() {
        // An unparseable address can never succeed; retrying it would burn
        // the whole ~400ms backoff budget to reach the identical error.
        let scope = RetryScope::new();
        let _guard = scope.enter();
        let started = std::time::Instant::now();
        let outcome = connect_with_backoff("definitely not an address");
        assert!(outcome.is_err(), "nonsense address must fail");
        assert_eq!(scope.count(), 0, "permanent failures must not retry");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "permanent failures must not sleep through the backoff schedule"
        );
    }

    #[test]
    fn retry_scopes_attribute_retries_per_run_not_per_process() {
        // Two interleaved "runs" (scopes) on two threads: each must see
        // exactly its own retries while the process total sees both — the
        // regression the process-global snapshot accounting had.
        let scope_a = RetryScope::new();
        let scope_b = RetryScope::new();
        let total_before = transient_retries();
        let barrier = std::sync::Barrier::new(2);
        let run = |scope: &RetryScope, bumps: u64| {
            let _guard = scope.enter();
            for _ in 0..bumps {
                barrier.wait();
                note_transient_retry();
            }
        };
        std::thread::scope(|s| {
            s.spawn(|| run(&scope_a, 3));
            run(&scope_b, 3);
        });
        assert_eq!(scope_a.count(), 3);
        assert_eq!(scope_b.count(), 3);
        assert!(transient_retries() - total_before >= 6);
    }

    #[test]
    fn retry_scope_guard_restores_the_previous_scope() {
        let outer = RetryScope::new();
        let inner = RetryScope::new();
        let _outer_guard = outer.enter();
        note_transient_retry();
        {
            let _inner_guard = inner.enter();
            note_transient_retry();
        }
        note_transient_retry();
        assert_eq!(outer.count(), 2, "outer scope resumes after inner drops");
        assert_eq!(inner.count(), 1);
    }
}
