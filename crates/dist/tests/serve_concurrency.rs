//! Concurrency tests for the sweep service ([`sysscale_dist::serve`]).
//!
//! The contract under test: a [`SweepService`] executing many concurrent
//! client submissions against **one shared warm pool** returns, per
//! submission, a record stream **byte-identical** to an in-process
//! [`SweepSet::run_parallel_fold`](sysscale::SweepSet) of the same recipe —
//! at every configured worker count, for every interleaving — while the
//! pool stays bounded by the worker count (no per-request session growth).

use sysscale::{CollectRuns, RunRecord, SessionPool};
use sysscale_dist::{
    sweep_from_sets, ExecutorMode, GovernorSpec, MatrixRecipe, PlatformSpec, ServeClient,
    ServeError, ServeEvent, ServeOptions, SweepRecipe, SweepService, WorkloadsSpec,
};
use sysscale_workloads::GeneratorConfig;

/// A compact 4-cell sweep (2 workloads × 2 governors), distinguished per
/// client by TDP so interleaved submissions have distinct right answers.
fn tiny_recipe(tdp_w: f64) -> SweepRecipe {
    SweepRecipe::single(MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w },
        workloads: WorkloadsSpec::SpecNamed(["gamess", "lbm"].map(str::to_string).to_vec()),
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.25),
        pinned_fingerprint: None,
    })
}

/// A big synthetic-population sweep (`count` workloads × 2 governors) — the
/// long-running tenant the mixed-load tests interleave small sweeps with.
fn population_recipe(count: usize) -> SweepRecipe {
    SweepRecipe::single(MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w: 6.0 },
        workloads: WorkloadsSpec::Population {
            config: GeneratorConfig::default(),
            count,
        },
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.25),
        pinned_fingerprint: None,
    })
}

/// Deterministic Fisher-Yates over an LCG: the "randomized" in randomized
/// interleavings, reproducible per seed.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// The in-process reference stream for a recipe: flat-indexed records from
/// `run_parallel_fold`, at a thread count deliberately different from any
/// the service runs with.
fn in_process(recipe: &SweepRecipe) -> Vec<(usize, RunRecord)> {
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();
    let acc = sweep
        .run_parallel_fold_sharded(&mut pool, 3, recipe.sharding, &CollectRuns)
        .expect("in-process sweep");
    CollectRuns::into_flat_records(acc)
}

#[test]
fn interleaved_clients_get_byte_identical_results_at_every_worker_count() {
    const CLIENTS: usize = 4;
    let recipes: Vec<SweepRecipe> = (0..CLIENTS)
        .map(|i| tiny_recipe(4.0 + i as f64 * 0.5))
        .collect();
    let expected: Vec<Vec<(usize, RunRecord)>> = recipes.iter().map(in_process).collect();

    for workers in [1usize, 2, 4] {
        let service = SweepService::start(&ServeOptions {
            workers,
            ..ServeOptions::default()
        });
        let mut clients: Vec<ServeClient> = (0..CLIENTS).map(|_| service.connect()).collect();

        // Interleave the submissions: every client submits twice before
        // anyone starts collecting, so the executor sees a mixed queue of
        // eight submissions from four connections.
        let ids: Vec<(u64, u64)> = clients
            .iter_mut()
            .enumerate()
            .map(|(i, client)| {
                let first = client.submit(&recipes[i], 0).expect("submit");
                let second = client.submit(&recipes[i], 0).expect("resubmit");
                (first, second)
            })
            .collect();

        for (i, (client, (first, second))) in clients.into_iter().zip(&ids).enumerate() {
            let mut client = client;
            let outcomes = client.collect(&[*first, *second]).expect("collect");
            for id in [first, second] {
                let outcome = &outcomes[id];
                assert!(outcome.error.is_none(), "healthy sweep must not error");
                assert_eq!(
                    outcome.records, expected[i],
                    "client {i} at {workers} workers must match the in-process fold"
                );
                // Streamed in ascending flat order, not just set-equal.
                assert!(outcome.records.windows(2).all(|w| w[0].0 < w[1].0));
                assert_eq!(outcome.total_cells, expected[i].len() as u64);
            }
            client.close();
        }

        let stats = service.shutdown();
        assert_eq!(stats.submissions, (CLIENTS * 2) as u64);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.frames_rejected, 0, "healthy path rejects nothing");
        assert!(stats.max_queue_depth >= 1);
        let metrics = stats.metrics();
        assert_eq!(metrics.requests, (CLIENTS * 2) as u64);
        assert!(metrics.requests_per_sec > 0.0);
        assert!(metrics.p50_latency_ms <= metrics.p95_latency_ms);
        assert!(metrics.p95_latency_ms <= metrics.p99_latency_ms);
    }
}

#[test]
fn the_shared_pool_stays_bounded_across_many_submissions() {
    const WORKERS: usize = 2;
    let service = SweepService::start(&ServeOptions {
        workers: WORKERS,
        ..ServeOptions::default()
    });
    let mut client = service.connect();
    let recipe = tiny_recipe(4.5);
    for _ in 0..6 {
        let outcome = client.run_sweep(&recipe, 0).expect("sweep");
        assert!(outcome.error.is_none());
    }
    client.close();
    let stats = service.shutdown();
    assert_eq!(stats.submissions, 6);
    // One warm pool serves every request: sessions are per worker slot,
    // never per submission.
    assert!(
        stats.pool_workers <= WORKERS,
        "pool grew to {} worker sessions for {WORKERS} workers",
        stats.pool_workers
    );
    // Every submission ran the same single-platform recipe: the cache
    // holds at most one platform per worker session.
    assert!(
        stats.pool_cached_platforms <= WORKERS,
        "pool cached {} simulators across {WORKERS} workers",
        stats.pool_cached_platforms
    );
}

#[test]
fn progress_snapshots_are_monotone_and_reach_the_total() {
    let service = SweepService::start(&ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    let mut client = service.connect();
    let recipe = tiny_recipe(4.5);
    let total = recipe.total_cells() as u64;
    let outcome = client.run_sweep(&recipe, 1).expect("sweep");
    assert!(outcome.error.is_none());
    // Strictly increasing on the wire — the service's monotone gate —
    // and the final snapshot is (total, total).
    assert!(!outcome.progress.is_empty());
    assert!(outcome
        .progress
        .windows(2)
        .all(|w| w[0].0 < w[1].0 && w[0].1 == w[1].1));
    assert_eq!(*outcome.progress.last().unwrap(), (total, total));
    client.close();
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0);
}

#[test]
fn tcp_clients_get_the_same_bytes_as_in_memory_ones() {
    let recipe = tiny_recipe(5.0);
    let expected = in_process(&recipe);
    let service = SweepService::start(&ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    let addr = service.listen_tcp("127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");
    let outcome = client.run_sweep(&recipe, 0).expect("sweep");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.records, expected);
    client.close();
    let stats = service.shutdown();
    assert_eq!(stats.submissions, 1);
    assert_eq!(stats.frames_rejected, 0);
}

#[test]
fn a_bad_recipe_fails_the_submission_not_the_connection() {
    let service = SweepService::start(&ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = service.connect();

    // A recipe that decodes but cannot build (unknown workload): the
    // service must answer with a SweepError and keep the connection
    // serving.
    let garbage = SweepRecipe::single(MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w: 4.5 },
        workloads: WorkloadsSpec::SpecNamed(vec!["not-a-spec-workload".to_string()]),
        governors: vec![GovernorSpec::Registry("baseline".to_string())],
        baseline: None,
        duration_secs: Some(0.25),
        pinned_fingerprint: None,
    });
    let bad_id = client.submit(&garbage, 0).expect("submit");
    let outcomes = client.collect(&[bad_id]).expect("collect");
    assert!(
        outcomes[&bad_id].error.is_some(),
        "an unknown workload must surface as a SweepError"
    );

    // The same connection still serves healthy sweeps afterwards.
    let good = tiny_recipe(4.5);
    let outcome = client.run_sweep(&good, 0).expect("sweep after error");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.records, in_process(&good));

    client.close();
    let stats = service.shutdown();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.submissions, 2);
}

#[test]
fn mixed_load_interleavings_stay_byte_identical_in_both_modes() {
    // The tentpole contract: one big sweep plus a handful of small ones,
    // submitted in randomized interleavings, and every submission's record
    // stream is byte-identical to its solo in-process fold — in the shared
    // cost-aware scheduler exactly as in the serial executor, at 1/2/4
    // workers.
    let big = population_recipe(12);
    let smalls: Vec<SweepRecipe> = (0..3).map(|i| tiny_recipe(4.0 + i as f64 * 0.5)).collect();
    let big_expected = in_process(&big);
    let small_expected: Vec<Vec<(usize, RunRecord)>> = smalls.iter().map(in_process).collect();

    for mode in [ExecutorMode::Serial, ExecutorMode::Shared] {
        for workers in [1usize, 2, 4] {
            let service = SweepService::start(&ServeOptions {
                workers,
                mode,
                ..ServeOptions::default()
            });
            let mut big_client = service.connect();
            let mut small_clients: Vec<ServeClient> =
                smalls.iter().map(|_| service.connect()).collect();

            // Shuffle who submits when; slot 0 is the big sweep.
            let seed = workers as u64 * 16 + u64::from(mode == ExecutorMode::Shared);
            let mut order: Vec<usize> = (0..=smalls.len()).collect();
            shuffle(&mut order, seed);
            let mut big_id = 0;
            let mut small_ids = vec![0u64; smalls.len()];
            for &who in &order {
                if who == 0 {
                    big_id = big_client.submit(&big, 0).expect("submit big");
                } else {
                    small_ids[who - 1] = small_clients[who - 1]
                        .submit(&smalls[who - 1], 0)
                        .expect("submit small");
                }
            }

            for (i, client) in small_clients.iter_mut().enumerate() {
                let outcomes = client.collect(&[small_ids[i]]).expect("collect small");
                assert_eq!(
                    outcomes[&small_ids[i]].records, small_expected[i],
                    "small {i} under {mode:?} at {workers} workers must match its solo fold"
                );
            }
            let outcomes = big_client.collect(&[big_id]).expect("collect big");
            assert_eq!(
                outcomes[&big_id].records, big_expected,
                "big sweep under {mode:?} at {workers} workers must match its solo fold"
            );

            big_client.close();
            for client in small_clients {
                client.close();
            }
            let stats = service.shutdown();
            assert_eq!(stats.submissions, 1 + smalls.len() as u64);
            assert_eq!(stats.errors, 0);
            assert_eq!(stats.busy_shed, 0);
            assert_eq!(stats.frames_rejected, 0);
        }
    }
}

#[test]
fn small_sweeps_overtake_a_big_sweep_under_cost_fair_scheduling() {
    // Fairness: the two small sweeps' total cost is far below one worker's
    // share of the big sweep, so cost-fair interleaving must complete both
    // before the big sweep finishes — the whole point of the shared
    // scheduler over the serial executor.
    let service = SweepService::start(&ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    let mut client = service.connect();
    let big = population_recipe(30);
    let big_id = client.submit(&big, 0).expect("submit big");
    let a_id = client.submit(&tiny_recipe(4.5), 0).expect("submit small a");
    let b_id = client.submit(&tiny_recipe(5.0), 0).expect("submit small b");

    // One stream, so completion order is directly observable.
    let mut finish_order: Vec<u64> = Vec::new();
    while finish_order.len() < 3 {
        match client.recv().expect("recv").expect("server hung up") {
            ServeEvent::SweepDone { submit_id, .. } => finish_order.push(submit_id),
            ServeEvent::SweepError { submit_id, error } => {
                panic!("submission {submit_id} failed: {error}")
            }
            _ => {}
        }
    }
    assert_eq!(
        finish_order.last(),
        Some(&big_id),
        "small sweeps must not wait out the big sweep (finish order {finish_order:?})"
    );
    assert!(finish_order.contains(&a_id) && finish_order.contains(&b_id));

    client.close();
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0);
    // The smalls were admitted while the big sweep was in flight.
    assert!(stats.max_queue_depth >= 2);
}

#[test]
fn admission_bound_sheds_busy_as_a_typed_retryable_error() {
    let service = SweepService::start(&ServeOptions {
        workers: 1,
        max_pending: 1,
        ..ServeOptions::default()
    });
    let mut client = service.connect();
    let big = population_recipe(10);
    let small = tiny_recipe(4.5);

    // The big sweep occupies the single admission slot for its whole
    // lifetime; the small one must bounce off the bound.
    let big_id = client.submit(&big, 0).expect("submit big");
    let shed_id = client.submit(&small, 0).expect("submit small");
    let outcomes = client.collect(&[big_id, shed_id]).expect("collect");

    let shed = outcomes[&shed_id].result().expect_err("must be shed");
    assert!(shed.is_retryable(), "busy is retryable by contract");
    assert!(
        matches!(&shed, ServeError::Busy(busy) if busy.max_pending == 1 && busy.queue_depth == 2),
        "unexpected shed error: {shed:?}"
    );
    assert!(outcomes[&big_id].result().is_ok(), "big sweep unaffected");

    // The big sweep has completed (collect saw SweepDone), freeing the
    // slot: the retry goes through and returns the right bytes.
    let retry = client.run_sweep(&small, 0).expect("retry");
    assert_eq!(retry.result().expect("retry succeeds"), in_process(&small));

    client.close();
    let stats = service.shutdown();
    assert_eq!(stats.busy_shed, 1, "exactly one submission shed");
    assert_eq!(stats.submissions, 2, "shed submissions are not admitted");
    assert_eq!(stats.errors, 0, "busy is not an error");
}
