//! Codec hardening corpus: hostile bytes must produce structured errors,
//! never panics, hangs, or silent misparses.
//!
//! The corpus is real protocol traffic (a `Job`, a `Result` carrying a
//! genuine simulated [`RunRecord`], a `Heartbeat`, a `LeaseDone`) subjected
//! to every truncation point and every single-bit flip, plus adversarial
//! length prefixes. A separate property test drives the sweep journal
//! through seeded random append/abort/done sequences and checks the replay
//! matches a model.

use sysscale::{RunRecord, Scenario, SimSession};
use sysscale_dist::journal::{JournalHeader, SweepJournal};
use sysscale_dist::{LeaseIndices, Message, WireError};
use sysscale_types::rng::SplitMix64;
use sysscale_workloads::spec_workload;

fn sample_record(tag: &str) -> RunRecord {
    let workload = spec_workload("mcf").expect("known workload");
    let mut session = SimSession::new();
    let scenario = Scenario::builder(workload).build().unwrap();
    let mut record = session.run(&scenario).unwrap();
    record.workload = tag.to_string();
    record
}

/// One of each frame type that carries interesting payload structure.
fn corpus_stream() -> Vec<u8> {
    let mut stream = Vec::new();
    for message in [
        Message::Job {
            worker_slot: 3,
            threads: 2,
            batch_cells: 8,
            quarantine: true,
            recipe: vec![1, 2, 3, 4, 5, 6, 7, 8],
        },
        Message::Lease {
            lease_id: 7,
            indices: LeaseIndices::from_flats(&[0, 1, 2, 5, 6, 7]),
        },
        Message::Result {
            lease_id: 7,
            flat: 5,
            record: Box::new(sample_record("corpus")),
        },
        Message::Heartbeat {
            lease_id: 7,
            done_cells: 3,
        },
        Message::LeaseDone {
            lease_id: 7,
            cells: 6,
        },
    ] {
        message.write_to(&mut stream).expect("encode corpus");
    }
    stream
}

fn parse_all(bytes: &[u8]) -> Result<Vec<Message>, WireError> {
    let mut r = bytes;
    let mut messages = Vec::new();
    loop {
        match Message::read_from(&mut r)? {
            Some(message) => messages.push(message),
            None => return Ok(messages),
        }
    }
}

#[test]
fn the_clean_corpus_round_trips() {
    let messages = parse_all(&corpus_stream()).expect("clean stream parses");
    assert_eq!(messages.len(), 5);
}

#[test]
fn every_truncation_point_errors_cleanly_and_never_panics() {
    let stream = corpus_stream();
    // Frame boundaries (where a truncated stream reads as a clean EOF):
    // recompute them by parsing prefix lengths.
    let mut boundaries = vec![0usize];
    {
        let mut offset = 0usize;
        while offset < stream.len() {
            let len =
                u32::from_le_bytes(stream[offset + 1..offset + 5].try_into().unwrap()) as usize;
            offset += 9 + len;
            boundaries.push(offset);
        }
    }
    for cut in 0..stream.len() {
        let outcome = parse_all(&stream[..cut]);
        if boundaries.contains(&cut) {
            assert!(
                outcome.is_ok(),
                "cut {cut} is a frame boundary; the prefix must parse clean"
            );
        } else {
            assert!(
                outcome.is_err(),
                "cut {cut} lands inside a frame; the tear must be reported"
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_never_misparsed() {
    let stream = corpus_stream();
    let clean = parse_all(&stream).expect("clean parse");
    // Exhaustive over a real Result-bearing stream: tens of thousands of
    // mutants, each must either fail structurally or (never) parse to
    // something different — the CRC makes "different but parses" impossible
    // for single-bit damage.
    for byte in 0..stream.len() {
        for bit in 0..8u8 {
            let mut mutant = stream.clone();
            mutant[byte] ^= 1 << bit;
            match parse_all(&mutant) {
                Err(_) => {}
                Ok(messages) => {
                    // The only acceptable Ok is bit-exact equality with the
                    // clean parse — and a single flipped bit cannot be.
                    assert_ne!(
                        format!("{messages:?}"),
                        format!("{clean:?}"),
                        "byte {byte} bit {bit}: a corrupted stream parsed \
                         back to the clean messages?!"
                    );
                    panic!(
                        "byte {byte} bit {bit}: single-bit corruption must \
                         not parse (got {} messages)",
                        messages.len()
                    );
                }
            }
        }
    }
}

#[test]
fn adversarial_length_prefixes_are_rejected_without_allocation_bombs() {
    let stream = corpus_stream();
    for length in [u32::MAX, u32::MAX - 1, 0x4000_0000, 0x1000_0001] {
        let mut mutant = stream.clone();
        mutant[1..5].copy_from_slice(&length.to_le_bytes());
        let error = parse_all(&mutant).expect_err("oversized frames must be rejected");
        assert!(
            error.to_string().contains("exceeds"),
            "the length cap, not an allocation failure, must reject: {error}"
        );
    }
}

/// Model-based journal property test: random interleavings of result /
/// abort / done operations across leases, replayed and checked against a
/// plain in-memory model of "what the journal promised".
#[test]
fn journal_replay_matches_a_model_under_random_operation_sequences() {
    let dir = std::env::temp_dir().join(format!("ssjl-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let record = sample_record("model");

    for seed in 1..=8u64 {
        let path = dir.join(format!("model-{seed}.journal"));
        let _ = std::fs::remove_file(&path);
        let header = JournalHeader {
            recipe_fingerprint: seed,
            slots: 2,
            leases: 4,
            cells: 16,
        };
        let (mut journal, replay) = SweepJournal::open(&path, &header).unwrap();
        assert!(replay.is_none());

        // The model: per lease, its pending (flat) entries and whether a
        // matching Done sealed them.
        let mut rng = SplitMix64::new(seed);
        let mut pending: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut sealed: Vec<Option<Vec<u64>>> = vec![None; 4];
        for _ in 0..40 {
            let lease = (rng.next_u64() % 4) as usize;
            if sealed[lease].is_some() {
                continue; // the dispatcher never touches a retired lease
            }
            match rng.next_u64() % 4 {
                // Result entries twice as likely as the others.
                0 | 1 => {
                    let flat = rng.next_u64() % 16;
                    journal.record_result(lease as u64, flat, &record).unwrap();
                    pending[lease].push(flat);
                }
                2 => {
                    journal.record_abort(lease as u64).unwrap();
                    pending[lease].clear();
                }
                _ => {
                    journal
                        .record_done(lease as u64, pending[lease].len() as u64)
                        .unwrap();
                    sealed[lease] = Some(std::mem::take(&mut pending[lease]));
                }
            }
        }
        journal.flush().unwrap();
        drop(journal);

        let (journal, replay) = SweepJournal::open(&path, &header).unwrap();
        let replay = replay.expect("same header replays");
        let mut replayed: Vec<Option<Vec<u64>>> = vec![None; 4];
        for lease in &replay.leases {
            let flats: Vec<u64> = lease.results.iter().map(|(flat, _)| *flat).collect();
            for (_, rec) in &lease.results {
                assert_eq!(rec, &record, "records must round-trip bit-exactly");
            }
            assert!(
                replayed[lease.lease_id as usize].replace(flats).is_none(),
                "seed {seed}: lease {} replayed twice",
                lease.lease_id
            );
        }
        assert_eq!(
            replayed, sealed,
            "seed {seed}: the replay must match exactly the sealed leases"
        );
        journal.finish().unwrap();
    }
}
