//! Wire-fault and poisoned-cell tests for the distributed executor.
//!
//! Two contracts under test:
//!
//! * **wire hardening** — under every deterministic fault plan
//!   ([`sysscale_dist::FaultPlan`] seeds × transports), the sweep still
//!   completes and its results are byte-identical to the in-process
//!   reference: corrupting faults end in CRC/framing rejection + lease
//!   replay, duplicated `Result` frames are absorbed idempotently, delays
//!   are invisible.
//! * **quarantine** — with a deterministically poisoned cell,
//!   [`run_distributed_partial`] completes the sweep around exactly that
//!   cell (clean failures directly, worker-killing cells via lease
//!   bisection), every other record byte-identical; the non-quarantine API
//!   fails fast with the cell's structured error instead.

use std::path::PathBuf;

use sysscale::{RunSet, SessionPool};
use sysscale_dist::dispatcher::PoisonFault;
use sysscale_dist::{
    run_distributed, run_distributed_partial, sweep_from_sets, DistOptions, GovernorSpec,
    MatrixRecipe, PlatformSpec, SweepRecipe, TransportKind, WorkloadsSpec,
};

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sysscale-dist-worker"))
}

fn options(procs: usize) -> DistOptions {
    DistOptions {
        procs: Some(procs),
        worker_binary: Some(worker_binary()),
        // Never inherit an ambient fault plan from the environment (the CI
        // fault-smoke job sets one for the whole process tree); each test
        // below opts in explicitly.
        fault_plan: Some(0),
        ..DistOptions::default()
    }
}

/// A compact two-platform sweep: 2 platforms × 6 workloads × 2 governors.
fn small_recipe() -> SweepRecipe {
    let member = |tdp_w: f64| MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w },
        workloads: WorkloadsSpec::SpecNamed(
            ["mcf", "lbm", "gcc", "milc", "povray", "astar"]
                .map(str::to_string)
                .to_vec(),
        ),
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.5),
        pinned_fingerprint: None,
    };
    SweepRecipe {
        members: vec![member(4.5), member(6.0)],
        sharding: sysscale::SweepSharding::ByPlatform,
    }
}

fn in_process(recipe: &SweepRecipe) -> Vec<RunSet> {
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();
    sweep
        .run_parallel_sharded(&mut pool, 3, recipe.sharding)
        .expect("in-process sweep")
}

#[test]
fn every_fault_plan_seed_still_yields_byte_identical_results() {
    let recipe = small_recipe();
    let expected = in_process(&recipe);

    // Each (seed, slot) pair draws its own (ordinal, kind); sweeping seeds
    // over both transports covers every FaultKind at several positions.
    for seed in [1, 2, 3, 4, 5, 6] {
        let mut opts = options(2);
        opts.fault_plan = Some(seed);
        let (got, stats) = run_distributed(&recipe, &opts)
            .unwrap_or_else(|e| panic!("faulted run (seed {seed}) must still succeed: {e}"));
        assert_eq!(
            got, expected,
            "seed {seed}: results must be byte-identical despite injected faults"
        );
        // Seed 5 happens to draw DelayFrame on both slots — intact frames,
        // so nothing to reject or replay; byte-identity is the whole check.
        if seed != 5 {
            assert!(
                stats.reissued_leases > 0 || stats.frames_rejected > 0,
                "seed {seed}: a corrupting/duplicating plan must actually do \
                 *something* (replay a torn connection or absorb a duplicate)"
            );
        }
    }
}

#[test]
fn fault_plans_are_byte_identical_over_tcp_too() {
    let recipe = small_recipe();
    let expected = in_process(&recipe);
    for seed in [1, 4] {
        let mut opts = options(2);
        opts.transport = TransportKind::Tcp;
        opts.fault_plan = Some(seed);
        let (got, _) = run_distributed(&recipe, &opts)
            .unwrap_or_else(|e| panic!("faulted TCP run (seed {seed}) must succeed: {e}"));
        assert_eq!(got, expected, "seed {seed} over TCP");
    }
}

/// The in-process reference with one flat index's record removed — what a
/// partial-result run must return when exactly that cell is quarantined.
fn expected_without(recipe: &SweepRecipe, poisoned_flat: usize) -> Vec<RunSet> {
    let mut flat = 0usize;
    in_process(recipe)
        .iter()
        .map(|set| {
            let records: Vec<_> = set
                .records()
                .iter()
                .filter(|_| {
                    let keep = flat != poisoned_flat;
                    flat += 1;
                    keep
                })
                .cloned()
                .collect();
            RunSet::from_records(records, Some("baseline".to_string()))
        })
        .collect()
}

#[test]
fn a_cleanly_failing_cell_is_quarantined_and_the_rest_is_byte_identical() {
    let recipe = small_recipe();
    let poisoned = 7usize;
    let expected = expected_without(&recipe, poisoned);

    for procs in [1, 2, 4] {
        let mut opts = options(procs);
        opts.poison = Some(PoisonFault {
            flat: poisoned,
            crash: false,
        });
        let (got, failed, stats) =
            run_distributed_partial(&recipe, &opts).expect("partial mode completes the sweep");
        assert_eq!(
            failed.len(),
            1,
            "{procs} procs: exactly the poisoned cell is quarantined"
        );
        assert!(failed.contains_flat(poisoned));
        assert_eq!(failed.cells()[0].cell.flat, poisoned);
        assert!(
            failed.cells()[0]
                .error
                .to_string()
                .contains("poisoned cell"),
            "the worker's structured error must round-trip into the manifest"
        );
        assert_eq!(stats.quarantined_cells, 1);
        assert_eq!(
            got, expected,
            "{procs} procs: every surviving record must be byte-identical"
        );
    }
}

#[test]
fn a_worker_killing_cell_is_isolated_by_bisection_and_quarantined() {
    let recipe = small_recipe();
    let poisoned = 13usize;
    let expected = expected_without(&recipe, poisoned);

    let mut opts = options(2);
    opts.poison = Some(PoisonFault {
        flat: poisoned,
        crash: true,
    });
    // Bisection pays for isolation in worker deaths; give it budget.
    opts.max_respawns = 64;
    let (got, failed, stats) =
        run_distributed_partial(&recipe, &opts).expect("bisection completes the sweep");
    assert_eq!(
        failed.len(),
        1,
        "only the killer cell may end up quarantined, not its lease-mates"
    );
    assert!(failed.contains_flat(poisoned));
    assert!(
        failed.cells()[0]
            .error
            .to_string()
            .contains("killed its worker"),
        "a crash-shape cell gets the synthesized kill error"
    );
    assert!(
        failed.cells()[0].executions >= sysscale_dist::MAX_LEASE_EXECUTIONS,
        "quarantine only after the lease execution budget is truly spent"
    );
    assert_eq!(stats.quarantined_cells, 1);
    assert!(
        stats.workers_spawned > stats.slots,
        "isolating a killer cell must have required respawns"
    );
    assert_eq!(
        got, expected,
        "survivors byte-identical despite the carnage"
    );
}

#[test]
fn without_quarantine_a_poisoned_cell_fails_the_run_with_its_error() {
    let recipe = small_recipe();
    let mut opts = options(2);
    opts.poison = Some(PoisonFault {
        flat: 3,
        crash: false,
    });
    let error =
        run_distributed(&recipe, &opts).expect_err("fail-fast mode must surface the poisoned cell");
    assert!(
        error.to_string().contains("poisoned cell 3"),
        "the exact structured error must round-trip: {error}"
    );
}

#[test]
fn quarantine_mode_without_any_poison_is_a_clean_run() {
    let recipe = small_recipe();
    let expected = in_process(&recipe);
    let (got, failed, stats) =
        run_distributed_partial(&recipe, &options(2)).expect("clean partial run");
    assert!(failed.is_empty());
    assert_eq!(stats.quarantined_cells, 0);
    assert_eq!(got, expected);
}
