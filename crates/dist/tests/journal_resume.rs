//! Checkpoint/resume tests: a killed dispatcher, restarted with the same
//! recipe and journal, must produce results **byte-identical** to an
//! uninterrupted run — replaying finished leases from disk and executing
//! only the remainder.

use std::path::PathBuf;
use std::process::Command;

use sysscale::{RunSet, SessionPool};
use sysscale_dist::dispatcher::PoisonFault;
use sysscale_dist::{
    run_distributed, run_distributed_partial, sweep_from_sets, DistOptions, GovernorSpec,
    MatrixRecipe, PlatformSpec, SweepRecipe, WorkloadsSpec,
};

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sysscale-dist-worker"))
}

fn fig10_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sysscale-dist-fig10"))
}

fn options(procs: usize) -> DistOptions {
    DistOptions {
        procs: Some(procs),
        worker_binary: Some(worker_binary()),
        fault_plan: Some(0), // isolate from an ambient CI fault plan
        ..DistOptions::default()
    }
}

fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sysscale-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.journal"))
}

/// A compact two-platform sweep: 2 platforms × 6 workloads × 2 governors.
fn small_recipe() -> SweepRecipe {
    let member = |tdp_w: f64| MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w },
        workloads: WorkloadsSpec::SpecNamed(
            ["mcf", "lbm", "gcc", "milc", "povray", "astar"]
                .map(str::to_string)
                .to_vec(),
        ),
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.5),
        pinned_fingerprint: None,
    };
    SweepRecipe {
        members: vec![member(4.5), member(6.0)],
        sharding: sysscale::SweepSharding::ByPlatform,
    }
}

fn in_process(recipe: &SweepRecipe) -> Vec<RunSet> {
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();
    sweep
        .run_parallel_sharded(&mut pool, 3, recipe.sharding)
        .expect("in-process sweep")
}

#[test]
fn halted_dispatcher_resumes_byte_identically_at_every_process_count() {
    let recipe = small_recipe();
    let expected = in_process(&recipe);

    for procs in [1, 2, 4] {
        let path = journal_path(&format!("halt-{procs}"));
        let _ = std::fs::remove_file(&path);

        // First attempt: journal on, abort after two retired leases — the
        // deterministic stand-in for `kill -9` on the dispatcher.
        let mut first = options(procs);
        first.journal = Some(path.clone());
        first.halt_after_leases = Some(2);
        let error = run_distributed(&recipe, &first).expect_err("the halt hook must fire");
        assert!(
            error.to_string().contains("halted after"),
            "{procs} procs: unexpected failure: {error}"
        );
        assert!(path.exists(), "a failed run must leave its journal behind");

        // Resume: same recipe, same plan, no halt.
        let mut second = options(procs);
        second.journal = Some(path.clone());
        let (got, stats) = run_distributed(&recipe, &second).expect("the resume must succeed");
        assert_eq!(
            got, expected,
            "{procs} procs: resumed results must be byte-identical to an \
             uninterrupted run"
        );
        assert_eq!(
            stats.journal_resumes, 2,
            "{procs} procs: exactly the two retired leases replay from disk"
        );
        assert!(
            !path.exists(),
            "a successful run must delete its journal ({procs} procs)"
        );
    }
}

#[test]
fn a_foreign_journal_is_ignored_and_rewritten() {
    let path = journal_path("foreign");
    let _ = std::fs::remove_file(&path);

    // Leave behind a journal for a *different* recipe (3 members).
    let foreign = {
        let mut recipe = small_recipe();
        recipe.members.push(recipe.members[0].clone());
        recipe
    };
    let mut halted = options(2);
    halted.journal = Some(path.clone());
    halted.halt_after_leases = Some(1);
    run_distributed(&foreign, &halted).expect_err("halt");
    assert!(path.exists());

    // A run of the real recipe against the same path must not replay any
    // of the foreign leases — fingerprints differ.
    let recipe = small_recipe();
    let expected = in_process(&recipe);
    let mut opts = options(2);
    opts.journal = Some(path.clone());
    let (got, stats) = run_distributed(&recipe, &opts).expect("clean run over a foreign journal");
    assert_eq!(stats.journal_resumes, 0, "foreign journals must not replay");
    assert_eq!(got, expected);
    assert!(!path.exists());
}

#[test]
fn quarantine_decisions_survive_a_halt_and_resume() {
    let recipe = small_recipe();
    let path = journal_path("quarantine-resume");
    let _ = std::fs::remove_file(&path);
    let poisoned = 2usize;

    let poison = Some(PoisonFault {
        flat: poisoned,
        crash: false,
    });
    let mut first = options(2);
    first.journal = Some(path.clone());
    first.halt_after_leases = Some(3);
    first.poison = poison;
    run_distributed_partial(&recipe, &first).expect_err("halt");

    let mut second = options(2);
    second.journal = Some(path.clone());
    second.poison = poison;
    let (got, failed, stats) =
        run_distributed_partial(&recipe, &second).expect("resumed partial run");
    assert_eq!(failed.len(), 1, "the quarantine decision must persist");
    assert!(failed.contains_flat(poisoned));
    assert!(stats.journal_resumes > 0);

    // Reference: the same partial sweep run uninterrupted, no journal.
    let mut reference = options(2);
    reference.poison = poison;
    let (clean, clean_failed, _) =
        run_distributed_partial(&recipe, &reference).expect("uninterrupted partial run");
    assert_eq!(got, clean, "resumed partial results must be byte-identical");
    assert_eq!(failed.cells(), clean_failed.cells());
}

/// End-to-end through the probe binary: halt (exit code 3, the stand-in for
/// a dispatcher SIGKILL), resume, and compare the result hash against an
/// uninterrupted run's.
#[test]
fn fig10_probe_halt_resume_hash_matches_a_clean_run() {
    let path = journal_path("fig10-probe");
    let _ = std::fs::remove_file(&path);
    let base = |extra: &[&str]| {
        let mut cmd = Command::new(fig10_binary());
        cmd.args([
            "--tdps",
            "3.5",
            "--procs",
            "2",
            "--duration",
            "0.25",
            "--fault-plan",
            "0",
        ])
        .args(extra)
        .env("SYSSCALE_DIST_WORKER", worker_binary());
        cmd
    };

    let clean = base(&[]).output().expect("clean probe run");
    assert!(clean.status.success(), "clean run: {clean:?}");
    let clean_json = String::from_utf8_lossy(&clean.stdout).to_string();

    let journal_arg = path.to_string_lossy().to_string();
    let halted = base(&["--journal", &journal_arg, "--halt-after", "2"])
        .output()
        .expect("halted probe run");
    assert_eq!(
        halted.status.code(),
        Some(3),
        "a halt must exit with the distinct code: {halted:?}"
    );
    assert!(path.exists(), "the halted probe leaves its journal");

    let resumed = base(&["--journal", &journal_arg])
        .output()
        .expect("resumed probe run");
    assert!(resumed.status.success(), "resume: {resumed:?}");
    let resumed_json = String::from_utf8_lossy(&resumed.stdout).to_string();

    let hash = |json: &str| {
        json.split("\"hash\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no hash in probe output: {json}"))
    };
    assert_eq!(
        hash(&clean_json),
        hash(&resumed_json),
        "resumed probe hash must equal the uninterrupted run's \
         (clean: {clean_json} resumed: {resumed_json})"
    );
    assert!(
        resumed_json.contains("\"journal_resumes\":2"),
        "the resume must actually replay the two retired leases: {resumed_json}"
    );
}

/// A real `kill -9` on the dispatcher process, mid-sweep: whatever the
/// journal captured before the kill, the resume must reproduce the clean
/// run's hash exactly.
#[cfg(unix)]
#[test]
fn fig10_probe_survives_a_real_dispatcher_sigkill() {
    let path = journal_path("fig10-sigkill");
    let _ = std::fs::remove_file(&path);
    let journal_arg = path.to_string_lossy().to_string();
    let run = |extra: &[&str]| {
        let mut cmd = Command::new(fig10_binary());
        cmd.args([
            "--tdps",
            "3.5,4.5",
            "--procs",
            "2",
            "--duration",
            "0.25",
            "--fault-plan",
            "0",
        ])
        .args(extra)
        .env("SYSSCALE_DIST_WORKER", worker_binary());
        cmd
    };

    let clean = run(&[]).output().expect("clean probe run");
    assert!(clean.status.success(), "clean run: {clean:?}");

    let mut victim = run(&["--journal", &journal_arg])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim dispatcher");
    // Let it make some progress, then kill it without ceremony. The exact
    // timing doesn't matter: the resume contract holds whether the journal
    // caught zero, some, or all leases.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let _ = victim.kill(); // SIGKILL on unix
    let _ = victim.wait();

    let resumed = run(&["--journal", &journal_arg])
        .output()
        .expect("resumed probe run");
    assert!(
        resumed.status.success(),
        "resume after SIGKILL: {resumed:?}"
    );
    let clean_json = String::from_utf8_lossy(&clean.stdout).to_string();
    let resumed_json = String::from_utf8_lossy(&resumed.stdout).to_string();
    let hash = |json: &str| {
        json.split("\"hash\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no hash in probe output: {json}"))
    };
    assert_eq!(
        hash(&clean_json),
        hash(&resumed_json),
        "post-SIGKILL resume must be byte-identical \
         (clean: {clean_json} resumed: {resumed_json})"
    );
    assert!(!path.exists(), "the successful resume deletes the journal");
}
