//! Differential and fault-tolerance tests for the distributed executor.
//!
//! The contract under test: [`run_distributed`] / [`run_distributed_fold`]
//! are **bit-identical** to the in-process sweep executor on the same
//! recipe — at every process count, over both transports, and with a worker
//! process SIGKILLed mid-sweep and its leases replayed.

use std::path::PathBuf;

use sysscale::{CellId, RunConsumer, RunRecord, RunSet, SessionPool};
use sysscale_dist::{
    run_distributed, run_distributed_fold, sweep_from_sets, DistOptions, DistStats, GovernorSpec,
    MatrixRecipe, PlatformSpec, SweepRecipe, TransportKind, WorkerFault, WorkloadsSpec,
};

/// The worker binary cargo built alongside this test.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sysscale-dist-worker"))
}

fn options(procs: usize) -> DistOptions {
    DistOptions {
        procs: Some(procs),
        worker_binary: Some(worker_binary()),
        ..DistOptions::default()
    }
}

/// A compact two-platform sweep: 2 platforms × 6 workloads × 2 governors.
fn small_recipe() -> SweepRecipe {
    let member = |tdp_w: f64| MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w },
        workloads: WorkloadsSpec::SpecNamed(
            ["mcf", "lbm", "gcc", "milc", "povray", "astar"]
                .map(str::to_string)
                .to_vec(),
        ),
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.5),
        pinned_fingerprint: None,
    };
    SweepRecipe {
        members: vec![member(4.5), member(6.0)],
        sharding: sysscale::SweepSharding::ByPlatform,
    }
}

/// The in-process reference result for a recipe, at the given thread count.
fn in_process(recipe: &SweepRecipe, threads: usize) -> Vec<RunSet> {
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();
    sweep
        .run_parallel_sharded(&mut pool, threads, recipe.sharding)
        .expect("in-process sweep")
}

fn assert_clean(stats: &DistStats, cells: u64) {
    assert_eq!(stats.reissued_leases, 0, "no worker should have died");
    assert_eq!(stats.reexecuted_cells, 0);
    assert_eq!(stats.result_frames, cells);
    assert_eq!(
        stats.workers_spawned, stats.slots,
        "one process per slot, no respawns"
    );
    assert!(stats.heartbeats > 0, "workers must signal liveness");
}

#[test]
fn distributed_matches_in_process_at_every_process_count() {
    let recipe = small_recipe();
    let cells = recipe.total_cells() as u64;
    // The reference thread count is deliberately different from every
    // process count below: the contract is invariance, not coincidence.
    let expected = in_process(&recipe, 3);

    for procs in [1, 2, 4] {
        let (got, stats) =
            run_distributed(&recipe, &options(procs)).expect("distributed sweep succeeds");
        assert_eq!(
            got, expected,
            "{procs}-process run must be bit-identical to the in-process result"
        );
        assert_clean(&stats, cells);
        assert_eq!(stats.slots, procs.min(recipe.total_cells()));
    }
}

/// A deliberately order-sensitive consumer: it records `(flat, energy bits)`
/// in fold/merge order without any sorting. Exact `Vec` equality against
/// the in-process fold therefore checks not just the folded *values* but
/// that the dispatcher's lease replay visits cells in the exact partition
/// order the in-process fold core uses.
struct EnergyLedger;

impl RunConsumer for EnergyLedger {
    type Acc = Vec<(usize, u64)>;

    fn accumulator(&self) -> Self::Acc {
        Vec::new()
    }

    fn fold(&self, acc: &mut Self::Acc, cell: CellId, record: RunRecord) {
        acc.push((
            cell.flat,
            record.report.metrics.energy.as_joules().to_bits(),
        ));
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        into.extend(from);
    }
}

#[test]
fn distributed_fold_replays_the_exact_in_process_partition_order() {
    let recipe = small_recipe();
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();

    for procs in [1, 2] {
        let expected = sweep
            .run_parallel_fold_sharded(&mut pool, procs, recipe.sharding, &EnergyLedger)
            .expect("in-process fold");
        let (got, _) = run_distributed_fold(&recipe, &options(procs), &EnergyLedger)
            .expect("distributed fold");
        assert_eq!(
            got, expected,
            "{procs}-process fold must replay the in-process fold order exactly"
        );
    }
}

#[test]
fn tcp_transport_is_byte_identical_to_pipes() {
    let recipe = small_recipe();
    let cells = recipe.total_cells() as u64;
    let (over_pipes, _) = run_distributed(&recipe, &options(2)).expect("pipe run");
    let (over_tcp, stats) = run_distributed(
        &recipe,
        &DistOptions {
            transport: TransportKind::Tcp,
            ..options(2)
        },
    )
    .expect("tcp run");
    assert_eq!(over_tcp, over_pipes, "transport must not affect results");
    assert_clean(&stats, cells);
}

/// The headline fault-tolerance property (fig. 10 sweep shape): four worker
/// processes, one SIGKILLed mid-lease, and the merged result is still
/// bit-identical to the in-process run — with re-execution bounded to the
/// dead worker's unfinished leases.
#[test]
fn killed_worker_leases_replay_bit_identically() {
    let recipe = SweepRecipe::fig10(&[3.5, 4.5, 6.0, 9.0]);
    let cells = recipe.total_cells() as u64;
    let expected = in_process(&recipe, 2);

    let fault = WorkerFault {
        slot: 1,
        after_results: 5,
        hang: false,
    };
    let leases_per_worker = 4;
    let (got, stats) = run_distributed(
        &recipe,
        &DistOptions {
            fault: Some(fault),
            leases_per_worker,
            ..options(4)
        },
    )
    .expect("distributed sweep survives the kill");

    assert_eq!(
        got, expected,
        "a mid-sweep worker kill must not change a single byte of the result"
    );
    assert_eq!(stats.slots, 4);
    assert_eq!(
        stats.workers_spawned, 5,
        "exactly one respawn replaces the sacrificed worker"
    );
    assert!(
        (1..=leases_per_worker).contains(&stats.reissued_leases),
        "only the dead slot's unfinished leases may be re-issued (got {})",
        stats.reissued_leases
    );
    assert_eq!(
        stats.reexecuted_cells, fault.after_results as usize,
        "re-execution is bounded to the partial results the dead worker streamed"
    );
    assert_eq!(
        stats.result_frames,
        cells + fault.after_results,
        "every cell once, plus the discarded partials"
    );
}

/// Satellite: a hung-but-alive worker (stream open, no frames) stalls the
/// sweep forever without a watchdog — with `heartbeat_timeout` set, the
/// dispatcher kills the silent slot and replays its leases through the same
/// generation-tagged death path a crash takes, bit-identically.
#[test]
fn hung_worker_is_killed_by_the_watchdog_and_leases_replay_bit_identically() {
    let recipe = SweepRecipe::fig10(&[4.5, 6.0]);
    let cells = recipe.total_cells() as u64;
    let expected = in_process(&recipe, 3);

    let fault = WorkerFault {
        slot: 1,
        after_results: 3,
        hang: true,
    };
    // Small batches keep healthy workers' frame gaps far below the timeout,
    // so only the genuinely hung slot trips the watchdog.
    let (got, stats) = run_distributed(
        &recipe,
        &DistOptions {
            fault: Some(fault),
            heartbeat_timeout: Some(std::time::Duration::from_millis(2500)),
            batch_cells: 2,
            ..options(2)
        },
    )
    .expect("distributed sweep survives the hang");

    assert_eq!(
        got, expected,
        "a mid-sweep worker hang must not change a single byte of the result"
    );
    assert_eq!(stats.watchdog_kills, 1, "exactly one hang detected");
    assert_eq!(
        stats.workers_spawned, 3,
        "exactly one respawn replaces the hung worker"
    );
    assert!(stats.reissued_leases >= 1, "the hung lease must re-issue");
    assert_eq!(
        stats.result_frames,
        cells + fault.after_results,
        "every cell once, plus the hung worker's discarded partials"
    );
}

/// Tentpole acceptance: cost-sized leases (recipe sharded by
/// [`sysscale::SweepSharding::SplitHotCost`]) produce RunSets byte-identical
/// to the in-process executor at 1, 2, and 4 worker processes.
#[test]
fn cost_sized_leases_are_bit_identical_at_every_process_count() {
    let mut recipe = small_recipe();
    recipe.sharding = sysscale::SweepSharding::SplitHotCost;
    let cells = recipe.total_cells() as u64;
    let expected = in_process(&recipe, 3);

    for procs in [1, 2, 4] {
        let (got, stats) =
            run_distributed(&recipe, &options(procs)).expect("distributed sweep succeeds");
        assert_eq!(
            got, expected,
            "{procs}-process cost-sharded run must be bit-identical to in-process"
        );
        assert_clean(&stats, cells);
    }
}

#[test]
fn unbuildable_recipes_fail_before_any_worker_spawns() {
    let mut recipe = small_recipe();
    recipe.members[0].workloads = WorkloadsSpec::SpecNamed(vec!["no-such-workload".to_string()]);
    let error = run_distributed(&recipe, &options(2)).unwrap_err();
    let rendered = error.to_string();
    assert!(
        rendered.contains("no-such-workload"),
        "error must name the unknown workload: {rendered}"
    );
}
