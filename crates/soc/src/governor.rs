//! The governor interface: the hook through which a power-management policy
//! (SysScale, MemScale-like, or a fixed baseline) steers the uncore DVFS of
//! the simulated SoC.
//!
//! The PMU invokes the governor once per evaluation interval (30 ms by
//! default) with the averaged counter window, the CSR-derived static demand,
//! and the current operating point; the governor answers with the target
//! operating point and whether the budget it frees may be redistributed to
//! the compute domain.

use std::fmt::Debug;

use sysscale_types::{
    Bandwidth, CounterWindow, Freq, OperatingPointId, OperatingPointTable, Power,
};

/// Everything the PMU gives the governor at an evaluation-interval boundary.
#[derive(Debug)]
pub struct GovernorInput<'a> {
    /// Averaged performance-counter window collected over the elapsed
    /// evaluation interval (one sample per slice).
    pub counters: &'a CounterWindow,
    /// Static (CSR-derived) bandwidth demand of the peripherals.
    pub static_demand: Bandwidth,
    /// The operating point the uncore is currently running at.
    pub current_op: OperatingPointId,
    /// The ladder of available operating points.
    pub ladder: &'a OperatingPointTable,
    /// Package TDP.
    pub tdp: Power,
    /// Peak DRAM bandwidth at the *highest* operating point (used to express
    /// thresholds as fractions of peak).
    pub peak_bandwidth: Bandwidth,
    /// Duration of one counter sample (one slice), in seconds.
    pub sample_seconds: f64,
}

/// The governor's decision for the next evaluation interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorDecision {
    /// The operating point the uncore should run at.
    pub target_op: OperatingPointId,
    /// Whether the power freed by running the uncore below its worst-case
    /// reservation may be handed to the compute domain (SysScale: yes;
    /// power-save-only policies: no).
    pub redistribute_to_compute: bool,
    /// Optional cap on the CPU frequency request (used by CoScale-style
    /// coordinated policies that also slow the cores on memory-bound phases).
    pub cpu_freq_cap: Option<Freq>,
}

impl GovernorDecision {
    /// Keep the current operating point, no redistribution, no CPU cap.
    #[must_use]
    pub fn stay_at(op: OperatingPointId) -> Self {
        Self {
            target_op: op,
            redistribute_to_compute: false,
            cpu_freq_cap: None,
        }
    }
}

/// A power-management policy driving the uncore DVFS.
///
/// Governors are required to be [`Send`] so a boxed instance can be handed
/// to a worker thread of the parallel scenario executor (each run gets a
/// fresh governor, so no `Sync` requirement is needed).
pub trait Governor: Debug + Send {
    /// Short policy name used in reports.
    fn name(&self) -> &str;

    /// Decides the operating point for the next evaluation interval.
    fn decide(&mut self, input: &GovernorInput<'_>) -> GovernorDecision;
}

/// A governor that pins the uncore at a fixed operating point. With the
/// highest point this is the *baseline* system of the evaluation (SysScale
/// disabled); with the lowest point it reproduces the static MD-DVFS setup of
/// the motivation experiment (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedGovernor {
    /// Pin to the highest (true) or lowest (false) point of the ladder.
    pub use_highest: bool,
    /// Whether any freed budget is redistributed (only meaningful when
    /// pinned at the lowest point; used by the motivation experiment's
    /// "MD-DVFS + 1.3 GHz cores" configuration).
    pub redistribute: bool,
}

impl FixedGovernor {
    /// The evaluation baseline: uncore pinned at the highest operating point.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            use_highest: true,
            redistribute: false,
        }
    }

    /// The static multi-domain-DVFS setup of the motivation experiment
    /// (Table 1): uncore pinned at the lowest point.
    #[must_use]
    pub fn md_dvfs(redistribute: bool) -> Self {
        Self {
            use_highest: false,
            redistribute,
        }
    }
}

impl Governor for FixedGovernor {
    fn name(&self) -> &str {
        if self.use_highest {
            "baseline-fixed-high"
        } else if self.redistribute {
            "md-dvfs-redistribute"
        } else {
            "md-dvfs"
        }
    }

    fn decide(&mut self, input: &GovernorInput<'_>) -> GovernorDecision {
        let target = if self.use_highest {
            input.ladder.highest_id()
        } else {
            input.ladder.lowest_id()
        };
        GovernorDecision {
            target_op: target,
            redistribute_to_compute: self.redistribute,
            cpu_freq_cap: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::skylake_lpddr3_ladder;

    fn input<'a>(window: &'a CounterWindow, ladder: &'a OperatingPointTable) -> GovernorInput<'a> {
        GovernorInput {
            counters: window,
            static_demand: Bandwidth::from_gib_s(2.0),
            current_op: ladder.highest_id(),
            ladder,
            tdp: Power::from_watts(4.5),
            peak_bandwidth: Bandwidth::from_gib_s(23.8),
            sample_seconds: 1e-3,
        }
    }

    #[test]
    fn fixed_governor_pins_the_requested_end() {
        let ladder = skylake_lpddr3_ladder();
        let window = CounterWindow::new();
        let mut hi = FixedGovernor::baseline();
        let mut lo = FixedGovernor::md_dvfs(true);
        let d_hi = hi.decide(&input(&window, &ladder));
        let d_lo = lo.decide(&input(&window, &ladder));
        assert_eq!(d_hi.target_op, ladder.highest_id());
        assert!(!d_hi.redistribute_to_compute);
        assert_eq!(d_lo.target_op, ladder.lowest_id());
        assert!(d_lo.redistribute_to_compute);
        assert_eq!(hi.name(), "baseline-fixed-high");
        assert_eq!(lo.name(), "md-dvfs-redistribute");
        assert_eq!(FixedGovernor::md_dvfs(false).name(), "md-dvfs");
    }

    #[test]
    fn stay_at_helper() {
        let d = GovernorDecision::stay_at(OperatingPointId(1));
        assert_eq!(d.target_op, OperatingPointId(1));
        assert!(!d.redistribute_to_compute);
        assert!(d.cpu_freq_cap.is_none());
    }
}
