//! The slice-based SoC simulator.
//!
//! Time advances in slices (1 ms by default, one PMU counter sample each).
//! At every evaluation-interval boundary (30 ms) the PMU invokes the
//! configured [`Governor`], executes any requested uncore DVFS transition
//! through the Fig. 5 flow, recomputes the domain power budgets, and lets the
//! compute-domain PBM re-grant CPU/graphics P-states. Within a slice the
//! models are resolved with a short fixed-point iteration between the CPU's
//! achieved instruction rate and the memory subsystem's queuing latency.

use sysscale_compute::{CpuModel, CpuPhaseDemand, GfxModel, LlcModel};
use sysscale_dram::DramChip;
use sysscale_interconnect::{InterconnectPowerModel, IoInterconnect};
use sysscale_memctrl::{DdrIoPowerModel, MemCtrlPowerModel, MemoryController, TrafficDemand};
use sysscale_power::{
    ComputeDomainPowerModel, ComputeGrant, ComputeRequest, EnergyAccount, PowerBreakdown,
    PowerBudgetManager, RailVoltages,
};
use sysscale_types::{
    Bandwidth, Component, CounterKind, CounterSet, CounterWindow, OperatingPointId, Power,
    RunMetrics, SimError, SimResult, SimTime, UncoreOperatingPoint,
};
use sysscale_workloads::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

use crate::config::SocConfig;
use crate::governor::{Governor, GovernorInput};
use crate::report::{SimReport, SliceTrace};
use crate::transition::TransitionFlow;

/// Uncore average-power estimate used for budget redistribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UncoreEstimate {
    /// Estimated IO-domain power at the operating point.
    pub io: Power,
    /// Estimated memory-domain power at the operating point.
    pub memory: Power,
}

/// The full-SoC simulator.
#[derive(Debug)]
pub struct SocSimulator {
    config: SocConfig,
    dram: DramChip,
    fabric: IoInterconnect,
    mc: MemoryController,
    cpu: CpuModel,
    gfx: GfxModel,
    llc: LlcModel,
    compute_power: ComputeDomainPowerModel,
    mc_power: MemCtrlPowerModel,
    ddrio_power: DdrIoPowerModel,
    fabric_power: InterconnectPowerModel,
    pbm: PowerBudgetManager,
    current_op: OperatingPointId,
}

impl SocSimulator {
    /// Creates a simulator for the given platform configuration. The uncore
    /// starts at the highest operating point with optimized MRC registers
    /// (the BIOS default, Sec. 2.5).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: SocConfig) -> SimResult<Self> {
        config.validate()?;
        let dram = DramChip::new(config.dram());
        let fabric = IoInterconnect::new(
            config.fabric,
            config.uncore_ladder().highest().io_interconnect_freq,
        )?;
        let mc = MemoryController::new(config.memory_controller)?;
        let cpu = CpuModel::new(config.cpu)?;
        let llc = LlcModel::new(config.llc)?;
        let pbm = PowerBudgetManager::new(
            ComputeDomainPowerModel::default(),
            config.cpu_pstates().clone(),
            config.gfx_pstates().clone(),
        );
        let current_op = config.uncore_ladder().highest_id();
        Ok(Self {
            config,
            dram,
            fabric,
            mc,
            cpu,
            gfx: GfxModel::new(),
            llc,
            compute_power: ComputeDomainPowerModel::default(),
            mc_power: MemCtrlPowerModel::default(),
            ddrio_power: DdrIoPowerModel::default(),
            fabric_power: InterconnectPowerModel::default(),
            pbm,
            current_op,
        })
    }

    /// The platform configuration in use.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Peak DRAM bandwidth at the *highest* operating point.
    #[must_use]
    pub fn peak_bandwidth(&self) -> Bandwidth {
        self.config
            .dram()
            .peak_bandwidth(self.config.uncore_ladder().highest().dram_freq)
    }

    /// Restores every piece of mutable run state (DRAM chip, interconnect,
    /// current operating point) to the boot configuration.
    ///
    /// [`SocSimulator::run`] calls this automatically before every run, so a
    /// single simulator can execute any number of scenarios back to back
    /// without state leaking between them; there is no manual reset to
    /// forget.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from rebuilding the interconnect.
    pub fn reset(&mut self) -> SimResult<()> {
        self.dram = DramChip::new(self.config.dram());
        self.fabric = IoInterconnect::new(
            self.config.fabric,
            self.config.uncore_ladder().highest().io_interconnect_freq,
        )?;
        self.current_op = self.config.uncore_ladder().highest_id();
        Ok(())
    }

    /// Runs `workload` under `governor` for `duration` of simulated time.
    ///
    /// The simulator is reset to the boot configuration first, so repeated
    /// runs on the same instance are independent and deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySimulation`] for a non-positive duration and
    /// propagates configuration errors from the transition flow.
    pub fn run(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
    ) -> SimResult<SimReport> {
        self.run_internal(workload, governor, duration, false)
            .map(|(report, _)| report)
    }

    /// Like [`SocSimulator::run`], but also returns a per-slice trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SocSimulator::run`].
    pub fn run_with_trace(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
    ) -> SimResult<(SimReport, Vec<SliceTrace>)> {
        self.run_internal(workload, governor, duration, true)
    }

    /// Estimates the uncore average power at operating point `op` for a given
    /// recent bandwidth and utilization level. Used to size the demand-driven
    /// budget when the governor allows redistribution. A 10 % safety margin
    /// is applied so the redistributed budget never starves the uncore.
    #[must_use]
    pub fn estimate_uncore_power(
        &self,
        op: &UncoreOperatingPoint,
        bandwidth: Bandwidth,
        isochronous: Bandwidth,
    ) -> UncoreEstimate {
        let rails = RailVoltages::for_operating_point(&self.config.nominal_voltages, op);
        let peak = self.config.dram().peak_bandwidth(op.dram_freq);
        let utilization = bandwidth.ratio(peak).clamp(0.0, 1.0);
        let fabric_util = (bandwidth + isochronous)
            .ratio(Bandwidth::from_bytes_per_sec(
                self.config.fabric.bytes_per_cycle * op.io_interconnect_freq.as_hz(),
            ))
            .clamp(0.0, 1.0);

        let fabric_p = self
            .fabric_power
            .power(op.io_interconnect_freq, rails.vsa, fabric_util);
        let mc_p = self
            .mc_power
            .power(op.memory_controller_freq(), rails.vsa, utilization);
        let ddrio = self
            .ddrio_power
            .power(op.ddrio_freq(), rails.vio, utilization, 1.0);
        let dram_p = self.dram.power(bandwidth, 0.0).total();

        let margin = 1.10;
        UncoreEstimate {
            io: (fabric_p + ddrio.digital) * margin,
            memory: (mc_p + ddrio.analog + dram_p) * margin,
        }
    }

    fn compute_request(
        &self,
        workload: &Workload,
        phase: &WorkloadPhase,
        cpu_cap: Option<sysscale_types::Freq>,
    ) -> ComputeRequest {
        let cpu_table = self.pbm.cpu_table();
        let gfx_table = self.pbm.gfx_table();
        let (cpu_requested, gfx_requested, gfx_priority) = match workload.class {
            WorkloadClass::CpuSingleThread
            | WorkloadClass::CpuMultiThread
            | WorkloadClass::Micro => (cpu_table.highest().freq, gfx_table.lowest().freq, false),
            WorkloadClass::Graphics => (cpu_table.pn().freq, gfx_table.highest().freq, true),
            WorkloadClass::BatteryLife => (cpu_table.pn().freq, gfx_table.pn().freq, false),
        };
        let cpu_requested = match cpu_cap {
            Some(cap) => cpu_requested.min(cap),
            None => cpu_requested,
        };
        ComputeRequest {
            cpu_requested,
            gfx_requested,
            cpu_activity: if phase.cpu.active_threads > 0 {
                1.0
            } else {
                0.0
            },
            // Budget conservatively for a fully utilized engine; the actual
            // utilization may be lower (capped frame rates), never higher.
            gfx_activity: if phase.gfx.is_idle() { 0.0 } else { 1.0 },
            gfx_priority,
            c0_fraction: phase.cstates.active_fraction(),
            leakage_fraction: phase.cstates.compute_leakage_fraction(),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_internal(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
        trace: bool,
    ) -> SimResult<(SimReport, Vec<SliceTrace>)> {
        if duration <= SimTime::ZERO {
            return Err(SimError::EmptySimulation);
        }
        let slice = self.config.slice;
        let n_slices = (duration.as_secs() / slice.as_secs()).round().max(1.0) as usize;
        let slices_per_interval = (self.config.evaluation_interval.as_secs() / slice.as_secs())
            .round()
            .max(1.0) as usize;

        // Fresh per-run state: every run starts from the boot configuration.
        self.reset()?;
        let mut flow = TransitionFlow::new(
            self.config.transition_latency,
            self.config.reload_mrc_on_transition,
        );

        let peak_at_highest = self.peak_bandwidth();
        let static_iso = workload.peripherals.isochronous_demand();
        let static_io = workload.peripherals.best_effort_demand();

        let mut window = CounterWindow::new();
        let mut totals = CounterSet::new();
        let mut energy = EnergyAccount::new();
        let mut traces = Vec::new();

        let mut qos_violations = 0u64;
        let mut low_op_slices = 0usize;
        let mut instructions = 0.0f64;
        let mut frames = 0.0f64;
        let mut serviced = 0.0f64;
        let mut cpu_freq_sum = 0.0f64;
        let mut gfx_freq_sum = 0.0f64;
        let mut pending_stall = SimTime::ZERO;
        let mut recent_bandwidth = Bandwidth::ZERO;

        // Initial budget/grant before the first evaluation interval.
        let first_phase = workload.phase_at(SimTime::ZERO);
        let mut budgets = self
            .config
            .budget_policy
            .worst_case_budgets(self.config.tdp);
        let mut grant: ComputeGrant = self.pbm.grant(
            budgets.compute,
            &self.compute_request(workload, first_phase, None),
        );

        for slice_idx in 0..n_slices {
            let now = SimTime::from_secs(slice_idx as f64 * slice.as_secs());
            let phase = workload.phase_at(now).clone();

            // ---- Evaluation-interval boundary: governor + PBM ----
            if slice_idx % slices_per_interval == 0 {
                let input = GovernorInput {
                    counters: &window,
                    static_demand: workload.peripherals.static_demand(),
                    current_op: self.current_op,
                    ladder: self.config.uncore_ladder(),
                    tdp: self.config.tdp,
                    peak_bandwidth: peak_at_highest,
                    sample_seconds: slice.as_secs(),
                };
                let decision = governor.decide(&input);
                window.clear();

                let target = decision.target_op;
                if self.config.uncore_ladder().get(target).is_none() {
                    return Err(SimError::UnknownOperatingPoint {
                        index: target.0,
                        ladder_len: self.config.uncore_ladder().len(),
                    });
                }
                if target != self.current_op {
                    let op = *self
                        .config
                        .uncore_ladder()
                        .get(target)
                        .expect("checked above");
                    let stall = flow.execute(&op, &mut self.dram, &mut self.fabric)?;
                    pending_stall += stall;
                    self.current_op = target;
                }

                let op = *self
                    .config
                    .uncore_ladder()
                    .get(self.current_op)
                    .expect("current op is always valid");
                budgets = if decision.redistribute_to_compute {
                    let estimate = self.estimate_uncore_power(&op, recent_bandwidth, static_iso);
                    self.config.budget_policy.demand_driven_budgets(
                        self.config.tdp,
                        estimate.io,
                        estimate.memory,
                    )
                } else {
                    self.config
                        .budget_policy
                        .worst_case_budgets(self.config.tdp)
                };
                grant = self.pbm.grant(
                    budgets.compute,
                    &self.compute_request(workload, &phase, decision.cpu_freq_cap),
                );
            }

            // ---- Slice resolution ----
            let op = *self
                .config
                .uncore_ladder()
                .get(self.current_op)
                .expect("current op is always valid");
            let rails = RailVoltages::for_operating_point(&self.config.nominal_voltages, &op);
            if self.current_op == self.config.uncore_ladder().lowest_id()
                && self.config.uncore_ladder().len() > 1
            {
                low_op_slices += 1;
            }

            let active_frac = phase.cstates.active_fraction();
            let dram_active_frac = phase.cstates.dram_active_fraction();
            let uncore_activity = phase.cstates.uncore_activity();
            let leakage_fraction = phase.cstates.compute_leakage_fraction();

            let stall_fraction = (pending_stall.as_secs() / slice.as_secs()).min(1.0);
            pending_stall = (pending_stall - slice).max(SimTime::ZERO);
            let service_scale = 1.0 - stall_fraction;

            let cpu_freq = grant.cpu.freq * self.config.hdc.throughput_factor();
            let peak = self.dram.peak_bandwidth() * service_scale;
            let idle_lat = self.dram.idle_access_latency();

            let iso_demand = static_iso * dram_active_frac;
            let io_demand = static_io.max(phase.io.bandwidth_demand()) * dram_active_frac;

            // Fixed point between achieved instruction rate and memory
            // queuing latency.
            let gfx_desired = self.gfx.desired_bandwidth(&phase.gfx, grant.gfx.freq) * active_frac;
            let cpu_demand_adj = CpuPhaseDemand {
                mpki: self.llc.contended_mpki(phase.cpu.mpki, gfx_desired),
                ..phase.cpu
            };
            let mut mem_latency = idle_lat;
            let mut demand = TrafficDemand::IDLE;
            let mut outcome = self.mc.serve(&demand, peak, idle_lat);
            for _ in 0..4 {
                let cpu_probe = self
                    .cpu
                    .evaluate(&cpu_demand_adj, cpu_freq, mem_latency, 1.0);
                demand = TrafficDemand {
                    cpu: cpu_probe.bandwidth_demand * active_frac,
                    gfx: gfx_desired,
                    isochronous: iso_demand,
                    io: io_demand,
                };
                outcome = self.mc.serve(&demand, peak, idle_lat);
                mem_latency = outcome.effective_latency;
            }
            let cpu_final = self.cpu.evaluate(
                &cpu_demand_adj,
                cpu_freq,
                mem_latency,
                outcome.cpu_service_ratio(&demand),
            );
            let gfx_granted = if active_frac > 0.0 {
                outcome.served.gfx / active_frac
            } else {
                Bandwidth::ZERO
            };
            let gfx_final = self.gfx.evaluate(&phase.gfx, grant.gfx.freq, gfx_granted);

            let fabric_out = self.fabric.carry(iso_demand + io_demand);
            let served_total = outcome.served.total();
            recent_bandwidth = served_total;

            // ---- Work accounting ----
            let dt = slice;
            instructions += cpu_final.instructions_per_sec * dt.as_secs() * active_frac;
            frames += gfx_final.fps * dt.as_secs() * active_frac;
            serviced += dt.as_secs();
            cpu_freq_sum += grant.cpu.freq.as_ghz();
            gfx_freq_sum += grant.gfx.freq.as_ghz();

            // ---- Counters ----
            let mut sample = self
                .llc
                .slice_counters(dt, &cpu_final, cpu_freq, outcome.served.gfx);
            sample.set(CounterKind::IoRpq, fabric_out.rpq_occupancy);
            sample.set(
                CounterKind::MemoryBandwidthBytes,
                served_total.as_bytes_per_sec() * dt.as_secs(),
            );
            sample.set(
                CounterKind::IsochronousBandwidthBytes,
                outcome.served.isochronous.as_bytes_per_sec() * dt.as_secs(),
            );
            sample.set(
                CounterKind::FramesRendered,
                gfx_final.fps * dt.as_secs() * active_frac,
            );
            sample.set(CounterKind::C0ResidencySeconds, active_frac * dt.as_secs());
            sample.set(
                CounterKind::SelfRefreshSeconds,
                (1.0 - dram_active_frac) * dt.as_secs(),
            );
            if outcome.qos_violated {
                qos_violations += 1;
                sample.add(CounterKind::QosViolations, 1.0);
            }
            sample.set(CounterKind::DvfsTransitions, flow.stats().count as f64);
            totals.merge(&sample);
            window.push(sample);

            // ---- Power ----
            let mut breakdown = PowerBreakdown::new();
            let cpu_activity = if phase.cpu.active_threads > 0 {
                1.0
            } else {
                0.0
            } * active_frac
                * self.config.hdc.duty();
            breakdown.set(
                Component::CpuCores,
                self.compute_power
                    .cpu
                    .power(grant.cpu, cpu_activity, leakage_fraction),
            );
            breakdown.set(
                Component::GraphicsEngine,
                self.compute_power.gfx.power(
                    grant.gfx,
                    gfx_final.utilization * active_frac,
                    leakage_fraction,
                ),
            );
            breakdown.set(
                Component::Llc,
                Power::from_watts(self.compute_power.llc_active_w * active_frac),
            );
            breakdown.set(
                Component::DisplayController,
                workload.peripherals.display.power(rails.vsa)
                    * uncore_activity.max(dram_active_frac),
            );
            breakdown.set(
                Component::IspEngine,
                workload.peripherals.isp.power(rails.vsa) * uncore_activity.max(dram_active_frac),
            );
            breakdown.set(
                Component::IoControllers,
                Power::from_watts(
                    workload.peripherals.io_activity.controller_power_w()
                        * (rails.vsa.as_volts() / 0.8).powi(2),
                ) * uncore_activity,
            );
            breakdown.set(
                Component::IoInterconnect,
                self.fabric_power
                    .power(op.io_interconnect_freq, rails.vsa, fabric_out.utilization)
                    * uncore_activity,
            );
            breakdown.set(
                Component::MemoryController,
                self.mc_power
                    .power(op.memory_controller_freq(), rails.vsa, outcome.utilization)
                    * uncore_activity,
            );
            let penalty = self.dram.effective_penalty();
            let ddrio = self.ddrio_power.power(
                op.ddrio_freq(),
                rails.vio,
                outcome.utilization,
                penalty.io_power_factor,
            );
            breakdown.set(Component::DdrIoDigital, ddrio.digital * dram_active_frac);
            breakdown.set(Component::DdrIoAnalog, ddrio.analog * dram_active_frac);
            breakdown.set(
                Component::Dram,
                self.dram
                    .power(served_total, 1.0 - dram_active_frac)
                    .total(),
            );
            energy.accumulate(&breakdown, dt);

            if trace {
                traces.push(SliceTrace {
                    at: now,
                    demanded_gib_s: demand.total().as_gib_s(),
                    served_gib_s: served_total.as_gib_s(),
                    power_w: breakdown.total().as_watts(),
                    operating_point: self.current_op.0,
                    cpu_freq_ghz: grant.cpu.freq.as_ghz(),
                });
            }
        }

        let simulated = SimTime::from_secs(n_slices as f64 * slice.as_secs());
        let work_done = match workload.perf_unit {
            PerfUnit::Instructions => instructions,
            PerfUnit::Frames => frames,
            PerfUnit::ServicedSeconds => serviced,
        };
        let metrics = RunMetrics::new(simulated, energy.total(), work_done);
        let c0_total = totals.value(CounterKind::C0ResidencySeconds).max(1e-12);
        let report = SimReport {
            workload: workload.name.clone(),
            governor: governor.name().to_string(),
            metrics,
            energy,
            counters: totals,
            transitions: *flow.stats(),
            qos_violations,
            low_op_residency: low_op_slices as f64 / n_slices as f64,
            average_fps: frames / c0_total,
            average_cpu_freq_ghz: cpu_freq_sum / n_slices as f64,
            average_gfx_freq_ghz: gfx_freq_sum / n_slices as f64,
        };
        Ok((report, traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::FixedGovernor;
    use sysscale_types::Domain;
    use sysscale_workloads::{battery_workload, graphics_workload, spec_workload};

    fn run(workload: &Workload, governor: &mut dyn Governor, ms: f64) -> SimReport {
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        sim.run(workload, governor, SimTime::from_millis(ms))
            .unwrap()
    }

    #[test]
    fn simulator_and_boxed_governors_are_send() {
        // The parallel scenario executor moves simulators and freshly built
        // governors onto worker threads; this must keep compiling.
        fn assert_send<T: Send>() {}
        assert_send::<SocSimulator>();
        assert_send::<Box<dyn Governor>>();
        assert_send::<SocConfig>();
    }

    #[test]
    fn baseline_run_produces_sane_power_and_work() {
        let lbm = spec_workload("lbm").unwrap();
        let report = run(&lbm, &mut FixedGovernor::baseline(), 300.0);
        let power = report.average_power().as_watts();
        assert!(power > 1.0 && power < 4.6, "power {power}");
        assert!(report.metrics.work_done > 0.0);
        assert_eq!(report.qos_violations, 0);
        assert_eq!(report.transitions.count, 0, "baseline never transitions");
        assert!(report.average_memory_bandwidth_gib_s() > 1.0);
        assert!(report.average_domain_power(Domain::Compute) > Power::ZERO);
        assert!(report.average_domain_power(Domain::Memory) > Power::ZERO);
    }

    #[test]
    fn md_dvfs_reduces_power_but_hurts_memory_bound_performance() {
        // The motivation experiment (Fig. 2a): static multi-domain DVFS saves
        // ~10% power but costs >10% performance on memory-bound workloads.
        let lbm = spec_workload("lbm").unwrap();
        let baseline = run(&lbm, &mut FixedGovernor::baseline(), 300.0);
        let scaled = run(&lbm, &mut FixedGovernor::md_dvfs(false), 300.0);
        assert!(scaled.average_power() < baseline.average_power());
        let perf_loss = -scaled.speedup_pct_over(&baseline);
        assert!(perf_loss > 5.0, "lbm perf loss {perf_loss}%");
    }

    #[test]
    fn md_dvfs_barely_hurts_compute_bound_performance() {
        let gamess = spec_workload("gamess").unwrap();
        let baseline = run(&gamess, &mut FixedGovernor::baseline(), 300.0);
        let scaled = run(&gamess, &mut FixedGovernor::md_dvfs(false), 300.0);
        let perf_loss = -scaled.speedup_pct_over(&baseline);
        assert!(perf_loss < 2.0, "gamess perf loss {perf_loss}%");
        let power_saving = scaled.power_reduction_pct_vs(&baseline);
        assert!(power_saving > 3.0, "gamess power saving {power_saving}%");
    }

    #[test]
    fn redistribution_boosts_compute_bound_performance() {
        // Observation 2: handing the saved uncore budget to the cores speeds
        // up compute-bound workloads.
        let gamess = spec_workload("gamess").unwrap();
        let baseline = run(&gamess, &mut FixedGovernor::baseline(), 300.0);
        let boosted = run(&gamess, &mut FixedGovernor::md_dvfs(true), 300.0);
        let speedup = boosted.speedup_pct_over(&baseline);
        assert!(speedup > 3.0, "gamess speedup {speedup}%");
        assert!(boosted.average_cpu_freq_ghz > baseline.average_cpu_freq_ghz);
        // Average power stays within the TDP.
        assert!(boosted.average_power().as_watts() <= 4.6);
    }

    #[test]
    fn graphics_workload_is_gfx_bound_and_benefits_from_redistribution() {
        let mark = graphics_workload("3DMark06").unwrap();
        let baseline = run(&mark, &mut FixedGovernor::baseline(), 300.0);
        let boosted = run(&mark, &mut FixedGovernor::md_dvfs(true), 300.0);
        assert!(baseline.average_fps > 10.0);
        assert!(boosted.average_gfx_freq_ghz > baseline.average_gfx_freq_ghz);
        assert!(boosted.speedup_pct_over(&baseline) > 2.0);
    }

    #[test]
    fn battery_workload_power_drops_at_low_operating_point() {
        let video = battery_workload("video-playback").unwrap();
        let baseline = run(&video, &mut FixedGovernor::baseline(), 300.0);
        let scaled = run(&video, &mut FixedGovernor::md_dvfs(false), 300.0);
        // Fixed performance demand: both meet the frame rate.
        assert!(baseline.average_fps > 50.0);
        assert!(scaled.average_fps > 50.0);
        let saving = scaled.power_reduction_pct_vs(&baseline);
        assert!(saving > 2.0, "video playback saving {saving}%");
        // Battery workloads draw far less than the TDP.
        assert!(baseline.average_power().as_watts() < 2.5);
    }

    #[test]
    fn display_qos_is_never_violated_at_either_operating_point() {
        let video = battery_workload("video-playback").unwrap();
        for gov in [FixedGovernor::baseline(), FixedGovernor::md_dvfs(false)] {
            let mut g = gov;
            let report = run(&video, &mut g, 200.0);
            assert_eq!(report.qos_violations, 0, "{}", report.governor);
        }
    }

    #[test]
    fn trace_records_every_slice() {
        let astar = spec_workload("astar").unwrap();
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        let (report, trace) = sim
            .run_with_trace(
                &astar,
                &mut FixedGovernor::baseline(),
                SimTime::from_millis(2_500.0),
            )
            .unwrap();
        assert_eq!(trace.len(), 2_500);
        assert!(trace.iter().all(|t| t.power_w > 0.0));
        assert!((report.metrics.duration.as_millis() - 2_500.0).abs() < 1e-6);
        // astar alternates phases; the demand trace should not be constant.
        let first = trace.first().unwrap().demanded_gib_s;
        assert!(trace.iter().any(|t| (t.demanded_gib_s - first).abs() > 0.5));
    }

    #[test]
    fn rejects_empty_simulation_and_invalid_config() {
        let lbm = spec_workload("lbm").unwrap();
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        assert_eq!(
            sim.run(&lbm, &mut FixedGovernor::baseline(), SimTime::ZERO)
                .unwrap_err(),
            SimError::EmptySimulation
        );
        let mut bad = SocConfig::skylake_default();
        bad.slice = SimTime::ZERO;
        assert!(SocSimulator::new(bad).is_err());
    }

    #[test]
    fn uncore_estimate_scales_with_operating_point_and_bandwidth() {
        let sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        let ladder = sysscale_types::skylake_lpddr3_ladder();
        let low = sim.estimate_uncore_power(
            ladder.lowest(),
            Bandwidth::from_gib_s(1.0),
            Bandwidth::from_gib_s(1.0),
        );
        let high = sim.estimate_uncore_power(
            ladder.highest(),
            Bandwidth::from_gib_s(1.0),
            Bandwidth::from_gib_s(1.0),
        );
        assert!(high.io > low.io);
        assert!(high.memory > low.memory);
        let busy = sim.estimate_uncore_power(
            ladder.highest(),
            Bandwidth::from_gib_s(15.0),
            Bandwidth::from_gib_s(1.0),
        );
        assert!(busy.memory > high.memory);
        // The worst-case reservation of the budget policy covers the busy
        // estimate (otherwise redistribution could starve the uncore).
        let policy = sysscale_power::BudgetPolicy::default();
        assert!(busy.memory <= policy.memory_worst_case * 1.6);
    }
}
