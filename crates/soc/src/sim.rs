//! The slice-based SoC simulator.
//!
//! Time advances in slices (1 ms by default, one PMU counter sample each).
//! At every evaluation-interval boundary (30 ms) the PMU invokes the
//! configured [`Governor`], executes any requested uncore DVFS transition
//! through the Fig. 5 flow, recomputes the domain power budgets, and lets the
//! compute-domain PBM re-grant CPU/graphics P-states. Within a slice the
//! models are resolved with a short fixed-point iteration between the CPU's
//! achieved instruction rate and the memory subsystem's queuing latency.

use sysscale_compute::{CpuModel, CpuPhaseDemand, GfxModel, LlcModel};
use sysscale_dram::DramChip;
use sysscale_interconnect::{InterconnectPowerModel, IoInterconnect};
use sysscale_memctrl::{DdrIoPowerModel, MemCtrlPowerModel, MemoryController, TrafficDemand};
use sysscale_power::{
    ComputeDomainPowerModel, ComputeGrant, ComputeRequest, EnergyAccount, PowerBreakdown,
    PowerBudgetManager, RailVoltages,
};
use sysscale_types::{
    Bandwidth, Component, CounterKind, CounterSet, CounterWindow, OperatingPointId, Power,
    RunMetrics, SimError, SimResult, SimTime, UncoreOperatingPoint,
};
use sysscale_workloads::{PerfUnit, PhaseSchedule, ResolvedPhase, Workload, WorkloadClass};

use crate::config::SocConfig;
use crate::governor::{Governor, GovernorInput};
use crate::report::{SimReport, SliceLoopStats, SliceTrace};
use crate::trace::{TraceSink, VecTraceSink};
use crate::transition::TransitionFlow;

/// The memory fixed point's iteration cap: the legacy fixed probe count,
/// still the worst case when the latency never becomes bitwise stable.
const FIXED_POINT_MAX_ITERS: u32 = 4;

/// Per-operating-point state the slice loop would otherwise re-derive every
/// slice (ladder lookup, rail voltages, lowest-point flag). Recomputed only
/// when the uncore actually transitions.
#[derive(Debug, Clone, Copy)]
struct OpState {
    op: UncoreOperatingPoint,
    rails: RailVoltages,
    is_lowest: bool,
}

/// DRAM-derived quantities that only change across a DVFS transition
/// (frequency or MRC penalty change), hoisted out of the slice loop.
#[derive(Debug, Clone, Copy)]
struct DramDerived {
    peak: Bandwidth,
    idle_latency: SimTime,
    io_power_factor: f64,
}

/// Uncore average-power estimate used for budget redistribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UncoreEstimate {
    /// Estimated IO-domain power at the operating point.
    pub io: Power,
    /// Estimated memory-domain power at the operating point.
    pub memory: Power,
}

/// The full-SoC simulator.
#[derive(Debug)]
pub struct SocSimulator {
    config: SocConfig,
    dram: DramChip,
    fabric: IoInterconnect,
    mc: MemoryController,
    cpu: CpuModel,
    gfx: GfxModel,
    llc: LlcModel,
    compute_power: ComputeDomainPowerModel,
    mc_power: MemCtrlPowerModel,
    ddrio_power: DdrIoPowerModel,
    fabric_power: InterconnectPowerModel,
    pbm: PowerBudgetManager,
    current_op: OperatingPointId,
}

impl SocSimulator {
    /// Creates a simulator for the given platform configuration. The uncore
    /// starts at the highest operating point with optimized MRC registers
    /// (the BIOS default, Sec. 2.5).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: SocConfig) -> SimResult<Self> {
        config.validate()?;
        let dram = DramChip::new(config.dram());
        let fabric = IoInterconnect::new(
            config.fabric,
            config.uncore_ladder().highest().io_interconnect_freq,
        )?;
        let mc = MemoryController::new(config.memory_controller)?;
        let cpu = CpuModel::new(config.cpu)?;
        let llc = LlcModel::new(config.llc)?;
        let pbm = PowerBudgetManager::new(
            ComputeDomainPowerModel::default(),
            config.cpu_pstates().clone(),
            config.gfx_pstates().clone(),
        );
        let current_op = config.uncore_ladder().highest_id();
        Ok(Self {
            config,
            dram,
            fabric,
            mc,
            cpu,
            gfx: GfxModel::new(),
            llc,
            compute_power: ComputeDomainPowerModel::default(),
            mc_power: MemCtrlPowerModel::default(),
            ddrio_power: DdrIoPowerModel::default(),
            fabric_power: InterconnectPowerModel::default(),
            pbm,
            current_op,
        })
    }

    /// The platform configuration in use.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Peak DRAM bandwidth at the *highest* operating point.
    #[must_use]
    pub fn peak_bandwidth(&self) -> Bandwidth {
        self.config
            .dram()
            .peak_bandwidth(self.config.uncore_ladder().highest().dram_freq)
    }

    /// Restores every piece of mutable run state (DRAM chip, interconnect,
    /// current operating point) to the boot configuration.
    ///
    /// [`SocSimulator::run`] calls this automatically before every run, so a
    /// single simulator can execute any number of scenarios back to back
    /// without state leaking between them; there is no manual reset to
    /// forget.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from rebuilding the interconnect.
    pub fn reset(&mut self) -> SimResult<()> {
        self.dram = DramChip::new(self.config.dram());
        self.fabric = IoInterconnect::new(
            self.config.fabric,
            self.config.uncore_ladder().highest().io_interconnect_freq,
        )?;
        self.current_op = self.config.uncore_ladder().highest_id();
        Ok(())
    }

    /// Runs `workload` under `governor` for `duration` of simulated time.
    ///
    /// The simulator is reset to the boot configuration first, so repeated
    /// runs on the same instance are independent and deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySimulation`] for a non-positive duration and
    /// propagates configuration errors from the transition flow.
    pub fn run(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
    ) -> SimResult<SimReport> {
        self.run_internal(workload, governor, duration, None)
    }

    /// Like [`SocSimulator::run`], but also returns a per-slice trace,
    /// collected through a [`VecTraceSink`].
    ///
    /// For long traced runs prefer [`SocSimulator::run_streaming`] with a
    /// bounded sink, which keeps memory flat instead of buffering every
    /// slice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SocSimulator::run`].
    pub fn run_with_trace(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
    ) -> SimResult<(SimReport, Vec<SliceTrace>)> {
        let mut sink = VecTraceSink::new();
        let report = self.run_internal(workload, governor, duration, Some(&mut sink))?;
        Ok((report, sink.into_vec()))
    }

    /// Like [`SocSimulator::run`], but streams every [`SliceTrace`] into
    /// `sink` as soon as its slice resolves ([`TraceSink::record`] is called
    /// once per slice, in slice order). The simulator itself buffers
    /// nothing, so a bounded sink (e.g.
    /// [`ChannelTraceSink`](crate::ChannelTraceSink)) caps a traced run's
    /// memory regardless of its length.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SocSimulator::run`].
    pub fn run_streaming(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
        sink: &mut dyn TraceSink,
    ) -> SimResult<SimReport> {
        self.run_internal(workload, governor, duration, Some(sink))
    }

    /// Estimates the uncore average power at operating point `op` for a given
    /// recent bandwidth and utilization level. Used to size the demand-driven
    /// budget when the governor allows redistribution. A 10 % safety margin
    /// is applied so the redistributed budget never starves the uncore.
    #[must_use]
    pub fn estimate_uncore_power(
        &self,
        op: &UncoreOperatingPoint,
        bandwidth: Bandwidth,
        isochronous: Bandwidth,
    ) -> UncoreEstimate {
        let rails = RailVoltages::for_operating_point(&self.config.nominal_voltages, op);
        let peak = self.config.dram().peak_bandwidth(op.dram_freq);
        let utilization = bandwidth.ratio(peak).clamp(0.0, 1.0);
        let fabric_util = (bandwidth + isochronous)
            .ratio(Bandwidth::from_bytes_per_sec(
                self.config.fabric.bytes_per_cycle * op.io_interconnect_freq.as_hz(),
            ))
            .clamp(0.0, 1.0);

        let fabric_p = self
            .fabric_power
            .power(op.io_interconnect_freq, rails.vsa, fabric_util);
        let mc_p = self
            .mc_power
            .power(op.memory_controller_freq(), rails.vsa, utilization);
        let ddrio = self
            .ddrio_power
            .power(op.ddrio_freq(), rails.vio, utilization, 1.0);
        let dram_p = self.dram.power(bandwidth, 0.0).total();

        let margin = 1.10;
        UncoreEstimate {
            io: (fabric_p + ddrio.digital) * margin,
            memory: (mc_p + ddrio.analog + dram_p) * margin,
        }
    }

    fn compute_request(
        &self,
        workload: &Workload,
        phase: &ResolvedPhase,
        cpu_cap: Option<sysscale_types::Freq>,
    ) -> ComputeRequest {
        let cpu_table = self.pbm.cpu_table();
        let gfx_table = self.pbm.gfx_table();
        let (cpu_requested, gfx_requested, gfx_priority) = match workload.class {
            WorkloadClass::CpuSingleThread
            | WorkloadClass::CpuMultiThread
            | WorkloadClass::Micro => (cpu_table.highest().freq, gfx_table.lowest().freq, false),
            WorkloadClass::Graphics => (cpu_table.pn().freq, gfx_table.highest().freq, true),
            WorkloadClass::BatteryLife => (cpu_table.pn().freq, gfx_table.pn().freq, false),
        };
        let cpu_requested = match cpu_cap {
            Some(cap) => cpu_requested.min(cap),
            None => cpu_requested,
        };
        ComputeRequest {
            cpu_requested,
            gfx_requested,
            cpu_activity: if phase.cpu_active { 1.0 } else { 0.0 },
            // Budget conservatively for a fully utilized engine; the actual
            // utilization may be lower (capped frame rates), never higher.
            gfx_activity: if phase.gfx_active { 1.0 } else { 0.0 },
            gfx_priority,
            c0_fraction: phase.active_fraction,
            leakage_fraction: phase.compute_leakage_fraction,
        }
    }

    /// Snapshot of the per-operating-point values the slice loop consumes;
    /// refreshed only when [`SocSimulator::current_op`] changes.
    fn op_state(&self) -> OpState {
        let ladder = self.config.uncore_ladder();
        let op = *ladder
            .get(self.current_op)
            .expect("current op is always valid");
        OpState {
            op,
            rails: RailVoltages::for_operating_point(&self.config.nominal_voltages, &op),
            is_lowest: self.current_op == ladder.lowest_id() && ladder.len() > 1,
        }
    }

    /// Snapshot of the DRAM-derived values the slice loop consumes;
    /// refreshed only after a DVFS transition touches the chip.
    fn dram_derived(&self) -> DramDerived {
        DramDerived {
            peak: self.dram.peak_bandwidth(),
            idle_latency: self.dram.idle_access_latency(),
            io_power_factor: self.dram.effective_penalty().io_power_factor,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_internal(
        &mut self,
        workload: &Workload,
        governor: &mut dyn Governor,
        duration: SimTime,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> SimResult<SimReport> {
        if duration <= SimTime::ZERO {
            return Err(SimError::EmptySimulation);
        }
        let slice = self.config.slice;
        let slice_secs = slice.as_secs();
        let n_slices = (duration.as_secs() / slice_secs).round().max(1.0) as usize;
        let slices_per_interval = (self.config.evaluation_interval.as_secs() / slice_secs)
            .round()
            .max(1.0) as usize;

        // Fresh per-run state: every run starts from the boot configuration.
        self.reset()?;
        let mut flow = TransitionFlow::new(
            self.config.transition_latency,
            self.config.reload_mrc_on_transition,
        );

        // Resolve the phase sequence once; the cursor serves every slice's
        // phase lookup in O(1) amortized without cloning.
        let schedule = PhaseSchedule::compile(workload);
        let mut cursor = schedule.cursor();

        let peak_at_highest = self.peak_bandwidth();
        let static_iso = workload.peripherals.isochronous_demand();
        let static_demand = workload.peripherals.static_demand();
        let hdc_throughput = self.config.hdc.throughput_factor();
        let hdc_duty = self.config.hdc.duty();

        // Sized to one evaluation interval so pushes between clears never
        // reallocate: the slice loop itself performs no heap allocation.
        let mut window = CounterWindow::with_capacity(slices_per_interval);
        let mut totals = CounterSet::new();
        let mut energy = EnergyAccount::new();

        let mut qos_violations = 0u64;
        let mut low_op_slices = 0usize;
        let mut fixed_point_iters = 0u64;
        let mut instructions = 0.0f64;
        let mut frames = 0.0f64;
        let mut serviced = 0.0f64;
        let mut cpu_freq_sum = 0.0f64;
        let mut gfx_freq_sum = 0.0f64;
        let mut pending_stall = SimTime::ZERO;
        let mut recent_bandwidth = Bandwidth::ZERO;

        // Operating-point- and DRAM-derived values, cached across slices and
        // invalidated only by an actual transition.
        let mut op_state = self.op_state();
        let mut dram_state = self.dram_derived();

        // Initial budget/grant before the first evaluation interval.
        let first_phase = schedule.phase(cursor.index_at(SimTime::ZERO));
        let mut budgets = self
            .config
            .budget_policy
            .worst_case_budgets(self.config.tdp);
        let mut grant: ComputeGrant = self.pbm.grant(
            budgets.compute,
            &self.compute_request(workload, first_phase, None),
        );

        // Demand terms derived from (phase, grant); recomputed only when
        // either changes.
        let mut cached_phase_idx = usize::MAX;
        let mut gfx_desired = Bandwidth::ZERO;
        let mut cpu_demand_adj = CpuPhaseDemand::idle();

        for slice_idx in 0..n_slices {
            let now = SimTime::from_secs(slice_idx as f64 * slice_secs);
            let phase_idx = cursor.index_at(now);
            let phase = schedule.phase(phase_idx);
            let mut grant_changed = false;

            // ---- Evaluation-interval boundary: governor + PBM ----
            if slice_idx % slices_per_interval == 0 {
                let input = GovernorInput {
                    counters: &window,
                    static_demand,
                    current_op: self.current_op,
                    ladder: self.config.uncore_ladder(),
                    tdp: self.config.tdp,
                    peak_bandwidth: peak_at_highest,
                    sample_seconds: slice_secs,
                };
                let decision = governor.decide(&input);
                window.clear();

                let target = decision.target_op;
                if self.config.uncore_ladder().get(target).is_none() {
                    return Err(SimError::UnknownOperatingPoint {
                        index: target.0,
                        ladder_len: self.config.uncore_ladder().len(),
                    });
                }
                if target != self.current_op {
                    let op = *self
                        .config
                        .uncore_ladder()
                        .get(target)
                        .expect("checked above");
                    let stall = flow.execute(&op, &mut self.dram, &mut self.fabric)?;
                    pending_stall += stall;
                    self.current_op = target;
                    op_state = self.op_state();
                    dram_state = self.dram_derived();
                }

                budgets = if decision.redistribute_to_compute {
                    let estimate =
                        self.estimate_uncore_power(&op_state.op, recent_bandwidth, static_iso);
                    self.config.budget_policy.demand_driven_budgets(
                        self.config.tdp,
                        estimate.io,
                        estimate.memory,
                    )
                } else {
                    self.config
                        .budget_policy
                        .worst_case_budgets(self.config.tdp)
                };
                grant = self.pbm.grant(
                    budgets.compute,
                    &self.compute_request(workload, phase, decision.cpu_freq_cap),
                );
                grant_changed = true;
            }

            // ---- Slice resolution ----
            let OpState { op, rails, .. } = op_state;
            if op_state.is_lowest {
                low_op_slices += 1;
            }

            let active_frac = phase.active_fraction;
            let dram_active_frac = phase.dram_active_fraction;
            let uncore_activity = phase.uncore_activity;
            let leakage_fraction = phase.compute_leakage_fraction;

            let stall_fraction = (pending_stall.as_secs() / slice_secs).min(1.0);
            pending_stall = (pending_stall - slice).max(SimTime::ZERO);
            let service_scale = 1.0 - stall_fraction;

            let cpu_freq = grant.cpu.freq * hdc_throughput;
            let peak = dram_state.peak * service_scale;
            let idle_lat = dram_state.idle_latency;

            let iso_demand = phase.iso_demand;
            let io_demand = phase.io_demand;

            // Demand terms depend only on (phase, grant); both persist for
            // many slices, so recompute lazily.
            if grant_changed || phase_idx != cached_phase_idx {
                cached_phase_idx = phase_idx;
                gfx_desired = self.gfx.desired_bandwidth(&phase.gfx, grant.gfx.freq) * active_frac;
                cpu_demand_adj = CpuPhaseDemand {
                    mpki: self.llc.contended_mpki(phase.cpu.mpki, gfx_desired),
                    ..phase.cpu
                };
            }

            // Fixed point between achieved instruction rate and memory
            // queuing latency. The legacy loop always ran
            // `FIXED_POINT_MAX_ITERS` probe/serve pairs; this one exits as
            // soon as the latency sequence is bitwise stable — either a
            // true fixed point (`l_i == l_{i-1}`: every further iteration
            // reproduces the same state) or a period-2 cycle
            // (`l_i == l_{i-2}`: the sequence alternates, so the legacy
            // final state is the cycle element with the cap's parity). Both
            // exits reproduce the 4-iteration result exactly, in strictly
            // fewer model evaluations.
            let mut input = idle_lat; // latency fed into the next probe
            let mut prev_input = SimTime::ZERO; // latency two steps back
            let mut prev_state: Option<(TrafficDemand, _)> = None;
            let mut demand;
            let mut outcome;
            let mut iters = 0u32;
            loop {
                let cpu_probe = self.cpu.evaluate(&cpu_demand_adj, cpu_freq, input, 1.0);
                demand = TrafficDemand {
                    cpu: cpu_probe.bandwidth_demand * active_frac,
                    gfx: gfx_desired,
                    isochronous: iso_demand,
                    io: io_demand,
                };
                outcome = self.mc.serve(&demand, peak, idle_lat);
                iters += 1;
                let out = outcome.effective_latency;
                if out == input || iters >= FIXED_POINT_MAX_ITERS {
                    input = out;
                    break;
                }
                if iters >= 2 && out == prev_input {
                    if (FIXED_POINT_MAX_ITERS - iters) % 2 == 0 {
                        input = out;
                    } else {
                        let (prev_demand, prev_outcome) =
                            prev_state.expect("set from the second iteration on");
                        demand = prev_demand;
                        outcome = prev_outcome;
                        input = prev_outcome.effective_latency;
                    }
                    break;
                }
                prev_input = input;
                prev_state = Some((demand, outcome));
                input = out;
            }
            let mem_latency = input;
            fixed_point_iters += u64::from(iters);
            let cpu_final = self.cpu.evaluate(
                &cpu_demand_adj,
                cpu_freq,
                mem_latency,
                outcome.cpu_service_ratio(&demand),
            );
            let gfx_granted = if active_frac > 0.0 {
                outcome.served.gfx / active_frac
            } else {
                Bandwidth::ZERO
            };
            let gfx_final = self.gfx.evaluate(&phase.gfx, grant.gfx.freq, gfx_granted);

            let fabric_out = self.fabric.carry(iso_demand + io_demand);
            let served_total = outcome.served.total();
            recent_bandwidth = served_total;

            // ---- Work accounting ----
            let dt = slice;
            instructions += cpu_final.instructions_per_sec * dt.as_secs() * active_frac;
            frames += gfx_final.fps * dt.as_secs() * active_frac;
            serviced += dt.as_secs();
            cpu_freq_sum += grant.cpu.freq.as_ghz();
            gfx_freq_sum += grant.gfx.freq.as_ghz();

            // ---- Counters ----
            let mut sample = self
                .llc
                .slice_counters(dt, &cpu_final, cpu_freq, outcome.served.gfx);
            sample.set(CounterKind::IoRpq, fabric_out.rpq_occupancy);
            sample.set(
                CounterKind::MemoryBandwidthBytes,
                served_total.as_bytes_per_sec() * dt.as_secs(),
            );
            sample.set(
                CounterKind::IsochronousBandwidthBytes,
                outcome.served.isochronous.as_bytes_per_sec() * dt.as_secs(),
            );
            sample.set(
                CounterKind::FramesRendered,
                gfx_final.fps * dt.as_secs() * active_frac,
            );
            sample.set(CounterKind::C0ResidencySeconds, active_frac * dt.as_secs());
            sample.set(
                CounterKind::SelfRefreshSeconds,
                (1.0 - dram_active_frac) * dt.as_secs(),
            );
            if outcome.qos_violated {
                qos_violations += 1;
                sample.add(CounterKind::QosViolations, 1.0);
            }
            sample.set(CounterKind::DvfsTransitions, flow.stats().count as f64);
            totals.merge(&sample);
            window.push(sample);

            // ---- Power ----
            let mut breakdown = PowerBreakdown::new();
            let cpu_activity = if phase.cpu_active { 1.0 } else { 0.0 } * active_frac * hdc_duty;
            breakdown.set(
                Component::CpuCores,
                self.compute_power
                    .cpu
                    .power(grant.cpu, cpu_activity, leakage_fraction),
            );
            breakdown.set(
                Component::GraphicsEngine,
                self.compute_power.gfx.power(
                    grant.gfx,
                    gfx_final.utilization * active_frac,
                    leakage_fraction,
                ),
            );
            breakdown.set(
                Component::Llc,
                Power::from_watts(self.compute_power.llc_active_w * active_frac),
            );
            breakdown.set(
                Component::DisplayController,
                workload.peripherals.display.power(rails.vsa)
                    * uncore_activity.max(dram_active_frac),
            );
            breakdown.set(
                Component::IspEngine,
                workload.peripherals.isp.power(rails.vsa) * uncore_activity.max(dram_active_frac),
            );
            breakdown.set(
                Component::IoControllers,
                Power::from_watts(
                    workload.peripherals.io_activity.controller_power_w()
                        * (rails.vsa.as_volts() / 0.8).powi(2),
                ) * uncore_activity,
            );
            breakdown.set(
                Component::IoInterconnect,
                self.fabric_power
                    .power(op.io_interconnect_freq, rails.vsa, fabric_out.utilization)
                    * uncore_activity,
            );
            breakdown.set(
                Component::MemoryController,
                self.mc_power
                    .power(op.memory_controller_freq(), rails.vsa, outcome.utilization)
                    * uncore_activity,
            );
            let ddrio = self.ddrio_power.power(
                op.ddrio_freq(),
                rails.vio,
                outcome.utilization,
                dram_state.io_power_factor,
            );
            breakdown.set(Component::DdrIoDigital, ddrio.digital * dram_active_frac);
            breakdown.set(Component::DdrIoAnalog, ddrio.analog * dram_active_frac);
            breakdown.set(
                Component::Dram,
                self.dram
                    .power(served_total, 1.0 - dram_active_frac)
                    .total(),
            );
            energy.accumulate(&breakdown, dt);

            if let Some(sink) = sink.as_deref_mut() {
                sink.record(SliceTrace {
                    at: now,
                    demanded_gib_s: demand.total().as_gib_s(),
                    served_gib_s: served_total.as_gib_s(),
                    power_w: breakdown.total().as_watts(),
                    operating_point: self.current_op.0,
                    cpu_freq_ghz: grant.cpu.freq.as_ghz(),
                });
            }
        }

        let simulated = SimTime::from_secs(n_slices as f64 * slice_secs);
        let work_done = match workload.perf_unit {
            PerfUnit::Instructions => instructions,
            PerfUnit::Frames => frames,
            PerfUnit::ServicedSeconds => serviced,
        };
        let metrics = RunMetrics::new(simulated, energy.total(), work_done);
        let c0_total = totals.value(CounterKind::C0ResidencySeconds).max(1e-12);
        let report = SimReport {
            workload: workload.name.clone(),
            governor: governor.name().to_string(),
            metrics,
            energy,
            counters: totals,
            transitions: *flow.stats(),
            qos_violations,
            low_op_residency: low_op_slices as f64 / n_slices as f64,
            average_fps: frames / c0_total,
            average_cpu_freq_ghz: cpu_freq_sum / n_slices as f64,
            average_gfx_freq_ghz: gfx_freq_sum / n_slices as f64,
            loop_stats: SliceLoopStats {
                slices: n_slices as u64,
                fixed_point_iters,
            },
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::FixedGovernor;
    use sysscale_types::Domain;
    use sysscale_workloads::{battery_workload, graphics_workload, spec_workload};

    fn run(workload: &Workload, governor: &mut dyn Governor, ms: f64) -> SimReport {
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        sim.run(workload, governor, SimTime::from_millis(ms))
            .unwrap()
    }

    #[test]
    fn simulator_and_boxed_governors_are_send() {
        // The parallel scenario executor moves simulators and freshly built
        // governors onto worker threads; this must keep compiling.
        fn assert_send<T: Send>() {}
        assert_send::<SocSimulator>();
        assert_send::<Box<dyn Governor>>();
        assert_send::<SocConfig>();
    }

    #[test]
    fn baseline_run_produces_sane_power_and_work() {
        let lbm = spec_workload("lbm").unwrap();
        let report = run(&lbm, &mut FixedGovernor::baseline(), 300.0);
        let power = report.average_power().as_watts();
        assert!(power > 1.0 && power < 4.6, "power {power}");
        assert!(report.metrics.work_done > 0.0);
        assert_eq!(report.qos_violations, 0);
        assert_eq!(report.transitions.count, 0, "baseline never transitions");
        assert!(report.average_memory_bandwidth_gib_s() > 1.0);
        assert!(report.average_domain_power(Domain::Compute) > Power::ZERO);
        assert!(report.average_domain_power(Domain::Memory) > Power::ZERO);
    }

    #[test]
    fn md_dvfs_reduces_power_but_hurts_memory_bound_performance() {
        // The motivation experiment (Fig. 2a): static multi-domain DVFS saves
        // ~10% power but costs >10% performance on memory-bound workloads.
        let lbm = spec_workload("lbm").unwrap();
        let baseline = run(&lbm, &mut FixedGovernor::baseline(), 300.0);
        let scaled = run(&lbm, &mut FixedGovernor::md_dvfs(false), 300.0);
        assert!(scaled.average_power() < baseline.average_power());
        let perf_loss = -scaled.speedup_pct_over(&baseline);
        assert!(perf_loss > 5.0, "lbm perf loss {perf_loss}%");
    }

    #[test]
    fn md_dvfs_barely_hurts_compute_bound_performance() {
        let gamess = spec_workload("gamess").unwrap();
        let baseline = run(&gamess, &mut FixedGovernor::baseline(), 300.0);
        let scaled = run(&gamess, &mut FixedGovernor::md_dvfs(false), 300.0);
        let perf_loss = -scaled.speedup_pct_over(&baseline);
        assert!(perf_loss < 2.0, "gamess perf loss {perf_loss}%");
        let power_saving = scaled.power_reduction_pct_vs(&baseline);
        assert!(power_saving > 3.0, "gamess power saving {power_saving}%");
    }

    #[test]
    fn redistribution_boosts_compute_bound_performance() {
        // Observation 2: handing the saved uncore budget to the cores speeds
        // up compute-bound workloads.
        let gamess = spec_workload("gamess").unwrap();
        let baseline = run(&gamess, &mut FixedGovernor::baseline(), 300.0);
        let boosted = run(&gamess, &mut FixedGovernor::md_dvfs(true), 300.0);
        let speedup = boosted.speedup_pct_over(&baseline);
        assert!(speedup > 3.0, "gamess speedup {speedup}%");
        assert!(boosted.average_cpu_freq_ghz > baseline.average_cpu_freq_ghz);
        // Average power stays within the TDP.
        assert!(boosted.average_power().as_watts() <= 4.6);
    }

    #[test]
    fn graphics_workload_is_gfx_bound_and_benefits_from_redistribution() {
        let mark = graphics_workload("3DMark06").unwrap();
        let baseline = run(&mark, &mut FixedGovernor::baseline(), 300.0);
        let boosted = run(&mark, &mut FixedGovernor::md_dvfs(true), 300.0);
        assert!(baseline.average_fps > 10.0);
        assert!(boosted.average_gfx_freq_ghz > baseline.average_gfx_freq_ghz);
        assert!(boosted.speedup_pct_over(&baseline) > 2.0);
    }

    #[test]
    fn battery_workload_power_drops_at_low_operating_point() {
        let video = battery_workload("video-playback").unwrap();
        let baseline = run(&video, &mut FixedGovernor::baseline(), 300.0);
        let scaled = run(&video, &mut FixedGovernor::md_dvfs(false), 300.0);
        // Fixed performance demand: both meet the frame rate.
        assert!(baseline.average_fps > 50.0);
        assert!(scaled.average_fps > 50.0);
        let saving = scaled.power_reduction_pct_vs(&baseline);
        assert!(saving > 2.0, "video playback saving {saving}%");
        // Battery workloads draw far less than the TDP.
        assert!(baseline.average_power().as_watts() < 2.5);
    }

    #[test]
    fn display_qos_is_never_violated_at_either_operating_point() {
        let video = battery_workload("video-playback").unwrap();
        for gov in [FixedGovernor::baseline(), FixedGovernor::md_dvfs(false)] {
            let mut g = gov;
            let report = run(&video, &mut g, 200.0);
            assert_eq!(report.qos_violations, 0, "{}", report.governor);
        }
    }

    #[test]
    fn trace_records_every_slice() {
        let astar = spec_workload("astar").unwrap();
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        let (report, trace) = sim
            .run_with_trace(
                &astar,
                &mut FixedGovernor::baseline(),
                SimTime::from_millis(2_500.0),
            )
            .unwrap();
        assert_eq!(trace.len(), 2_500);
        assert!(trace.iter().all(|t| t.power_w > 0.0));
        assert!((report.metrics.duration.as_millis() - 2_500.0).abs() < 1e-6);
        // astar alternates phases; the demand trace should not be constant.
        let first = trace.first().unwrap().demanded_gib_s;
        assert!(trace.iter().any(|t| (t.demanded_gib_s - first).abs() > 0.5));
    }

    #[test]
    fn streaming_sink_sees_exactly_the_collected_trace() {
        let astar = spec_workload("astar").unwrap();
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        let duration = SimTime::from_millis(500.0);
        let (collected_report, collected) = sim
            .run_with_trace(&astar, &mut FixedGovernor::baseline(), duration)
            .unwrap();

        let mut streamed = Vec::new();
        let mut sink = crate::FnTraceSink::new(|s: SliceTrace| streamed.push(s));
        let streamed_report = sim
            .run_streaming(&astar, &mut FixedGovernor::baseline(), duration, &mut sink)
            .unwrap();

        assert_eq!(collected_report, streamed_report);
        assert_eq!(collected, streamed);
        assert_eq!(streamed.len(), 500);
    }

    #[test]
    fn bounded_channel_sink_keeps_a_long_traced_run_flat() {
        // A multi-second traced run through a channel bounded to 16 slices:
        // if the simulator buffered O(n_slices) anywhere in the trace path,
        // the producer would deadlock against the tiny capacity; completing
        // the run proves at most `capacity` slices were ever in flight.
        let video = battery_workload("video-playback").unwrap();
        let (mut sink, receiver) = crate::ChannelTraceSink::bounded(16);
        let producer = std::thread::spawn(move || {
            let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
            sim.run_streaming(
                &video,
                &mut FixedGovernor::baseline(),
                SimTime::from_secs(120.0),
                &mut sink,
            )
            .unwrap()
        });
        let mut count = 0usize;
        let mut last_at = SimTime::ZERO;
        for slice in receiver {
            count += 1;
            assert!(slice.at >= last_at, "slices arrive in order");
            last_at = slice.at;
        }
        let report = producer.join().unwrap();
        assert_eq!(count, 120_000);
        assert_eq!(report.loop_stats.slices, 120_000);
    }

    #[test]
    fn fixed_point_stats_show_convergence_savings() {
        // The fixed point exits once the memory latency is bitwise stable,
        // so the per-slice iteration count must stay within [1, 4] and, on
        // real workloads, below the legacy fixed cost of 4.
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        for name in ["lbm", "gamess", "astar"] {
            let w = spec_workload(name).unwrap();
            let report = sim
                .run(
                    &w,
                    &mut FixedGovernor::baseline(),
                    SimTime::from_millis(300.0),
                )
                .unwrap();
            let stats = report.loop_stats;
            assert_eq!(stats.slices, 300, "{name}");
            let per_slice = stats.iters_per_slice();
            assert!(per_slice >= 1.0, "{name}: {per_slice}");
            assert!(per_slice <= 4.0, "{name}: {per_slice}");
        }
        // A saturating workload alternates between the capped and the
        // uncapped latency (a period-2 cycle); the loop detects the cycle
        // and exits before paying the legacy 4 iterations.
        let stream = sysscale_workloads::stream_peak_bandwidth();
        let report = sim
            .run(
                &stream,
                &mut FixedGovernor::baseline(),
                SimTime::from_millis(300.0),
            )
            .unwrap();
        assert!(
            report.loop_stats.iters_per_slice() < 4.0,
            "saturated slices must exit the fixed point early: {}",
            report.loop_stats.iters_per_slice()
        );

        // A fully idle phase produces constant (zero) CPU demand, which is
        // the other guaranteed-convergent case.
        let idle = Workload::new(
            "all-idle",
            WorkloadClass::BatteryLife,
            sysscale_workloads::PerfUnit::ServicedSeconds,
            vec![sysscale_workloads::WorkloadPhase::cpu_only(
                SimTime::from_millis(100.0),
                CpuPhaseDemand::idle(),
            )],
            Default::default(),
        )
        .unwrap();
        let report = sim
            .run(
                &idle,
                &mut FixedGovernor::baseline(),
                SimTime::from_millis(100.0),
            )
            .unwrap();
        assert!(
            report.loop_stats.iters_per_slice() <= 2.0,
            "idle slices converge immediately: {}",
            report.loop_stats.iters_per_slice()
        );
    }

    #[test]
    fn rejects_empty_simulation_and_invalid_config() {
        let lbm = spec_workload("lbm").unwrap();
        let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        assert_eq!(
            sim.run(&lbm, &mut FixedGovernor::baseline(), SimTime::ZERO)
                .unwrap_err(),
            SimError::EmptySimulation
        );
        let mut bad = SocConfig::skylake_default();
        bad.slice = SimTime::ZERO;
        assert!(SocSimulator::new(bad).is_err());
    }

    #[test]
    fn uncore_estimate_scales_with_operating_point_and_bandwidth() {
        let sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
        let ladder = sysscale_types::skylake_lpddr3_ladder();
        let low = sim.estimate_uncore_power(
            ladder.lowest(),
            Bandwidth::from_gib_s(1.0),
            Bandwidth::from_gib_s(1.0),
        );
        let high = sim.estimate_uncore_power(
            ladder.highest(),
            Bandwidth::from_gib_s(1.0),
            Bandwidth::from_gib_s(1.0),
        );
        assert!(high.io > low.io);
        assert!(high.memory > low.memory);
        let busy = sim.estimate_uncore_power(
            ladder.highest(),
            Bandwidth::from_gib_s(15.0),
            Bandwidth::from_gib_s(1.0),
        );
        assert!(busy.memory > high.memory);
        // The worst-case reservation of the budget policy covers the busy
        // estimate (otherwise redistribution could starve the uncore).
        let policy = sysscale_power::BudgetPolicy::default();
        assert!(busy.memory <= policy.memory_worst_case * 1.6);
    }
}
