//! SoC configuration: everything Table 2 specifies plus the model knobs.
//!
//! The configuration is split in two:
//!
//! * [`PlatformArtifacts`] — the large immutable tables a platform is built
//!   from (uncore operating-point ladder, CPU/graphics P-state ladders, the
//!   DRAM module with its timing bins). They are held behind an [`Arc`] and
//!   shared between every clone of a configuration, so per-run and
//!   per-worker simulator construction never deep-clones them;
//! * [`SocConfig`] — the cheaply cloneable per-experiment knobs (TDP, budget
//!   policy, intervals, transition latencies, flags) plus a handle to the
//!   shared artifacts.

use std::sync::Arc;

use sysscale_compute::{CpuConfig, HardwareDutyCycle, LlcConfig, PStateTable};
use sysscale_dram::DramModule;
use sysscale_interconnect::FabricParams;
use sysscale_memctrl::MemoryControllerParams;
use sysscale_power::{BudgetPolicy, NominalVoltages};
use sysscale_types::{
    skylake_lpddr3_ladder, Freq, OperatingPointTable, Power, SimError, SimResult, SimTime,
    TransitionLatency, UncoreOperatingPoint,
};

/// The immutable platform tables shared (via [`Arc`]) by every simulator
/// built for the same platform: the uncore operating-point ladder, the two
/// P-state calibration ladders, and the DRAM module (which carries the
/// supported timing bins).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformArtifacts {
    /// The ladder of uncore (IO + memory domain) operating points.
    pub uncore_ladder: OperatingPointTable,
    /// CPU P-state ladder (shared with every PBM built from this platform).
    pub cpu_pstates: Arc<PStateTable>,
    /// Graphics P-state ladder.
    pub gfx_pstates: Arc<PStateTable>,
    /// DRAM module attached to the SoC.
    pub dram: DramModule,
}

impl PlatformArtifacts {
    /// The Skylake M-6Y75-like platform tables of Table 2.
    #[must_use]
    pub fn skylake_lpddr3() -> Self {
        Self {
            uncore_ladder: skylake_lpddr3_ladder(),
            cpu_pstates: Arc::new(PStateTable::skylake_cpu()),
            gfx_pstates: Arc::new(PStateTable::skylake_gfx()),
            dram: DramModule::skylake_lpddr3(),
        }
    }
}

/// Complete configuration of the simulated SoC platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Thermal design power of the package (4.5 W on the M-6Y75; the part is
    /// configurable from 3.5 W to 7 W, and the architecture scales to 91 W —
    /// Sec. 7.4).
    pub tdp: Power,
    /// The shared immutable platform tables (ladders, P-states, DRAM).
    pub artifacts: Arc<PlatformArtifacts>,
    /// Nominal rail voltages.
    pub nominal_voltages: NominalVoltages,
    /// How the TDP is split between domains.
    pub budget_policy: BudgetPolicy,
    /// CPU core configuration.
    pub cpu: CpuConfig,
    /// LLC configuration.
    pub llc: LlcConfig,
    /// Memory-controller service-model parameters.
    pub memory_controller: MemoryControllerParams,
    /// IO-interconnect parameters.
    pub fabric: FabricParams,
    /// DVFS transition latency components.
    pub transition_latency: TransitionLatency,
    /// Length of one simulation slice (and of one PMU counter sample).
    pub slice: SimTime,
    /// PMU evaluation interval: how often the governor runs (30 ms default,
    /// Sec. 4.3).
    pub evaluation_interval: SimTime,
    /// Whether the DVFS flow reloads optimized MRC register values on every
    /// transition (true for SysScale; false reproduces the naive flow of
    /// Observation 4).
    pub reload_mrc_on_transition: bool,
    /// Hardware duty cycling applied to the compute domain (used at very low
    /// TDP, Sec. 7.2).
    pub hdc: HardwareDutyCycle,
}

impl SocConfig {
    /// The Skylake M-6Y75-like configuration of Table 2 at a given TDP.
    #[must_use]
    pub fn skylake_m_6y75(tdp: Power) -> Self {
        Self {
            tdp,
            artifacts: Arc::new(PlatformArtifacts::skylake_lpddr3()),
            nominal_voltages: NominalVoltages::default(),
            budget_policy: BudgetPolicy::default(),
            cpu: CpuConfig::default(),
            llc: LlcConfig::default(),
            memory_controller: MemoryControllerParams::default(),
            fabric: FabricParams::default(),
            transition_latency: TransitionLatency::skylake_default(),
            slice: SimTime::from_millis(1.0),
            evaluation_interval: SimTime::from_millis(30.0),
            reload_mrc_on_transition: true,
            hdc: HardwareDutyCycle::disabled(),
        }
    }

    /// The default 4.5 W configuration used throughout the evaluation.
    #[must_use]
    pub fn skylake_default() -> Self {
        Self::skylake_m_6y75(Power::from_watts(4.5))
    }

    /// A DDR4 variant of the platform for the Sec. 7.4 sensitivity study:
    /// DDR4-2133 scaled between 1.86 GHz and 1.33 GHz.
    #[must_use]
    pub fn skylake_ddr4(tdp: Power) -> Self {
        let ladder = OperatingPointTable::new(vec![
            UncoreOperatingPoint::new(Freq::from_ghz(1.3333), Freq::from_ghz(0.4), 0.82, 0.87),
            UncoreOperatingPoint::new(Freq::from_ghz(1.8666), Freq::from_ghz(0.8), 1.0, 1.0),
        ])
        .expect("static ladder is well formed");
        Self::skylake_m_6y75(tdp)
            .with_uncore_ladder(ladder)
            .with_dram(DramModule::ddr4_variant())
    }

    /// A three-point LPDDR3 ladder including the 0.8 GHz bin (used by the
    /// Sec. 7.4 operating-point-count ablation).
    #[must_use]
    pub fn skylake_three_point(tdp: Power) -> Self {
        let ladder = OperatingPointTable::new(vec![
            UncoreOperatingPoint::new(Freq::from_ghz(0.8), Freq::from_ghz(0.3), 0.80, 0.82),
            UncoreOperatingPoint::new(Freq::from_ghz(1.0666), Freq::from_ghz(0.4), 0.80, 0.85),
            UncoreOperatingPoint::new(Freq::from_ghz(1.6), Freq::from_ghz(0.8), 1.0, 1.0),
        ])
        .expect("static ladder is well formed");
        Self::skylake_m_6y75(tdp).with_uncore_ladder(ladder)
    }

    /// The uncore operating-point ladder.
    #[must_use]
    pub fn uncore_ladder(&self) -> &OperatingPointTable {
        &self.artifacts.uncore_ladder
    }

    /// The CPU P-state ladder.
    #[must_use]
    pub fn cpu_pstates(&self) -> &Arc<PStateTable> {
        &self.artifacts.cpu_pstates
    }

    /// The graphics P-state ladder.
    #[must_use]
    pub fn gfx_pstates(&self) -> &Arc<PStateTable> {
        &self.artifacts.gfx_pstates
    }

    /// The DRAM module attached to the SoC.
    #[must_use]
    pub fn dram(&self) -> DramModule {
        self.artifacts.dram
    }

    /// Returns this configuration with a different uncore ladder. The other
    /// artifacts stay shared; only the enclosing [`PlatformArtifacts`] handle
    /// is replaced.
    #[must_use]
    pub fn with_uncore_ladder(mut self, ladder: OperatingPointTable) -> Self {
        let mut artifacts = (*self.artifacts).clone();
        artifacts.uncore_ladder = ladder;
        self.artifacts = Arc::new(artifacts);
        self
    }

    /// Returns this configuration with a different DRAM module.
    #[must_use]
    pub fn with_dram(mut self, dram: DramModule) -> Self {
        let mut artifacts = (*self.artifacts).clone();
        artifacts.dram = dram;
        self.artifacts = Arc::new(artifacts);
        self
    }

    /// Returns `true` if `other` shares this configuration's platform
    /// artifacts *by handle* (no table comparison).
    #[must_use]
    pub fn shares_artifacts_with(&self, other: &SocConfig) -> bool {
        Arc::ptr_eq(&self.artifacts, &other.artifacts)
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the TDP cannot cover the budget
    /// policy, timing intervals are inconsistent, or any ladder frequency is
    /// unsupported by the DRAM module.
    pub fn validate(&self) -> SimResult<()> {
        self.budget_policy.validate(self.tdp)?;
        self.cpu.validate()?;
        self.llc.validate()?;
        self.memory_controller.validate()?;
        self.fabric.validate()?;
        if self.slice <= SimTime::ZERO {
            return Err(SimError::invalid_config("slice duration must be positive"));
        }
        if self.evaluation_interval < self.slice {
            return Err(SimError::invalid_config(
                "evaluation interval must be at least one slice",
            ));
        }
        for (_, op) in self.uncore_ladder().iter() {
            if !self.dram().supports_frequency(op.dram_freq) {
                return Err(SimError::invalid_config(format!(
                    "dram does not support the {:.0} MHz operating point",
                    op.dram_freq.as_mhz()
                )));
            }
        }
        Ok(())
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::skylake_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table2() {
        let cfg = SocConfig::skylake_default();
        assert!(cfg.validate().is_ok());
        assert!((cfg.tdp.as_watts() - 4.5).abs() < 1e-12);
        assert_eq!(cfg.cpu.cores, 2);
        assert_eq!(cfg.llc.size_mib, 4.0);
        assert_eq!(cfg.uncore_ladder().len(), 2);
        assert!((cfg.evaluation_interval.as_millis() - 30.0).abs() < 1e-9);
        assert!(cfg.reload_mrc_on_transition);
    }

    #[test]
    fn tdp_variants_validate_across_the_paper_range() {
        for tdp in [3.5, 4.5, 7.0, 15.0] {
            let cfg = SocConfig::skylake_m_6y75(Power::from_watts(tdp));
            assert!(cfg.validate().is_ok(), "tdp {tdp}");
        }
        // A TDP below the uncore reservation is rejected.
        assert!(SocConfig::skylake_m_6y75(Power::from_watts(1.0))
            .validate()
            .is_err());
    }

    #[test]
    fn ddr4_and_three_point_variants_are_consistent() {
        assert!(SocConfig::skylake_ddr4(Power::from_watts(4.5))
            .validate()
            .is_ok());
        let three = SocConfig::skylake_three_point(Power::from_watts(4.5));
        assert!(three.validate().is_ok());
        assert_eq!(three.uncore_ladder().len(), 3);
    }

    #[test]
    fn validation_catches_inconsistent_intervals_and_frequencies() {
        let mut cfg = SocConfig::skylake_default();
        cfg.evaluation_interval = SimTime::from_micros(100.0);
        assert!(cfg.validate().is_err());
        // LPDDR3 ladder frequencies are not DDR4 bins.
        let cfg2 = SocConfig::skylake_default().with_dram(DramModule::ddr4_variant());
        assert!(cfg2.validate().is_err());
        let mut cfg3 = SocConfig::skylake_default();
        cfg3.slice = SimTime::ZERO;
        assert!(cfg3.validate().is_err());
    }

    #[test]
    fn clones_share_artifacts_and_mutators_replace_the_handle() {
        let base = SocConfig::skylake_default();
        let clone = base.clone();
        assert!(base.shares_artifacts_with(&clone));
        assert_eq!(base, clone);

        // Scalar tweaks keep the artifacts shared.
        let mut tweaked = base.clone();
        tweaked.reload_mrc_on_transition = false;
        assert!(base.shares_artifacts_with(&tweaked));
        assert_ne!(base, tweaked);

        // Artifact mutators replace the handle (copy-on-write) but leave the
        // untouched tables shared one level down.
        let reladdered = base.clone().with_uncore_ladder(
            OperatingPointTable::new(vec![UncoreOperatingPoint::new(
                Freq::from_ghz(1.6),
                Freq::from_ghz(0.8),
                1.0,
                1.0,
            )])
            .unwrap(),
        );
        assert!(!base.shares_artifacts_with(&reladdered));
        assert!(Arc::ptr_eq(base.cpu_pstates(), reladdered.cpu_pstates()));
        assert_eq!(reladdered.uncore_ladder().len(), 1);
    }
}
