//! Simulation reports: what one run of the simulator produces.

use sysscale_power::EnergyAccount;
use sysscale_types::{CounterKind, CounterSet, Domain, Power, RunMetrics, SimTime};

use crate::transition::TransitionStats;

/// Result of simulating one workload under one governor.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Name of the workload that ran.
    pub workload: String,
    /// Name of the governor that steered the uncore.
    pub governor: String,
    /// Aggregate run metrics (duration, energy, work done).
    pub metrics: RunMetrics,
    /// Per-component integrated energy.
    pub energy: EnergyAccount,
    /// Total counter values accumulated over the run.
    pub counters: CounterSet,
    /// DVFS transition statistics.
    pub transitions: TransitionStats,
    /// Number of slices in which isochronous QoS was violated.
    pub qos_violations: u64,
    /// Fraction of the run spent at the lowest uncore operating point.
    pub low_op_residency: f64,
    /// Average achieved frame rate (graphics and battery-life workloads).
    pub average_fps: f64,
    /// Average effective CPU frequency granted by the PBM.
    pub average_cpu_freq_ghz: f64,
    /// Average graphics frequency granted by the PBM.
    pub average_gfx_freq_ghz: f64,
    /// Slice-loop execution statistics (slice count, memory fixed-point
    /// iterations) — the microbenchmark signal for the hot path.
    pub loop_stats: SliceLoopStats,
}

/// Execution statistics of the simulator's inner slice loop, reported per
/// run. These describe *how much work the model performed*, not the model's
/// outputs: benches use them to track slices/sec and the cost of the
/// CPU↔memory fixed point across revisions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SliceLoopStats {
    /// Number of slices executed.
    pub slices: u64,
    /// Total memory fixed-point iterations executed (each one CPU-model
    /// probe plus one memory-controller service evaluation). The fixed
    /// point exits as soon as the effective memory latency is bitwise
    /// stable, so this is at most `4 × slices` (the legacy fixed cost);
    /// saturating and idle phases exit earlier, while non-saturated active
    /// phases generally pay the full cap.
    pub fixed_point_iters: u64,
}

impl SliceLoopStats {
    /// Average fixed-point iterations per slice.
    #[must_use]
    pub fn iters_per_slice(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.fixed_point_iters as f64 / self.slices as f64
        }
    }
}

impl SimReport {
    /// Average SoC power over the run.
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.metrics.average_power()
    }

    /// Average power of one domain over the run.
    #[must_use]
    pub fn average_domain_power(&self, domain: Domain) -> Power {
        self.energy.average_domain_power(domain)
    }

    /// Average main-memory bandwidth consumed over the run.
    #[must_use]
    pub fn average_memory_bandwidth_gib_s(&self) -> f64 {
        let duration = self.metrics.duration;
        if duration.is_zero() {
            return 0.0;
        }
        self.counters.value(CounterKind::MemoryBandwidthBytes)
            / duration.as_secs()
            / (1u64 << 30) as f64
    }

    /// Throughput relative to a baseline run of the same workload, as a
    /// speedup percentage.
    #[must_use]
    pub fn speedup_pct_over(&self, baseline: &SimReport) -> f64 {
        self.metrics.speedup_pct_over(&baseline.metrics)
    }

    /// Average-power reduction relative to a baseline run, in percent.
    #[must_use]
    pub fn power_reduction_pct_vs(&self, baseline: &SimReport) -> f64 {
        self.metrics.power_reduction_pct_vs(&baseline.metrics)
    }

    /// Energy-delay-product improvement relative to a baseline run, percent.
    #[must_use]
    pub fn edp_improvement_pct_vs(&self, baseline: &SimReport) -> f64 {
        self.metrics.edp_improvement_pct_vs(&baseline.metrics)
    }
}

/// A compact per-slice record, collected when tracing is enabled. Used by the
/// figure harness to plot bandwidth-demand-over-time curves (Fig. 3(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceTrace {
    /// Simulated time at the start of the slice.
    pub at: SimTime,
    /// Memory bandwidth demanded during the slice, GiB/s.
    pub demanded_gib_s: f64,
    /// Memory bandwidth served during the slice, GiB/s.
    pub served_gib_s: f64,
    /// Total SoC power during the slice, watts.
    pub power_w: f64,
    /// Operating-point index the uncore ran at.
    pub operating_point: usize,
    /// Granted CPU frequency, GHz.
    pub cpu_freq_ghz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::Energy;

    fn report(joules: f64, secs: f64, work: f64) -> SimReport {
        SimReport {
            workload: "w".into(),
            governor: "g".into(),
            metrics: RunMetrics::new(SimTime::from_secs(secs), Energy::from_joules(joules), work),
            energy: EnergyAccount::new(),
            counters: CounterSet::new(),
            transitions: TransitionStats::default(),
            qos_violations: 0,
            low_op_residency: 0.0,
            average_fps: 0.0,
            average_cpu_freq_ghz: 0.0,
            average_gfx_freq_ghz: 0.0,
            loop_stats: SliceLoopStats::default(),
        }
    }

    #[test]
    fn comparison_helpers_delegate_to_metrics() {
        let base = report(9.0, 2.0, 100.0);
        let better = report(8.1, 2.0, 110.0);
        assert!((better.speedup_pct_over(&base) - 10.0).abs() < 1e-9);
        assert!((better.power_reduction_pct_vs(&base) - 10.0).abs() < 1e-9);
        assert!(better.edp_improvement_pct_vs(&base) > 0.0);
        assert!((base.average_power().as_watts() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn loop_stats_average_is_well_defined() {
        let empty = SliceLoopStats::default();
        assert_eq!(empty.iters_per_slice(), 0.0);
        let stats = SliceLoopStats {
            slices: 100,
            fixed_point_iters: 250,
        };
        assert!((stats.iters_per_slice() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn memory_bandwidth_average_uses_counters() {
        let mut r = report(9.0, 2.0, 100.0);
        r.counters
            .set(CounterKind::MemoryBandwidthBytes, 4.0 * (1u64 << 30) as f64);
        assert!((r.average_memory_bandwidth_gib_s() - 2.0).abs() < 1e-9);
        let empty = report(0.0, 0.0, 0.0);
        assert_eq!(empty.average_memory_bandwidth_gib_s(), 0.0);
    }
}
