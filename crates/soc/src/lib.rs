//! # sysscale-soc
//!
//! The full mobile-SoC simulator: a slice-based model of the three domains
//! (compute, IO, memory) with their shared voltage rails, the PMU evaluation
//! loop, the Fig. 5 uncore DVFS transition flow, and the [`Governor`] trait
//! that power-management policies (SysScale, baselines) plug into.
//!
//! ## Example
//!
//! ```
//! use sysscale_soc::{FixedGovernor, SocConfig, SocSimulator};
//! use sysscale_types::SimTime;
//! use sysscale_workloads::spec_workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = SocSimulator::new(SocConfig::skylake_default())?;
//! let workload = spec_workload("perlbench").expect("part of the suite");
//! let report = sim.run(
//!     &workload,
//!     &mut FixedGovernor::baseline(),
//!     SimTime::from_millis(100.0),
//! )?;
//! assert!(report.average_power().as_watts() < 4.6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod config;
mod governor;
mod report;
mod sim;
mod trace;
mod transition;

pub use config::{PlatformArtifacts, SocConfig};
pub use governor::{FixedGovernor, Governor, GovernorDecision, GovernorInput};
pub use report::{SimReport, SliceLoopStats, SliceTrace};
pub use sim::{SocSimulator, UncoreEstimate};
pub use trace::{ChannelTraceSink, FnTraceSink, TraceSink, VecTraceSink};
pub use transition::{TransitionFlow, TransitionStats};
