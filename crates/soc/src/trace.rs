//! Streaming consumers for per-slice traces.
//!
//! The simulator used to buffer every [`SliceTrace`] of a traced run in a
//! `Vec`, so a multi-minute trace grew O(n_slices) memory on every worker.
//! A [`TraceSink`] decouples *producing* slices from *storing* them: the
//! slice loop hands each record to the sink as soon as the slice resolves,
//! and the sink decides whether to collect ([`VecTraceSink`]), forward
//! through a bounded channel ([`ChannelTraceSink`]), or invoke a callback
//! ([`FnTraceSink`]). With the channel sink a traced run's memory stays flat
//! regardless of length: at most `capacity` slices are in flight.

use std::sync::mpsc::{Receiver, SyncSender};

use crate::report::SliceTrace;

/// A consumer of per-slice trace records.
///
/// [`SocSimulator::run_streaming`] calls [`TraceSink::record`] exactly once
/// per simulated slice, in slice order, from the simulating thread. A sink
/// must therefore be cheap or apply its own backpressure (as the bounded
/// [`ChannelTraceSink`] does); the simulator never buffers on the sink's
/// behalf.
///
/// [`SocSimulator::run_streaming`]: crate::SocSimulator::run_streaming
pub trait TraceSink: Send {
    /// Consumes one slice record.
    fn record(&mut self, slice: SliceTrace);
}

/// The collecting sink: buffers every slice in a `Vec`, reproducing the
/// classic `run_with_trace` behaviour.
#[derive(Debug, Default)]
pub struct VecTraceSink {
    slices: Vec<SliceTrace>,
}

impl VecTraceSink {
    /// Creates an empty collecting sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slices collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `true` if nothing has been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Consumes the sink, returning the collected slices.
    #[must_use]
    pub fn into_vec(self) -> Vec<SliceTrace> {
        self.slices
    }
}

impl TraceSink for VecTraceSink {
    fn record(&mut self, slice: SliceTrace) {
        self.slices.push(slice);
    }
}

/// A sink that forwards slices through a *bounded* channel to a consumer
/// thread.
///
/// At most `capacity` slices are buffered; when the consumer lags, the
/// simulating thread blocks until space frees up, so a traced run of any
/// length holds O(capacity) trace memory. If the receiving end is dropped,
/// the sink stops forwarding (remaining slices are discarded) instead of
/// failing the simulation; [`ChannelTraceSink::is_disconnected`] reports
/// that state.
#[derive(Debug)]
pub struct ChannelTraceSink {
    sender: Option<SyncSender<SliceTrace>>,
}

impl ChannelTraceSink {
    /// Creates a sink/receiver pair over a channel bounded to `capacity`
    /// in-flight slices.
    #[must_use]
    pub fn bounded(capacity: usize) -> (Self, Receiver<SliceTrace>) {
        let (sender, receiver) = std::sync::mpsc::sync_channel(capacity);
        (
            Self {
                sender: Some(sender),
            },
            receiver,
        )
    }

    /// Creates a sink from an existing bounded sender (e.g. a clone shared
    /// by several concurrently traced runs feeding one consumer).
    #[must_use]
    pub fn from_sender(sender: SyncSender<SliceTrace>) -> Self {
        Self {
            sender: Some(sender),
        }
    }

    /// `true` once the receiving end has gone away and forwarding stopped.
    #[must_use]
    pub fn is_disconnected(&self) -> bool {
        self.sender.is_none()
    }
}

impl TraceSink for ChannelTraceSink {
    fn record(&mut self, slice: SliceTrace) {
        // `send` blocks while the channel is full (backpressure) and errors
        // only when the receiver is gone (stop forwarding).
        if let Some(sender) = &self.sender {
            if sender.send(slice).is_err() {
                self.sender = None;
            }
        }
    }
}

/// A sink that invokes a callback for every slice (e.g. incremental
/// aggregation or writing a row to disk without retaining it).
pub struct FnTraceSink<F: FnMut(SliceTrace) + Send> {
    callback: F,
}

impl<F: FnMut(SliceTrace) + Send> FnTraceSink<F> {
    /// Wraps a callback as a sink.
    pub fn new(callback: F) -> Self {
        Self { callback }
    }
}

impl<F: FnMut(SliceTrace) + Send> std::fmt::Debug for FnTraceSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnTraceSink").finish_non_exhaustive()
    }
}

impl<F: FnMut(SliceTrace) + Send> TraceSink for FnTraceSink<F> {
    fn record(&mut self, slice: SliceTrace) {
        (self.callback)(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::SimTime;

    fn slice(i: usize) -> SliceTrace {
        SliceTrace {
            at: SimTime::from_millis(i as f64),
            demanded_gib_s: i as f64,
            served_gib_s: i as f64,
            power_w: 1.0,
            operating_point: 0,
            cpu_freq_ghz: 1.0,
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecTraceSink::new();
        assert!(sink.is_empty());
        for i in 0..5 {
            sink.record(slice(i));
        }
        assert_eq!(sink.len(), 5);
        let v = sink.into_vec();
        assert_eq!(v.len(), 5);
        assert!((v[3].demanded_gib_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fn_sink_invokes_callback_per_slice() {
        let mut seen = 0usize;
        {
            let mut sink = FnTraceSink::new(|s: SliceTrace| {
                assert!(s.power_w > 0.0);
                seen += 1;
            });
            for i in 0..7 {
                sink.record(slice(i));
            }
        }
        assert_eq!(seen, 7);
    }

    #[test]
    fn channel_sink_applies_backpressure_and_survives_disconnect() {
        let (mut sink, receiver) = ChannelTraceSink::bounded(2);
        // Producer blocks once the bound is hit, so drain concurrently.
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                sink.record(slice(i));
            }
            sink
        });
        let received: Vec<SliceTrace> = receiver.iter().take(100).collect();
        assert_eq!(received.len(), 100);
        assert!((received[99].demanded_gib_s - 99.0).abs() < 1e-12);
        let mut sink = producer.join().unwrap();
        assert!(!sink.is_disconnected());
        // Receiver dropped: recording becomes a no-op instead of an error.
        drop(receiver);
        sink.record(slice(0));
        sink.record(slice(1));
        assert!(sink.is_disconnected());
    }
}
