//! The uncore DVFS transition flow of Fig. 5.
//!
//! The flow orders the steps differently depending on the direction of the
//! change: voltages rise *before* the PLL/DLL relock when frequencies
//! increase (step 2) and drop *after* it when they decrease (step 7). The
//! memory interface may only be reconfigured while DRAM is in self-refresh
//! and the IO interconnect is blocked and drained. SysScale additionally
//! loads the optimized MRC register set for the new frequency from on-chip
//! SRAM (step 5); the naive flow skips that step, which is the Observation 4
//! ablation.

use sysscale_dram::DramChip;
use sysscale_interconnect::IoInterconnect;
use sysscale_power::VoltageRegulator;
use sysscale_types::{SimResult, SimTime, TransitionLatency, UncoreOperatingPoint};

/// Statistics of the transitions performed so far.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransitionStats {
    /// Number of completed transitions.
    pub count: u64,
    /// Total stall time imposed on the IO and memory domains.
    pub total_stall: SimTime,
    /// Worst single-transition stall.
    pub max_stall: SimTime,
}

/// Executes Fig. 5 transition flows against the DRAM chip and the IO fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionFlow {
    latency: TransitionLatency,
    regulator: VoltageRegulator,
    reload_mrc: bool,
    stats: TransitionStats,
}

impl TransitionFlow {
    /// Creates a flow with the given fixed latency components.
    #[must_use]
    pub fn new(latency: TransitionLatency, reload_mrc: bool) -> Self {
        Self {
            latency,
            regulator: VoltageRegulator::default(),
            reload_mrc,
            stats: TransitionStats::default(),
        }
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &TransitionStats {
        &self.stats
    }

    /// Whether this flow reloads optimized MRC values (SysScale does; the
    /// naive multi-frequency flow does not).
    #[must_use]
    pub fn reloads_mrc(&self) -> bool {
        self.reload_mrc
    }

    /// Executes one transition from the current state of `dram`/`fabric` to
    /// `target`. Returns the stall time imposed on the IO and memory domains.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the DRAM chip or fabric (e.g. an
    /// unsupported frequency bin).
    pub fn execute(
        &mut self,
        target: &UncoreOperatingPoint,
        dram: &mut DramChip,
        fabric: &mut IoInterconnect,
    ) -> SimResult<SimTime> {
        let increasing = target.dram_freq > dram.frequency();

        // Step 3: block and drain the IO interconnect and LLC traffic.
        let drain = fabric.block_and_drain();
        // Step 4: DRAM enters self-refresh.
        dram.enter_self_refresh();
        // Step 5: load optimized MRC values for the new frequency (SysScale
        // only).
        if self.reload_mrc {
            dram.load_optimized_registers(target.dram_freq)?;
        }
        // Step 6: relock PLLs/DLLs to the new frequencies.
        dram.set_frequency(target.dram_freq)?;
        fabric.set_frequency(target.io_interconnect_freq)?;
        // Step 8: DRAM exits self-refresh.
        let sr_exit = dram.exit_self_refresh();
        // Step 9: release the interconnect and LLC traffic.
        fabric.release();

        // Stall accounting per Sec. 5: the fixed flow latencies dominate; the
        // measured drain/self-refresh-exit components replace the fixed ones
        // when they are larger (they never are with default parameters).
        let base = if increasing {
            self.latency.stall_on_increase()
        } else {
            self.latency.stall_on_decrease()
        };
        let stall = base.max(drain + sr_exit + self.latency.mrc_load + self.latency.firmware);

        self.stats.count += 1;
        self.stats.total_stall += stall;
        self.stats.max_stall = self.stats.max_stall.max(stall);
        Ok(stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::skylake_lpddr3_ladder;

    fn setup() -> (DramChip, IoInterconnect, TransitionFlow) {
        (
            DramChip::skylake_lpddr3(),
            IoInterconnect::skylake_default(),
            TransitionFlow::new(TransitionLatency::skylake_default(), true),
        )
    }

    #[test]
    fn transition_down_and_up_stays_under_10us_and_updates_state() {
        let (mut dram, mut fabric, mut flow) = setup();
        let ladder = skylake_lpddr3_ladder();
        let low = ladder.lowest();
        let high = ladder.highest();

        let down = flow.execute(low, &mut dram, &mut fabric).unwrap();
        assert!(down < SimTime::from_micros(10.0));
        assert!((dram.frequency().as_mhz() - low.dram_freq.as_mhz()).abs() < 1.0);
        assert!((fabric.frequency().as_ghz() - 0.4).abs() < 1e-9);
        assert!(dram.registers_optimized());

        let up = flow.execute(high, &mut dram, &mut fabric).unwrap();
        assert!(up < SimTime::from_micros(10.0));
        // Increasing transitions pay the voltage ramp on the critical path.
        assert!(up > down);
        assert_eq!(flow.stats().count, 2);
        assert!(flow.stats().max_stall >= flow.stats().total_stall - flow.stats().max_stall);
    }

    #[test]
    fn naive_flow_leaves_registers_unoptimized() {
        let (mut dram, mut fabric, _) = setup();
        let mut naive = TransitionFlow::new(TransitionLatency::skylake_default(), false);
        assert!(!naive.reloads_mrc());
        let ladder = skylake_lpddr3_ladder();
        naive
            .execute(ladder.lowest(), &mut dram, &mut fabric)
            .unwrap();
        assert!(!dram.registers_optimized());
        // The SysScale flow fixes it up on the next transition.
        let mut sysscale = TransitionFlow::new(TransitionLatency::skylake_default(), true);
        sysscale
            .execute(ladder.lowest(), &mut dram, &mut fabric)
            .unwrap();
        assert!(dram.registers_optimized());
    }

    #[test]
    fn fabric_is_released_even_after_same_frequency_transition() {
        let (mut dram, mut fabric, mut flow) = setup();
        let ladder = skylake_lpddr3_ladder();
        flow.execute(ladder.highest(), &mut dram, &mut fabric)
            .unwrap();
        assert_eq!(fabric.state(), sysscale_interconnect::FabricState::Running);
        assert_eq!(dram.state(), sysscale_dram::DramState::Active);
    }

    #[test]
    fn stats_accumulate() {
        let (mut dram, mut fabric, mut flow) = setup();
        let ladder = skylake_lpddr3_ladder();
        for _ in 0..5 {
            flow.execute(ladder.lowest(), &mut dram, &mut fabric)
                .unwrap();
            flow.execute(ladder.highest(), &mut dram, &mut fabric)
                .unwrap();
        }
        assert_eq!(flow.stats().count, 10);
        assert!(flow.stats().total_stall > flow.stats().max_stall);
    }
}
