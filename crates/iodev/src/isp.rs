//! Image-signal-processing (ISP / camera) engine model.
//!
//! Like the display engine, the ISP produces isochronous traffic whose
//! bandwidth demand is determined purely by its CSR configuration (sensor
//! resolution and frame rate), which makes it part of the *static* demand
//! estimation of Sec. 4.2.

use sysscale_types::{Bandwidth, Power, Voltage};

/// Camera capture mode driving the ISP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IspMode {
    /// Camera off (engine power-gated).
    #[default]
    Off,
    /// 720p at 30 FPS (video-conferencing front camera).
    Capture720p30,
    /// 1080p at 30 FPS.
    Capture1080p30,
    /// 1080p at 60 FPS.
    Capture1080p60,
    /// 4K at 30 FPS (the heaviest configuration of Fig. 3(b)).
    Capture4k30,
}

impl IspMode {
    /// `(pixels per frame, frames per second)` of the mode, zero when off.
    #[must_use]
    pub fn pixel_rate(self) -> (u64, f64) {
        match self {
            IspMode::Off => (0, 0.0),
            IspMode::Capture720p30 => (1280 * 720, 30.0),
            IspMode::Capture1080p30 => (1920 * 1080, 30.0),
            IspMode::Capture1080p60 => (1920 * 1080, 60.0),
            IspMode::Capture4k30 => (3840 * 2160, 30.0),
        }
    }
}

/// Calibration parameters of the ISP model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspParams {
    /// Bytes per pixel of the raw sensor stream.
    pub bytes_per_pixel: f64,
    /// Memory-traffic amplification across the processing pipeline stages
    /// (raw write, demosaic read/write, noise-reduction reference frames,
    /// scaled outputs).
    pub pipeline_factor: f64,
    /// Engine power when capturing, at nominal `V_SA`, watts.
    pub active_power_w: f64,
}

impl Default for IspParams {
    fn default() -> Self {
        Self {
            bytes_per_pixel: 2.0,
            pipeline_factor: 6.0,
            active_power_w: 0.130,
        }
    }
}

/// The ISP engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IspEngine {
    params: IspParams,
    mode: IspMode,
}

impl IspEngine {
    /// Creates an engine (off) with the given parameters.
    #[must_use]
    pub fn new(params: IspParams) -> Self {
        Self {
            params,
            mode: IspMode::Off,
        }
    }

    /// Sets the capture mode (CSR write by the camera driver).
    pub fn set_mode(&mut self, mode: IspMode) {
        self.mode = mode;
    }

    /// Current capture mode.
    #[must_use]
    pub fn mode(&self) -> IspMode {
        self.mode
    }

    /// Isochronous memory-bandwidth demand of the current mode.
    #[must_use]
    pub fn bandwidth_demand(&self) -> Bandwidth {
        let (pixels, fps) = self.mode.pixel_rate();
        Bandwidth::from_bytes_per_sec(
            pixels as f64 * fps * self.params.bytes_per_pixel * self.params.pipeline_factor,
        )
    }

    /// Engine power at rail voltage `v_sa` (nominal 0.8 V). Zero when off.
    #[must_use]
    pub fn power(&self, v_sa: Voltage) -> Power {
        if self.mode == IspMode::Off {
            return Power::ZERO;
        }
        let v_ratio = v_sa.as_volts() / 0.8;
        let (pixels, fps) = self.mode.pixel_rate();
        // Power scales weakly with pixel rate around the 1080p30 reference.
        let rate_scale = (pixels as f64 * fps / (1920.0 * 1080.0 * 30.0)).sqrt();
        Power::from_watts(self.params.active_power_w * rate_scale * v_ratio * v_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_engine_demands_nothing() {
        let isp = IspEngine::default();
        assert_eq!(isp.mode(), IspMode::Off);
        assert_eq!(isp.bandwidth_demand(), Bandwidth::ZERO);
        assert_eq!(isp.power(Voltage::from_mv(800.0)), Power::ZERO);
    }

    #[test]
    fn heavier_modes_demand_more_bandwidth_and_power() {
        let mut isp = IspEngine::default();
        let modes = [
            IspMode::Capture720p30,
            IspMode::Capture1080p30,
            IspMode::Capture1080p60,
            IspMode::Capture4k30,
        ];
        let mut last_bw = Bandwidth::ZERO;
        let mut last_p = Power::ZERO;
        for m in modes {
            isp.set_mode(m);
            let bw = isp.bandwidth_demand();
            let p = isp.power(Voltage::from_mv(800.0));
            assert!(bw > last_bw, "{m:?}");
            assert!(p > last_p, "{m:?}");
            last_bw = bw;
            last_p = p;
        }
    }

    #[test]
    fn demand_is_modest_relative_to_dram_peak() {
        // Fig. 3(b): the ISP demand is visible but well below the display's.
        let mut isp = IspEngine::default();
        isp.set_mode(IspMode::Capture4k30);
        let frac = isp.bandwidth_demand().as_bytes_per_sec() / 25.6e9;
        assert!(frac > 0.05 && frac < 0.25, "4K30 ISP fraction {frac}");
    }

    #[test]
    fn power_scales_with_rail_voltage() {
        let mut isp = IspEngine::default();
        isp.set_mode(IspMode::Capture1080p30);
        assert!(isp.power(Voltage::from_mv(640.0)) < isp.power(Voltage::from_mv(800.0)));
    }
}
