//! Display controller model.
//!
//! The display engine produces *isochronous* memory traffic: every refresh
//! period the full frame must be fetched (and composed) or the panel
//! underruns, which is a hard QoS violation (Sec. 1). Its bandwidth demand is
//! *static*: it depends only on the panel configuration exposed through CSRs
//! (number of active panels, resolution, refresh rate — Sec. 4.2), not on the
//! running workload. Modern laptops support up to three panels.
//!
//! Fig. 3(b) of the paper reports that a single HD panel consumes ≈17 % of
//! the 25.6 GB/s dual-channel LPDDR3 peak while a single 4K panel consumes
//! ≈70 %; the default composition factor below reproduces those fractions.

use sysscale_types::{Bandwidth, Power, SimError, SimResult, Voltage};

/// Maximum number of display panels a mobile SoC drives (Sec. 4.2).
pub const MAX_PANELS: usize = 3;

/// Display panel resolution classes used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 1366×768 ("HD", typical laptop panel of the era).
    Hd,
    /// 1920×1080 ("Full HD").
    FullHd,
    /// 2560×1440 ("QHD").
    Qhd,
    /// 3840×2160 ("4K UHD", the highest supported quality in the evaluated
    /// system).
    Uhd4k,
}

impl Resolution {
    /// Pixel dimensions `(width, height)`.
    #[must_use]
    pub fn dimensions(self) -> (u32, u32) {
        match self {
            Resolution::Hd => (1366, 768),
            Resolution::FullHd => (1920, 1080),
            Resolution::Qhd => (2560, 1440),
            Resolution::Uhd4k => (3840, 2160),
        }
    }

    /// Total pixels per frame.
    #[must_use]
    pub fn pixels(self) -> u64 {
        let (w, h) = self.dimensions();
        u64::from(w) * u64::from(h)
    }
}

/// One active display panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplayPanel {
    /// Panel resolution.
    pub resolution: Resolution,
    /// Refresh rate in hertz.
    pub refresh_hz: f64,
}

impl DisplayPanel {
    /// A 60 Hz panel at the given resolution.
    #[must_use]
    pub fn at_60hz(resolution: Resolution) -> Self {
        Self {
            resolution,
            refresh_hz: 60.0,
        }
    }
}

/// Calibration parameters of the display-engine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplayParams {
    /// Bytes per pixel of the scan-out surface (ARGB8888).
    pub bytes_per_pixel: f64,
    /// Memory-traffic amplification over the raw scan-out stream: plane
    /// composition reads, write-back of composed frames, cursor/overlay
    /// planes, and scaler line buffers. Chosen so a single HD panel lands at
    /// ≈17 % and a single 4K panel at ≈70 % of the LPDDR3-1600 peak
    /// (Fig. 3(b)).
    pub composition_factor: f64,
    /// Controller power when at least one panel is active, at nominal `V_SA`,
    /// in watts (panel backlight power is off-SoC and not modelled).
    pub active_power_w: f64,
    /// Additional controller power per active panel beyond the first, watts.
    pub per_extra_panel_w: f64,
}

impl Default for DisplayParams {
    fn default() -> Self {
        Self {
            bytes_per_pixel: 4.0,
            composition_factor: 8.5,
            active_power_w: 0.110,
            per_extra_panel_w: 0.045,
        }
    }
}

/// The display controller with its attached panels.
#[derive(Debug, Clone, PartialEq)]
pub struct DisplayController {
    params: DisplayParams,
    panels: Vec<DisplayPanel>,
}

impl Default for DisplayController {
    fn default() -> Self {
        Self::new(DisplayParams::default())
    }
}

impl DisplayController {
    /// Creates a controller with no panels attached.
    #[must_use]
    pub fn new(params: DisplayParams) -> Self {
        Self {
            params,
            panels: Vec::new(),
        }
    }

    /// The single-HD-panel configuration used for the battery-life
    /// evaluation (Sec. 7.3: "a single HD display panel ... is active").
    /// The paper's "HD" laptop panel is a 1080p/60 Hz panel, which lands at
    /// the ≈17 %-of-peak demand reported in Fig. 3(b).
    #[must_use]
    pub fn single_hd() -> Self {
        let mut c = Self::default();
        c.attach(DisplayPanel::at_60hz(Resolution::FullHd))
            .expect("one panel always fits");
        c
    }

    /// Attaches a panel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if [`MAX_PANELS`] panels are
    /// already attached or the refresh rate is not positive.
    pub fn attach(&mut self, panel: DisplayPanel) -> SimResult<()> {
        if self.panels.len() >= MAX_PANELS {
            return Err(SimError::invalid_config(format!(
                "at most {MAX_PANELS} display panels are supported"
            )));
        }
        if panel.refresh_hz <= 0.0 {
            return Err(SimError::invalid_config(
                "panel refresh rate must be positive",
            ));
        }
        self.panels.push(panel);
        Ok(())
    }

    /// Detaches all panels (display off / panel self-refresh).
    pub fn detach_all(&mut self) {
        self.panels.clear();
    }

    /// Currently attached panels.
    #[must_use]
    pub fn panels(&self) -> &[DisplayPanel] {
        &self.panels
    }

    /// Number of active panels.
    #[must_use]
    pub fn active_panels(&self) -> usize {
        self.panels.len()
    }

    /// Isochronous memory-bandwidth demand of the current configuration.
    /// This is the *static* demand the CSR-driven table in SysScale's
    /// predictor uses (Sec. 4.2) — deterministic given the configuration.
    #[must_use]
    pub fn bandwidth_demand(&self) -> Bandwidth {
        let p = &self.params;
        let total: f64 = self
            .panels
            .iter()
            .map(|panel| {
                panel.resolution.pixels() as f64
                    * p.bytes_per_pixel
                    * panel.refresh_hz
                    * p.composition_factor
            })
            .sum();
        Bandwidth::from_bytes_per_sec(total)
    }

    /// Display-controller power at rail voltage `v_sa` relative to 0.8 V
    /// nominal. Zero when no panel is active (the engine is power-gated).
    #[must_use]
    pub fn power(&self, v_sa: Voltage) -> Power {
        if self.panels.is_empty() {
            return Power::ZERO;
        }
        let v_ratio = v_sa.as_volts() / 0.8;
        let extra = (self.panels.len() - 1) as f64 * self.params.per_extra_panel_w;
        Power::from_watts((self.params.active_power_w + extra) * v_ratio * v_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LPDDR3_PEAK_GB_S: f64 = 25.6e9;

    fn demand_fraction(controller: &DisplayController) -> f64 {
        controller.bandwidth_demand().as_bytes_per_sec() / LPDDR3_PEAK_GB_S
    }

    #[test]
    fn hd_panel_consumes_about_17_percent_of_peak() {
        let c = DisplayController::single_hd();
        let frac = demand_fraction(&c);
        assert!((0.12..=0.22).contains(&frac), "HD fraction {frac}");
        // A low-end 1366x768 panel demands less than the paper's HD panel.
        let mut low = DisplayController::default();
        low.attach(DisplayPanel::at_60hz(Resolution::Hd)).unwrap();
        assert!(demand_fraction(&low) < frac);
    }

    #[test]
    fn single_4k_panel_consumes_about_70_percent_of_peak() {
        let mut c = DisplayController::default();
        c.attach(DisplayPanel::at_60hz(Resolution::Uhd4k)).unwrap();
        let frac = demand_fraction(&c);
        assert!((0.6..=0.8).contains(&frac), "4K fraction {frac}");
    }

    #[test]
    fn three_panels_triple_the_demand() {
        // Sec. 4.2: three identical panels demand nearly three times the
        // bandwidth of one.
        let mut one = DisplayController::default();
        one.attach(DisplayPanel::at_60hz(Resolution::FullHd))
            .unwrap();
        let mut three = DisplayController::default();
        for _ in 0..3 {
            three
                .attach(DisplayPanel::at_60hz(Resolution::FullHd))
                .unwrap();
        }
        let ratio = three.bandwidth_demand() / one.bandwidth_demand();
        assert!((ratio - 3.0).abs() < 1e-9);
        assert_eq!(three.active_panels(), 3);
    }

    #[test]
    fn panel_limit_is_enforced() {
        let mut c = DisplayController::default();
        for _ in 0..MAX_PANELS {
            c.attach(DisplayPanel::at_60hz(Resolution::Hd)).unwrap();
        }
        assert!(c.attach(DisplayPanel::at_60hz(Resolution::Hd)).is_err());
        c.detach_all();
        assert_eq!(c.active_panels(), 0);
        assert_eq!(c.bandwidth_demand(), Bandwidth::ZERO);
    }

    #[test]
    fn invalid_refresh_rejected() {
        let mut c = DisplayController::default();
        let bad = DisplayPanel {
            resolution: Resolution::Hd,
            refresh_hz: 0.0,
        };
        assert!(c.attach(bad).is_err());
    }

    #[test]
    fn power_gated_when_idle_and_scales_with_voltage() {
        let mut c = DisplayController::default();
        assert_eq!(c.power(Voltage::from_mv(800.0)), Power::ZERO);
        c.attach(DisplayPanel::at_60hz(Resolution::FullHd)).unwrap();
        let nominal = c.power(Voltage::from_mv(800.0));
        let reduced = c.power(Voltage::from_mv(640.0));
        assert!(nominal > Power::ZERO);
        assert!(reduced < nominal);
        c.attach(DisplayPanel::at_60hz(Resolution::FullHd)).unwrap();
        assert!(c.power(Voltage::from_mv(800.0)) > nominal);
    }

    #[test]
    fn resolution_helpers() {
        assert_eq!(Resolution::Uhd4k.dimensions(), (3840, 2160));
        assert_eq!(Resolution::FullHd.pixels(), 1920 * 1080);
        assert!(Resolution::Uhd4k.pixels() > Resolution::Qhd.pixels());
        assert!(Resolution::Qhd.pixels() > Resolution::FullHd.pixels());
        assert!(Resolution::FullHd.pixels() > Resolution::Hd.pixels());
    }
}
