//! # sysscale-iodev
//!
//! IO-device models for the SysScale simulator: the display controller and
//! ISP (camera) engine whose isochronous bandwidth demand is determined by
//! their CSR configuration, plus a coarse model of other best-effort IO.
//! These are the sources of the *static* performance demand SysScale's
//! predictor estimates from configuration registers (Sec. 4.2).
//!
//! ## Example
//!
//! ```
//! use sysscale_iodev::{DisplayPanel, PeripheralConfig, Resolution};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = PeripheralConfig::single_hd_display();
//! cfg.display.attach(DisplayPanel::at_60hz(Resolution::Uhd4k))?;
//! // Adding a 4K panel pushes the static demand well past half the LPDDR3 peak.
//! assert!(cfg.static_demand().as_bytes_per_sec() > 0.5 * 25.6e9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod config;
mod display;
mod isp;

pub use config::{IoActivity, PeripheralConfig};
pub use display::{DisplayController, DisplayPanel, DisplayParams, Resolution, MAX_PANELS};
pub use isp::{IspEngine, IspMode, IspParams};
