//! Peripheral configuration snapshot (the CSR view the PMU firmware reads).
//!
//! SysScale's static demand estimation (Sec. 4.2) reads the control and
//! status registers of the peripherals — number of active displays and their
//! resolution/refresh, camera mode, other active IO — and looks the
//! configuration up in a firmware table of deterministic bandwidth demands.
//! [`PeripheralConfig`] is that CSR snapshot.

use sysscale_types::{Bandwidth, Power, Voltage};

use crate::display::DisplayController;
use crate::isp::IspEngine;

/// Miscellaneous best-effort IO activity level (storage, USB, network,
/// audio). Modelled as a coarse CSR-visible level because the paper's IO
/// demand prediction only needs its bandwidth contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoActivity {
    /// No best-effort IO.
    #[default]
    Idle,
    /// Background activity (audio playback, light networking).
    Light,
    /// Sustained transfers (file copy, camera encode to storage).
    Heavy,
}

impl IoActivity {
    /// Best-effort bandwidth demand of the level.
    #[must_use]
    pub fn bandwidth_demand(self) -> Bandwidth {
        match self {
            IoActivity::Idle => Bandwidth::ZERO,
            IoActivity::Light => Bandwidth::from_mib_s(150.0),
            IoActivity::Heavy => Bandwidth::from_mib_s(900.0),
        }
    }

    /// Controller power of the level at nominal `V_SA`.
    #[must_use]
    pub fn controller_power_w(self) -> f64 {
        match self {
            IoActivity::Idle => 0.010,
            IoActivity::Light => 0.045,
            IoActivity::Heavy => 0.120,
        }
    }
}

/// The CSR-visible peripheral configuration of the platform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PeripheralConfig {
    /// Display controller and its attached panels.
    pub display: DisplayController,
    /// ISP / camera engine.
    pub isp: IspEngine,
    /// Miscellaneous best-effort IO activity.
    pub io_activity: IoActivity,
}

impl PeripheralConfig {
    /// A platform with one HD panel and no camera — the battery-life
    /// evaluation configuration (Sec. 7.3).
    #[must_use]
    pub fn single_hd_display() -> Self {
        Self {
            display: DisplayController::single_hd(),
            ..Self::default()
        }
    }

    /// Total *isochronous* bandwidth demand (display + ISP): traffic that
    /// must be served within its deadline.
    #[must_use]
    pub fn isochronous_demand(&self) -> Bandwidth {
        self.display.bandwidth_demand() + self.isp.bandwidth_demand()
    }

    /// Total best-effort IO bandwidth demand.
    #[must_use]
    pub fn best_effort_demand(&self) -> Bandwidth {
        self.io_activity.bandwidth_demand()
    }

    /// Total static bandwidth demand of the peripherals (isochronous plus
    /// best effort) — the quantity SysScale's firmware table maps the CSR
    /// configuration to.
    #[must_use]
    pub fn static_demand(&self) -> Bandwidth {
        self.isochronous_demand() + self.best_effort_demand()
    }

    /// Total IO-engine power (display controller + ISP + other controllers)
    /// at rail voltage `v_sa`.
    #[must_use]
    pub fn engine_power(&self, v_sa: Voltage) -> Power {
        let v_ratio = v_sa.as_volts() / 0.8;
        self.display.power(v_sa)
            + self.isp.power(v_sa)
            + Power::from_watts(self.io_activity.controller_power_w() * v_ratio * v_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::{DisplayPanel, Resolution};
    use crate::isp::IspMode;

    #[test]
    fn default_config_is_idle() {
        let cfg = PeripheralConfig::default();
        assert_eq!(cfg.isochronous_demand(), Bandwidth::ZERO);
        assert_eq!(cfg.best_effort_demand(), Bandwidth::ZERO);
        assert_eq!(cfg.static_demand(), Bandwidth::ZERO);
    }

    #[test]
    fn single_hd_display_config_matches_battery_life_setup() {
        let cfg = PeripheralConfig::single_hd_display();
        assert_eq!(cfg.display.active_panels(), 1);
        let frac = cfg.static_demand().as_bytes_per_sec() / 25.6e9;
        assert!((0.1..=0.25).contains(&frac));
    }

    #[test]
    fn static_demand_sums_all_sources() {
        let mut cfg = PeripheralConfig::single_hd_display();
        cfg.isp.set_mode(IspMode::Capture1080p30);
        cfg.io_activity = IoActivity::Light;
        let total = cfg.static_demand();
        let expected = cfg.display.bandwidth_demand()
            + cfg.isp.bandwidth_demand()
            + IoActivity::Light.bandwidth_demand();
        assert!((total.as_bytes_per_sec() - expected.as_bytes_per_sec()).abs() < 1.0);
        assert!(cfg.isochronous_demand() < total);
    }

    #[test]
    fn io_activity_levels_are_ordered() {
        assert!(IoActivity::Heavy.bandwidth_demand() > IoActivity::Light.bandwidth_demand());
        assert!(IoActivity::Light.bandwidth_demand() > IoActivity::Idle.bandwidth_demand());
        assert!(IoActivity::Heavy.controller_power_w() > IoActivity::Idle.controller_power_w());
    }

    #[test]
    fn engine_power_scales_with_voltage_and_configuration() {
        let mut cfg = PeripheralConfig::single_hd_display();
        let base = cfg.engine_power(Voltage::from_mv(800.0));
        let scaled = cfg.engine_power(Voltage::from_mv(640.0));
        assert!(scaled < base);
        cfg.display
            .attach(DisplayPanel::at_60hz(Resolution::Uhd4k))
            .unwrap();
        cfg.isp.set_mode(IspMode::Capture4k30);
        cfg.io_activity = IoActivity::Heavy;
        assert!(cfg.engine_power(Voltage::from_mv(800.0)) > base);
    }
}
