//! Property-based tests for the DRAM model invariants.

use proptest::prelude::*;

use sysscale_dram::{DramChip, DramKind, DramModule, DramPowerModel, MrcMismatchPenalty, TimingParams};
use sysscale_types::{Bandwidth, Freq, Power};

fn arb_kind() -> impl Strategy<Value = DramKind> {
    prop_oneof![Just(DramKind::Lpddr3), Just(DramKind::Ddr4)]
}

proptest! {
    /// DRAM power is monotonically non-decreasing in consumed bandwidth.
    #[test]
    fn power_monotonic_in_bandwidth(
        kind in arb_kind(),
        bw_lo in 0.0f64..20.0,
        bw_delta in 0.0f64..10.0,
        sr in 0.0f64..1.0,
    ) {
        let model = DramPowerModel::for_kind(kind);
        let freq = kind.default_bin();
        let none = MrcMismatchPenalty::none();
        let lo = model.power(freq, Bandwidth::from_gib_s(bw_lo), sr, &none).total();
        let hi = model.power(freq, Bandwidth::from_gib_s(bw_lo + bw_delta), sr, &none).total();
        prop_assert!(hi.as_watts() >= lo.as_watts() - 1e-12);
    }

    /// Background power is monotonically non-decreasing in frequency across
    /// the supported bins (at zero bandwidth, total power only contains
    /// background + refresh).
    #[test]
    fn idle_power_monotonic_in_frequency(kind in arb_kind(), sr in 0.0f64..1.0) {
        let model = DramPowerModel::for_kind(kind);
        let none = MrcMismatchPenalty::none();
        let bins = kind.frequency_bins();
        for pair in bins.windows(2) {
            let lo = model.power(pair[0], Bandwidth::ZERO, sr, &none).total();
            let hi = model.power(pair[1], Bandwidth::ZERO, sr, &none).total();
            prop_assert!(hi.as_watts() >= lo.as_watts() - 1e-12);
        }
    }

    /// More self-refresh residency never increases power.
    #[test]
    fn power_monotonic_in_self_refresh(
        kind in arb_kind(),
        sr_lo in 0.0f64..1.0,
        sr_delta in 0.0f64..1.0,
    ) {
        let sr_hi = (sr_lo + sr_delta).min(1.0);
        let model = DramPowerModel::for_kind(kind);
        let freq = kind.default_bin();
        let none = MrcMismatchPenalty::none();
        let more_active = model.power(freq, Bandwidth::ZERO, sr_lo, &none).total();
        let more_sr = model.power(freq, Bandwidth::ZERO, sr_hi, &none).total();
        prop_assert!(more_sr.as_watts() <= more_active.as_watts() + 1e-12);
    }

    /// MRC mismatch never *reduces* power or *improves* latency/bandwidth.
    #[test]
    fn mismatch_is_never_beneficial(kind in arb_kind(), bw in 0.0f64..25.0) {
        let model = DramPowerModel::for_kind(kind);
        let freq = kind.frequency_bins()[0];
        let good = model.power(freq, Bandwidth::from_gib_s(bw), 0.0, &MrcMismatchPenalty::none());
        let bad = model.power(freq, Bandwidth::from_gib_s(bw), 0.0, &MrcMismatchPenalty::default());
        prop_assert!(bad.total().as_watts() >= good.total().as_watts() - 1e-15);
    }

    /// Peak bandwidth is strictly increasing across frequency bins and the
    /// idle access latency is strictly decreasing.
    #[test]
    fn bins_order_bandwidth_and_latency(kind in arb_kind()) {
        let module = match kind {
            DramKind::Lpddr3 => DramModule::skylake_lpddr3(),
            DramKind::Ddr4 => DramModule::ddr4_variant(),
        };
        let timing = TimingParams::for_kind(kind);
        let bins = kind.frequency_bins();
        for pair in bins.windows(2) {
            prop_assert!(module.peak_bandwidth(pair[1]) > module.peak_bandwidth(pair[0]));
            prop_assert!(timing.idle_access_latency(pair[1]) < timing.idle_access_latency(pair[0]));
        }
    }

    /// The chip's DVFS sequencing invariant: after a legal Fig. 5 sequence
    /// the chip is active, at the requested bin, with optimized registers,
    /// and its power at any bandwidth is finite and positive.
    #[test]
    fn legal_transition_sequences_preserve_invariants(
        target_idx in 0usize..3,
        bw in 0.0f64..25.0,
    ) {
        let mut chip = DramChip::skylake_lpddr3();
        let bins = DramKind::Lpddr3.frequency_bins();
        let target = bins[target_idx.min(bins.len() - 1)];
        chip.enter_self_refresh();
        chip.load_optimized_registers(target).unwrap();
        chip.set_frequency(target).unwrap();
        chip.exit_self_refresh();
        prop_assert!(chip.registers_optimized());
        prop_assert!((chip.frequency().as_mhz() - target.as_mhz()).abs() < 1.0);
        let p = chip.power(Bandwidth::from_gib_s(bw), 0.0).total();
        prop_assert!(p > Power::ZERO);
        prop_assert!(p.as_watts().is_finite());
    }

    /// Frequency changes outside self-refresh are always rejected and leave
    /// the chip untouched.
    #[test]
    fn illegal_frequency_change_is_rejected(ghz in 0.5f64..2.5) {
        let mut chip = DramChip::skylake_lpddr3();
        let before = chip.frequency();
        let result = chip.set_frequency(Freq::from_ghz(ghz));
        prop_assert!(result.is_err());
        prop_assert_eq!(chip.frequency(), before);
    }
}
