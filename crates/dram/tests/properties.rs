//! Randomized invariant tests for the DRAM model, sampled deterministically
//! with [`SplitMix64`] (no external property-testing dependency).

use sysscale_dram::{
    DramChip, DramKind, DramModule, DramPowerModel, MrcMismatchPenalty, TimingParams,
};
use sysscale_types::rng::SplitMix64;
use sysscale_types::{Bandwidth, Freq, Power};

const CASES: usize = 200;

fn sample_kind(rng: &mut SplitMix64) -> DramKind {
    if rng.gen_bool(0.5) {
        DramKind::Lpddr3
    } else {
        DramKind::Ddr4
    }
}

/// DRAM power is monotonically non-decreasing in consumed bandwidth.
#[test]
fn power_monotonic_in_bandwidth() {
    let mut rng = SplitMix64::new(0xD0_01);
    for _ in 0..CASES {
        let kind = sample_kind(&mut rng);
        let bw_lo = rng.gen_range(0.0, 20.0);
        let bw_delta = rng.gen_range(0.0, 10.0);
        let sr = rng.gen_range(0.0, 1.0);
        let model = DramPowerModel::for_kind(kind);
        let freq = kind.default_bin();
        let none = MrcMismatchPenalty::none();
        let lo = model
            .power(freq, Bandwidth::from_gib_s(bw_lo), sr, &none)
            .total();
        let hi = model
            .power(freq, Bandwidth::from_gib_s(bw_lo + bw_delta), sr, &none)
            .total();
        assert!(hi.as_watts() >= lo.as_watts() - 1e-12);
    }
}

/// Background power is monotonically non-decreasing in frequency across the
/// supported bins (at zero bandwidth, total power only contains background +
/// refresh).
#[test]
fn idle_power_monotonic_in_frequency() {
    let mut rng = SplitMix64::new(0xD0_02);
    for _ in 0..CASES {
        let kind = sample_kind(&mut rng);
        let sr = rng.gen_range(0.0, 1.0);
        let model = DramPowerModel::for_kind(kind);
        let none = MrcMismatchPenalty::none();
        for pair in kind.frequency_bins().windows(2) {
            let lo = model.power(pair[0], Bandwidth::ZERO, sr, &none).total();
            let hi = model.power(pair[1], Bandwidth::ZERO, sr, &none).total();
            assert!(hi.as_watts() >= lo.as_watts() - 1e-12);
        }
    }
}

/// More self-refresh residency never increases power.
#[test]
fn power_monotonic_in_self_refresh() {
    let mut rng = SplitMix64::new(0xD0_03);
    for _ in 0..CASES {
        let kind = sample_kind(&mut rng);
        let sr_lo = rng.gen_range(0.0, 1.0);
        let sr_hi = (sr_lo + rng.gen_range(0.0, 1.0)).min(1.0);
        let model = DramPowerModel::for_kind(kind);
        let freq = kind.default_bin();
        let none = MrcMismatchPenalty::none();
        let more_active = model.power(freq, Bandwidth::ZERO, sr_lo, &none).total();
        let more_sr = model.power(freq, Bandwidth::ZERO, sr_hi, &none).total();
        assert!(more_sr.as_watts() <= more_active.as_watts() + 1e-12);
    }
}

/// MRC mismatch never *reduces* power or *improves* latency/bandwidth.
#[test]
fn mismatch_is_never_beneficial() {
    let mut rng = SplitMix64::new(0xD0_04);
    for _ in 0..CASES {
        let kind = sample_kind(&mut rng);
        let bw = rng.gen_range(0.0, 25.0);
        let model = DramPowerModel::for_kind(kind);
        let freq = kind.frequency_bins()[0];
        let good = model.power(
            freq,
            Bandwidth::from_gib_s(bw),
            0.0,
            &MrcMismatchPenalty::none(),
        );
        let bad = model.power(
            freq,
            Bandwidth::from_gib_s(bw),
            0.0,
            &MrcMismatchPenalty::default(),
        );
        assert!(bad.total().as_watts() >= good.total().as_watts() - 1e-15);
    }
}

/// Peak bandwidth is strictly increasing across frequency bins and the idle
/// access latency is strictly decreasing.
#[test]
fn bins_order_bandwidth_and_latency() {
    for kind in [DramKind::Lpddr3, DramKind::Ddr4] {
        let module = match kind {
            DramKind::Lpddr3 => DramModule::skylake_lpddr3(),
            DramKind::Ddr4 => DramModule::ddr4_variant(),
        };
        let timing = TimingParams::for_kind(kind);
        for pair in kind.frequency_bins().windows(2) {
            assert!(module.peak_bandwidth(pair[1]) > module.peak_bandwidth(pair[0]));
            assert!(timing.idle_access_latency(pair[1]) < timing.idle_access_latency(pair[0]));
        }
    }
}

/// The chip's DVFS sequencing invariant: after a legal Fig. 5 sequence the
/// chip is active, at the requested bin, with optimized registers, and its
/// power at any bandwidth is finite and positive.
#[test]
fn legal_transition_sequences_preserve_invariants() {
    let mut rng = SplitMix64::new(0xD0_05);
    for _ in 0..CASES {
        let bins = DramKind::Lpddr3.frequency_bins();
        let target = bins[(rng.next_u64() as usize % 3).min(bins.len() - 1)];
        let bw = rng.gen_range(0.0, 25.0);
        let mut chip = DramChip::skylake_lpddr3();
        chip.enter_self_refresh();
        chip.load_optimized_registers(target).unwrap();
        chip.set_frequency(target).unwrap();
        chip.exit_self_refresh();
        assert!(chip.registers_optimized());
        assert!((chip.frequency().as_mhz() - target.as_mhz()).abs() < 1.0);
        let p = chip.power(Bandwidth::from_gib_s(bw), 0.0).total();
        assert!(p > Power::ZERO);
        assert!(p.as_watts().is_finite());
    }
}

/// Frequency changes outside self-refresh are always rejected and leave the
/// chip untouched.
#[test]
fn illegal_frequency_change_is_rejected() {
    let mut rng = SplitMix64::new(0xD0_06);
    for _ in 0..CASES {
        let ghz = rng.gen_range(0.5, 2.5);
        let mut chip = DramChip::skylake_lpddr3();
        let before = chip.frequency();
        let result = chip.set_frequency(Freq::from_ghz(ghz));
        assert!(result.is_err());
        assert_eq!(chip.frequency(), before);
    }
}
