//! # sysscale-dram
//!
//! DRAM subsystem model for the SysScale simulator: device descriptions and
//! frequency bins, JEDEC-style timing, MRC (memory reference code) register
//! sets with an on-chip SRAM store, a Micron-style power model, and the
//! self-refresh state machine the DVFS flow drives.
//!
//! ## Example
//!
//! ```
//! use sysscale_dram::DramChip;
//! use sysscale_types::{Bandwidth, Freq};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dram = DramChip::skylake_lpddr3();
//!
//! // The Fig. 5 flow: enter self-refresh, load the optimized MRC set for the
//! // new bin, relock to the new frequency, exit self-refresh.
//! dram.enter_self_refresh();
//! dram.load_optimized_registers(Freq::from_ghz(1.0666))?;
//! dram.set_frequency(Freq::from_ghz(1.0666))?;
//! dram.exit_self_refresh();
//!
//! let power = dram.power(Bandwidth::from_gib_s(2.0), 0.0);
//! assert!(power.total().as_watts() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod chip;
mod device;
mod mrc;
mod power;
mod timing;

pub use chip::{DramChip, DramState};
pub use device::{DramGeometry, DramKind, DramModule};
pub use mrc::{MrcMismatchPenalty, MrcRegisterSet, MrcSram};
pub use power::{DramPowerBreakdown, DramPowerModel, DramPowerParams};
pub use timing::TimingParams;
