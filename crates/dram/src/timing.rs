//! DRAM timing parameters and idle access latency.
//!
//! Timing parameters are what the MRC training configures per frequency
//! (Sec. 2.5). Most core timings are constant in *nanoseconds* across
//! frequency bins (they are analog device constraints), which means their
//! *cycle* counts change with frequency — exactly the values the MRC must
//! rewrite when the DVFS flow switches bins.

use sysscale_types::{Freq, SimTime};

use crate::device::DramKind;

/// JEDEC-style timing parameters for one device kind, expressed in
/// nanoseconds (frequency independent) plus the burst length in transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// CAS latency: column access to first data.
    pub t_cl_ns: f64,
    /// RAS-to-CAS delay: row activate to column access.
    pub t_rcd_ns: f64,
    /// Row precharge time.
    pub t_rp_ns: f64,
    /// Row active time (activate to precharge).
    pub t_ras_ns: f64,
    /// Refresh cycle time (all-bank refresh duration).
    pub t_rfc_ns: f64,
    /// Average refresh interval.
    pub t_refi_ns: f64,
    /// Self-refresh exit latency.
    pub t_xsr_ns: f64,
    /// Burst length in data transfers per column access.
    pub burst_length: u32,
}

impl TimingParams {
    /// Representative LPDDR3 timings (Table 2-class device).
    #[must_use]
    pub fn lpddr3() -> Self {
        Self {
            t_cl_ns: 15.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 18.0,
            t_ras_ns: 42.0,
            t_rfc_ns: 130.0,
            t_refi_ns: 3_900.0,
            t_xsr_ns: 140.0,
            burst_length: 8,
        }
    }

    /// Representative DDR4 timings for the sensitivity study.
    #[must_use]
    pub fn ddr4() -> Self {
        Self {
            t_cl_ns: 13.5,
            t_rcd_ns: 13.5,
            t_rp_ns: 13.5,
            t_ras_ns: 33.0,
            t_rfc_ns: 350.0,
            t_refi_ns: 7_800.0,
            t_xsr_ns: 170.0,
            burst_length: 8,
        }
    }

    /// Timings for a given device kind.
    #[must_use]
    pub fn for_kind(kind: DramKind) -> Self {
        match kind {
            DramKind::Lpddr3 => Self::lpddr3(),
            DramKind::Ddr4 => Self::ddr4(),
        }
    }

    /// Converts a nanosecond parameter to clock cycles at `freq` (DDR command
    /// clock is half the data rate), rounding up as a real controller must.
    #[must_use]
    pub fn ns_to_cycles(ns: f64, freq: Freq) -> u32 {
        let command_clock_hz = freq.as_hz() / 2.0;
        // Guard against floating-point noise pushing an exact multiple (e.g.
        // 15 ns at 0.8 GHz = 12.000000000000002 cycles) up an extra cycle.
        ((ns * 1e-9 * command_clock_hz) - 1e-9).ceil() as u32
    }

    /// Time to transfer one burst (one cache line worth of data on a 64-bit
    /// channel) at DDR data frequency `freq`.
    #[must_use]
    pub fn burst_time(&self, freq: Freq) -> SimTime {
        SimTime::from_secs(self.burst_length as f64 / freq.as_hz())
    }

    /// Idle (unloaded, row-miss) access latency at DDR data frequency
    /// `freq`: activate + CAS + burst transfer. Row-hit/row-miss mixing and
    /// queuing are handled by the memory-controller model.
    #[must_use]
    pub fn idle_access_latency(&self, freq: Freq) -> SimTime {
        SimTime::from_nanos(self.t_rcd_ns + self.t_cl_ns) + self.burst_time(freq)
    }

    /// Fraction of time the device is unavailable due to refresh:
    /// `tRFC / tREFI`.
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc_ns / self.t_refi_ns
    }

    /// Self-refresh exit latency.
    #[must_use]
    pub fn self_refresh_exit(&self) -> SimTime {
        SimTime::from_nanos(self.t_xsr_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_cycles_rounds_up() {
        // 15 ns CAS at 1.6 GHz data rate = 0.8 GHz command clock -> 12 cycles.
        assert_eq!(TimingParams::ns_to_cycles(15.0, Freq::from_ghz(1.6)), 12);
        // At 1.066 GHz data rate -> 0.533 GHz command clock -> 8 cycles.
        assert_eq!(TimingParams::ns_to_cycles(15.0, Freq::from_ghz(1.0666)), 8);
        // Exact multiples do not round up an extra cycle.
        assert_eq!(TimingParams::ns_to_cycles(10.0, Freq::from_ghz(1.6)), 8);
    }

    #[test]
    fn cycle_counts_change_across_bins_but_ns_do_not() {
        // This is precisely why MRC values must be reloaded per bin: the same
        // analog constraint maps to a different register value.
        let t = TimingParams::lpddr3();
        let high = TimingParams::ns_to_cycles(t.t_rcd_ns, Freq::from_ghz(1.6));
        let low = TimingParams::ns_to_cycles(t.t_rcd_ns, Freq::from_ghz(1.0666));
        assert!(high > low);
    }

    #[test]
    fn idle_latency_increases_at_lower_frequency() {
        let t = TimingParams::lpddr3();
        let fast = t.idle_access_latency(Freq::from_ghz(1.6));
        let slow = t.idle_access_latency(Freq::from_ghz(1.0666));
        assert!(slow > fast);
        // The difference is only the burst-transfer portion (a few ns).
        let delta = slow - fast;
        assert!(delta.as_nanos() > 0.0 && delta.as_nanos() < 10.0);
    }

    #[test]
    fn burst_time_scales_inversely_with_frequency() {
        let t = TimingParams::lpddr3();
        let fast = t.burst_time(Freq::from_ghz(1.6));
        let slow = t.burst_time(Freq::from_ghz(0.8));
        assert!((slow.as_nanos() / fast.as_nanos() - 2.0).abs() < 1e-9);
        assert!((fast.as_nanos() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_overhead_is_small_fraction() {
        for kind in [DramKind::Lpddr3, DramKind::Ddr4] {
            let t = TimingParams::for_kind(kind);
            let overhead = t.refresh_overhead();
            assert!(overhead > 0.0 && overhead < 0.1, "overhead {overhead}");
        }
    }

    #[test]
    fn self_refresh_exit_within_transition_budget() {
        // Sec. 5 budgets <5 µs for self-refresh exit with fast relock; the raw
        // device tXSR is far below that.
        let t = TimingParams::lpddr3();
        assert!(t.self_refresh_exit() < SimTime::from_micros(5.0));
    }
}
