//! The DRAM subsystem as managed by the DVFS flow: device + trained MRC SRAM
//! + current configuration-register state + self-refresh state machine.
//!
//! The transition flow of Fig. 5 requires that DRAM frequency changes and
//! configuration-register loads happen only while the device is in
//! self-refresh (steps 4–6). [`DramChip`] enforces that ordering.

use sysscale_types::{Bandwidth, Freq, SimError, SimResult, SimTime};

use crate::device::DramModule;
use crate::mrc::{MrcMismatchPenalty, MrcRegisterSet, MrcSram};
use crate::power::{DramPowerBreakdown, DramPowerModel};
use crate::timing::TimingParams;

/// Operational state of the DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramState {
    /// Normal operation: the device services requests and burns background
    /// power.
    Active,
    /// Self-refresh: contents retained internally, interface quiesced. The
    /// only state in which the clock frequency and configuration registers
    /// may change.
    SelfRefresh,
}

/// The DRAM subsystem: module description, timing, MRC SRAM, power model,
/// and the mutable frequency / register / refresh state.
#[derive(Debug, Clone, PartialEq)]
pub struct DramChip {
    module: DramModule,
    timing: TimingParams,
    mrc_sram: MrcSram,
    power_model: DramPowerModel,
    mismatch_penalty: MrcMismatchPenalty,
    state: DramState,
    freq: Freq,
    loaded_registers: MrcRegisterSet,
    self_refresh_entries: u64,
    frequency_changes: u64,
}

impl DramChip {
    /// Creates a chip at the module's default (highest) frequency bin with
    /// optimized registers, in the active state.
    #[must_use]
    pub fn new(module: DramModule) -> Self {
        let freq = module.kind.default_bin();
        let mrc_sram = MrcSram::train_all(module.kind);
        let loaded_registers = *mrc_sram
            .lookup(freq)
            .expect("default bin is always trained");
        Self {
            module,
            timing: TimingParams::for_kind(module.kind),
            mrc_sram,
            power_model: DramPowerModel::for_kind(module.kind),
            mismatch_penalty: MrcMismatchPenalty::default(),
            state: DramState::Active,
            freq,
            loaded_registers,
            self_refresh_entries: 0,
            frequency_changes: 0,
        }
    }

    /// The LPDDR3-1600 subsystem of the evaluated Skylake system.
    #[must_use]
    pub fn skylake_lpddr3() -> Self {
        Self::new(DramModule::skylake_lpddr3())
    }

    /// Overrides the penalty applied when registers do not match the
    /// operating frequency (used by the Fig. 4 ablation).
    pub fn set_mismatch_penalty(&mut self, penalty: MrcMismatchPenalty) {
        self.mismatch_penalty = penalty;
    }

    /// The module description.
    #[must_use]
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Current operational state.
    #[must_use]
    pub fn state(&self) -> DramState {
        self.state
    }

    /// Current DDR data frequency.
    #[must_use]
    pub fn frequency(&self) -> Freq {
        self.freq
    }

    /// The register set currently loaded into the configuration registers.
    #[must_use]
    pub fn loaded_registers(&self) -> &MrcRegisterSet {
        &self.loaded_registers
    }

    /// Number of self-refresh entries performed so far.
    #[must_use]
    pub fn self_refresh_entries(&self) -> u64 {
        self.self_refresh_entries
    }

    /// Number of frequency changes performed so far.
    #[must_use]
    pub fn frequency_changes(&self) -> u64 {
        self.frequency_changes
    }

    /// Returns `true` if the loaded registers are the optimized set for the
    /// current frequency.
    #[must_use]
    pub fn registers_optimized(&self) -> bool {
        self.loaded_registers.matches(self.freq)
    }

    /// The MRC mismatch penalty currently in effect (no penalty when the
    /// registers are optimized for the operating frequency).
    #[must_use]
    pub fn effective_penalty(&self) -> MrcMismatchPenalty {
        if self.registers_optimized() {
            MrcMismatchPenalty::none()
        } else {
            self.mismatch_penalty
        }
    }

    /// Puts the device into self-refresh (Fig. 5 step 4). Idempotent.
    pub fn enter_self_refresh(&mut self) {
        if self.state != DramState::SelfRefresh {
            self.state = DramState::SelfRefresh;
            self.self_refresh_entries += 1;
        }
    }

    /// Exits self-refresh back to active operation (Fig. 5 step 8).
    /// Idempotent. Returns the exit latency the flow must absorb.
    pub fn exit_self_refresh(&mut self) -> SimTime {
        let latency = if self.state == DramState::SelfRefresh {
            self.timing.self_refresh_exit()
        } else {
            SimTime::ZERO
        };
        self.state = DramState::Active;
        latency
    }

    /// Changes the DDR data frequency (and PLL/DLL relock) to `freq`.
    ///
    /// # Errors
    ///
    /// Returns an error if the device is not in self-refresh (the Fig. 5 flow
    /// requires it) or `freq` is not a supported bin.
    pub fn set_frequency(&mut self, freq: Freq) -> SimResult<()> {
        if self.state != DramState::SelfRefresh {
            return Err(SimError::invalid_config(
                "dram frequency can only change while in self-refresh",
            ));
        }
        if !self.module.supports_frequency(freq) {
            return Err(SimError::invalid_config(format!(
                "unsupported dram frequency {:.0} MHz",
                freq.as_mhz()
            )));
        }
        if (freq.as_mhz() - self.freq.as_mhz()).abs() >= 1.0 {
            self.frequency_changes += 1;
        }
        self.freq = freq;
        Ok(())
    }

    /// Loads the optimized MRC register set for `freq` from the on-chip SRAM
    /// into the configuration registers (Fig. 5 step 5).
    ///
    /// # Errors
    ///
    /// Returns an error if the device is not in self-refresh or `freq` is not
    /// a trained bin.
    pub fn load_optimized_registers(&mut self, freq: Freq) -> SimResult<()> {
        if self.state != DramState::SelfRefresh {
            return Err(SimError::invalid_config(
                "mrc registers can only be loaded while in self-refresh",
            ));
        }
        self.loaded_registers = *self.mrc_sram.lookup(freq)?;
        Ok(())
    }

    /// Peak bandwidth at the current frequency, after any MRC-mismatch
    /// derating.
    #[must_use]
    pub fn peak_bandwidth(&self) -> Bandwidth {
        self.module.peak_bandwidth(self.freq) * self.effective_penalty().bandwidth_derate
    }

    /// Unloaded access latency at the current frequency, after any
    /// MRC-mismatch penalty.
    #[must_use]
    pub fn idle_access_latency(&self) -> SimTime {
        self.timing.idle_access_latency(self.freq) * self.effective_penalty().latency_factor
    }

    /// DRAM power over a window with the given consumed bandwidth and
    /// self-refresh residency.
    #[must_use]
    pub fn power(&self, consumed: Bandwidth, self_refresh_fraction: f64) -> DramPowerBreakdown {
        self.power_model.power(
            self.freq,
            consumed,
            self_refresh_fraction,
            &self.effective_penalty(),
        )
    }

    /// The timing parameter set in use.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_starts_at_default_bin_with_optimized_registers() {
        let chip = DramChip::skylake_lpddr3();
        assert_eq!(chip.state(), DramState::Active);
        assert!((chip.frequency().as_ghz() - 1.6).abs() < 1e-9);
        assert!(chip.registers_optimized());
        assert_eq!(chip.effective_penalty(), MrcMismatchPenalty::none());
        assert_eq!(chip.frequency_changes(), 0);
    }

    #[test]
    fn frequency_change_requires_self_refresh() {
        let mut chip = DramChip::skylake_lpddr3();
        assert!(chip.set_frequency(Freq::from_ghz(1.0666)).is_err());
        chip.enter_self_refresh();
        assert_eq!(chip.state(), DramState::SelfRefresh);
        chip.set_frequency(Freq::from_ghz(1.0666)).unwrap();
        assert_eq!(chip.frequency_changes(), 1);
        let exit = chip.exit_self_refresh();
        assert!(exit > SimTime::ZERO);
        assert_eq!(chip.state(), DramState::Active);
    }

    #[test]
    fn register_load_requires_self_refresh_and_known_bin() {
        let mut chip = DramChip::skylake_lpddr3();
        assert!(chip
            .load_optimized_registers(Freq::from_ghz(1.0666))
            .is_err());
        chip.enter_self_refresh();
        assert!(chip.load_optimized_registers(Freq::from_ghz(1.3)).is_err());
        chip.load_optimized_registers(Freq::from_ghz(1.0666))
            .unwrap();
        chip.set_frequency(Freq::from_ghz(1.0666)).unwrap();
        chip.exit_self_refresh();
        assert!(chip.registers_optimized());
    }

    #[test]
    fn mismatched_registers_degrade_latency_and_bandwidth() {
        let mut chip = DramChip::skylake_lpddr3();
        let opt_latency = chip.idle_access_latency();
        let opt_peak = chip.peak_bandwidth();

        // Change frequency without reloading registers: the naive flow the
        // paper criticises in Observation 4.
        chip.enter_self_refresh();
        chip.set_frequency(Freq::from_ghz(1.0666)).unwrap();
        chip.exit_self_refresh();
        assert!(!chip.registers_optimized());
        let bad_latency = chip.idle_access_latency();
        let bad_peak = chip.peak_bandwidth();

        // Now reload optimized registers and compare.
        chip.enter_self_refresh();
        chip.load_optimized_registers(Freq::from_ghz(1.0666))
            .unwrap();
        chip.exit_self_refresh();
        let good_latency = chip.idle_access_latency();
        let good_peak = chip.peak_bandwidth();

        assert!(bad_latency > good_latency);
        assert!(bad_peak < good_peak);
        assert!(
            good_latency > opt_latency,
            "lower frequency is still slower"
        );
        assert!(good_peak < opt_peak);
    }

    #[test]
    fn mismatched_registers_increase_power() {
        let mut chip = DramChip::skylake_lpddr3();
        chip.enter_self_refresh();
        chip.set_frequency(Freq::from_ghz(1.0666)).unwrap();
        chip.exit_self_refresh();
        let bw = Bandwidth::from_gib_s(12.0);
        let mismatched = chip.power(bw, 0.0).total();

        chip.enter_self_refresh();
        chip.load_optimized_registers(Freq::from_ghz(1.0666))
            .unwrap();
        chip.exit_self_refresh();
        let optimized = chip.power(bw, 0.0).total();
        assert!(mismatched > optimized);
    }

    #[test]
    fn self_refresh_entry_is_idempotent_and_counted() {
        let mut chip = DramChip::skylake_lpddr3();
        chip.enter_self_refresh();
        chip.enter_self_refresh();
        assert_eq!(chip.self_refresh_entries(), 1);
        assert!(chip.exit_self_refresh() > SimTime::ZERO);
        assert_eq!(chip.exit_self_refresh(), SimTime::ZERO);
        chip.enter_self_refresh();
        assert_eq!(chip.self_refresh_entries(), 2);
    }

    #[test]
    fn accessors_expose_configuration() {
        let chip = DramChip::skylake_lpddr3();
        assert_eq!(chip.module().geometry.channels, 2);
        assert!(chip.timing().burst_length > 0);
        assert!(chip.loaded_registers().cas_latency_cycles > 0);
    }
}
