//! DRAM power model.
//!
//! Follows the decomposition of Sec. 2.3: background power, operation power
//! (array + IO + register), termination power, and refresh, with the
//! frequency/voltage dependences described in Sec. 2.4:
//!
//! * background power scales linearly with frequency,
//! * array energy per access is frequency independent,
//! * IO and termination energy per byte grow as frequency drops (each
//!   transfer takes longer at a roughly constant interface power),
//! * termination power otherwise tracks interface utilization, not frequency.

use sysscale_types::{Bandwidth, Freq, Power};

use crate::device::DramKind;
use crate::mrc::MrcMismatchPenalty;

/// Calibration constants of the DRAM power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPowerParams {
    /// Reference DDR data frequency the per-byte energies are quoted at.
    pub nominal_freq: Freq,
    /// Background (active standby) power per GHz of DDR frequency, in watts.
    /// Covers DLL, input buffers, and peripheral maintenance circuitry.
    pub background_w_per_ghz: f64,
    /// Frequency-independent floor of background power, in watts.
    pub background_floor_w: f64,
    /// Power while the device is in self-refresh, in watts.
    pub self_refresh_w: f64,
    /// Array (bank core) energy per byte accessed, in picojoules. Frequency
    /// independent.
    pub array_pj_per_byte: f64,
    /// IO + register energy per byte at the nominal frequency, in picojoules.
    /// Scales with `nominal_freq / freq` because slower transfers keep the
    /// interface active longer.
    pub io_pj_per_byte_nominal: f64,
    /// Termination energy per byte at the nominal frequency, in picojoules.
    /// Same `nominal_freq / freq` scaling as IO energy.
    pub termination_pj_per_byte_nominal: f64,
    /// Average refresh power at the nominal refresh rate, in watts.
    pub refresh_w: f64,
}

impl DramPowerParams {
    /// Calibrated parameters for the dual-channel LPDDR3-1600 system of
    /// Table 2.
    #[must_use]
    pub fn lpddr3_dual_channel() -> Self {
        Self {
            nominal_freq: Freq::from_ghz(1.6),
            background_w_per_ghz: 0.130,
            background_floor_w: 0.040,
            self_refresh_w: 0.012,
            array_pj_per_byte: 22.0,
            io_pj_per_byte_nominal: 8.0,
            termination_pj_per_byte_nominal: 5.0,
            refresh_w: 0.018,
        }
    }

    /// Calibrated parameters for the DDR4 variant of the Sec. 7.4
    /// sensitivity study. DDR4 has slightly higher interface power and a
    /// higher nominal frequency, which is why scaling it one bin down saves
    /// ~7 % less power than LPDDR3 (Sec. 7.4).
    #[must_use]
    pub fn ddr4_dual_channel() -> Self {
        Self {
            nominal_freq: Freq::from_ghz(1.8666),
            background_w_per_ghz: 0.125,
            background_floor_w: 0.055,
            self_refresh_w: 0.018,
            array_pj_per_byte: 20.0,
            io_pj_per_byte_nominal: 9.0,
            termination_pj_per_byte_nominal: 6.0,
            refresh_w: 0.028,
        }
    }

    /// Parameters for a device kind.
    #[must_use]
    pub fn for_kind(kind: DramKind) -> Self {
        match kind {
            DramKind::Lpddr3 => Self::lpddr3_dual_channel(),
            DramKind::Ddr4 => Self::ddr4_dual_channel(),
        }
    }
}

/// Per-category breakdown of DRAM power for one evaluation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramPowerBreakdown {
    /// Background (standby + maintenance) power.
    pub background: Power,
    /// Array operation power (activate/read/write core energy).
    pub array: Power,
    /// Interface (IO drivers, latches, DLL) power.
    pub io: Power,
    /// Termination power.
    pub termination: Power,
    /// Refresh power.
    pub refresh: Power,
}

impl DramPowerBreakdown {
    /// Total DRAM power.
    #[must_use]
    pub fn total(&self) -> Power {
        self.background + self.array + self.io + self.termination + self.refresh
    }

    /// Operation power as defined by the paper (array + IO + termination).
    #[must_use]
    pub fn operation(&self) -> Power {
        self.array + self.io + self.termination
    }
}

/// The DRAM power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPowerModel {
    params: DramPowerParams,
}

impl DramPowerModel {
    /// Creates a model from calibration parameters.
    #[must_use]
    pub fn new(params: DramPowerParams) -> Self {
        Self { params }
    }

    /// Model for a device kind with default calibration.
    #[must_use]
    pub fn for_kind(kind: DramKind) -> Self {
        Self::new(DramPowerParams::for_kind(kind))
    }

    /// Read-only access to the calibration parameters.
    #[must_use]
    pub fn params(&self) -> &DramPowerParams {
        &self.params
    }

    /// Computes the average DRAM power over a window.
    ///
    /// * `freq` — DDR data frequency in effect.
    /// * `consumed` — average read+write bandwidth actually served.
    /// * `self_refresh_fraction` — fraction of the window spent in
    ///   self-refresh (0.0 = always active, 1.0 = always in self-refresh).
    /// * `penalty` — MRC mismatch penalty in effect (use
    ///   [`MrcMismatchPenalty::none`] when registers are optimized).
    ///
    /// # Panics
    ///
    /// Panics if `self_refresh_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn power(
        &self,
        freq: Freq,
        consumed: Bandwidth,
        self_refresh_fraction: f64,
        penalty: &MrcMismatchPenalty,
    ) -> DramPowerBreakdown {
        assert!(
            (0.0..=1.0).contains(&self_refresh_fraction),
            "self_refresh_fraction must be within [0, 1]"
        );
        let p = &self.params;
        let active_fraction = 1.0 - self_refresh_fraction;

        let background_active = p.background_floor_w + p.background_w_per_ghz * freq.as_ghz();
        let background = Power::from_watts(
            background_active * active_fraction + p.self_refresh_w * self_refresh_fraction,
        );

        let bytes_per_sec = consumed.as_bytes_per_sec();
        let freq_stretch = if freq.is_zero() {
            1.0
        } else {
            p.nominal_freq.as_ghz() / freq.as_ghz()
        };
        let array = Power::from_watts(bytes_per_sec * p.array_pj_per_byte * 1e-12);
        let io = Power::from_watts(
            bytes_per_sec
                * p.io_pj_per_byte_nominal
                * freq_stretch
                * 1e-12
                * penalty.io_power_factor,
        );
        let termination = Power::from_watts(
            bytes_per_sec
                * p.termination_pj_per_byte_nominal
                * freq_stretch
                * 1e-12
                * penalty.io_power_factor,
        );

        // Refresh is suppressed while in self-refresh only in the sense that
        // the internal refresh is cheaper; fold that into the active fraction.
        let refresh = Power::from_watts(p.refresh_w * active_fraction);

        DramPowerBreakdown {
            background,
            array,
            io,
            termination,
            refresh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramPowerModel {
        DramPowerModel::for_kind(DramKind::Lpddr3)
    }

    #[test]
    fn background_power_scales_linearly_with_frequency() {
        let m = model();
        let none = MrcMismatchPenalty::none();
        let hi = m.power(Freq::from_ghz(1.6), Bandwidth::ZERO, 0.0, &none);
        let lo = m.power(Freq::from_ghz(0.8), Bandwidth::ZERO, 0.0, &none);
        let floor = m.params().background_floor_w;
        let hi_var = hi.background.as_watts() - floor;
        let lo_var = lo.background.as_watts() - floor;
        assert!((hi_var / lo_var - 2.0).abs() < 1e-9);
    }

    #[test]
    fn self_refresh_power_is_much_lower_than_active_background() {
        let m = model();
        let none = MrcMismatchPenalty::none();
        let active = m.power(Freq::from_ghz(1.6), Bandwidth::ZERO, 0.0, &none);
        let sr = m.power(Freq::from_ghz(1.6), Bandwidth::ZERO, 1.0, &none);
        assert!(sr.total().as_watts() < 0.2 * active.total().as_watts());
    }

    #[test]
    fn operation_power_grows_with_bandwidth() {
        let m = model();
        let none = MrcMismatchPenalty::none();
        let idle = m.power(Freq::from_ghz(1.6), Bandwidth::ZERO, 0.0, &none);
        let busy = m.power(Freq::from_ghz(1.6), Bandwidth::from_gib_s(10.0), 0.0, &none);
        assert_eq!(idle.operation(), Power::ZERO);
        assert!(busy.operation() > Power::ZERO);
        assert!(busy.total() > idle.total());
        // Doubling bandwidth doubles operation power.
        let busier = m.power(Freq::from_ghz(1.6), Bandwidth::from_gib_s(20.0), 0.0, &none);
        assert!((busier.operation().as_watts() / busy.operation().as_watts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_byte_io_energy_rises_as_frequency_drops() {
        // Sec. 2.4: lowering DRAM frequency increases read/write/termination
        // energy linearly because each access takes longer.
        let m = model();
        let none = MrcMismatchPenalty::none();
        let bw = Bandwidth::from_gib_s(5.0);
        let hi = m.power(Freq::from_ghz(1.6), bw, 0.0, &none);
        let lo = m.power(Freq::from_ghz(0.8), bw, 0.0, &none);
        assert!(lo.io > hi.io);
        assert!(lo.termination > hi.termination);
        // Array energy is frequency independent.
        assert_eq!(lo.array, hi.array);
    }

    #[test]
    fn total_power_still_drops_at_lower_frequency_for_moderate_bandwidth() {
        // The frequency-linear background saving outweighs the per-byte IO
        // increase at the bandwidths typical workloads demand, which is the
        // premise of memory DVFS.
        let m = model();
        let none = MrcMismatchPenalty::none();
        let bw = Bandwidth::from_gib_s(2.0);
        let hi = m.power(Freq::from_ghz(1.6), bw, 0.0, &none);
        let lo = m.power(Freq::from_ghz(1.0666), bw, 0.0, &none);
        assert!(lo.total() < hi.total());
    }

    #[test]
    fn mrc_mismatch_inflates_interface_power_only() {
        let m = model();
        let bw = Bandwidth::from_gib_s(10.0);
        let good = m.power(Freq::from_ghz(1.0666), bw, 0.0, &MrcMismatchPenalty::none());
        let bad = m.power(
            Freq::from_ghz(1.0666),
            bw,
            0.0,
            &MrcMismatchPenalty::default(),
        );
        assert!(bad.io > good.io);
        assert!(bad.termination > good.termination);
        assert_eq!(bad.array, good.array);
        assert_eq!(bad.background, good.background);
        assert!(bad.total() > good.total());
    }

    #[test]
    #[should_panic(expected = "self_refresh_fraction")]
    fn rejects_bad_self_refresh_fraction() {
        let _ = model().power(
            Freq::from_ghz(1.6),
            Bandwidth::ZERO,
            1.5,
            &MrcMismatchPenalty::none(),
        );
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let m = model();
        let b = m.power(
            Freq::from_ghz(1.6),
            Bandwidth::from_gib_s(7.0),
            0.25,
            &MrcMismatchPenalty::none(),
        );
        let sum = b.background + b.array + b.io + b.termination + b.refresh;
        assert!((b.total().as_watts() - sum.as_watts()).abs() < 1e-15);
    }

    #[test]
    fn ddr4_parameters_differ() {
        let lp = DramPowerParams::lpddr3_dual_channel();
        let d4 = DramPowerParams::ddr4_dual_channel();
        assert!(d4.nominal_freq > lp.nominal_freq);
        assert_ne!(lp, d4);
        assert_eq!(DramPowerParams::for_kind(DramKind::Ddr4), d4);
    }
}
