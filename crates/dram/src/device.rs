//! DRAM device descriptions: technology, geometry, and frequency bins.
//!
//! Commercial DRAM devices only support a few discrete frequency bins
//! (Sec. 7.4: "LPDDR3 supports only 1.6GHz, 1.06GHz, and 0.8GHz"), and the
//! default bin for most systems is the highest frequency. The device
//! description also determines the peak theoretical bandwidth available to
//! the SoC (dual-channel LPDDR3-1600 peaks at 25.6 GB/s, Sec. 3).

use std::fmt;

use sysscale_types::{Bandwidth, Freq, SimError, SimResult};

/// DRAM technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramKind {
    /// Low-power DDR3, the memory of the evaluated Skylake mobile system
    /// (Table 2: LPDDR3-1600, dual channel, 8 GB).
    Lpddr3,
    /// DDR4, used in the Sec. 7.4 sensitivity study (1.86 GHz → 1.33 GHz).
    Ddr4,
}

impl DramKind {
    /// The JEDEC-style frequency bins supported by this device kind, from
    /// lowest to highest data frequency.
    #[must_use]
    pub fn frequency_bins(self) -> Vec<Freq> {
        match self {
            DramKind::Lpddr3 => vec![
                Freq::from_ghz(0.8),
                Freq::from_ghz(1.0666),
                Freq::from_ghz(1.6),
            ],
            DramKind::Ddr4 => vec![
                Freq::from_ghz(1.3333),
                Freq::from_ghz(1.8666),
                Freq::from_ghz(2.1333),
            ],
        }
    }

    /// Default (highest) frequency bin, used by the BIOS/MRC at boot
    /// (Sec. 2.5 and footnote 4).
    #[must_use]
    pub fn default_bin(self) -> Freq {
        *self
            .frequency_bins()
            .last()
            .expect("every kind has at least one bin")
    }

    /// Nominal VDDQ supply voltage of the device kind, in volts.
    #[must_use]
    pub fn nominal_vddq(self) -> f64 {
        match self {
            DramKind::Lpddr3 => 1.2,
            DramKind::Ddr4 => 1.2,
        }
    }
}

impl fmt::Display for DramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramKind::Lpddr3 => f.write_str("LPDDR3"),
            DramKind::Ddr4 => f.write_str("DDR4"),
        }
    }
}

/// Physical organization of the memory system attached to the SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramGeometry {
    /// Number of independent channels (each with its own data bus).
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Data-bus width per channel, in bits.
    pub bus_width_bits: u32,
    /// Total capacity in GiB.
    pub capacity_gib: u32,
}

impl DramGeometry {
    /// Dual-channel 64-bit LPDDR3 configuration of the evaluated system
    /// (Table 2: 8 GB, dual channel).
    #[must_use]
    pub fn skylake_mobile() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            bus_width_bits: 64,
            capacity_gib: 8,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any field is zero or the bus
    /// width is not a multiple of 8.
    pub fn validate(&self) -> SimResult<()> {
        if self.channels == 0
            || self.ranks_per_channel == 0
            || self.banks_per_rank == 0
            || self.bus_width_bits == 0
            || self.capacity_gib == 0
        {
            return Err(SimError::invalid_config(
                "dram geometry fields must be non-zero",
            ));
        }
        if self.bus_width_bits % 8 != 0 {
            return Err(SimError::invalid_config(
                "dram bus width must be a whole number of bytes",
            ));
        }
        Ok(())
    }

    /// Total number of banks across the whole memory system.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// A DRAM module (kind + geometry) as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModule {
    /// Technology generation.
    pub kind: DramKind,
    /// Physical organization.
    pub geometry: DramGeometry,
}

impl DramModule {
    /// Creates a module after validating its geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the geometry is invalid.
    pub fn new(kind: DramKind, geometry: DramGeometry) -> SimResult<Self> {
        geometry.validate()?;
        Ok(Self { kind, geometry })
    }

    /// The dual-channel LPDDR3-1600 module of the evaluated Skylake system.
    #[must_use]
    pub fn skylake_lpddr3() -> Self {
        Self {
            kind: DramKind::Lpddr3,
            geometry: DramGeometry::skylake_mobile(),
        }
    }

    /// A DDR4 module with the same geometry, for the Sec. 7.4 sensitivity
    /// study.
    #[must_use]
    pub fn ddr4_variant() -> Self {
        Self {
            kind: DramKind::Ddr4,
            geometry: DramGeometry::skylake_mobile(),
        }
    }

    /// Peak theoretical bandwidth at DDR data frequency `freq`:
    /// `channels × bus_bytes × freq` (DDR transfers on both clock edges are
    /// already folded into the data frequency the paper quotes).
    #[must_use]
    pub fn peak_bandwidth(&self, freq: Freq) -> Bandwidth {
        let bytes_per_transfer = (self.geometry.bus_width_bits / 8) as f64;
        Bandwidth::from_bytes_per_sec(
            self.geometry.channels as f64 * bytes_per_transfer * freq.as_hz(),
        )
    }

    /// Returns `true` if `freq` is one of the device's supported bins (within
    /// 1 MHz tolerance).
    #[must_use]
    pub fn supports_frequency(&self, freq: Freq) -> bool {
        self.kind
            .frequency_bins()
            .iter()
            .any(|&bin| (bin.as_mhz() - freq.as_mhz()).abs() < 1.0)
    }

    /// Returns the nearest supported bin at or below `freq`, or the lowest
    /// bin if `freq` is below all of them.
    #[must_use]
    pub fn bin_at_or_below(&self, freq: Freq) -> Freq {
        let bins = self.kind.frequency_bins();
        bins.iter()
            .rev()
            .find(|&&b| b <= freq * 1.001)
            .copied()
            .unwrap_or(bins[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr3_bins_match_paper() {
        let bins = DramKind::Lpddr3.frequency_bins();
        assert_eq!(bins.len(), 3);
        assert!((bins[0].as_ghz() - 0.8).abs() < 1e-9);
        assert!((bins[1].as_ghz() - 1.0666).abs() < 1e-9);
        assert!((bins[2].as_ghz() - 1.6).abs() < 1e-9);
        assert_eq!(DramKind::Lpddr3.default_bin(), bins[2]);
    }

    #[test]
    fn ddr4_bins_cover_sensitivity_study() {
        let bins = DramKind::Ddr4.frequency_bins();
        assert!(bins.iter().any(|b| (b.as_ghz() - 1.8666).abs() < 1e-9));
        assert!(bins.iter().any(|b| (b.as_ghz() - 1.3333).abs() < 1e-9));
    }

    #[test]
    fn dual_channel_lpddr3_1600_peaks_at_25_6_gb_s() {
        // Sec. 3: "peak memory bandwidth of a dual-channel LPDDR3 (25.6GB/s at
        // 1.6GHz DRAM frequency)". The paper uses decimal GB here.
        let module = DramModule::skylake_lpddr3();
        let peak = module.peak_bandwidth(Freq::from_ghz(1.6));
        let gb_s = peak.as_bytes_per_sec() / 1e9;
        assert!((gb_s - 25.6).abs() < 0.1, "got {gb_s} GB/s");
    }

    #[test]
    fn peak_bandwidth_scales_linearly_with_frequency() {
        let module = DramModule::skylake_lpddr3();
        let high = module.peak_bandwidth(Freq::from_ghz(1.6));
        let low = module.peak_bandwidth(Freq::from_ghz(0.8));
        assert!((high.as_bytes_per_sec() / low.as_bytes_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_support_and_binning() {
        let module = DramModule::skylake_lpddr3();
        assert!(module.supports_frequency(Freq::from_ghz(1.6)));
        assert!(module.supports_frequency(Freq::from_ghz(1.0666)));
        assert!(!module.supports_frequency(Freq::from_ghz(1.3)));
        assert_eq!(
            module.bin_at_or_below(Freq::from_ghz(1.3)),
            Freq::from_ghz(1.0666)
        );
        assert_eq!(
            module.bin_at_or_below(Freq::from_ghz(0.5)),
            Freq::from_ghz(0.8)
        );
        assert_eq!(
            module.bin_at_or_below(Freq::from_ghz(1.6)),
            Freq::from_ghz(1.6)
        );
    }

    #[test]
    fn geometry_validation() {
        let good = DramGeometry::skylake_mobile();
        assert!(good.validate().is_ok());
        assert_eq!(good.total_banks(), 16);
        let mut bad = good;
        bad.channels = 0;
        assert!(bad.validate().is_err());
        let mut odd = good;
        odd.bus_width_bits = 60;
        assert!(odd.validate().is_err());
        assert!(DramModule::new(DramKind::Lpddr3, bad).is_err());
        assert!(DramModule::new(DramKind::Ddr4, good).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(DramKind::Lpddr3.to_string(), "LPDDR3");
        assert_eq!(DramKind::Ddr4.to_string(), "DDR4");
    }
}
