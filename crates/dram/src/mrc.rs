//! Memory reference code (MRC) register sets and the on-chip SRAM that
//! stores one optimized set per DRAM frequency bin.
//!
//! MRC training (Sec. 2.5) runs at boot for a single DRAM frequency and
//! writes the memory-controller, DDRIO, and DIMM configuration registers with
//! values optimized for that frequency. SysScale pre-computes one register
//! set per supported bin, stores them in ~0.5 KB of on-chip SRAM (Sec. 5),
//! and reloads the matching set during every DVFS transition (Fig. 5 step 5).
//! Running with *unoptimized* values (trained for a different frequency)
//! degrades performance and increases power (Observation 4 / Fig. 4).

use std::collections::BTreeMap;

use sysscale_types::{Freq, SimError, SimResult};

use crate::device::DramKind;
use crate::timing::TimingParams;

/// One trained configuration-register set for a specific DRAM frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcRegisterSet {
    /// The DRAM data frequency this set was trained for.
    pub trained_for: Freq,
    /// CAS latency in command-clock cycles.
    pub cas_latency_cycles: u32,
    /// RAS-to-CAS delay in command-clock cycles.
    pub rcd_cycles: u32,
    /// Row precharge time in command-clock cycles.
    pub rp_cycles: u32,
    /// Refresh cycle time in command-clock cycles.
    pub rfc_cycles: u32,
    /// Trained receive-enable / DQS delay, in picoseconds.
    pub dqs_delay_ps: f64,
    /// On-die-termination impedance setting, in ohms.
    pub odt_ohms: f64,
    /// Reference-voltage setting as a fraction of VDDQ.
    pub vref_fraction: f64,
}

impl MrcRegisterSet {
    /// Trains a register set for `freq` using the device kind's timing
    /// constraints. This mirrors what MRC training produces at boot for the
    /// boot frequency, repeated per bin at reset time (Sec. 5).
    #[must_use]
    pub fn train(kind: DramKind, freq: Freq) -> Self {
        let t = TimingParams::for_kind(kind);
        // Trained interface parameters scale with the bit time: a faster bus
        // needs a tighter DQS window and stronger termination.
        let bit_time_ps = 1e12 / freq.as_hz();
        let odt = match kind {
            DramKind::Lpddr3 => 120.0 - 20.0 * (freq.as_ghz() - 0.8),
            DramKind::Ddr4 => 80.0 - 10.0 * (freq.as_ghz() - 1.33),
        };
        Self {
            trained_for: freq,
            cas_latency_cycles: TimingParams::ns_to_cycles(t.t_cl_ns, freq),
            rcd_cycles: TimingParams::ns_to_cycles(t.t_rcd_ns, freq),
            rp_cycles: TimingParams::ns_to_cycles(t.t_rp_ns, freq),
            rfc_cycles: TimingParams::ns_to_cycles(t.t_rfc_ns, freq),
            dqs_delay_ps: bit_time_ps / 4.0,
            odt_ohms: odt,
            vref_fraction: 0.5,
        }
    }

    /// Approximate storage footprint of one register set, in bytes, counting
    /// each field as one 32-bit configuration register plus a handful of
    /// per-byte-lane delay registers (8 lanes × 2 registers).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let scalar_registers = 8;
        let per_lane_registers = 8 * 2;
        (scalar_registers + per_lane_registers) * 4
    }

    /// Returns `true` if this set is optimized for operation at `freq`
    /// (within 1 MHz).
    #[must_use]
    pub fn matches(&self, freq: Freq) -> bool {
        (self.trained_for.as_mhz() - freq.as_mhz()).abs() < 1.0
    }
}

/// Performance/power penalties of operating the memory interface with
/// register values trained for a *different* frequency.
///
/// The defaults reproduce the shape of Fig. 4: for a memory-bandwidth-bound
/// microbenchmark, unoptimized values cost ~10 % performance and ~22 %
/// average power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcMismatchPenalty {
    /// Multiplier on effective DRAM access latency (> 1.0): conservative
    /// (slower-frequency) timings are applied and the interface must insert
    /// guard cycles because the trained DQS window is off-center.
    pub latency_factor: f64,
    /// Multiplier (< 1.0) on achievable peak bandwidth: mis-trained
    /// termination and receive-enable force the controller to lower the bus
    /// efficiency (longer turnaround gaps, retries on marginal lanes).
    pub bandwidth_derate: f64,
    /// Multiplier (> 1.0) on DRAM interface (IO + termination) power:
    /// over-strong ODT and off-center reference voltage burn static current.
    pub io_power_factor: f64,
}

impl Default for MrcMismatchPenalty {
    fn default() -> Self {
        Self {
            latency_factor: 1.10,
            bandwidth_derate: 0.92,
            io_power_factor: 1.35,
        }
    }
}

impl MrcMismatchPenalty {
    /// No penalty (registers match the operating frequency).
    #[must_use]
    pub fn none() -> Self {
        Self {
            latency_factor: 1.0,
            bandwidth_derate: 1.0,
            io_power_factor: 1.0,
        }
    }

    /// Validates that the penalty factors are on the correct side of 1.0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a factor would *improve*
    /// behaviour (that would be a model bug, not a penalty).
    pub fn validate(&self) -> SimResult<()> {
        if self.latency_factor < 1.0 || self.io_power_factor < 1.0 || self.bandwidth_derate > 1.0 {
            return Err(SimError::invalid_config(
                "mrc mismatch penalties must not improve performance or power",
            ));
        }
        if self.bandwidth_derate <= 0.0 {
            return Err(SimError::invalid_config(
                "bandwidth derate must be positive",
            ));
        }
        Ok(())
    }
}

/// The on-chip SRAM holding one optimized [`MrcRegisterSet`] per supported
/// frequency bin (Sec. 5: ≈0.5 KB, <0.006 % of Skylake's die area).
#[derive(Debug, Clone, PartialEq)]
pub struct MrcSram {
    kind: DramKind,
    sets: BTreeMap<u64, MrcRegisterSet>,
}

impl MrcSram {
    /// Trains and stores a register set for every frequency bin the device
    /// kind supports. This models the reset-time MRC calculations (Sec. 5).
    #[must_use]
    pub fn train_all(kind: DramKind) -> Self {
        let mut sets = BTreeMap::new();
        for bin in kind.frequency_bins() {
            sets.insert(Self::key(bin), MrcRegisterSet::train(kind, bin));
        }
        Self { kind, sets }
    }

    fn key(freq: Freq) -> u64 {
        freq.as_mhz().round() as u64
    }

    /// Device kind the stored sets were trained for.
    #[must_use]
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// Number of stored register sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if no sets are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Looks up the register set trained for `freq`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no set was trained for `freq`
    /// (i.e. `freq` is not a supported bin).
    pub fn lookup(&self, freq: Freq) -> SimResult<&MrcRegisterSet> {
        self.sets.get(&Self::key(freq)).ok_or_else(|| {
            SimError::invalid_config(format!(
                "no MRC register set trained for {:.0} MHz",
                freq.as_mhz()
            ))
        })
    }

    /// Total SRAM footprint in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.sets.values().map(MrcRegisterSet::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_sets_differ_across_bins() {
        let high = MrcRegisterSet::train(DramKind::Lpddr3, Freq::from_ghz(1.6));
        let low = MrcRegisterSet::train(DramKind::Lpddr3, Freq::from_ghz(1.0666));
        assert!(high.cas_latency_cycles > low.cas_latency_cycles);
        assert!(high.dqs_delay_ps < low.dqs_delay_ps);
        assert!(high.odt_ohms < low.odt_ohms);
        assert!(high.matches(Freq::from_ghz(1.6)));
        assert!(!high.matches(Freq::from_ghz(1.0666)));
    }

    #[test]
    fn sram_holds_one_set_per_bin_and_fits_half_kb() {
        let sram = MrcSram::train_all(DramKind::Lpddr3);
        assert_eq!(sram.len(), DramKind::Lpddr3.frequency_bins().len());
        assert!(!sram.is_empty());
        assert_eq!(sram.kind(), DramKind::Lpddr3);
        // Sec. 5: approximately 0.5 KB of SRAM is enough.
        assert!(
            sram.size_bytes() <= 512,
            "footprint {} B",
            sram.size_bytes()
        );
        for bin in DramKind::Lpddr3.frequency_bins() {
            let set = sram.lookup(bin).unwrap();
            assert!(set.matches(bin));
        }
    }

    #[test]
    fn sram_lookup_rejects_unsupported_frequency() {
        let sram = MrcSram::train_all(DramKind::Lpddr3);
        assert!(sram.lookup(Freq::from_ghz(1.3)).is_err());
    }

    #[test]
    fn mismatch_penalty_defaults_are_penalties() {
        let p = MrcMismatchPenalty::default();
        assert!(p.validate().is_ok());
        assert!(p.latency_factor > 1.0);
        assert!(p.bandwidth_derate < 1.0);
        assert!(p.io_power_factor > 1.0);
        let none = MrcMismatchPenalty::none();
        assert!(none.validate().is_ok());
        assert_eq!(none.latency_factor, 1.0);
    }

    #[test]
    fn mismatch_penalty_validation_rejects_improvements() {
        let p = MrcMismatchPenalty {
            latency_factor: 0.9,
            ..MrcMismatchPenalty::default()
        };
        assert!(p.validate().is_err());
        let q = MrcMismatchPenalty {
            bandwidth_derate: 1.1,
            ..MrcMismatchPenalty::default()
        };
        assert!(q.validate().is_err());
        let r = MrcMismatchPenalty {
            bandwidth_derate: 0.0,
            ..MrcMismatchPenalty::default()
        };
        assert!(r.validate().is_err());
    }
}
