//! Randomized invariant tests for power budgeting and accounting, sampled
//! deterministically with [`SplitMix64`] (no external property-testing
//! dependency).

use sysscale_compute::PStateTable;
use sysscale_power::{
    BudgetPolicy, ComputeRequest, ComputeUnitPowerModel, ComputeUnitPowerParams, EnergyAccount,
    PowerBreakdown, PowerBudgetManager,
};
use sysscale_types::rng::SplitMix64;
use sysscale_types::{Component, Domain, Freq, Power, SimTime};

const CASES: usize = 200;

fn sample_request(rng: &mut SplitMix64) -> ComputeRequest {
    let c0 = rng.gen_range(0.05, 1.0);
    ComputeRequest {
        cpu_requested: Freq::from_ghz(rng.gen_range(0.4, 2.9)),
        gfx_requested: Freq::from_ghz(rng.gen_range(0.3, 1.0)),
        cpu_activity: rng.gen_range(0.0, 1.0),
        gfx_activity: rng.gen_range(0.0, 1.0),
        gfx_priority: rng.gen_bool(0.5),
        c0_fraction: c0,
        leakage_fraction: c0.max(0.1),
    }
}

/// The PBM never grants a configuration whose estimate exceeds the budget
/// unless even the floor states exceed it, and never exceeds the requested
/// frequencies.
#[test]
fn pbm_grant_is_safe() {
    let pbm = PowerBudgetManager::default();
    let mut rng = SplitMix64::new(0xB0_01);
    for _ in 0..CASES {
        let budget = Power::from_watts(rng.gen_range(0.3, 6.0));
        let req = sample_request(&mut rng);
        let grant = pbm.grant(budget, &req);
        let floor_estimate = {
            let cpu = pbm.cpu_table().lowest();
            let gfx = pbm.gfx_table().lowest();
            pbm.model().power(
                cpu,
                req.cpu_activity * req.c0_fraction,
                gfx,
                req.gfx_activity * req.c0_fraction,
                req.c0_fraction,
                req.leakage_fraction,
            )
        };
        if grant.estimated_power > budget {
            // Only allowed when even the floor does not fit.
            assert!(floor_estimate > budget);
        }
        assert!(
            grant.cpu.freq <= req.cpu_requested * 1.001 || grant.cpu == pbm.cpu_table().lowest()
        );
        assert!(
            grant.gfx.freq <= req.gfx_requested * 1.001 || grant.gfx == pbm.gfx_table().lowest()
        );
    }
}

/// A larger budget never results in a lower granted frequency for the unit
/// budgeted first (the non-priority unit may legitimately receive less when
/// the priority unit absorbs the extra headroom).
#[test]
fn pbm_grant_monotonic_in_budget() {
    let pbm = PowerBudgetManager::default();
    let mut rng = SplitMix64::new(0xB0_02);
    for _ in 0..CASES {
        let b1 = rng.gen_range(0.5, 5.0);
        let extra = rng.gen_range(0.0, 2.0);
        let req = sample_request(&mut rng);
        let small = pbm.grant(Power::from_watts(b1), &req);
        let large = pbm.grant(Power::from_watts(b1 + extra), &req);
        if req.gfx_priority {
            assert!(large.gfx.freq >= small.gfx.freq);
        } else {
            assert!(large.cpu.freq >= small.cpu.freq);
        }
    }
}

/// Budget splits always conserve the TDP (within the minimum-compute floor)
/// and demand-driven compute budget is never below the worst-case compute
/// budget.
#[test]
fn budget_split_conservation() {
    let policy = BudgetPolicy::default();
    let mut rng = SplitMix64::new(0xB0_03);
    for _ in 0..CASES {
        let tdp_w = rng.gen_range(3.5, 15.0);
        let io_w = rng.gen_range(0.05, 1.2);
        let mem_w = rng.gen_range(0.05, 1.5);
        let tdp = Power::from_watts(tdp_w);
        let worst = policy.worst_case_budgets(tdp);
        let demand =
            policy.demand_driven_budgets(tdp, Power::from_watts(io_w), Power::from_watts(mem_w));
        assert!(worst.total().as_watts() <= tdp_w + 1e-9);
        assert!(demand.total().as_watts() <= tdp_w + 1e-9);
        assert!(demand.compute >= worst.compute - Power::from_mw(1e-6));
    }
}

/// Compute-unit power is monotone in activity and in P-state index.
#[test]
fn unit_power_monotonic() {
    let model = ComputeUnitPowerModel::new(ComputeUnitPowerParams::skylake_cpu_2core());
    let table = PStateTable::skylake_cpu();
    let mut rng = SplitMix64::new(0xB0_04);
    for _ in 0..CASES {
        let a1 = rng.gen_range(0.0, 1.0);
        let a2 = rng.gen_range(0.0, 1.0);
        let idx = rng.next_u64() as usize % 25;
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let s = table.states()[idx.min(table.len() - 1)];
        assert!(model.power(s, hi, 1.0).as_watts() >= model.power(s, lo, 1.0).as_watts() - 1e-12);
        if idx + 1 < table.len() {
            let s2 = table.states()[idx + 1];
            assert!(model.power(s2, hi, 1.0) >= model.power(s, hi, 1.0));
        }
    }
}

/// Energy accounting: total energy equals average power times duration, and
/// domain energies sum to the total.
#[test]
fn energy_account_consistency() {
    let mut rng = SplitMix64::new(0xB0_05);
    for _ in 0..CASES {
        let n = 1 + rng.next_u64() as usize % 39;
        let mut acc = EnergyAccount::new();
        for _ in 0..n {
            let mut b = PowerBreakdown::new();
            b.set(
                Component::CpuCores,
                Power::from_watts(rng.gen_range(0.1, 3.0)),
            );
            b.set(Component::Dram, Power::from_watts(rng.gen_range(0.05, 1.0)));
            b.set(
                Component::IoInterconnect,
                Power::from_watts(rng.gen_range(0.05, 0.6)),
            );
            acc.accumulate(&b, SimTime::from_millis(1.0));
        }
        let total = acc.total().as_joules();
        let by_domain: f64 = [Domain::Compute, Domain::Io, Domain::Memory]
            .iter()
            .map(|&d| acc.domain(d).as_joules())
            .sum();
        assert!((total - by_domain).abs() < 1e-12);
        let avg = acc.average_power();
        assert!(((avg * acc.duration()).as_joules() - total).abs() < 1e-9);
    }
}
