//! Property-based tests for power budgeting and accounting invariants.

use proptest::prelude::*;

use sysscale_compute::PStateTable;
use sysscale_power::{
    BudgetPolicy, ComputeRequest, ComputeUnitPowerModel, ComputeUnitPowerParams, EnergyAccount,
    PowerBreakdown, PowerBudgetManager,
};
use sysscale_types::{Component, Domain, Freq, Power, SimTime};

fn arb_request() -> impl Strategy<Value = ComputeRequest> {
    (
        0.4f64..2.9,
        0.3f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
        any::<bool>(),
        0.05f64..1.0,
    )
        .prop_map(|(cpu_ghz, gfx_ghz, cpu_act, gfx_act, gfx_priority, c0)| ComputeRequest {
            cpu_requested: Freq::from_ghz(cpu_ghz),
            gfx_requested: Freq::from_ghz(gfx_ghz),
            cpu_activity: cpu_act,
            gfx_activity: gfx_act,
            gfx_priority,
            c0_fraction: c0,
            leakage_fraction: c0.max(0.1),
        })
}

proptest! {
    /// The PBM never grants a configuration whose estimate exceeds the budget
    /// unless even the floor states exceed it, and never exceeds the
    /// requested frequencies.
    #[test]
    fn pbm_grant_is_safe(budget_w in 0.3f64..6.0, req in arb_request()) {
        let pbm = PowerBudgetManager::default();
        let budget = Power::from_watts(budget_w);
        let grant = pbm.grant(budget, &req);
        let floor_estimate = {
            let cpu = pbm.cpu_table().lowest();
            let gfx = pbm.gfx_table().lowest();
            pbm.model().power(cpu, req.cpu_activity * req.c0_fraction, gfx,
                req.gfx_activity * req.c0_fraction, req.c0_fraction, req.leakage_fraction)
        };
        if grant.estimated_power > budget {
            // Only allowed when even the floor does not fit.
            prop_assert!(floor_estimate > budget);
        }
        prop_assert!(grant.cpu.freq <= req.cpu_requested * 1.001 || grant.cpu == pbm.cpu_table().lowest());
        prop_assert!(grant.gfx.freq <= req.gfx_requested * 1.001 || grant.gfx == pbm.gfx_table().lowest());
    }

    /// A larger budget never results in a lower granted frequency for the
    /// unit budgeted first (the non-priority unit may legitimately receive
    /// less when the priority unit absorbs the extra headroom).
    #[test]
    fn pbm_grant_monotonic_in_budget(b1 in 0.5f64..5.0, extra in 0.0f64..2.0, req in arb_request()) {
        let pbm = PowerBudgetManager::default();
        let small = pbm.grant(Power::from_watts(b1), &req);
        let large = pbm.grant(Power::from_watts(b1 + extra), &req);
        if req.gfx_priority {
            prop_assert!(large.gfx.freq >= small.gfx.freq);
        } else {
            prop_assert!(large.cpu.freq >= small.cpu.freq);
        }
    }

    /// Budget splits always conserve the TDP (within the minimum-compute
    /// floor) and demand-driven compute budget is never below the worst-case
    /// compute budget.
    #[test]
    fn budget_split_conservation(tdp_w in 3.5f64..15.0, io_w in 0.05f64..1.2, mem_w in 0.05f64..1.5) {
        let policy = BudgetPolicy::default();
        let tdp = Power::from_watts(tdp_w);
        let worst = policy.worst_case_budgets(tdp);
        let demand = policy.demand_driven_budgets(tdp, Power::from_watts(io_w), Power::from_watts(mem_w));
        prop_assert!(worst.total().as_watts() <= tdp_w + 1e-9);
        prop_assert!(demand.total().as_watts() <= tdp_w + 1e-9);
        prop_assert!(demand.compute >= worst.compute - Power::from_mw(1e-6));
    }

    /// Compute-unit power is monotone in activity and in P-state index.
    #[test]
    fn unit_power_monotonic(a1 in 0.0f64..1.0, a2 in 0.0f64..1.0, idx in 0usize..25) {
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let model = ComputeUnitPowerModel::new(ComputeUnitPowerParams::skylake_cpu_2core());
        let table = PStateTable::skylake_cpu();
        let s = table.states()[idx.min(table.len() - 1)];
        prop_assert!(model.power(s, hi, 1.0).as_watts() >= model.power(s, lo, 1.0).as_watts() - 1e-12);
        if idx + 1 < table.len() {
            let s2 = table.states()[idx + 1];
            prop_assert!(model.power(s2, hi, 1.0) >= model.power(s, hi, 1.0));
        }
    }

    /// Energy accounting: total energy equals average power times duration,
    /// and domain energies sum to the total.
    #[test]
    fn energy_account_consistency(slices in proptest::collection::vec((0.1f64..3.0, 0.05f64..1.0, 0.05f64..0.6), 1..40)) {
        let mut acc = EnergyAccount::new();
        for (cpu_w, dram_w, io_w) in &slices {
            let mut b = PowerBreakdown::new();
            b.set(Component::CpuCores, Power::from_watts(*cpu_w));
            b.set(Component::Dram, Power::from_watts(*dram_w));
            b.set(Component::IoInterconnect, Power::from_watts(*io_w));
            acc.accumulate(&b, SimTime::from_millis(1.0));
        }
        let total = acc.total().as_joules();
        let by_domain: f64 = [Domain::Compute, Domain::Io, Domain::Memory]
            .iter()
            .map(|&d| acc.domain(d).as_joules())
            .sum();
        prop_assert!((total - by_domain).abs() < 1e-12);
        let avg = acc.average_power();
        prop_assert!(((avg * acc.duration()).as_joules() - total).abs() < 1e-9);
    }
}
