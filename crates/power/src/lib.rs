//! # sysscale-power
//!
//! Power infrastructure for the SysScale simulator: voltage rails and
//! regulators, compute-domain power models, TDP budgeting with the
//! compute-domain power budget manager (PBM), and per-component power/energy
//! accounting.
//!
//! ## Example
//!
//! ```
//! use sysscale_power::{BudgetPolicy, ComputeRequest, PowerBudgetManager};
//! use sysscale_types::{Freq, Power};
//!
//! let policy = BudgetPolicy::default();
//! let pbm = PowerBudgetManager::default();
//! let budgets = policy.worst_case_budgets(Power::from_watts(4.5));
//! let grant = pbm.grant(
//!     budgets.compute,
//!     &ComputeRequest {
//!         cpu_requested: Freq::from_ghz(2.9),
//!         gfx_requested: Freq::from_ghz(0.3),
//!         cpu_activity: 1.0,
//!         gfx_activity: 0.0,
//!         gfx_priority: false,
//!         c0_fraction: 1.0,
//!         leakage_fraction: 1.0,
//!     },
//! );
//! assert!(grant.estimated_power <= budgets.compute);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod breakdown;
mod budget;
mod compute_power;
mod rails;

pub use breakdown::{EnergyAccount, PowerBreakdown};
pub use budget::{BudgetPolicy, ComputeGrant, ComputeRequest, DomainBudgets, PowerBudgetManager};
pub use compute_power::{ComputeDomainPowerModel, ComputeUnitPowerModel, ComputeUnitPowerParams};
pub use rails::{NominalVoltages, RailVoltages, VoltageRegulator};
