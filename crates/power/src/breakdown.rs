//! Per-component power breakdowns and energy accounting.
//!
//! Every simulation slice produces a [`PowerBreakdown`] (what each component
//! drew on average during the slice); the [`EnergyAccount`] integrates those
//! breakdowns over time into per-component, per-domain, and per-rail energy —
//! the model's equivalent of the per-rail NI-DAQ measurements the paper uses
//! (Sec. 6).

use sysscale_types::{Component, Domain, Energy, Power, Rail, SimTime};

const N_COMPONENTS: usize = Component::ALL.len();

// The presence masks must be able to hold one bit per component.
const _: () = assert!(N_COMPONENTS <= u16::BITS as usize);

/// Average power drawn by each SoC component over one window.
///
/// Backed by a fixed inline array indexed by [`Component::index`] plus a
/// presence bitmask: building and dropping one breakdown per simulation
/// slice performs no heap allocation. Iteration (and therefore every sum)
/// visits present components in [`Component::ALL`] order, keeping totals
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    // Invariant: a slot whose presence bit is clear always holds zero, so
    // the derived PartialEq matches map semantics.
    entries: [Power; N_COMPONENTS],
    present: u16,
}

impl PowerBreakdown {
    /// Creates an empty (all-zero) breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the power of a component.
    pub fn set(&mut self, component: Component, power: Power) {
        self.entries[component.index()] = power;
        self.present |= 1 << component.index();
    }

    /// Adds power to a component.
    pub fn add(&mut self, component: Component, power: Power) {
        self.entries[component.index()] += power;
        self.present |= 1 << component.index();
    }

    /// Power of a component (zero if never set).
    #[must_use]
    pub fn component(&self, component: Component) -> Power {
        self.entries[component.index()]
    }

    /// Total SoC power.
    #[must_use]
    pub fn total(&self) -> Power {
        self.iter().map(|(_, p)| p).sum()
    }

    /// Total power of one domain.
    #[must_use]
    pub fn domain(&self, domain: Domain) -> Power {
        self.iter()
            .filter(|(c, _)| c.domain() == domain)
            .map(|(_, p)| p)
            .sum()
    }

    /// Total power drawn from one rail.
    #[must_use]
    pub fn rail(&self, rail: Rail) -> Power {
        self.iter()
            .filter(|(c, _)| c.rail() == rail)
            .map(|(_, p)| p)
            .sum()
    }

    /// Iterates over the `(component, power)` pairs that have been written,
    /// in [`Component::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Power)> + '_ {
        Component::ALL
            .iter()
            .filter(|c| self.present & (1 << c.index()) != 0)
            .map(|&c| (c, self.entries[c.index()]))
    }
}

/// Integrated energy over a simulation run, per component.
///
/// Like [`PowerBreakdown`], the account stores a fixed per-component array,
/// so accumulating a slice never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyAccount {
    entries: [Energy; N_COMPONENTS],
    present: u16,
    duration: SimTime,
}

impl EnergyAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs an account from its observable parts: the accumulated
    /// duration plus the `(component, energy)` pairs of [`Self::iter`].
    ///
    /// This is the exact inverse of `iter()`/`duration()` — feeding one
    /// account's parts back yields a `PartialEq`-identical account — and is
    /// the deserialization hook wire codecs use: an account that crossed a
    /// process boundary as its part list rebuilds bit-identically.
    #[must_use]
    pub fn from_parts(
        duration: SimTime,
        parts: impl IntoIterator<Item = (Component, Energy)>,
    ) -> Self {
        let mut account = Self {
            duration,
            ..Self::default()
        };
        for (component, energy) in parts {
            account.entries[component.index()] = energy;
            account.present |= 1 << component.index();
        }
        account
    }

    /// Accumulates one slice: every component's power integrated over `dt`.
    pub fn accumulate(&mut self, breakdown: &PowerBreakdown, dt: SimTime) {
        for (component, power) in breakdown.iter() {
            self.entries[component.index()] += power * dt;
            self.present |= 1 << component.index();
        }
        self.duration += dt;
    }

    /// Total simulated time accumulated.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.duration
    }

    /// Energy of one component.
    #[must_use]
    pub fn component(&self, component: Component) -> Energy {
        self.entries[component.index()]
    }

    /// Iterates over the `(component, energy)` pairs that have accumulated
    /// energy, in [`Component::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Energy)> + '_ {
        Component::ALL
            .iter()
            .filter(|c| self.present & (1 << c.index()) != 0)
            .map(|&c| (c, self.entries[c.index()]))
    }

    /// Total SoC energy.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.iter().map(|(_, e)| e).sum()
    }

    /// Energy of one domain.
    #[must_use]
    pub fn domain(&self, domain: Domain) -> Energy {
        self.iter()
            .filter(|(c, _)| c.domain() == domain)
            .map(|(_, e)| e)
            .sum()
    }

    /// Energy drawn from one rail.
    #[must_use]
    pub fn rail(&self, rail: Rail) -> Energy {
        self.iter()
            .filter(|(c, _)| c.rail() == rail)
            .map(|(_, e)| e)
            .sum()
    }

    /// Average SoC power over the accumulated duration.
    #[must_use]
    pub fn average_power(&self) -> Power {
        if self.duration.is_zero() {
            Power::ZERO
        } else {
            self.total() / self.duration
        }
    }

    /// Average power of one domain.
    #[must_use]
    pub fn average_domain_power(&self, domain: Domain) -> Power {
        if self.duration.is_zero() {
            Power::ZERO
        } else {
            self.domain(domain) / self.duration
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_breakdown() -> PowerBreakdown {
        let mut b = PowerBreakdown::new();
        b.set(Component::CpuCores, Power::from_watts(1.5));
        b.set(Component::GraphicsEngine, Power::from_watts(0.5));
        b.set(Component::MemoryController, Power::from_watts(0.3));
        b.set(Component::IoInterconnect, Power::from_watts(0.25));
        b.set(Component::Dram, Power::from_watts(0.4));
        b.set(Component::DdrIoDigital, Power::from_watts(0.15));
        b
    }

    #[test]
    fn breakdown_totals_by_domain_and_rail() {
        let b = sample_breakdown();
        assert!((b.total().as_watts() - 3.1).abs() < 1e-12);
        assert!((b.domain(Domain::Compute).as_watts() - 2.0).abs() < 1e-12);
        assert!((b.domain(Domain::Memory).as_watts() - 0.85).abs() < 1e-12);
        assert!((b.domain(Domain::Io).as_watts() - 0.25).abs() < 1e-12);
        // V_SA carries MC + interconnect.
        assert!((b.rail(Rail::VSa).as_watts() - 0.55).abs() < 1e-12);
        assert!((b.rail(Rail::VIo).as_watts() - 0.15).abs() < 1e-12);
        assert_eq!(b.component(Component::IspEngine), Power::ZERO);
        assert_eq!(b.iter().count(), 6);
    }

    #[test]
    fn breakdown_add_accumulates() {
        let mut b = PowerBreakdown::new();
        b.add(Component::Dram, Power::from_mw(200.0));
        b.add(Component::Dram, Power::from_mw(300.0));
        assert!((b.component(Component::Dram).as_mw() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn energy_account_integrates_power_over_time() {
        let mut acc = EnergyAccount::new();
        let b = sample_breakdown();
        for _ in 0..10 {
            acc.accumulate(&b, SimTime::from_millis(1.0));
        }
        assert!((acc.duration().as_millis() - 10.0).abs() < 1e-9);
        // 3.1 W for 10 ms = 31 mJ.
        assert!((acc.total().as_mj() - 31.0).abs() < 1e-9);
        assert!((acc.average_power().as_watts() - 3.1).abs() < 1e-9);
        assert!((acc.average_domain_power(Domain::Compute).as_watts() - 2.0).abs() < 1e-9);
        assert!((acc.domain(Domain::Memory).as_mj() - 8.5).abs() < 1e-9);
        assert!((acc.rail(Rail::VSa).as_mj() - 5.5).abs() < 1e-9);
        assert!(acc.component(Component::CpuCores) > Energy::ZERO);
    }

    #[test]
    fn from_parts_round_trips_an_account_exactly() {
        let mut acc = EnergyAccount::new();
        let b = sample_breakdown();
        for i in 0..7 {
            acc.accumulate(&b, SimTime::from_millis(0.1 + i as f64 * 0.013));
        }
        let rebuilt = EnergyAccount::from_parts(acc.duration(), acc.iter());
        assert_eq!(rebuilt, acc);
        // Empty accounts round-trip too.
        let empty = EnergyAccount::new();
        assert_eq!(
            EnergyAccount::from_parts(empty.duration(), empty.iter()),
            empty
        );
    }

    #[test]
    fn empty_account_is_zero() {
        let acc = EnergyAccount::new();
        assert_eq!(acc.total(), Energy::ZERO);
        assert_eq!(acc.average_power(), Power::ZERO);
        assert_eq!(acc.average_domain_power(Domain::Io), Power::ZERO);
    }
}
