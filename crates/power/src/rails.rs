//! Voltage rails and regulator state.
//!
//! The SoC's components draw from five rails (Fig. 1): `V_SA` (memory
//! controller, IO interconnect, IO engines), `V_IO` (DDRIO-digital and IO
//! PHYs), `VDDQ` (DRAM and DDRIO-analog, not scaled), and the two compute
//! rails (`V_CORE`, `V_GFX`). SysScale scales `V_SA` and `V_IO` together with
//! the uncore frequencies; the compute rails follow the granted P-states.

use sysscale_types::{Rail, SimError, SimResult, SimTime, UncoreOperatingPoint, Voltage};

/// Nominal (highest-operating-point) rail voltages of the modelled SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NominalVoltages {
    /// Nominal `V_SA`.
    pub vsa: Voltage,
    /// Nominal `V_IO`.
    pub vio: Voltage,
    /// `VDDQ` (fixed; commercial DRAM does not support voltage scaling,
    /// Sec. 2.4).
    pub vddq: Voltage,
}

impl Default for NominalVoltages {
    fn default() -> Self {
        Self {
            vsa: Voltage::from_mv(800.0),
            vio: Voltage::from_mv(950.0),
            vddq: Voltage::from_mv(1_200.0),
        }
    }
}

/// Current rail voltages of the uncore, derived from the active operating
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailVoltages {
    /// Current `V_SA`.
    pub vsa: Voltage,
    /// Current `V_IO`.
    pub vio: Voltage,
    /// Current `VDDQ` (never scaled).
    pub vddq: Voltage,
}

impl RailVoltages {
    /// Rail voltages implied by an uncore operating point.
    #[must_use]
    pub fn for_operating_point(nominal: &NominalVoltages, op: &UncoreOperatingPoint) -> Self {
        Self {
            vsa: nominal.vsa * op.vsa_scale,
            vio: nominal.vio * op.vio_scale,
            vddq: nominal.vddq,
        }
    }

    /// Voltage of a named uncore rail.
    ///
    /// # Panics
    ///
    /// Panics if asked for a compute rail — those are governed by P-states,
    /// not by the uncore operating point.
    #[must_use]
    pub fn rail(&self, rail: Rail) -> Voltage {
        match rail {
            Rail::VSa => self.vsa,
            Rail::VIo => self.vio,
            Rail::Vddq => self.vddq,
            Rail::VCore | Rail::VGfx => {
                panic!("compute rail voltages are set by P-states, not the uncore operating point")
            }
        }
    }
}

/// A voltage regulator with a finite slew rate, used to model the
/// voltage-transition component of the DVFS flow latency (Sec. 5: ≈2 µs for
/// a ±100 mV step at 50 mV/µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageRegulator {
    /// Slew rate in volts per second.
    pub slew_v_per_s: f64,
}

impl Default for VoltageRegulator {
    fn default() -> Self {
        // 50 mV/µs (Sec. 5).
        Self {
            slew_v_per_s: 50_000.0,
        }
    }
}

impl VoltageRegulator {
    /// Creates a regulator with the given slew rate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-positive slew rate.
    pub fn new(slew_v_per_s: f64) -> SimResult<Self> {
        if slew_v_per_s <= 0.0 {
            return Err(SimError::invalid_config(
                "regulator slew rate must be positive",
            ));
        }
        Ok(Self { slew_v_per_s })
    }

    /// Time to move the rail from `from` to `to`.
    #[must_use]
    pub fn transition_time(&self, from: Voltage, to: Voltage) -> SimTime {
        let delta = (to.as_volts() - from.as_volts()).abs();
        SimTime::from_secs(delta / self.slew_v_per_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_types::skylake_lpddr3_ladder;

    #[test]
    fn operating_point_scales_vsa_and_vio_but_not_vddq() {
        let nominal = NominalVoltages::default();
        let ladder = skylake_lpddr3_ladder();
        let high = RailVoltages::for_operating_point(&nominal, ladder.highest());
        let low = RailVoltages::for_operating_point(&nominal, ladder.lowest());
        assert_eq!(high.vsa, nominal.vsa);
        assert_eq!(high.vio, nominal.vio);
        assert!((low.vsa.as_mv() - 640.0).abs() < 1e-9);
        assert!((low.vio.as_mv() - 807.5).abs() < 1e-9);
        assert_eq!(low.vddq, nominal.vddq);
        assert_eq!(low.rail(Rail::VSa), low.vsa);
        assert_eq!(low.rail(Rail::Vddq), nominal.vddq);
    }

    #[test]
    #[should_panic(expected = "compute rail")]
    fn compute_rail_lookup_panics() {
        let nominal = NominalVoltages::default();
        let ladder = skylake_lpddr3_ladder();
        let v = RailVoltages::for_operating_point(&nominal, ladder.highest());
        let _ = v.rail(Rail::VCore);
    }

    #[test]
    fn regulator_transition_time_matches_paper_budget() {
        // ±100 mV at 50 mV/µs is 2 µs.
        let vr = VoltageRegulator::default();
        let t = vr.transition_time(Voltage::from_mv(800.0), Voltage::from_mv(700.0));
        assert!((t.as_micros() - 2.0).abs() < 1e-9);
        // The Table 1 V_SA swing (800 -> 640 mV) stays within ~3.2 µs.
        let t2 = vr.transition_time(Voltage::from_mv(800.0), Voltage::from_mv(640.0));
        assert!(t2.as_micros() < 3.5);
        assert_eq!(
            vr.transition_time(Voltage::from_mv(640.0), Voltage::from_mv(800.0)),
            t2
        );
    }

    #[test]
    fn regulator_validation() {
        assert!(VoltageRegulator::new(0.0).is_err());
        assert!(VoltageRegulator::new(-5.0).is_err());
        assert!(VoltageRegulator::new(40_000.0).is_ok());
    }
}
